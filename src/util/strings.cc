#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <algorithm>

namespace aggchecker {
namespace strings {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(s.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace strings
}  // namespace aggchecker
