#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace aggchecker {

/// \brief Hard resource limits for one checking run (or one interactive
/// Refresh). A zero/negative limit means "unlimited" — the default-constructed
/// limits enforce nothing and a governor built from them never trips.
struct GovernorLimits {
  /// Wall-clock deadline for the whole run, measured from governor
  /// construction (or the last Reset()).
  double deadline_seconds = 0.0;
  /// Total rows the evaluation backend may scan (naive scans + cube scans).
  uint64_t max_row_scans = 0;
  /// Total cube groups the CUBE operator may materialize — bounds
  /// cube-explosion on high-cardinality dimension combinations.
  uint64_t max_cube_groups = 0;

  bool unlimited() const {
    return deadline_seconds <= 0.0 && max_row_scans == 0 &&
           max_cube_groups == 0;
  }
};

/// \brief Consumption counters exposed to reports, snapshot of a governor.
struct GovernorUsage {
  uint64_t rows_charged = 0;        ///< rows scanned under this governor
  uint64_t cube_groups_charged = 0; ///< cube groups materialized
  uint64_t checkpoints = 0;         ///< budget/deadline inspections performed
  bool exhausted = false;           ///< a limit tripped during the run
  /// kOk, or the code that stopped the run (kDeadlineExceeded /
  /// kBudgetExhausted).
  StatusCode stop_code = StatusCode::kOk;
};

/// \brief Cooperative cancellation token threaded through the evaluation
/// stack (executor scans, cube materialization, the EM loop).
///
/// Hot loops charge work in blocks (`ChargeRows`) or at structural points
/// (`ChargeCubeGroups`, `CheckPoint`); when a limit trips, the charge call
/// returns kDeadlineExceeded / kBudgetExhausted and the caller unwinds with
/// that Status. Layers above translate the stop into partial results rather
/// than errors (ClaimVerdict::partial).
///
/// Cost model: charge calls only *inspect* limits (read the clock, compare
/// budgets) once per kCheckIntervalRows charged rows, so per-row overhead is
/// amortized to a counter add. Scan loops additionally call ChargeRows once
/// per kCheckIntervalRows-row block rather than per row, making governor
/// overhead on the unbounded path unmeasurable (see micro_engine_bench's
/// *Governed variants).
///
/// Counters are mutable so a `const ResourceGovernor*` can be plumbed through
/// const evaluation paths. The governor is NOT thread-safe: one governor per
/// single-threaded checking run (the whole pipeline is single-threaded).
class ResourceGovernor {
 public:
  /// Amortized inspection interval, in charged rows. Documented contract:
  /// a run overshoots its row budget by at most this many rows.
  static constexpr uint64_t kCheckIntervalRows = 4096;

  /// Unlimited governor: counts usage but never trips.
  ResourceGovernor() { Reset(); }
  explicit ResourceGovernor(GovernorLimits limits) : limits_(limits) {
    Reset();
  }

  /// Charges `n` scanned rows. Amortized: inspects limits only when the
  /// rows charged since the last inspection reach kCheckIntervalRows.
  /// Returns non-OK (sticky) once a limit has tripped.
  Status ChargeRows(uint64_t n) const {
    rows_ += n;
    if (tripped_) return StopStatus();
    rows_since_check_ += n;
    if (rows_since_check_ < kCheckIntervalRows) return Status::OK();
    rows_since_check_ = 0;
    return Inspect();
  }

  /// Charges `n` materialized cube groups; inspected immediately (group
  /// creation is orders of magnitude rarer than row scans).
  Status ChargeCubeGroups(uint64_t n) const {
    cube_groups_ += n;
    if (tripped_) return StopStatus();
    return Inspect();
  }

  /// Forced inspection of all limits (deadline included). Structural
  /// call sites — per EM iteration, per batch — use this.
  Status CheckPoint() const {
    if (tripped_) return StopStatus();
    return Inspect();
  }

  /// True once any limit has tripped. Sticky until Reset().
  bool exhausted() const { return tripped_; }

  const GovernorLimits& limits() const { return limits_; }

  GovernorUsage usage() const {
    GovernorUsage u;
    u.rows_charged = rows_;
    u.cube_groups_charged = cube_groups_;
    u.checkpoints = checkpoints_;
    u.exhausted = tripped_;
    u.stop_code = stop_code_;
    return u;
  }

  /// Clears counters and the tripped state and restarts the deadline clock.
  void Reset();

 private:
  Status Inspect() const;
  Status StopStatus() const { return Status(stop_code_, stop_message_); }

  GovernorLimits limits_;
  std::chrono::steady_clock::time_point deadline_{};
  bool enforce_deadline_ = false;

  mutable uint64_t rows_ = 0;
  mutable uint64_t rows_since_check_ = 0;
  mutable uint64_t cube_groups_ = 0;
  mutable uint64_t checkpoints_ = 0;
  mutable bool tripped_ = false;
  mutable StatusCode stop_code_ = StatusCode::kOk;
  mutable std::string stop_message_;
};

}  // namespace aggchecker
