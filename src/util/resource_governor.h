#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace aggchecker {

/// \brief Hard resource limits for one checking run (or one interactive
/// Refresh). A zero/negative limit means "unlimited" — the default-constructed
/// limits enforce nothing and a governor built from them never trips.
struct GovernorLimits {
  /// Wall-clock deadline for the whole run, measured from governor
  /// construction (or the last Reset()).
  double deadline_seconds = 0.0;
  /// Total rows the evaluation backend may scan (naive scans + cube scans).
  uint64_t max_row_scans = 0;
  /// Total cube groups the CUBE operator may materialize — bounds
  /// cube-explosion on high-cardinality dimension combinations.
  uint64_t max_cube_groups = 0;
  /// Approximate bytes of evaluation state (join materialization, cube
  /// combo/group accumulators, result cells) the backend may allocate.
  /// Charges are modeled sizes, not allocator truth: both cube execution
  /// modes charge the same canonical per-combo/per-group constants so
  /// reports stay mode- and thread-invariant.
  uint64_t max_memory_bytes = 0;

  bool unlimited() const {
    return deadline_seconds <= 0.0 && max_row_scans == 0 &&
           max_cube_groups == 0 && max_memory_bytes == 0;
  }
};

/// \brief Consumption counters exposed to reports, snapshot of a governor.
struct GovernorUsage {
  uint64_t rows_charged = 0;        ///< rows scanned under this governor
  uint64_t cube_groups_charged = 0; ///< cube groups materialized
  uint64_t memory_bytes_charged = 0; ///< modeled evaluation-state bytes
  /// Budget/deadline inspections performed. Diagnostic only: unlike the
  /// charge totals, the checkpoint count depends on how charges interleave
  /// across threads and is NOT identical across thread counts.
  uint64_t checkpoints = 0;
  bool exhausted = false;           ///< a limit tripped during the run
  /// kOk, or the code that stopped the run (kDeadlineExceeded /
  /// kBudgetExhausted).
  StatusCode stop_code = StatusCode::kOk;
};

/// \brief Cooperative cancellation token threaded through the evaluation
/// stack (executor scans, cube materialization, the EM loop).
///
/// Hot loops charge work in blocks (`ChargeRows`) or at structural points
/// (`ChargeCubeGroups`, `CheckPoint`); when a limit trips, the charge call
/// returns kDeadlineExceeded / kBudgetExhausted and the caller unwinds with
/// that Status. Layers above translate the stop into partial results rather
/// than errors (ClaimVerdict::partial).
///
/// Cost model: charge calls only *inspect* limits (read the clock, compare
/// budgets) once per kCheckIntervalRows charged rows, so per-row overhead is
/// amortized to a counter add. Scan loops additionally call ChargeRows once
/// per kCheckIntervalRows-row block rather than per row, making governor
/// overhead on the unbounded path unmeasurable (see micro_engine_bench's
/// *Governed variants).
///
/// Thread safety: charge/inspect entry points are safe to call from any
/// number of worker threads concurrently. Counters are relaxed atomics; the
/// sticky trip is first-trip-wins under a mutex, after which the stop
/// code/message are immutable and may be read lock-free behind the
/// `tripped_` acquire load. Reset() is NOT safe against concurrent charges —
/// it may only run between parallel regions (the per-run setup already
/// guarantees this). Counters are mutable so a `const ResourceGovernor*` can
/// be plumbed through const evaluation paths.
///
/// Worker threads should not charge this object per block — they wrap it in
/// a ResourceGovernor::Shard (below) so charges fold into the shared atomics
/// at kCheckIntervalRows granularity.
class ResourceGovernor {
 public:
  /// Amortized inspection interval, in charged rows. Documented contract:
  /// a single-threaded run overshoots its row budget by at most this many
  /// rows; with N worker shards the bound is N * kCheckIntervalRows (each
  /// shard may hold up to one uninspected block).
  static constexpr uint64_t kCheckIntervalRows = 4096;

  /// Unlimited governor: counts usage but never trips.
  ResourceGovernor() { Reset(); }
  explicit ResourceGovernor(GovernorLimits limits) : limits_(limits) {
    Reset();
  }

  /// Process-unique id of the current run, reassigned by Reset(). Charge
  /// deduplication keyed on this (the relation cache charges a cached join
  /// once per run) stays correct across governor objects: two governors
  /// never share a run id, so state cached under one run re-charges when a
  /// fresh governor (or a Reset) starts the next run.
  uint64_t run_id() const { return run_id_; }

  /// \brief Per-thread (strictly: per-evaluation-call) charge accumulator.
  ///
  /// Scan loops charge the shard; the shard folds rows into the parent's
  /// atomics once kCheckIntervalRows rows accumulate (and flushes the
  /// remainder on destruction, so totals are exact regardless of thread
  /// count). Cube-group charges pass through immediately — group creation
  /// is orders of magnitude rarer than row scans and is the structural
  /// point where cube explosion must be caught early. Between folds the
  /// shard still observes the parent's sticky trip, so cancellation
  /// latency stays at one block.
  ///
  /// A shard wrapping a null governor charges nothing and never trips,
  /// which lets call sites drop their `if (governor)` guards.
  class Shard {
   public:
    explicit Shard(const ResourceGovernor* governor) : governor_(governor) {}
    ~Shard() { Flush(); }

    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    Status ChargeRows(uint64_t n) {
      if (governor_ == nullptr) return Status::OK();
      pending_rows_ += n;
      if (pending_rows_ >= ResourceGovernor::kCheckIntervalRows) {
        uint64_t flushed = pending_rows_;
        pending_rows_ = 0;
        return governor_->ChargeRows(flushed);
      }
      return governor_->TripStatus();
    }

    Status ChargeCubeGroups(uint64_t n) {
      if (governor_ == nullptr) return Status::OK();
      Status flush = Flush();  // keep parent row totals current at trip time
      if (!flush.ok()) return flush;
      return governor_->ChargeCubeGroups(n);
    }

    Status ChargeMemoryBytes(uint64_t n) {
      if (governor_ == nullptr) return Status::OK();
      Status flush = Flush();
      if (!flush.ok()) return flush;
      return governor_->ChargeMemoryBytes(n);
    }

    /// Folds any locally accumulated rows into the parent. Returns the
    /// parent's charge status (OK when nothing was pending and no trip).
    Status Flush() {
      if (governor_ == nullptr || pending_rows_ == 0) {
        return governor_ == nullptr ? Status::OK() : governor_->TripStatus();
      }
      uint64_t flushed = pending_rows_;
      pending_rows_ = 0;
      return governor_->ChargeRows(flushed);
    }

    /// The wrapped governor (nullptr for the charge-nothing shard).
    const ResourceGovernor* governor() const { return governor_; }

   private:
    const ResourceGovernor* governor_;
    uint64_t pending_rows_ = 0;
  };

  /// Charges `n` scanned rows. Amortized: inspects limits only when the
  /// rows charged since the last inspection reach kCheckIntervalRows.
  /// Returns non-OK (sticky) once a limit has tripped.
  Status ChargeRows(uint64_t n) const {
    rows_.fetch_add(n, std::memory_order_relaxed);
    if (tripped_.load(std::memory_order_acquire)) return StopStatus();
    uint64_t since =
        rows_since_check_.fetch_add(n, std::memory_order_relaxed) + n;
    if (since < kCheckIntervalRows) return Status::OK();
    rows_since_check_.store(0, std::memory_order_relaxed);
    return Inspect();
  }

  /// Charges `n` materialized cube groups; inspected immediately (group
  /// creation is orders of magnitude rarer than row scans).
  Status ChargeCubeGroups(uint64_t n) const {
    cube_groups_.fetch_add(n, std::memory_order_relaxed);
    if (tripped_.load(std::memory_order_acquire)) return StopStatus();
    return Inspect();
  }

  /// Charges `n` modeled bytes of evaluation state (join indices, cube
  /// accumulators); inspected immediately — allocation is a structural
  /// point where a memory blow-up must be caught before it happens.
  Status ChargeMemoryBytes(uint64_t n) const {
    memory_bytes_.fetch_add(n, std::memory_order_relaxed);
    if (tripped_.load(std::memory_order_acquire)) return StopStatus();
    return Inspect();
  }

  /// Forced inspection of all limits (deadline included). Structural
  /// call sites — per EM iteration, per batch — use this.
  Status CheckPoint() const {
    if (tripped_.load(std::memory_order_acquire)) return StopStatus();
    return Inspect();
  }

  /// The sticky stop Status if a limit has tripped, OK otherwise. Cheaper
  /// than CheckPoint (no inspection) — shards poll this between folds.
  Status TripStatus() const {
    if (tripped_.load(std::memory_order_acquire)) return StopStatus();
    return Status::OK();
  }

  /// True once any limit has tripped. Sticky until Reset().
  bool exhausted() const {
    return tripped_.load(std::memory_order_acquire);
  }

  const GovernorLimits& limits() const { return limits_; }

  GovernorUsage usage() const {
    GovernorUsage u;
    u.rows_charged = rows_.load(std::memory_order_relaxed);
    u.cube_groups_charged = cube_groups_.load(std::memory_order_relaxed);
    u.memory_bytes_charged = memory_bytes_.load(std::memory_order_relaxed);
    u.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    u.exhausted = tripped_.load(std::memory_order_acquire);
    u.stop_code = u.exhausted ? stop_code_ : StatusCode::kOk;
    return u;
  }

  /// Clears counters and the tripped state and restarts the deadline clock.
  /// Must not race with concurrent charges.
  void Reset();

 private:
  Status Inspect() const;
  /// First-trip-wins: records (code, message) once; later trips keep the
  /// original stop reason. Only called while tripping.
  Status Trip(StatusCode code, std::string message) const;
  /// Only valid after `tripped_` reads true (stop fields are immutable
  /// from that point on, published by the release store in Trip).
  Status StopStatus() const { return Status(stop_code_, stop_message_); }

  GovernorLimits limits_;
  std::chrono::steady_clock::time_point deadline_{};
  bool enforce_deadline_ = false;
  uint64_t run_id_ = 0;  ///< assigned by Reset(); see run_id()

  mutable std::atomic<uint64_t> rows_{0};
  mutable std::atomic<uint64_t> rows_since_check_{0};
  mutable std::atomic<uint64_t> cube_groups_{0};
  mutable std::atomic<uint64_t> memory_bytes_{0};
  mutable std::atomic<uint64_t> checkpoints_{0};
  mutable std::atomic<bool> tripped_{false};
  mutable std::mutex trip_mu_;
  mutable StatusCode stop_code_ = StatusCode::kOk;
  mutable std::string stop_message_;
};

}  // namespace aggchecker
