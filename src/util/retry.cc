#include "util/retry.h"

#include <chrono>
#include <thread>

namespace aggchecker {

uint32_t BackoffMillis(const RetryPolicy& policy, uint32_t retry_index) {
  if (retry_index == 0 || policy.initial_backoff_ms == 0) return 0;
  uint64_t delay = policy.initial_backoff_ms;
  for (uint32_t i = 1; i < retry_index; ++i) {
    delay *= policy.backoff_multiplier == 0 ? 1 : policy.backoff_multiplier;
    if (delay >= policy.max_backoff_ms) break;
  }
  if (delay > policy.max_backoff_ms) delay = policy.max_backoff_ms;
  return static_cast<uint32_t>(delay);
}

void SleepForBackoff(const RetryPolicy& policy, uint32_t retry_index) {
  const uint32_t ms = BackoffMillis(policy, retry_index);
  if (ms == 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace aggchecker
