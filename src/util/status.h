#pragma once

#include <optional>
#include <string>
#include <utility>

namespace aggchecker {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kUnsupported,
  kInternal,
  /// The resource governor's wall-clock deadline passed (see
  /// util/resource_governor.h); the operation was cancelled cooperatively.
  kDeadlineExceeded,
  /// A governor work budget (row scans, cube groups) was spent; the
  /// operation was cancelled cooperatively and may carry partial results.
  kBudgetExhausted,
  /// A dependency was momentarily unavailable (allocation pressure, a
  /// poisoned cache entry, a flaky I/O layer). Transient by definition:
  /// retrying the same operation may succeed. See Status::IsTransient().
  kUnavailable,
};

/// \brief Lightweight status object carrying an error code and message.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for the cooperative-cancellation codes issued by the resource
  /// governor. Callers that degrade gracefully (partial results) treat these
  /// differently from hard errors.
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kBudgetExhausted;
  }
  /// True for errors where retrying the same operation can plausibly
  /// succeed (see the taxonomy in DESIGN.md §13). Resource-exhausted codes
  /// are deliberately NOT transient: the governor's verdict is sticky for
  /// the run, so a retry would fail its first charge.
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value, or `fallback` on error. The rvalue
  /// overload moves the contained value out instead of copying it.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace aggchecker
