#pragma once

#include <string>
#include <vector>

namespace aggchecker {
namespace fault_injection {

/// \brief Compile-time manifest of every AGG_FAULT_POINT /
/// AGG_FAULT_POINT_STATUS site in the tree.
///
/// The runtime registry (fault_injection.h) only learns about a point when
/// its call site first executes, so a chaos sweep over RegisteredPoints()
/// silently skips points on never-executed paths. This manifest closes that
/// gap: `scripts/check.sh chaos-matrix` greps the source tree and fails on
/// drift between the sites and this list, and ChaosMatrixTest arms every
/// entry and fails on any point that never records a hit.
///
/// Keep the list alphabetized. Adding a fault point without a manifest
/// entry (or vice versa) is a gate failure, not a silent omission.
#define AGG_FAULT_POINT_MANIFEST(X) \
  X("catalog.build")                \
  X("check.run")                    \
  X("csv.row")                      \
  X("cube.materialize")             \
  X("cube.scan.vectorized")         \
  X("data.ingest.append")           \
  X("em.iterate")                   \
  X("eval.recheck.splice")          \
  X("executor.execute")             \
  X("executor.scan")                \
  X("fleet.generator.emit")         \
  X("fleet.schedule.pop")           \
  X("join.materialize")             \
  X("plan.fingerprint")             \
  X("relation.cache.acquire")       \
  X("snapshot.load.map")            \
  X("translator.probe")

/// The manifest as a vector, for tests and tooling.
inline std::vector<std::string> ManifestPoints() {
  std::vector<std::string> points;
#define AGG_FI_MANIFEST_ADD(name) points.push_back(name);
  AGG_FAULT_POINT_MANIFEST(AGG_FI_MANIFEST_ADD)
#undef AGG_FI_MANIFEST_ADD
  return points;
}

}  // namespace fault_injection
}  // namespace aggchecker
