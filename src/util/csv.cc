#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace aggchecker {
namespace csv {

namespace {

/// Splits raw CSV text into records of fields, honoring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    fields.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("quote in unquoted field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (!field.empty() || field_started || !fields.empty()) end_record();
  return records;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

}  // namespace

Result<CsvData> Parse(const std::string& text) {
  auto records = Tokenize(text);
  if (!records.ok()) return records.status();
  if (records->empty()) return Status::ParseError("empty CSV input");

  CsvData data;
  data.header = (*records)[0];
  const size_t width = data.header.size();
  for (size_t r = 1; r < records->size(); ++r) {
    auto& row = (*records)[r];
    // Skip stray blank lines — but only for multi-column tables; in a
    // single-column table an empty line is a legitimate NULL row.
    if (width > 1 && row.size() == 1 && strings::Trim(row[0]).empty()) {
      continue;
    }
    if (row.size() > width) {
      return Status::ParseError(
          strings::Format("row %zu has %zu fields, header has %zu", r,
                          row.size(), width));
    }
    row.resize(width);
    data.rows.push_back(std::move(row));
  }
  return data;
}

Result<CsvData> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

std::string Write(const CsvData& data) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (NeedsQuoting(row[i])) {
        out.push_back('"');
        out += strings::ReplaceAll(row[i], "\"", "\"\"");
        out.push_back('"');
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  write_row(data.header);
  for (const auto& row : data.rows) write_row(row);
  return out;
}

}  // namespace csv
}  // namespace aggchecker
