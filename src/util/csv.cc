#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace csv {

namespace {

/// One raw record plus the 1-based input line it started on, so parse
/// errors can point at the offending line instead of a record index.
struct RawRecord {
  std::vector<std::string> fields;
  size_t line = 0;
};

/// Splits raw CSV text into records of fields, honoring quotes.
Result<std::vector<RawRecord>> Tokenize(const std::string& text) {
  std::vector<RawRecord> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t line = 1;         // current input line (quoted newlines count)
  size_t record_line = 1;  // line the current record started on
  size_t quote_line = 0;   // line an open quote started on

  auto end_field = [&] {
    fields.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back({std::move(fields), record_line});
    fields.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError(strings::Format(
              "line %zu: quote in unquoted field", line));
        }
        in_quotes = true;
        quote_line = line;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        ++line;
        record_line = line;
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError(strings::Format(
        "line %zu: unterminated quoted field", quote_line));
  }
  if (!field.empty() || field_started || !fields.empty()) end_record();
  return records;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

}  // namespace

Result<CsvData> Parse(const std::string& text) {
  auto records = Tokenize(text);
  if (!records.ok()) return records.status();
  if (records->empty()) return Status::ParseError("empty CSV input");

  CsvData data;
  data.header = (*records)[0].fields;
  const size_t width = data.header.size();
  for (size_t r = 1; r < records->size(); ++r) {
    AGG_FAULT_POINT("csv.row");
    RawRecord& rec = (*records)[r];
    auto& row = rec.fields;
    // Skip stray blank lines — but only for multi-column tables; in a
    // single-column table an empty line is a legitimate NULL row.
    if (width > 1 && row.size() == 1 && strings::Trim(row[0]).empty()) {
      continue;
    }
    // A wrong field count means the file is corrupt (missing delimiter,
    // truncated write, mis-quoted field). Padding short rows would load
    // fabricated NULLs and silently shift every verdict computed from
    // them, so both directions are hard errors.
    if (row.size() != width) {
      return Status::ParseError(
          strings::Format("line %zu: row has %zu fields, header has %zu",
                          rec.line, row.size(), width));
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

Result<CsvData> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto data = Parse(buf.str());
  if (!data.ok()) {
    return Status::ParseError(path + ": " + data.status().message());
  }
  return data;
}

std::string Write(const CsvData& data) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      if (NeedsQuoting(row[i])) {
        out.push_back('"');
        out += strings::ReplaceAll(row[i], "\"", "\"\"");
        out.push_back('"');
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  write_row(data.header);
  for (const auto& row : data.rows) write_row(row);
  return out;
}

}  // namespace csv
}  // namespace aggchecker
