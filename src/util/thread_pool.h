#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace aggchecker {

/// \brief Fixed-size pool of persistent worker threads with a blocking
/// `ParallelFor` over an index range. Deliberately work-stealing-free: every
/// parallel region is a shared atomic index counter that workers (and the
/// calling thread, which always participates) increment until the range is
/// drained. That keeps the pool ~150 lines, makes scheduling trivially fair
/// for the homogeneous per-claim / per-cube-group work it runs, and leaves no
/// queues to drain on shutdown.
///
/// Determinism contract: ParallelFor provides no ordering between iterations;
/// callers that need bit-identical output across thread counts must write
/// into pre-sized per-index slots and fold the slots serially afterwards
/// (see EvalEngine::EvaluateMerged and Translator for the pattern).
///
/// Exception / Status propagation: if body invocations throw, the exception
/// from the *lowest* failing index is rethrown on the caller's thread once
/// the range completes (remaining iterations still run; cooperative
/// cancellation is the governor's job, not the pool's). ParallelForStatus
/// likewise returns the non-OK Status of the lowest failing index, so the
/// surfaced error does not depend on thread interleaving.
///
/// A pool with `num_threads <= 1` spawns no workers and runs every region
/// inline on the caller — byte-for-byte today's serial path.
class ThreadPool {
 public:
  /// Creates a pool that runs parallel regions on `num_threads` threads
  /// total (the caller counts as one, so `num_threads - 1` workers are
  /// spawned). 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in a region (workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Hardware thread count, never less than 1 (hardware_concurrency() may
  /// legally return 0). Benches clamp their thread sweeps to this so
  /// oversubscribed hosts stop reporting phantom scaling regressions.
  static size_t HardwareConcurrency() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  /// Runs `body(i)` for every i in [begin, end), distributing indices across
  /// the pool. Blocks until the whole range has executed. Rethrows the
  /// exception of the lowest failing index, if any. Safe to call repeatedly;
  /// concurrent ParallelFor calls from different threads serialize on the
  /// pool (one region at a time).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// As ParallelFor, but `body` reports failure via Status. Returns the
  /// non-OK Status of the lowest failing index, or OK. Exceptions from the
  /// body still propagate as in ParallelFor.
  Status ParallelForStatus(size_t begin, size_t end,
                           const std::function<Status(size_t)>& body);

 private:
  struct Region;  // shared state of one ParallelFor call

  void WorkerLoop();
  static void RunRegion(Region& region);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;    // workers wait here for a region
  std::condition_variable done_;    // the caller waits here for completion
  Region* active_ = nullptr;        // region being drained, or nullptr
  size_t region_seq_ = 0;           // bumps per region so workers never rejoin
  size_t workers_in_region_ = 0;    // workers still inside active_
  bool shutdown_ = false;
};

}  // namespace aggchecker
