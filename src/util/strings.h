#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aggchecker {

/// \brief String helpers shared across modules.
///
/// All functions are pure and ASCII-oriented; the corpus and data sets in
/// this project are English-language ASCII text.
namespace strings {

/// Returns a lower-cased copy of `s`.
std::string ToLower(std::string_view s);

/// Returns an upper-cased copy of `s`.
std::string ToUpper(std::string_view s);

/// Strips leading and trailing whitespace.
std::string Trim(std::string_view s);

/// Splits `s` on the single character `sep`. Keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any whitespace run. Drops empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool IsDigits(std::string_view s);

/// Replaces every occurrence of `from` in `s` by `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Levenshtein edit distance; used by the NaLIR-style baseline to compare
/// parse trees and by word-splitting heuristics.
size_t EditDistance(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace strings
}  // namespace aggchecker
