#pragma once

#include <cstdint>

#include "util/status.h"

namespace aggchecker {

/// \brief How many times to retry a transiently-failing operation and how
/// long to wait between attempts.
///
/// Backoff is capped exponential and fully deterministic: no wall-clock
/// jitter, so chaos tests replay bit-identically. Attempt 1 is the original
/// call; retries sleep `initial_backoff_ms * multiplier^(attempt-1)` capped
/// at `max_backoff_ms` before re-running.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  uint32_t max_attempts = 3;
  /// Backoff before the first retry, in milliseconds. 0 disables sleeping
  /// entirely (tests use this to keep chaos sweeps fast).
  uint32_t initial_backoff_ms = 1;
  /// Multiplier applied per further retry.
  uint32_t backoff_multiplier = 2;
  /// Ceiling on any single backoff sleep.
  uint32_t max_backoff_ms = 8;
};

/// Milliseconds the policy sleeps before retry number `retry_index`
/// (1-based: 1 = first retry). Pure function of the policy — exposed for
/// tests and for callers that want to account the wait.
uint32_t BackoffMillis(const RetryPolicy& policy, uint32_t retry_index);

/// Sleeps for BackoffMillis(policy, retry_index); no-op when that is 0.
void SleepForBackoff(const RetryPolicy& policy, uint32_t retry_index);

/// \brief Knobs for the self-healing evaluation layer (DESIGN.md §13).
///
/// Defaults are ON at the `CheckOptions` level: a transient fault is
/// retried on the same configuration, a persistent fault in an optimized
/// path descends the fallback ladder (vectorized cube → scalar oracle,
/// interned fingerprint plans → string-keyed plans, cached relations →
/// fresh rebuild), and only claims that fail on every rung are quarantined
/// as partial verdicts. Raw `db::EvalEngine` instances keep recovery OFF
/// unless SetRecovery is called, so differential tests see unmasked errors.
struct RecoveryOptions {
  /// Master switch. When false the engine surfaces hard errors unchanged.
  bool enabled = true;
  /// Same-rung retry schedule for transient (Status::IsTransient) errors.
  RetryPolicy retry;
  /// Descend the fallback ladder after retries are exhausted. When false,
  /// failing queries go straight to quarantine.
  bool fallback_ladder = true;
  /// A merged-batch job whose slowest morsel exceeds this multiple of the
  /// batch's median morsel wall-time is flagged (EvalStats::watchdog_flags).
  /// Measurement-only and wall-clock based — never part of determinism
  /// fingerprints. 0 disables the watchdog.
  double watchdog_stall_multiple = 32.0;
};

}  // namespace aggchecker
