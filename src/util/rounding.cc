#include "util/rounding.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace aggchecker {
namespace rounding {

namespace {
constexpr double kRelEps = 1e-9;

bool NearlyEqual(double a, double b) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= kRelEps * scale;
}
}  // namespace

double RoundToSignificant(double value, int digits) {
  if (value == 0.0 || !std::isfinite(value)) return value;
  if (digits < 1) digits = 1;
  double magnitude = std::floor(std::log10(std::fabs(value)));
  double factor = std::pow(10.0, digits - 1 - magnitude);
  return std::round(value * factor) / factor;
}

int SignificantDigitsOf(double value) {
  if (value == 0.0 || !std::isfinite(value)) return 1;
  // Render shortest round-trip-ish representation and count digits.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  int count = 0;
  bool seen_nonzero = false;
  int trailing_zeros_int = 0;
  bool in_fraction = false;
  for (const char* p = buf; *p != '\0'; ++p) {
    char c = *p;
    if (c == 'e' || c == 'E') break;  // exponent does not add digits
    if (c == '.') {
      in_fraction = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) continue;
    if (c == '0') {
      if (!seen_nonzero) continue;  // leading zeros
      ++count;
      if (!in_fraction) ++trailing_zeros_int;
    } else {
      seen_nonzero = true;
      ++count;
      if (!in_fraction) trailing_zeros_int = 0;
    }
  }
  // Integer trailing zeros are treated as placeholders (1300 -> 2 digits).
  if (!in_fraction) count -= trailing_zeros_int;
  return count > 0 ? count : 1;
}

std::optional<int> SignificantDigitsOfLiteral(const std::string& text) {
  // Accept forms like "-13.60", "1,200", "42".
  std::string digits_only;
  bool in_fraction = false;
  bool seen_digit = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == ',' ) continue;
    if (c == '-' || c == '+') {
      if (i != 0) return std::nullopt;
      continue;
    }
    if (c == '.') {
      if (in_fraction) return std::nullopt;
      in_fraction = true;
      digits_only.push_back('.');
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    seen_digit = true;
    digits_only.push_back(c);
  }
  if (!seen_digit) return std::nullopt;

  int count = 0;
  bool seen_nonzero = false;
  int trailing_zeros_int = 0;
  bool fraction = false;
  for (char c : digits_only) {
    if (c == '.') {
      fraction = true;
      continue;
    }
    if (c == '0') {
      if (!seen_nonzero && !fraction) continue;
      if (!seen_nonzero && fraction) continue;  // 0.00x leading zeros
      ++count;
      if (!fraction) ++trailing_zeros_int;
    } else {
      seen_nonzero = true;
      ++count;
      if (!fraction) trailing_zeros_int = 0;
    }
  }
  if (!fraction) count -= trailing_zeros_int;
  return count > 0 ? count : 1;
}

bool Matches(double query_result, double claimed, RoundingMode mode,
             double tolerance) {
  if (!std::isfinite(query_result) || !std::isfinite(claimed)) return false;
  switch (mode) {
    case RoundingMode::kSignificantDigits:
      return RoundsTo(query_result, claimed);
    case RoundingMode::kExact:
      return NearlyEqual(query_result, claimed);
    case RoundingMode::kRelativeTolerance: {
      double scale = std::max(std::fabs(query_result), 1e-12);
      return std::fabs(query_result - claimed) <= tolerance * scale;
    }
  }
  return false;
}

MatchInterval MatchableInterval(double claimed, RoundingMode mode,
                                double tolerance) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const MatchInterval kWholeLine{-kInf, kInf};
  const MatchInterval kEmpty{kInf, -kInf};
  // Matches() rejects every pairing with a non-finite claim.
  if (!std::isfinite(claimed)) return kEmpty;
  switch (mode) {
    case RoundingMode::kSignificantDigits: {
      if (claimed == 0.0) return kWholeLine;
      // RoundsTo accepts r when rounding r to the claim's own precision
      // reproduces it. With d significant digits and magnitude mag, the
      // claim's last digit is worth ulp = 10^(mag - d + 1); the true
      // rounding half-width is at most ulp / 2 (the rounded value's
      // magnitude never exceeds the claim's). A full ulp covers that with
      // 2x margin; +0.51 covers the round-to-integer branch for integral
      // claims, and the relative term absorbs the NearlyEqual epsilons.
      int digits = SignificantDigitsOf(claimed);
      double mag = std::floor(std::log10(std::fabs(claimed)));
      double ulp = std::pow(10.0, mag - digits + 1);
      double w = ulp + 0.51 + 1e-6 * std::max(std::fabs(claimed), 1.0);
      return MatchInterval{claimed - w, claimed + w};
    }
    case RoundingMode::kExact: {
      double w = 1e-8 * std::max(std::fabs(claimed), 1.0);
      return MatchInterval{claimed - w, claimed + w};
    }
    case RoundingMode::kRelativeTolerance: {
      if (tolerance >= 0.5) return kWholeLine;
      // |r - c| <= tol * max(|r|, eps) and |r| <= |c| + |r - c| give
      // |r - c| <= tol * max(|c|, eps) / (1 - tol); doubled for slack.
      double w = 2.0 * tolerance * std::max(std::fabs(claimed), 1.0) /
                 (1.0 - tolerance);
      return MatchInterval{claimed - w, claimed + w};
    }
  }
  return kWholeLine;
}

bool RoundsTo(double query_result, double claimed) {
  if (!std::isfinite(query_result) || !std::isfinite(claimed)) return false;
  if (NearlyEqual(query_result, claimed)) return true;
  // Values of opposite sign never round to each other.
  if ((query_result < 0) != (claimed < 0) && claimed != 0.0) return false;

  // The author's precision: how many significant digits the claim carries.
  int claim_digits = SignificantDigitsOf(claimed);
  double rounded = RoundToSignificant(query_result, claim_digits);
  if (NearlyEqual(rounded, claimed)) return true;

  // Also allow rounding to integer when the claim is integral (common in
  // prose: "about 64 candidates" for 63.7).
  if (std::fabs(claimed - std::round(claimed)) < kRelEps) {
    if (NearlyEqual(std::round(query_result), claimed)) return true;
  }
  return false;
}

}  // namespace rounding
}  // namespace aggchecker
