#include "util/resource_governor.h"

#include "util/strings.h"

namespace aggchecker {

namespace {
/// Run ids start at 1 so 0 can mean "never charged" in per-run caches.
std::atomic<uint64_t> g_next_run_id{0};
}  // namespace

void ResourceGovernor::Reset() {
  run_id_ = g_next_run_id.fetch_add(1, std::memory_order_relaxed) + 1;
  rows_.store(0, std::memory_order_relaxed);
  rows_since_check_.store(0, std::memory_order_relaxed);
  cube_groups_.store(0, std::memory_order_relaxed);
  memory_bytes_.store(0, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  stop_code_ = StatusCode::kOk;
  stop_message_.clear();
  tripped_.store(false, std::memory_order_release);
  enforce_deadline_ = limits_.deadline_seconds > 0.0;
  if (enforce_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(limits_.deadline_seconds));
  }
}

Status ResourceGovernor::Trip(StatusCode code, std::string message) const {
  std::lock_guard<std::mutex> lock(trip_mu_);
  if (!tripped_.load(std::memory_order_relaxed)) {
    // First trip wins: concurrent workers crossing different limits in the
    // same instant all stop, but the report names one stable stop reason.
    stop_code_ = code;
    stop_message_ = std::move(message);
    tripped_.store(true, std::memory_order_release);
  }
  return StopStatus();
}

Status ResourceGovernor::Inspect() const {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t rows = rows_.load(std::memory_order_relaxed);
  if (limits_.max_row_scans != 0 && rows >= limits_.max_row_scans) {
    return Trip(StatusCode::kBudgetExhausted,
                strings::Format(
                    "row-scan budget exhausted (%llu of %llu rows scanned)",
                    static_cast<unsigned long long>(rows),
                    static_cast<unsigned long long>(limits_.max_row_scans)));
  }
  const uint64_t groups = cube_groups_.load(std::memory_order_relaxed);
  if (limits_.max_cube_groups != 0 && groups >= limits_.max_cube_groups) {
    return Trip(
        StatusCode::kBudgetExhausted,
        strings::Format(
            "cube-group budget exhausted (%llu of %llu groups materialized)",
            static_cast<unsigned long long>(groups),
            static_cast<unsigned long long>(limits_.max_cube_groups)));
  }
  const uint64_t bytes = memory_bytes_.load(std::memory_order_relaxed);
  if (limits_.max_memory_bytes != 0 && bytes >= limits_.max_memory_bytes) {
    return Trip(
        StatusCode::kBudgetExhausted,
        strings::Format(
            "memory budget exhausted (%llu of %llu modeled bytes)",
            static_cast<unsigned long long>(bytes),
            static_cast<unsigned long long>(limits_.max_memory_bytes)));
  }
  if (enforce_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Trip(StatusCode::kDeadlineExceeded,
                strings::Format("deadline of %.3fs exceeded",
                                limits_.deadline_seconds));
  }
  return Status::OK();
}

}  // namespace aggchecker
