#include "util/resource_governor.h"

#include "util/strings.h"

namespace aggchecker {

void ResourceGovernor::Reset() {
  rows_ = 0;
  rows_since_check_ = 0;
  cube_groups_ = 0;
  checkpoints_ = 0;
  tripped_ = false;
  stop_code_ = StatusCode::kOk;
  stop_message_.clear();
  enforce_deadline_ = limits_.deadline_seconds > 0.0;
  if (enforce_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(limits_.deadline_seconds));
  }
}

Status ResourceGovernor::Inspect() const {
  ++checkpoints_;
  if (limits_.max_row_scans != 0 && rows_ >= limits_.max_row_scans) {
    tripped_ = true;
    stop_code_ = StatusCode::kBudgetExhausted;
    stop_message_ = strings::Format(
        "row-scan budget exhausted (%llu of %llu rows scanned)",
        static_cast<unsigned long long>(rows_),
        static_cast<unsigned long long>(limits_.max_row_scans));
    return StopStatus();
  }
  if (limits_.max_cube_groups != 0 &&
      cube_groups_ >= limits_.max_cube_groups) {
    tripped_ = true;
    stop_code_ = StatusCode::kBudgetExhausted;
    stop_message_ = strings::Format(
        "cube-group budget exhausted (%llu of %llu groups materialized)",
        static_cast<unsigned long long>(cube_groups_),
        static_cast<unsigned long long>(limits_.max_cube_groups));
    return StopStatus();
  }
  if (enforce_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    tripped_ = true;
    stop_code_ = StatusCode::kDeadlineExceeded;
    stop_message_ = strings::Format("deadline of %.3fs exceeded",
                                    limits_.deadline_seconds);
    return StopStatus();
  }
  return Status::OK();
}

}  // namespace aggchecker
