#include "util/fault_injection.h"

#include <map>
#include <mutex>

namespace aggchecker {
namespace fault_injection {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct PointState {
  bool armed = false;
  FaultSpec spec;
  uint64_t hits = 0;  ///< hits since last Arm (only counted while armed)
  uint64_t rng = 0;   ///< trip-rate RNG state, reseeded on Arm
};

/// splitmix64 step — small, seedable, and good enough for trip-rate draws.
uint64_t NextRandom(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SeedFor(const std::string& point, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;  // FNV-1a over the point name
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

/// Leaked singleton so fault points in static destructors stay safe.
std::map<std::string, PointState>& Points() {
  static std::map<std::string, PointState>* points =
      new std::map<std::string, PointState>;
  return *points;
}

}  // namespace

bool Register(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  Points().emplace(point, PointState{});
  return true;
}

Status Trip(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  if (it == Points().end() || !it->second.armed) return Status::OK();
  PointState& state = it->second;
  ++state.hits;
  const bool fires = state.spec.every_hit
                         ? state.hits >= state.spec.trigger_on_hit
                         : state.hits == state.spec.trigger_on_hit;
  if (!fires) return Status::OK();
  if (state.spec.trip_rate < 1.0) {
    // One draw per eligible hit keeps the sequence aligned with hit order.
    const double draw =
        static_cast<double>(NextRandom(state.rng) >> 11) * 0x1.0p-53;
    if (draw >= state.spec.trip_rate) return Status::OK();
  }
  std::string message = state.spec.message.empty()
                            ? "injected fault at " + std::string(point)
                            : state.spec.message;
  return Status(state.spec.code, std::move(message));
}

void Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  PointState& state = Points()[point];
  if (!state.armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.spec = std::move(spec);
  state.hits = 0;
  state.rng = SeedFor(point, state.spec.seed);
}

void Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  if (it == Points().end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.hits = 0;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  for (auto& [name, state] : Points()) {
    if (!state.armed) continue;
    state.armed = false;
    state.hits = 0;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> RegisteredPoints() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> names;
  names.reserve(Points().size());
  for (const auto& [name, state] : Points()) names.push_back(name);
  return names;
}

uint64_t HitCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  return it == Points().end() ? 0 : it->second.hits;
}

}  // namespace fault_injection
}  // namespace aggchecker
