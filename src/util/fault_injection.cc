#include "util/fault_injection.h"

#include <map>
#include <mutex>

namespace aggchecker {
namespace fault_injection {

namespace internal {
std::atomic<int> g_armed_count{0};
}  // namespace internal

namespace {

struct PointState {
  bool armed = false;
  FaultSpec spec;
  uint64_t hits = 0;  ///< hits since last Arm (only counted while armed)
};

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

/// Leaked singleton so fault points in static destructors stay safe.
std::map<std::string, PointState>& Points() {
  static std::map<std::string, PointState>* points =
      new std::map<std::string, PointState>;
  return *points;
}

}  // namespace

bool Register(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  Points().emplace(point, PointState{});
  return true;
}

Status Trip(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  if (it == Points().end() || !it->second.armed) return Status::OK();
  PointState& state = it->second;
  ++state.hits;
  const bool fires = state.spec.every_hit
                         ? state.hits >= state.spec.trigger_on_hit
                         : state.hits == state.spec.trigger_on_hit;
  if (!fires) return Status::OK();
  std::string message = state.spec.message.empty()
                            ? "injected fault at " + std::string(point)
                            : state.spec.message;
  return Status(state.spec.code, std::move(message));
}

void Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  PointState& state = Points()[point];
  if (!state.armed) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.spec = std::move(spec);
  state.hits = 0;
}

void Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  if (it == Points().end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.hits = 0;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  for (auto& [name, state] : Points()) {
    if (!state.armed) continue;
    state.armed = false;
    state.hits = 0;
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> RegisteredPoints() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> names;
  names.reserve(Points().size());
  for (const auto& [name, state] : Points()) names.push_back(name);
  return names;
}

uint64_t HitCount(const std::string& point) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Points().find(point);
  return it == Points().end() ? 0 : it->second.hits;
}

}  // namespace fault_injection
}  // namespace aggchecker
