#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace aggchecker {
namespace csv {

/// \brief Parsed CSV content: a header row plus data rows.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses RFC-4180-ish CSV text.
///
/// Supports quoted fields with embedded commas/newlines and doubled quotes.
/// The first record is treated as the header. Malformed input is a
/// `Status::ParseError` naming the offending (1-based) line: any data row
/// whose field count differs from the header's (short rows are NOT padded —
/// fabricated NULLs would silently corrupt verdicts), an unterminated
/// quoted field, or a stray quote inside an unquoted field. Blank lines
/// between records are skipped in multi-column tables (in a single-column
/// table an empty line is a legitimate NULL row).
Result<CsvData> Parse(const std::string& text);

/// Reads a CSV file from disk and parses it.
Result<CsvData> ReadFile(const std::string& path);

/// Serializes data back to CSV text (quoting where needed).
std::string Write(const CsvData& data);

}  // namespace csv
}  // namespace aggchecker
