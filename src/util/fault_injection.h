#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace aggchecker {
namespace fault_injection {

/// \brief What an armed fault point injects and when it fires.
struct FaultSpec {
  /// Injected error; defaults to kInternal so chaos runs exercise the
  /// generic-error path. Message defaults to "injected fault at <point>".
  StatusCode code = StatusCode::kInternal;
  std::string message;
  /// 1-based hit index on which the fault first fires (deterministic
  /// nth-hit injection; 1 = first hit).
  uint64_t trigger_on_hit = 1;
  /// Fire on every hit from `trigger_on_hit` on, or exactly once.
  bool every_hit = true;
  /// Probability in [0, 1] that an eligible hit actually fires. 1.0 keeps
  /// the deterministic always-trip behaviour; anything below draws from a
  /// per-point RNG seeded from `seed` and the point name, so a given
  /// (seed, hit sequence) always trips the same hits — flaky faults are
  /// reproducible.
  double trip_rate = 1.0;
  /// Seed for the per-point trip-rate RNG. Reset on every Arm.
  uint64_t seed = 0;
};

/// Registers a fault point name (idempotent). Called once per call site via
/// the AGG_FAULT_POINT macro's function-local static; the registry is how
/// chaos tests enumerate every point on an executed code path.
bool Register(const char* point);

/// Hot-path gate: true iff at least one fault point is currently armed.
/// A relaxed atomic load — the only cost fault points add in production.
bool AnyArmed();

/// Cold path: consults the registry for `point`, counts the hit, and returns
/// the injected Status if the point is armed and its trigger condition is
/// met; OK otherwise. Only called when AnyArmed().
Status Trip(const char* point);

/// Arms `point` (registering it if needed) with `spec` and resets its hit
/// counter. Test-only; production code never arms anything.
void Arm(const std::string& point, FaultSpec spec = {});

/// Disarms one point / every point.
void Disarm(const std::string& point);
void DisarmAll();

/// Every fault point registered so far (i.e. on code paths that have
/// executed at least once), sorted by name.
std::vector<std::string> RegisteredPoints();

/// Hits recorded at `point` since it was last armed (0 when disarmed).
uint64_t HitCount(const std::string& point);

namespace internal {
extern std::atomic<int> g_armed_count;
}  // namespace internal

inline bool AnyArmed() {
  return internal::g_armed_count.load(std::memory_order_relaxed) > 0;
}

}  // namespace fault_injection
}  // namespace aggchecker

/// Declares a named fault point in a function returning Status (or any type
/// implicitly constructible from Status, e.g. Result<T>). Compiles to a
/// single branch on a cold atomic when no faults are armed.
#define AGG_FAULT_POINT(point)                                               \
  do {                                                                       \
    static const bool agg_fi_registered_ =                                   \
        ::aggchecker::fault_injection::Register(point);                      \
    (void)agg_fi_registered_;                                                \
    if (::aggchecker::fault_injection::AnyArmed()) {                         \
      ::aggchecker::Status agg_fi_status_ =                                  \
          ::aggchecker::fault_injection::Trip(point);                        \
      if (!agg_fi_status_.ok()) return agg_fi_status_;                       \
    }                                                                        \
  } while (0)

/// Variant for functions that cannot return Status directly: writes the
/// injected Status (or OK) into `status_out` for the caller to route.
#define AGG_FAULT_POINT_STATUS(point, status_out)                            \
  do {                                                                       \
    static const bool agg_fi_registered_ =                                   \
        ::aggchecker::fault_injection::Register(point);                      \
    (void)agg_fi_registered_;                                                \
    if (::aggchecker::fault_injection::AnyArmed()) {                         \
      (status_out) = ::aggchecker::fault_injection::Trip(point);             \
    }                                                                        \
  } while (0)
