#include "util/rng.h"

namespace aggchecker {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (-bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian(double mean, double stddev) {
  // Irwin-Hall with 4 uniforms: mean 2, variance 1/3.
  double sum = NextDouble() + NextDouble() + NextDouble() + NextDouble();
  double z = (sum - 2.0) * 1.7320508075688772;  // scale to unit variance
  return mean + stddev * z;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace aggchecker
