#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aggchecker {

/// \brief Deterministic xoshiro256** pseudo-random generator.
///
/// Every randomized component (corpus generation, simulated users, property
/// tests) takes an explicit Rng so all experiments are reproducible from a
/// seed. Never seeded from wall-clock time.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Normal-ish double via sum of uniforms (Irwin-Hall, 4 terms), scaled to
  /// mean/stddev. Sufficient for latency models; avoids <random> state.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with probability `p`.
  bool NextBool(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace aggchecker
