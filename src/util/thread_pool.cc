#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>

namespace aggchecker {

/// Shared state of one ParallelFor call. Lives on the caller's stack; workers
/// only touch it between the caller installing it as `active_` and the caller
/// observing `workers_in_region_ == 0`.
struct ThreadPool::Region {
  size_t end = 0;
  std::atomic<size_t> next{0};
  const std::function<void(size_t)>* body = nullptr;

  std::mutex err_mu;
  size_t err_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunRegion(Region& region) {
  for (;;) {
    const size_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.end) return;
    try {
      (*region.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.err_mu);
      if (i < region.err_index) {
        region.err_index = i;
        region.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  size_t last_seq = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] {
        return shutdown_ || (active_ != nullptr && region_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = region_seq_;
      region = active_;
      ++workers_in_region_;
    }
    RunRegion(*region);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_in_region_;
    }
    done_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) return;
  Region region;
  region.end = end;
  region.next.store(begin, std::memory_order_relaxed);
  region.body = &body;

  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    // One region at a time: concurrent callers queue here.
    done_.wait(lock, [&] { return active_ == nullptr; });
    active_ = &region;
    ++region_seq_;
    lock.unlock();
    wake_.notify_all();
  }

  RunRegion(region);  // the caller always participates

  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    // All indices are claimed once our RunRegion returns; wait for workers
    // still executing their last-claimed iteration.
    done_.wait(lock, [&] { return workers_in_region_ == 0; });
    active_ = nullptr;
    lock.unlock();
    done_.notify_all();  // release any queued caller
  }

  if (region.error) std::rethrow_exception(region.error);
}

Status ThreadPool::ParallelForStatus(size_t begin, size_t end,
                                     const std::function<Status(size_t)>& body) {
  std::mutex status_mu;
  size_t status_index = std::numeric_limits<size_t>::max();
  Status first = Status::OK();
  ParallelFor(begin, end, [&](size_t i) {
    Status s = body(i);
    if (s.ok()) return;
    std::lock_guard<std::mutex> lock(status_mu);
    if (i < status_index) {
      status_index = i;
      first = std::move(s);
    }
  });
  return first;
}

}  // namespace aggchecker
