#pragma once

#include <optional>
#include <string>

namespace aggchecker {
namespace rounding {

/// \brief Rounds `value` to `digits` significant digits.
///
/// Example: RoundToSignificant(0.1337, 2) == 0.13,
///          RoundToSignificant(1337.0, 2) == 1300.0.
/// `digits` must be >= 1; values of 0 round to 0 at any precision.
double RoundToSignificant(double value, int digits);

/// \brief Definition 1's admissible-rounding check.
///
/// Returns true if there exists an admissible rounding function rho (rounding
/// to any number of significant digits, 1..15) such that
/// rho(query_result) == claimed. Exact equality (within a tiny epsilon that
/// absorbs floating-point noise) also counts.
///
/// The claimed value is assumed to be exactly what the text states; the
/// number of significant digits the *author* used is inferred from the
/// claimed value itself: we additionally require that rounding the query
/// result to the claimed value's own precision reproduces the claim. This
/// mirrors how the paper treats "13%" as wrong when the true value is 13.6
/// (rounds to 14) but "13.6%" as right.
bool RoundsTo(double query_result, double claimed);

/// \brief Number of significant digits in the decimal rendering of `value`.
///
/// "1300" -> 2 (trailing zeros before the decimal point are treated as
/// placeholders), "13.60" -> 4, "0.005" -> 1. Used to infer the author's
/// precision from the claimed literal. Returns at least 1.
int SignificantDigitsOf(double value);

/// Admissible rounding functions rho (Definition 1 notes the approach works
/// with different choices; the ablation bench compares them).
enum class RoundingMode {
  kSignificantDigits = 0,  ///< the paper's default (RoundsTo)
  kExact,                  ///< strict equality (tiny epsilon only)
  kRelativeTolerance,      ///< |result - claimed| <= tol * |result|
};

/// \brief Checks a query result against a claimed value under `mode`.
/// `tolerance` only applies to kRelativeTolerance (e.g. 0.05 = 5%).
bool Matches(double query_result, double claimed, RoundingMode mode,
             double tolerance = 0.05);

/// \brief Closed interval [lo, hi]; lo > hi encodes the empty interval.
struct MatchInterval {
  double lo;
  double hi;
  bool empty() const { return lo > hi; }
};

/// \brief Conservative superset of the query results that match `claimed`.
///
/// Every finite `r` with `Matches(r, claimed, mode, tolerance) == true` lies
/// inside the returned interval; results provably outside it can be declared
/// mismatches without evaluating the query (the probe stage, DESIGN.md §17).
/// The interval is deliberately widened (never tightened), so a probe can
/// only ever skip work, not flip a verdict:
///  - kSignificantDigits: one full unit of the claim's last significant
///    digit (twice the true rounding half-width), plus the integral-claim
///    round-to-integer branch, plus relative slack for the epsilon
///    comparisons in RoundsTo.
///  - kExact: the NearlyEqual epsilon band.
///  - kRelativeTolerance: the |r - c| <= tol * max(|c|, 1) / (1 - tol) bound
///    doubled; tolerances >= 0.5 return the whole line (no pruning).
/// A claimed value of 0 under kSignificantDigits also returns the whole
/// line; a non-finite claimed value matches nothing (empty interval).
MatchInterval MatchableInterval(double claimed, RoundingMode mode,
                                double tolerance = 0.05);

/// \brief Significant digits of a textual numeric literal.
///
/// Unlike SignificantDigitsOf(double), this preserves trailing fractional
/// zeros ("13.60" has 4 significant digits). Returns std::nullopt if `text`
/// is not a plain numeric literal.
std::optional<int> SignificantDigitsOfLiteral(const std::string& text);

}  // namespace rounding
}  // namespace aggchecker
