#pragma once

#include <chrono>

namespace aggchecker {

/// \brief Simple wall-clock stopwatch for benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aggchecker
