#include "snapshot/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace snapshot {

Result<std::shared_ptr<MappedFile>> MappedFile::Map(const std::string& path) {
  // A failed map / short read is the canonical snapshot-load fault: the
  // injected status surfaces exactly like a real EIO and the caller's
  // rebuild fallback takes over (chaos_matrix_test arms this point).
  Status injected;
  AGG_FAULT_POINT_STATUS("snapshot.load.map", injected);
  if (!injected.ok()) return injected;

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(
        strings::Format("snapshot %s: %s", path.c_str(), strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::Unavailable(
        strings::Format("snapshot %s: fstat: %s", path.c_str(),
                        strerror(errno)));
    ::close(fd);
    return status;
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* addr = ::mmap(nullptr, file->size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr != MAP_FAILED) {
      file->data_ = static_cast<const uint8_t*>(addr);
      file->mmapped_ = true;
    } else {
      // Heap fallback: read the whole file. Loses cross-process page
      // sharing but keeps the load path working.
      file->heap_buffer_.resize(file->size_);
      size_t done = 0;
      while (done < file->size_) {
        ssize_t n = ::read(fd, file->heap_buffer_.data() + done,
                           file->size_ - done);
        if (n <= 0) {
          ::close(fd);
          return Status::Unavailable(
              strings::Format("snapshot %s: short read at %zu/%zu",
                              path.c_str(), done, file->size_));
        }
        done += static_cast<size_t>(n);
      }
      file->data_ =
          reinterpret_cast<const uint8_t*>(file->heap_buffer_.data());
    }
  }
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() {
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace snapshot
}  // namespace aggchecker
