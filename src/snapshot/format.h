#pragma once

// On-disk snapshot format primitives (DESIGN.md §15): the byte-level
// writer/reader, the FNV-1a section checksum, the versioned header and
// section-table layout, and the read-only mmap wrapper snapshot loading is
// built on. The higher-level state serialization lives in snapshot.h.

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "util/status.h"

namespace aggchecker {
namespace snapshot {

/// Eight-byte magic at offset 0. The trailing '1' is cosmetic; real format
/// evolution bumps kFormatVersion (readers reject newer versions and the
/// caller falls back to a full rebuild).
inline constexpr char kMagic[8] = {'A', 'G', 'G', 'S', 'N', 'A', 'P', '1'};

/// Bump on any incompatible layout change. Readers accept exactly this
/// version: snapshots are a cache of rebuildable state, so forward/backward
/// migration is never worth the risk of a subtly misread byte.
/// History: 2 added the per-table data version to the kDatabase section so
/// a loaded database resumes its ingestion version counters (DESIGN.md §16)
/// instead of resetting them — a reset would silently revalidate cache
/// entries stamped against the pre-snapshot versions. 3 appended the
/// per-column statistics blob (DESIGN.md §17) after each column's
/// dictionary, so a loaded database probes candidates without a first-use
/// stats scan; v2 files are rejected and rebuilt cleanly, never misparsed.
inline constexpr uint32_t kFormatVersion = 3;

/// Section kinds. A file carries each at most once; kDatabase is mandatory.
enum class SectionKind : uint32_t {
  kDatabase = 1,
  kCatalog = 2,
  kInterner = 3,
};

/// Fixed-size header: magic, version, section count, and a checksum over
/// the section table itself (each section's payload carries its own).
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t table_checksum;
};
static_assert(sizeof(FileHeader) == 24, "header layout is on-disk ABI");

/// One section-table entry. Offsets are absolute file offsets, 8-aligned.
struct SectionEntry {
  uint32_t kind;
  uint32_t reserved;  ///< zero; keeps the entry 8-aligned and future-proof
  uint64_t offset;
  uint64_t size;
  uint64_t checksum;  ///< Fnv1a64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "section entry is on-disk ABI");

/// FNV-1a 64-bit over a byte range — the same cheap, dependency-free hash
/// the interner uses for id lists. Not cryptographic; it guards against
/// truncation and bit rot, not adversaries.
inline uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// \brief Append-only little-endian byte buffer backing the writer.
///
/// All integers are written via memcpy in host byte order; the snapshot is
/// a same-machine cache (worker processes mapping one image), not a wire
/// format, so no byte swapping is done anywhere.
class ByteWriter {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void I64(int64_t v) { Raw(&v, 8); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  /// Pads with zero bytes until the buffer size is 8-aligned. Typed arrays
  /// are always preceded by Align8 so the mmap'd reader can hand out
  /// correctly aligned `int64_t*`/`double*` without copying.
  void Align8() {
    while (buf_.size() % 8 != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// \brief Bounds-checked cursor over a byte range (one mapped section).
///
/// Reads never throw and never run past the end: the first out-of-bounds
/// read latches the failure flag and every subsequent read returns zeroes /
/// null pointers. Callers do one `ok()` check per decoded object instead of
/// one per field.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, size_t base_offset = 0)
      : data_(data), size_(size), base_offset_(base_offset) {}

  bool ok() const { return !failed_; }

  uint8_t U8() { return ReadScalar<uint8_t>(); }
  uint32_t U32() { return ReadScalar<uint32_t>(); }
  uint64_t U64() { return ReadScalar<uint64_t>(); }
  int32_t I32() { return ReadScalar<int32_t>(); }
  int64_t I64() { return ReadScalar<int64_t>(); }
  double F64() { return ReadScalar<double>(); }

  std::string Str() {
    uint32_t len = U32();
    const uint8_t* p = Bytes(len);
    return p == nullptr ? std::string() : std::string(
        reinterpret_cast<const char*>(p), len);
  }

  /// Skips padding so the cursor's absolute file offset is 8-aligned
  /// (mirrors ByteWriter::Align8; `base_offset_` is the section's absolute
  /// offset, itself 8-aligned, so relative alignment equals absolute).
  void Align8() {
    while ((base_offset_ + pos_) % 8 != 0) (void)U8();
  }

  /// A zero-copy view of `count` elements of T straight out of the mapped
  /// image. Requires a preceding Align8 on both sides. Null on overrun.
  template <typename T>
  const T* Array(size_t count) {
    const uint8_t* p = Bytes(count * sizeof(T));
    return reinterpret_cast<const T*>(p);
  }

  /// Raw byte view; null (and failed) on overrun.
  const uint8_t* Bytes(size_t count) {
    if (failed_ || count > size_ - pos_) {
      failed_ = true;
      return nullptr;
    }
    const uint8_t* p = data_ + pos_;
    pos_ += count;
    return p;
  }

  size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

 private:
  template <typename T>
  T ReadScalar() {
    const uint8_t* p = Bytes(sizeof(T));
    if (p == nullptr) return T{};
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t base_offset_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// \brief A read-only memory-mapped file.
///
/// The mapping is PROT_READ/MAP_SHARED, so N worker processes loading the
/// same snapshot share one page-cache-resident copy of the column arrays —
/// the whole point of the snapshot path. Falls back to a heap read when
/// mmap is unavailable (empty file, exotic filesystem). Loaded columns keep
/// a shared_ptr to this object alive for as long as they alias its bytes.
class MappedFile {
 public:
  /// Opens and maps `path`. The `snapshot.load.map` fault point fires here,
  /// modeling a failed mmap / short read: chaos runs verify that a load
  /// failure degrades to a full rebuild instead of crashing.
  static Result<std::shared_ptr<MappedFile>> Map(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mmapped_ = false;      ///< true: munmap on destroy; false: heap copy
  std::string heap_buffer_;   ///< fallback storage when not mmapped
};

}  // namespace snapshot
}  // namespace aggchecker
