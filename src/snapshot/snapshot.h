#pragma once

// Versioned on-disk snapshots of fully built checker state (DESIGN.md §15).
//
// A snapshot captures everything a worker process otherwise rebuilds at
// startup — `Database` tables with per-column typed arrays, dictionaries
// and `Column::Flat()` views, the fragment catalog with its three inverted
// indexes, and the interned query space — in one checksummed file. Loading
// memory-maps the file and constructs columns whose flat views alias the
// mapping directly (zero copy), so N workers loading the same snapshot
// share one page-cache-resident image. A loaded state is bit-identical to
// a freshly ingested one: the differential tests compare CheckReport
// fingerprints across thread counts and governor budgets.
//
// Snapshots are a cache, never a source of truth: any mismatch — magic,
// format version, truncation, checksum — returns a clean Status and the
// caller falls back to a full rebuild (with a warning, not an error).

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/query_interner.h"
#include "fragments/catalog.h"
#include "snapshot/format.h"
#include "util/status.h"

namespace aggchecker {
namespace snapshot {

/// \brief Byte accounting of a written snapshot (surfaced by the cold-start
/// bench and the harness).
struct SnapshotStats {
  uint64_t file_bytes = 0;
  uint64_t database_bytes = 0;
  uint64_t catalog_bytes = 0;
  uint64_t interner_bytes = 0;
};

/// \brief A loaded snapshot: the database, the catalog (if the section was
/// present), and a replayable image of the interned query space.
///
/// `image` pins the underlying mapping; every column's flat view and codes
/// alias it, so LoadedSnapshot (or the Database moved out of it — the
/// columns each hold their own keepalive reference) must stay alive while
/// the data is in use.
class LoadedSnapshot {
 public:
  db::Database database;
  /// Null when the snapshot carried no catalog section.
  std::shared_ptr<const fragments::FragmentCatalog> catalog;

  bool has_interner() const { return has_interner_; }

  /// Replays the snapshot's interned query space into `interner` (normally
  /// a fresh engine's), reproducing every id the saving process assigned.
  /// Fails cleanly — without corrupting `interner` semantics — if the
  /// replay disagrees with the recorded ids (treated as corruption by
  /// callers, which then fall back to an unseeded engine). No-op when the
  /// snapshot has no interner section.
  Status SeedInterner(db::QueryInterner* interner) const;

 private:
  friend Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

  std::shared_ptr<const MappedFile> image_;
  bool has_interner_ = false;

  /// Raw interner section bounds within the image (decoded on demand by
  /// SeedInterner; the section's checksum was verified at load).
  size_t interner_offset_ = 0;
  size_t interner_size_ = 0;
};

/// Serializes the built state to `path` (written to a temp file, then
/// renamed — a crashed writer never leaves a half-snapshot behind).
/// `catalog` and `interner` are optional; passing null omits the section.
/// Forces every column's dictionary and flat view to build first, so the
/// snapshot captures the fully warmed state.
Status WriteSnapshot(const std::string& path, const db::Database& db,
                     const fragments::FragmentCatalog* catalog,
                     const db::QueryInterner* interner,
                     SnapshotStats* stats = nullptr);

/// Maps and validates `path`, reconstructing the database (zero-copy
/// columns) and catalog. Any mismatch — missing file, bad magic, newer
/// format version, truncation, checksum failure, malformed payload —
/// returns a descriptive non-OK status; callers degrade to a full rebuild.
Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

}  // namespace snapshot
}  // namespace aggchecker
