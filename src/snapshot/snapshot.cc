#include "snapshot/snapshot.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include "util/strings.h"

namespace aggchecker {
namespace snapshot {

namespace {

using db::Column;
using db::ColumnSnapshotData;
using db::QueryInterner;
using db::Value;
using db::ValueType;
using fragments::FragmentCatalog;
using fragments::FragmentType;
using fragments::QueryFragment;
using ir::InvertedIndex;

Status Corrupt(const std::string& what) {
  return Status::ParseError("snapshot: " + what);
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

void WriteValue(ByteWriter* w, const Value& v) {
  w->U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kLong:
      w->I64(v.AsLong());
      break;
    case ValueType::kDouble:
      // Raw 8 bytes: exact round trip including NaN payloads and -0.0.
      w->F64(v.AsDoubleExact());
      break;
    case ValueType::kString:
      w->Str(v.AsString());
      break;
  }
}

Value ReadValue(ByteReader* r) {
  switch (static_cast<ValueType>(r->U8())) {
    case ValueType::kLong:
      return Value(r->I64());
    case ValueType::kDouble:
      return Value(r->F64());
    case ValueType::kString:
      return Value(r->Str());
    case ValueType::kNull:
    default:
      return Value::Null();
  }
}

// ---------------------------------------------------------------------------
// Columns: typed arrays with the exact semantics of Column::BuildFlat /
// BuildDictionary, so a loaded column is bit-identical to a rebuilt one.
// ---------------------------------------------------------------------------

constexpr uint8_t kHasLongs = 1;
constexpr uint8_t kHasDoubles = 2;
constexpr uint8_t kHasStrings = 4;

Status WriteColumn(ByteWriter* w, const Column& col) {
  const std::vector<Value>& values = col.values();
  const size_t rows = values.size();

  w->Str(col.name());
  w->U8(static_cast<uint8_t>(col.type()));
  w->U64(rows);
  w->U64(col.null_count());

  bool any_long = false, any_double = false, any_string = false;
  size_t heap_bytes = 0;
  for (const Value& v : values) {
    switch (v.type()) {
      case ValueType::kLong:
        any_long = true;
        break;
      case ValueType::kDouble:
        any_double = true;
        break;
      case ValueType::kString:
        any_string = true;
        heap_bytes += v.AsString().size();
        break;
      case ValueType::kNull:
        break;
    }
  }
  // The flat-view contract: numeric columns always expose `doubles`, LONG
  // columns always expose `longs` — even when every cell is NULL.
  const bool has_longs = any_long || col.type() == ValueType::kLong;
  const bool has_doubles = any_double || col.is_numeric();
  const bool has_strings = any_string;
  if (heap_bytes > std::numeric_limits<uint32_t>::max()) {
    return Status::Unsupported(strings::Format(
        "snapshot: column %s string heap exceeds 4 GiB", col.name().c_str()));
  }
  w->U8(static_cast<uint8_t>((has_longs ? kHasLongs : 0) |
                             (has_doubles ? kHasDoubles : 0) |
                             (has_strings ? kHasStrings : 0)));

  w->Align8();
  for (const Value& v : values) w->U8(v.is_null() ? 1 : 0);
  for (const Value& v : values) w->U8(static_cast<uint8_t>(v.type()));
  w->Align8();
  if (has_longs) {
    // BuildFlat's `longs` formula: AsLong for LONG cells, 0 otherwise.
    for (const Value& v : values) {
      w->I64(v.type() == ValueType::kLong ? v.AsLong() : 0);
    }
  }
  if (has_doubles) {
    // BuildFlat's `doubles` formula: ToDouble of every cell, 0.0 for NULL.
    for (const Value& v : values) {
      w->F64(v.is_null() ? 0.0 : v.ToDouble());
    }
  }
  if (has_strings) {
    uint32_t offset = 0;
    for (const Value& v : values) {
      w->U32(offset);
      if (v.type() == ValueType::kString) {
        offset += static_cast<uint32_t>(v.AsString().size());
      }
    }
    w->U32(offset);
    for (const Value& v : values) {
      if (v.type() == ValueType::kString) {
        w->Raw(v.AsString().data(), v.AsString().size());
      }
    }
    w->Align8();
  }

  // Dictionary: serialized as built (builds it now if the source column
  // never did), so the loaded column's distinct ids and codes — and with
  // them cube bucketing and fragment order — match a fresh build.
  const std::vector<Value>& distinct = col.DistinctValues();
  const std::vector<int32_t>& codes = col.Codes();
  w->U32(static_cast<uint32_t>(distinct.size()));
  for (const Value& v : distinct) WriteValue(w, v);
  w->Align8();
  w->Raw(codes.data(), codes.size() * sizeof(int32_t));
  w->Align8();

  // Format v3: the statistics blob (DESIGN.md §17). Persists exactly what
  // Stats() computed so a loaded column probes candidates without a
  // first-use scan — and seeded stats are bit-identical to a rebuild.
  const db::ColumnStats& stats = col.Stats();
  w->U64(stats.rows);
  w->U64(stats.non_null);
  w->U64(stats.distinct);
  w->U64(stats.finite_count);
  w->U8(static_cast<uint8_t>((stats.numeric ? 1 : 0) |
                             (stats.has_non_finite ? 2 : 0) |
                             (stats.integral ? 4 : 0)));
  w->F64(stats.min);
  w->F64(stats.max);
  w->F64(stats.sum_pos);
  w->F64(stats.sum_neg);
  w->F64(stats.max_abs);
  w->Align8();
  return Status::OK();
}

Result<std::unique_ptr<Column>> ReadColumn(
    ByteReader* r, const std::shared_ptr<const MappedFile>& image) {
  std::string name = r->Str();
  uint8_t type_tag = r->U8();
  uint64_t rows = r->U64();
  uint64_t null_count = r->U64();
  uint8_t flags = r->U8();
  if (!r->ok() || type_tag > static_cast<uint8_t>(ValueType::kString) ||
      rows > r->remaining() || null_count > rows) {
    return Corrupt("malformed column header");
  }
  ValueType type = static_cast<ValueType>(type_tag);

  ColumnSnapshotData data;
  data.rows = rows;
  data.null_count = null_count;
  data.keepalive = image;

  r->Align8();
  data.nulls = r->Array<uint8_t>(rows);
  data.tags = r->Array<uint8_t>(rows);
  r->Align8();
  if (flags & kHasLongs) data.longs = r->Array<int64_t>(rows);
  if (flags & kHasDoubles) data.doubles = r->Array<double>(rows);
  if (flags & kHasStrings) {
    data.string_offsets = r->Array<uint32_t>(rows + 1);
    if (!r->ok()) return Corrupt("truncated column strings");
    data.string_heap = reinterpret_cast<const char*>(
        r->Bytes(data.string_offsets[rows]));
    r->Align8();
  }

  uint32_t distinct_count = r->U32();
  if (!r->ok() || distinct_count > rows) {
    return Corrupt("malformed column dictionary");
  }
  data.distinct.reserve(distinct_count);
  for (uint32_t i = 0; i < distinct_count; ++i) {
    data.distinct.push_back(ReadValue(r));
  }
  r->Align8();
  data.codes = r->Array<int32_t>(rows);
  r->Align8();
  if (!r->ok()) return Corrupt("truncated column payload");

  db::ColumnStats stats;
  stats.rows = r->U64();
  stats.non_null = r->U64();
  stats.distinct = r->U64();
  stats.finite_count = r->U64();
  uint8_t stat_flags = r->U8();
  stats.numeric = (stat_flags & 1) != 0;
  stats.has_non_finite = (stat_flags & 2) != 0;
  stats.integral = (stat_flags & 4) != 0;
  stats.min = r->F64();
  stats.max = r->F64();
  stats.sum_pos = r->F64();
  stats.sum_neg = r->F64();
  stats.max_abs = r->F64();
  r->Align8();
  if (!r->ok() || stats.rows != rows ||
      stats.non_null != rows - null_count ||
      stats.distinct != distinct_count) {
    return Corrupt("malformed column stats");
  }

  // Every cell tag must have a backing array, or materialization would
  // dereference null (tags are checksummed, but a buggy writer is cheaper
  // to catch here than in a crash).
  for (uint64_t row = 0; row < rows; ++row) {
    switch (static_cast<ValueType>(data.tags[row])) {
      case ValueType::kLong:
        if (data.longs == nullptr) return Corrupt("long cell without array");
        break;
      case ValueType::kDouble:
        if (data.doubles == nullptr) {
          return Corrupt("double cell without array");
        }
        break;
      case ValueType::kString:
        if (data.string_heap == nullptr) {
          return Corrupt("string cell without heap");
        }
        break;
      case ValueType::kNull:
        break;
    }
  }
  std::unique_ptr<Column> col =
      Column::FromSnapshot(std::move(name), type, std::move(data));
  if (col != nullptr) col->SeedStats(stats);
  return col;
}

// ---------------------------------------------------------------------------
// Database section
// ---------------------------------------------------------------------------

Status WriteDatabase(ByteWriter* w, const db::Database& db) {
  w->Str(db.name());
  w->U32(static_cast<uint32_t>(db.num_tables()));
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const db::Table& table = db.table(t);
    w->Str(table.name());
    w->U32(static_cast<uint32_t>(table.num_columns()));
    w->U64(table.num_rows());
    w->U64(table.version());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      Status s = WriteColumn(w, table.column(c));
      if (!s.ok()) return s;
    }
  }
  const auto& fks = db.foreign_keys();
  w->U32(static_cast<uint32_t>(fks.size()));
  for (const db::ForeignKey& fk : fks) {
    w->Str(fk.from.table);
    w->Str(fk.from.column);
    w->Str(fk.to.table);
    w->Str(fk.to.column);
  }
  w->Align8();
  return Status::OK();
}

Result<db::Database> ReadDatabase(
    ByteReader* r, const std::shared_ptr<const MappedFile>& image) {
  db::Database database(r->Str());
  uint32_t num_tables = r->U32();
  if (!r->ok() || num_tables > r->remaining()) {
    return Corrupt("malformed database header");
  }
  for (uint32_t t = 0; t < num_tables; ++t) {
    std::string table_name = r->Str();
    uint32_t num_columns = r->U32();
    uint64_t num_rows = r->U64();
    uint64_t data_version = r->U64();
    if (!r->ok() || num_columns > r->remaining() || data_version == 0) {
      return Corrupt("malformed table header");
    }
    std::vector<std::unique_ptr<Column>> columns;
    columns.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      auto column = ReadColumn(r, image);
      if (!column.ok()) return column.status();
      columns.push_back(std::move(*column));
    }
    auto table = db::Table::FromSnapshotParts(
        std::move(table_name), std::move(columns), num_rows, data_version);
    if (!table.ok()) return table.status();
    Status s = database.AddTable(std::move(*table));
    if (!s.ok()) return s;
  }
  uint32_t num_fks = r->U32();
  if (!r->ok() || num_fks > r->remaining()) {
    return Corrupt("malformed foreign keys");
  }
  for (uint32_t i = 0; i < num_fks; ++i) {
    db::ColumnRef from{r->Str(), r->Str()};
    db::ColumnRef to{r->Str(), r->Str()};
    if (!r->ok()) return Corrupt("truncated foreign key");
    Status s = database.AddForeignKey(from, to);
    if (!s.ok()) return s;
  }
  return database;
}

// ---------------------------------------------------------------------------
// Catalog section
// ---------------------------------------------------------------------------

void WriteIndex(ByteWriter* w, const InvertedIndex& index) {
  const std::vector<double>& norms = index.doc_norms();
  w->U32(static_cast<uint32_t>(norms.size()));
  w->Align8();
  w->Raw(norms.data(), norms.size() * sizeof(double));
  std::vector<InvertedIndex::TermPostings> postings = index.ExportPostings();
  w->U32(static_cast<uint32_t>(postings.size()));
  for (const auto& tp : postings) {
    w->Str(tp.term);
    w->U32(static_cast<uint32_t>(tp.postings.size()));
    w->Align8();
    // Split id / weight arrays: fixed-width on disk regardless of struct
    // padding, and 8-alignable for the weights.
    for (const auto& p : tp.postings) w->I32(p.doc_id);
    w->Align8();
    for (const auto& p : tp.postings) w->F64(p.weight);
  }
  w->Align8();
}

Result<InvertedIndex> ReadIndex(ByteReader* r) {
  uint32_t num_docs = r->U32();
  r->Align8();
  if (!r->ok() || num_docs > r->remaining()) return Corrupt("index norms");
  const double* norms = r->Array<double>(num_docs);
  uint32_t num_terms = r->U32();
  if (!r->ok() || num_terms > r->remaining()) return Corrupt("index terms");
  std::vector<InvertedIndex::TermPostings> postings;
  postings.reserve(num_terms);
  for (uint32_t i = 0; i < num_terms; ++i) {
    InvertedIndex::TermPostings tp;
    tp.term = r->Str();
    uint32_t n = r->U32();
    r->Align8();
    if (!r->ok() || n > r->remaining()) return Corrupt("index postings");
    const int32_t* ids = r->Array<int32_t>(n);
    r->Align8();
    const double* weights = r->Array<double>(n);
    if (!r->ok()) return Corrupt("truncated index postings");
    tp.postings.reserve(n);
    for (uint32_t p = 0; p < n; ++p) {
      tp.postings.push_back(InvertedIndex::Posting{ids[p], weights[p]});
    }
    postings.push_back(std::move(tp));
  }
  r->Align8();
  if (!r->ok()) return Corrupt("truncated index");
  return InvertedIndex::FromParts(
      std::move(postings), std::vector<double>(norms, norms + num_docs));
}

void WriteCatalog(ByteWriter* w, const FragmentCatalog& catalog) {
  for (int t = 0; t < fragments::kNumFragmentTypes; ++t) {
    FragmentType type = static_cast<FragmentType>(t);
    const auto& frags = catalog.fragments(type);
    w->U32(static_cast<uint32_t>(frags.size()));
    for (const QueryFragment& f : frags) {
      w->U8(static_cast<uint8_t>(f.type));
      w->U8(static_cast<uint8_t>(f.fn));
      w->Str(f.column.table);
      w->Str(f.column.column);
      WriteValue(w, f.value);
    }
    WriteIndex(w, catalog.index(type));
  }
  const auto& pred_columns = catalog.predicate_columns();
  w->U32(static_cast<uint32_t>(pred_columns.size()));
  for (const db::ColumnRef& ref : pred_columns) {
    w->Str(ref.table);
    w->Str(ref.column);
  }
  w->Align8();
}

Result<FragmentCatalog> ReadCatalog(ByteReader* r) {
  FragmentCatalog::Parts parts;
  for (int t = 0; t < fragments::kNumFragmentTypes; ++t) {
    uint32_t num_fragments = r->U32();
    if (!r->ok() || num_fragments > r->remaining()) {
      return Corrupt("malformed catalog");
    }
    parts.fragments[t].reserve(num_fragments);
    for (uint32_t i = 0; i < num_fragments; ++i) {
      QueryFragment f;
      f.type = static_cast<FragmentType>(r->U8());
      f.fn = static_cast<db::AggFn>(r->U8());
      f.column.table = r->Str();
      f.column.column = r->Str();
      f.value = ReadValue(r);
      if (!r->ok()) return Corrupt("truncated catalog fragment");
      parts.fragments[t].push_back(std::move(f));
    }
    auto index = ReadIndex(r);
    if (!index.ok()) return index.status();
    parts.indexes[t] = std::move(*index);
  }
  uint32_t num_pred_columns = r->U32();
  if (!r->ok() || num_pred_columns > r->remaining()) {
    return Corrupt("malformed predicate columns");
  }
  parts.predicate_columns.reserve(num_pred_columns);
  for (uint32_t i = 0; i < num_pred_columns; ++i) {
    db::ColumnRef ref;
    ref.table = r->Str();
    ref.column = r->Str();
    parts.predicate_columns.push_back(std::move(ref));
  }
  if (!r->ok()) return Corrupt("truncated catalog");
  return FragmentCatalog::FromParts(std::move(parts));
}

// ---------------------------------------------------------------------------
// Interner section: every component store in first-intern order. Ids are
// dense in that order, so a replay through the public Intern* methods
// reproduces them exactly; SeedInterner verifies each id as it goes.
// ---------------------------------------------------------------------------

void WriteInterner(ByteWriter* w, const QueryInterner& interner) {
  using Id = QueryInterner::Id;
  w->U32(static_cast<uint32_t>(interner.num_columns()));
  for (Id i = 0; i < interner.num_columns(); ++i) {
    w->Str(interner.column(i).table);
    w->Str(interner.column(i).column);
  }
  w->U32(static_cast<uint32_t>(interner.num_values()));
  for (Id i = 0; i < interner.num_values(); ++i) {
    WriteValue(w, interner.value(i));
  }
  w->U32(static_cast<uint32_t>(interner.num_predicates()));
  for (Id i = 0; i < interner.num_predicates(); ++i) {
    w->U32(interner.predicate(i).column);
    w->U32(interner.predicate(i).value);
  }
  w->U32(static_cast<uint32_t>(interner.num_pred_lists()));
  for (Id i = 0; i < interner.num_pred_lists(); ++i) {
    const std::vector<Id>& list = interner.pred_list(i);
    w->U32(static_cast<uint32_t>(list.size()));
    for (Id id : list) w->U32(id);
  }
  w->U32(static_cast<uint32_t>(interner.num_aggregates()));
  for (Id i = 0; i < interner.num_aggregates(); ++i) {
    w->U8(static_cast<uint8_t>(interner.aggregate(i).fn));
    w->U32(interner.aggregate(i).column);
  }
  w->U32(static_cast<uint32_t>(interner.num_table_sets()));
  for (Id i = 0; i < interner.num_table_sets(); ++i) {
    w->Str(interner.relation_key(i));
  }
  w->U32(static_cast<uint32_t>(interner.num_dim_sets()));
  for (Id i = 0; i < interner.num_dim_sets(); ++i) {
    const std::vector<Id>& list = interner.dim_set(i);
    w->U32(static_cast<uint32_t>(list.size()));
    for (Id id : list) w->U32(id);
  }
  w->U32(static_cast<uint32_t>(interner.num_queries()));
  for (Id i = 0; i < interner.num_queries(); ++i) {
    QueryInterner::CandidateParts parts = interner.candidate(i);
    w->U8(static_cast<uint8_t>(parts.fn));
    w->U32(parts.agg_column);
    w->U32(parts.predlist);
  }
  w->Align8();
}

Status ReplayInterner(ByteReader* r, QueryInterner* interner) {
  using Id = QueryInterner::Id;
  auto mismatch = [](const char* what) {
    return Status::Internal(
        strings::Format("snapshot: interner replay diverged at %s", what));
  };

  uint32_t n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner columns");
  for (uint32_t i = 0; i < n; ++i) {
    db::ColumnRef ref{r->Str(), r->Str()};
    if (!r->ok()) return Corrupt("interner columns");
    if (interner->InternColumn(ref) != i) return mismatch("column");
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner values");
  for (uint32_t i = 0; i < n; ++i) {
    Value v = ReadValue(r);
    if (!r->ok()) return Corrupt("interner values");
    if (interner->InternValue(v) != i) return mismatch("value");
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner predicates");
  for (uint32_t i = 0; i < n; ++i) {
    Id column = r->U32();
    Id value = r->U32();
    if (!r->ok() || column >= interner->num_columns() ||
        value >= interner->num_values()) {
      return Corrupt("interner predicates");
    }
    if (interner->InternPredicate(interner->column(column),
                                  interner->value(value)) != i) {
      return mismatch("predicate");
    }
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner pred lists");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len = r->U32();
    if (!r->ok() || len > r->remaining()) return Corrupt("interner pred lists");
    std::vector<Id> ids(len);
    for (uint32_t j = 0; j < len; ++j) ids[j] = r->U32();
    if (!r->ok()) return Corrupt("interner pred lists");
    if (interner->InternPredList(ids) != i) return mismatch("pred list");
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner aggregates");
  for (uint32_t i = 0; i < n; ++i) {
    db::AggFn fn = static_cast<db::AggFn>(r->U8());
    Id column = r->U32();
    if (!r->ok()) return Corrupt("interner aggregates");
    if (interner->InternAggregate(fn, column) != i) {
      return mismatch("aggregate");
    }
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner table sets");
  for (uint32_t i = 0; i < n; ++i) {
    std::string key = r->Str();
    if (!r->ok()) return Corrupt("interner table sets");
    // The canonical key is sorted lower-cased names joined by ',', which
    // InternTableSet re-canonicalizes to itself.
    if (interner->InternTableSet(strings::Split(key, ',')) != i) {
      return mismatch("table set");
    }
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner dim sets");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len = r->U32();
    if (!r->ok() || len > r->remaining()) return Corrupt("interner dim sets");
    std::vector<Id> ids(len);
    for (uint32_t j = 0; j < len; ++j) ids[j] = r->U32();
    if (!r->ok()) return Corrupt("interner dim sets");
    if (interner->InternDimSet(ids) != i) return mismatch("dim set");
  }
  n = r->U32();
  if (!r->ok() || n > r->remaining()) return Corrupt("interner queries");
  for (uint32_t i = 0; i < n; ++i) {
    db::AggFn fn = static_cast<db::AggFn>(r->U8());
    Id agg_column = r->U32();
    Id predlist = r->U32();
    if (!r->ok()) return Corrupt("interner queries");
    if (interner->InternCandidate(fn, agg_column, predlist) != i) {
      return mismatch("query");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// File assembly
// ---------------------------------------------------------------------------

Status WriteFileAtomic(const std::string& path, const FileHeader& header,
                       const std::vector<SectionEntry>& table,
                       const std::vector<const ByteWriter*>& sections) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("snapshot: cannot open " + tmp);
  }
  auto write_all = [f](const void* data, size_t size) {
    return size == 0 || std::fwrite(data, 1, size, f) == size;
  };
  bool ok = write_all(&header, sizeof(header)) &&
            write_all(table.data(), table.size() * sizeof(SectionEntry));
  for (const ByteWriter* w : sections) {
    ok = ok && write_all(w->bytes().data(), w->size());
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Unavailable("snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("snapshot: cannot rename into " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const std::string& path, const db::Database& db,
                     const fragments::FragmentCatalog* catalog,
                     const db::QueryInterner* interner,
                     SnapshotStats* stats) {
  ByteWriter db_section;
  Status s = WriteDatabase(&db_section, db);
  if (!s.ok()) return s;

  ByteWriter catalog_section;
  if (catalog != nullptr) WriteCatalog(&catalog_section, *catalog);
  ByteWriter interner_section;
  if (interner != nullptr) WriteInterner(&interner_section, *interner);

  std::vector<std::pair<SectionKind, const ByteWriter*>> sections;
  sections.push_back({SectionKind::kDatabase, &db_section});
  if (catalog != nullptr) {
    sections.push_back({SectionKind::kCatalog, &catalog_section});
  }
  if (interner != nullptr) {
    sections.push_back({SectionKind::kInterner, &interner_section});
  }

  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.section_count = static_cast<uint32_t>(sections.size());

  std::vector<SectionEntry> table;
  std::vector<const ByteWriter*> payloads;
  // Sections start right after the table; every section buffer ends on an
  // Align8, so each offset stays 8-aligned.
  uint64_t offset = sizeof(FileHeader) + sections.size() * sizeof(SectionEntry);
  for (const auto& [kind, w] : sections) {
    SectionEntry entry;
    entry.kind = static_cast<uint32_t>(kind);
    entry.reserved = 0;
    entry.offset = offset;
    entry.size = w->size();
    entry.checksum = Fnv1a64(
        reinterpret_cast<const uint8_t*>(w->bytes().data()), w->size());
    table.push_back(entry);
    payloads.push_back(w);
    offset += w->size();
  }
  header.table_checksum =
      Fnv1a64(reinterpret_cast<const uint8_t*>(table.data()),
              table.size() * sizeof(SectionEntry));

  s = WriteFileAtomic(path, header, table, payloads);
  if (!s.ok()) return s;
  if (stats != nullptr) {
    stats->file_bytes = offset;
    stats->database_bytes = db_section.size();
    stats->catalog_bytes = catalog_section.size();
    stats->interner_bytes = interner_section.size();
  }
  return Status::OK();
}

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  auto mapped = MappedFile::Map(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<const MappedFile> image = std::move(*mapped);
  const uint8_t* data = image->data();
  const size_t size = image->size();

  if (size < sizeof(FileHeader)) return Corrupt("file shorter than header");
  FileHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a snapshot file)");
  }
  if (header.version != kFormatVersion) {
    return Status::Unsupported(strings::Format(
        "snapshot format version %u, this reader expects %u",
        header.version, kFormatVersion));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (header.section_count > 64 ||
      sizeof(FileHeader) + table_bytes > size) {
    return Corrupt("malformed section table");
  }
  if (Fnv1a64(data + sizeof(FileHeader), table_bytes) !=
      header.table_checksum) {
    return Corrupt("section table checksum mismatch");
  }

  std::vector<SectionEntry> table(header.section_count);
  std::memcpy(table.data(), data + sizeof(FileHeader), table_bytes);
  const SectionEntry* db_entry = nullptr;
  const SectionEntry* catalog_entry = nullptr;
  const SectionEntry* interner_entry = nullptr;
  for (const SectionEntry& entry : table) {
    if (entry.offset % 8 != 0 || entry.offset > size ||
        entry.size > size - entry.offset) {
      return Corrupt("section out of bounds");
    }
    if (Fnv1a64(data + entry.offset, entry.size) != entry.checksum) {
      return Corrupt(strings::Format("section %u checksum mismatch",
                                     entry.kind));
    }
    switch (static_cast<SectionKind>(entry.kind)) {
      case SectionKind::kDatabase:
        db_entry = &entry;
        break;
      case SectionKind::kCatalog:
        catalog_entry = &entry;
        break;
      case SectionKind::kInterner:
        interner_entry = &entry;
        break;
      default:
        break;  // unknown sections are ignored, not fatal
    }
  }
  if (db_entry == nullptr) return Corrupt("no database section");

  LoadedSnapshot loaded;
  loaded.image_ = image;
  {
    ByteReader r(data + db_entry->offset, db_entry->size, db_entry->offset);
    auto database = ReadDatabase(&r, image);
    if (!database.ok()) return database.status();
    loaded.database = std::move(*database);
  }
  if (catalog_entry != nullptr) {
    ByteReader r(data + catalog_entry->offset, catalog_entry->size,
                 catalog_entry->offset);
    auto catalog = ReadCatalog(&r);
    if (!catalog.ok()) return catalog.status();
    loaded.catalog = std::make_shared<const fragments::FragmentCatalog>(
        std::move(*catalog));
  }
  if (interner_entry != nullptr) {
    loaded.has_interner_ = true;
    loaded.interner_offset_ = interner_entry->offset;
    loaded.interner_size_ = interner_entry->size;
  }
  return loaded;
}

Status LoadedSnapshot::SeedInterner(db::QueryInterner* interner) const {
  if (!has_interner_) return Status::OK();
  ByteReader r(image_->data() + interner_offset_, interner_size_,
               interner_offset_);
  return ReplayInterner(&r, interner);
}

}  // namespace snapshot
}  // namespace aggchecker
