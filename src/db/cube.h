#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/aggregate.h"
#include "db/database.h"
#include "db/executor.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief One aggregate computed by a cube query: a base aggregation
/// function applied to a column (or "*" for Count).
///
/// Only the five base functions are valid here; ratio aggregates are derived
/// from Count lookups by the evaluation engine.
struct CubeAggregate {
  AggFn fn = AggFn::kCount;
  ColumnRef column;  ///< empty column name = "*"

  bool is_star() const { return column.column.empty(); }
  std::string Key() const {
    return std::string(AggFnName(fn)) + "(" +
           (is_star() ? "*" : column.ToString()) + ")";
  }
  bool operator==(const CubeAggregate& other) const {
    return fn == other.fn && column == other.column;
  }
};

/// Bucket code for one cube dimension in a result key.
/// >= 0 : index into the dimension's relevant-literal list
///  kDefaultBucket : a value outside the relevant set (InOrDefault default)
///  kAllBucket     : dimension rolled up (no restriction)
constexpr int16_t kDefaultBucket = -1;
constexpr int16_t kAllBucket = -2;

/// \brief Result of a cube query for a fixed dimension set.
///
/// Maps a bucket-code vector (one code per dimension, in dimension order) to
/// per-aggregate values. Implements the paper's InOrDefault reduction: only
/// the relevant literals get their own buckets; everything else collapses
/// into the default bucket, and kAllBucket entries provide rollups.
class CubeResult {
 public:
  struct KeyHasher {
    size_t operator()(const std::vector<int16_t>& key) const {
      size_t h = 1469598103934665603ULL;
      for (int16_t k : key) {
        h ^= static_cast<size_t>(static_cast<uint16_t>(k));
        h *= 1099511628211ULL;
      }
      return h;
    }
  };

  CubeResult(std::vector<ColumnRef> dims,
             std::vector<std::vector<Value>> literals,
             std::vector<CubeAggregate> aggregates)
      : dims_(std::move(dims)),
        literals_(std::move(literals)),
        aggregates_(std::move(aggregates)) {
    literal_index_.resize(literals_.size());
    for (size_t d = 0; d < literals_.size(); ++d) {
      for (size_t i = 0; i < literals_[d].size(); ++i) {
        literal_index_[d].emplace(literals_[d][i],
                                  static_cast<int16_t>(i));
      }
    }
  }

  const std::vector<ColumnRef>& dims() const { return dims_; }
  const std::vector<std::vector<Value>>& literals() const { return literals_; }
  const std::vector<CubeAggregate>& aggregates() const { return aggregates_; }

  /// Index of an aggregate in this result, or -1.
  int AggregateIndex(const CubeAggregate& agg) const;

  /// Looks up the value of aggregate `agg_idx` for a bucket-code key.
  /// Missing cells mean "no rows matched" and yield nullopt; for Count this
  /// is reported as 0 by the engine, not here.
  std::optional<double> Lookup(const std::vector<int16_t>& key,
                               size_t agg_idx) const;

  /// Bucket code of `v` on dimension `dim`: literal index or kDefaultBucket.
  int16_t BucketOf(size_t dim, const Value& v) const;

  void Set(const std::vector<int16_t>& key, size_t agg_idx, double value);

  size_t num_cells() const { return cells_.size(); }

 private:
  std::vector<ColumnRef> dims_;
  std::vector<std::vector<Value>> literals_;
  std::vector<CubeAggregate> aggregates_;
  // Per-dimension literal -> bucket index (hash lookup for large sets).
  std::vector<std::unordered_map<Value, int16_t, ValueHasher>> literal_index_;
  std::unordered_map<std::vector<int16_t>, std::vector<std::optional<double>>,
                     KeyHasher>
      cells_;
};

/// \brief Executes one merged cube query (§6.2).
///
/// Computes every aggregate in `aggregates` for every combination of bucket
/// codes over `dims` — including rollups (kAllBucket) for each dimension
/// subset — in a single scan of the joined relation.
///
/// When `governor` is non-null, the scan charges rows in amortized blocks
/// and every newly materialized group charges the cube-group budget; a
/// tripped limit aborts the cube with the governor's Status (nothing is
/// returned, so callers never cache a partial cube).
Result<std::shared_ptr<CubeResult>> ExecuteCube(
    const Database& db, const std::vector<ColumnRef>& dims,
    const std::vector<std::vector<Value>>& relevant_literals,
    const std::vector<CubeAggregate>& aggregates, ScanStats* stats = nullptr,
    const ResourceGovernor* governor = nullptr);

/// \brief Materializes into a pre-built (empty) CubeResult shell.
///
/// `result` must have been constructed with the cube's dims/literals/
/// aggregates and carry no cells yet. This split lets a planner build and
/// publish shells serially (e.g. as shared cache entries) and fill them from
/// worker threads — each shell is written by exactly one worker, readers
/// wait at the fold barrier. Charges go through a local governor shard, so
/// concurrent cubes under one governor are safe. On error the shell's cells
/// are left untouched (possibly empty) and the caller must discard it.
Status ExecuteCubeInto(const Database& db, CubeResult& result,
                       ScanStats* stats = nullptr,
                       const ResourceGovernor* governor = nullptr);

}  // namespace db
}  // namespace aggchecker
