#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/aggregate.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/joined_relation.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace aggchecker {

class ThreadPool;

namespace db {

class RelationCache;

/// \brief One aggregate computed by a cube query: a base aggregation
/// function applied to a column (or "*" for Count).
///
/// Only the five base functions are valid here; ratio aggregates are derived
/// from Count lookups by the evaluation engine.
struct CubeAggregate {
  AggFn fn = AggFn::kCount;
  ColumnRef column;  ///< empty column name = "*"

  bool is_star() const { return column.column.empty(); }
  std::string Key() const {
    return std::string(AggFnName(fn)) + "(" +
           (is_star() ? "*" : column.ToString()) + ")";
  }
  bool operator==(const CubeAggregate& other) const {
    return fn == other.fn && column == other.column;
  }
};

/// \brief Replayable record of the governor work one completed cube
/// execution performed (DESIGN.md §16).
///
/// A cached CubeResult that survives into a later governor run must charge
/// that run the same totals a cold rebuild would, or warm and cold runs
/// would diverge under a budget. The totals are fully derivable from these
/// three counts plus the cube's shape (dimension count, aggregate count)
/// and the modeled per-combo/per-group constants — see ReplayCubeCharges.
struct CubeCharges {
  uint64_t rows = 0;    ///< relation rows the scan charged
  uint64_t combos = 0;  ///< distinct bucket combinations materialized
  uint64_t groups = 0;  ///< cube groups materialized
  /// ResourceGovernor::run_id of the run these charges were last accounted
  /// to (at execution or by replay); 0 = never charged under a governor.
  uint64_t charged_run = 0;
};

/// Bucket code for one cube dimension in a result key.
/// >= 0 : index into the dimension's relevant-literal list
///  kDefaultBucket : a value outside the relevant set (InOrDefault default)
///  kAllBucket     : dimension rolled up (no restriction)
constexpr int16_t kDefaultBucket = -1;
constexpr int16_t kAllBucket = -2;

/// \brief Result of a cube query for a fixed dimension set.
///
/// Maps a bucket-code key (one code per dimension, in dimension order) to
/// per-aggregate values. Implements the paper's InOrDefault reduction: only
/// the relevant literals get their own buckets; everything else collapses
/// into the default bucket, and kAllBucket entries provide rollups.
///
/// Keys are stored packed: 16 bits per dimension (bucket code + 3, so
/// kAllBucket/kDefaultBucket pack as 1/2), most-significant dimension first.
/// The same packing is computed once per row inside the cube scan, so both
/// the executor and `AnswerFromCube` look cells up by a single integer hash
/// instead of hashing a heap-allocated `std::vector<int16_t>`.
class CubeResult {
 public:
  /// Dimension counts beyond 4 never arise in practice (a cube's dimensions
  /// are a claim batch's predicate columns; nG <= max predicates + 1 = 4).
  /// The executor rejects higher counts rather than overflow the packing.
  static constexpr size_t kMaxDims = 4;

  /// Packs `d` bucket codes into the canonical cell key.
  static uint64_t PackKey(const int16_t* buckets, size_t d) {
    uint64_t key = 0;
    for (size_t i = 0; i < d; ++i) {
      key = (key << 16) |
            static_cast<uint16_t>(static_cast<int32_t>(buckets[i]) + 3);
    }
    return key;
  }
  static uint64_t PackKey(const std::vector<int16_t>& buckets) {
    return PackKey(buckets.data(), buckets.size());
  }

  CubeResult(std::vector<ColumnRef> dims,
             std::vector<std::vector<Value>> literals,
             std::vector<CubeAggregate> aggregates)
      : dims_(std::move(dims)),
        literals_(std::move(literals)),
        aggregates_(std::move(aggregates)) {
    literal_index_.resize(literals_.size());
    for (size_t d = 0; d < literals_.size(); ++d) {
      for (size_t i = 0; i < literals_[d].size(); ++i) {
        literal_index_[d].emplace(literals_[d][i],
                                  static_cast<int16_t>(i));
      }
    }
  }

  const std::vector<ColumnRef>& dims() const { return dims_; }
  const std::vector<std::vector<Value>>& literals() const { return literals_; }
  const std::vector<CubeAggregate>& aggregates() const { return aggregates_; }

  /// Index of an aggregate in this result, or -1.
  int AggregateIndex(const CubeAggregate& agg) const;

  /// Looks up the value of aggregate `agg_idx` for a bucket-code key.
  /// Missing cells mean "no rows matched" and yield nullopt; for Count this
  /// is reported as 0 by the engine, not here.
  std::optional<double> Lookup(const std::vector<int16_t>& key,
                               size_t agg_idx) const {
    return LookupPacked(PackKey(key), agg_idx);
  }

  /// Lookup by pre-packed key (see PackKey) — the hot path.
  std::optional<double> LookupPacked(uint64_t key, size_t agg_idx) const;

  /// Bucket code of `v` on dimension `dim`: literal index or kDefaultBucket.
  int16_t BucketOf(size_t dim, const Value& v) const;

  void Set(const std::vector<int16_t>& key, size_t agg_idx, double value) {
    SetPacked(PackKey(key), agg_idx, value);
  }
  void SetPacked(uint64_t key, size_t agg_idx, double value);

  size_t num_cells() const { return cells_.size(); }

  /// \brief Slice liveness mask for probe pruning (DESIGN.md §17).
  ///
  /// A "slice" is one aggregate's column of cells. When the probe stage
  /// decides every query reading a slice before evaluation, the execution
  /// may skip that slice's aggregation kernel and cell writes — but the
  /// cube keeps its FULL aggregate list, so bucket combos, group keys,
  /// and every modeled governor charge (group bytes scale with
  /// `aggregates_.size()`, not the live count) are byte-identical to an
  /// unpruned run. An empty mask (the default) means all slices are live.
  /// Non-live slices simply have no cells; LookupPacked yields nullopt.
  bool slice_live(size_t agg_idx) const {
    return live_.empty() || live_[agg_idx] != 0;
  }
  bool all_slices_live() const { return live_.empty(); }

  /// Installs the mask (size must equal aggregates().size(), or empty for
  /// all-live). Only valid before execution fills the cube.
  void SetSliceLiveness(std::vector<uint8_t> live) { live_ = std::move(live); }

  /// Upgrades one slice to live. Only meaningful before execution (a
  /// non-live slice of an executed cube has no cells to resurrect; use
  /// AdoptSlice for that).
  void MarkSliceLive(size_t agg_idx) {
    if (!live_.empty()) live_[agg_idx] = 1;
  }

  /// Copies aggregate slice `agg_idx` from `src` — a cube executed over the
  /// same dims/literals/aggregates with that slice live — into this result
  /// and marks it live here. Backfills a cached cube whose slice was
  /// skipped, without re-executing (or re-charging) the cached cube itself.
  void AdoptSlice(const CubeResult& src, size_t agg_idx);

  /// Charge record of the execution that filled this result (written by
  /// CubeExecution::Finish, stamped/replayed by the cache layer). Mutable
  /// bookkeeping about *how* the result was computed, not part of the
  /// result value — excluded from any equality/fingerprint notion.
  CubeCharges charges;

 private:
  std::vector<ColumnRef> dims_;
  std::vector<std::vector<Value>> literals_;
  std::vector<CubeAggregate> aggregates_;
  // Per-dimension literal -> bucket index (hash lookup for large sets).
  std::vector<std::unordered_map<Value, int16_t, ValueHasher>> literal_index_;
  std::unordered_map<uint64_t, std::vector<std::optional<double>>> cells_;
  /// Per-aggregate liveness; empty = all live. Execution bookkeeping like
  /// `charges` — not part of the result value for equality purposes.
  std::vector<uint8_t> live_;
};

/// How ExecuteCubeInto materializes a cube.
enum class CubeExecMode {
  /// Three-pass combo-partitioned pipeline over flat typed column views
  /// (the default): (1) map each row to a dense bucket-combination id,
  /// block-parallel with a deterministic fold; (2) typed per-aggregate
  /// kernels over primitive arrays; (3) distribute combo accumulators into
  /// the 2^d groups. Produces results bit-identical to the oracle.
  kVectorized = 0,
  /// Row-at-a-time reference path: every row fans out to its 2^d groups
  /// through boxed `Value`s and `Aggregator`s. Kept as the semantics oracle
  /// for differential tests and as the perf-smoke baseline.
  kScalarOracle,
};

const char* CubeExecModeName(CubeExecMode mode);

/// Execution options for one cube materialization.
struct CubeExecOptions {
  CubeExecMode mode = CubeExecMode::kVectorized;
  /// Optional pool for the vectorized combo-assignment pass (pass 1), which
  /// parallelizes over fixed row blocks with a deterministic block-order
  /// fold. The caller must not already be inside a region of this pool.
  /// Ignored by the scalar oracle. nullptr = serial. (The EvalEngine does
  /// not use this — it schedules (job, block) morsels itself; this knob
  /// serves standalone ExecuteCubeInto callers.)
  ThreadPool* pool = nullptr;
  /// Optional shared relation cache: the cube's joined relation is acquired
  /// through it (built once per distinct table set, memory charged once per
  /// governor run) instead of being rebuilt per cube. nullptr = build a
  /// private join per call, the pre-cache reference behavior.
  RelationCache* relation_cache = nullptr;
};

/// \brief One cube materialization, split into schedulable phases.
///
/// The phase split is what makes morsel-driven batch scheduling possible:
/// the engine Prepares every cube job (validation, relation acquisition,
/// column binding, block sizing), then drains one global queue of
/// (job, row-block) morsels on its pool via ScanBlock, then Finishes each
/// job (the deterministic serial block-order fold plus aggregation
/// kernels). Lifecycle: Prepare once; on OK, ScanBlock for every block in
/// [0, num_blocks()) — concurrently if desired, each block exactly once —
/// then Finish once. ScanBlock calls of one execution may run concurrently
/// with each other and with any phase of other executions; they share only
/// the immutable relation/database and the governor's atomics.
///
/// The vectorized mode scans blocks of ResourceGovernor::kCheckIntervalRows
/// rows; the scalar oracle is inherently sequential and exposes a single
/// block. Results are bit-identical across modes, thread counts, and
/// block interleavings (the fold replays block order).
class CubeExecution {
 public:
  CubeExecution() = default;

  /// Validates the shell, acquires (or builds) the joined relation —
  /// charging its modeled bytes per the relation-cache contract — binds
  /// dimension/aggregate columns, and sizes the block range. On error the
  /// execution must be discarded. Join-layer counters fold into `stats`.
  Status Prepare(const Database& db, CubeResult* result, ScanStats* stats,
                 const ResourceGovernor* governor,
                 const CubeExecOptions& options);

  /// Number of row-block morsels to scan. May be zero (empty relation).
  size_t num_blocks() const { return num_blocks_; }

  /// Scans one row block. Thread-safe across distinct blocks.
  Status ScanBlock(size_t block);

  /// Serial epilogue: deterministic block-order combo fold, aggregation
  /// kernels, result cells, scan stats. Call once, after every ScanBlock
  /// returned OK.
  Status Finish();

 private:
  /// Per-dimension fast access: base-column dictionary codes plus a
  /// code -> bucket translation table, so scan loops never hash values.
  struct DimAccess {
    const std::vector<int32_t>* codes = nullptr;
    std::vector<int16_t> code_to_bucket;
  };

  Status RunScalarOracle();
  Status ScanVectorizedBlock(size_t block);
  Status FinishVectorized();

  CubeResult* result_ = nullptr;
  ScanStats* stats_ = nullptr;
  const ResourceGovernor* governor_ = nullptr;
  CubeExecMode mode_ = CubeExecMode::kVectorized;
  std::shared_ptr<const JoinedRelation> relation_;
  std::vector<JoinedRelation::Binding> dim_bindings_;
  /// One per aggregate; the binding of a star aggregate stays default
  /// (never dereferenced — star aggregates read no column).
  std::vector<JoinedRelation::Binding> agg_bindings_;
  std::vector<DimAccess> access_;
  size_t num_blocks_ = 0;
  // Vectorized pass-1 state: per-row block-local combo ids plus each
  // block's packed keys in local first-appearance order; Finish renumbers
  // them globally in block order.
  std::vector<uint32_t> row_combo_;
  std::vector<std::vector<uint64_t>> block_first_keys_;
};

/// \brief Executes one merged cube query (§6.2).
///
/// Computes every aggregate in `aggregates` for every combination of bucket
/// codes over `dims` — including rollups (kAllBucket) for each dimension
/// subset — in a single scan of the joined relation.
///
/// When `governor` is non-null, the scan charges rows in amortized blocks,
/// every newly materialized group charges the cube-group budget, and the
/// modeled bytes of join/combo/group state charge the memory budget; a
/// tripped limit aborts the cube with the governor's Status (nothing is
/// returned, so callers never cache a partial cube).
Result<std::shared_ptr<CubeResult>> ExecuteCube(
    const Database& db, const std::vector<ColumnRef>& dims,
    const std::vector<std::vector<Value>>& relevant_literals,
    const std::vector<CubeAggregate>& aggregates, ScanStats* stats = nullptr,
    const ResourceGovernor* governor = nullptr,
    const CubeExecOptions& options = {});

/// \brief Materializes into a pre-built (empty) CubeResult shell.
///
/// `result` must have been constructed with the cube's dims/literals/
/// aggregates and carry no cells yet. This split lets a planner build and
/// publish shells serially (e.g. as shared cache entries) and fill them from
/// worker threads — each shell is written by exactly one worker, readers
/// wait at the fold barrier. Charges go through a local governor shard, so
/// concurrent cubes under one governor are safe. On error the shell's cells
/// are left untouched (possibly empty) and the caller must discard it.
///
/// Both execution modes produce bit-identical cells (the vectorized kernels
/// replay the oracle's exact floating-point operation order per group) and
/// charge the same governor totals; the differential property tests pin
/// this down.
Status ExecuteCubeInto(const Database& db, CubeResult& result,
                       ScanStats* stats = nullptr,
                       const ResourceGovernor* governor = nullptr,
                       const CubeExecOptions& options = {});

/// \brief Re-charges a cached cube's recorded work (`cube.charges`) to
/// `shard`'s governor.
///
/// Replays the exact totals a cold execution of this cube would charge —
/// rows scanned, combo state bytes, cube groups, group accumulator bytes,
/// recomputed from the recorded counts and the modeled constants — so a
/// warm cache hit under a fresh governor run accounts identically to a
/// cold rebuild. Returns the stop Status if a limit trips mid-replay; the
/// caller must then discard the cached entry ("does not fit this budget")
/// and fall back to cold execution, which aborts under the now-tripped
/// governor exactly as an uncached run would. Does not stamp
/// `charges.charged_run`; the caller stamps it on success.
Status ReplayCubeCharges(const CubeResult& cube,
                         ResourceGovernor::Shard& shard);

}  // namespace db
}  // namespace aggchecker
