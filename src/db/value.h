#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace aggchecker {
namespace db {

/// Column / value types supported by the engine.
enum class ValueType {
  kNull = 0,
  kLong,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// \brief A single cell value: NULL, 64-bit integer, double, or string.
///
/// Values are immutable once constructed. Comparison between numeric types
/// coerces to double; strings compare lexicographically; NULL compares equal
/// only to NULL and sorts before everything else.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kLong;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }
  bool is_numeric() const {
    return type() == ValueType::kLong || type() == ValueType::kDouble;
  }

  int64_t AsLong() const { return std::get<int64_t>(data_); }
  double AsDoubleExact() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric coercion: long/double -> double. Returns 0.0 for non-numeric.
  double ToDouble() const;

  /// Rendering for SQL literals, cache keys, and display.
  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Parses a CSV cell into the most specific value type: empty -> NULL,
/// integral -> long, numeric -> double, else string. Commas in numbers
/// ("1,200") and leading/trailing space are tolerated.
Value ParseCell(const std::string& raw);

}  // namespace db
}  // namespace aggchecker
