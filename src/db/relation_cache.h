#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/joined_relation.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief Thread-safe, per-Database cache of materialized JoinedRelations,
/// keyed by normalized table set.
///
/// The cube backend, the naive executor, and the result cache all scan the
/// same handful of joined relations; before this cache each of them
/// re-materialized the join per query / per cube job, which dominated the
/// parallel path (every worker redoing the same hash join) and charged the
/// governor's memory budget once per rebuild. Acquire returns one shared
/// immutable relation per distinct table set, built exactly once and shared
/// across batches, claims, and EM iterations.
///
/// Governor contract:
///  - The join's modeled bytes (JoinedRelation::ApproxBytes) charge the
///    shard's governor at most once per *run* (ResourceGovernor::run_id),
///    not once per rebuild — so charge totals are identical for any thread
///    count and for warm vs. cold caches.
///  - If the charge trips the memory budget, the entry is withdrawn from
///    the cache (the join "does not fit" this budget) and Acquire returns
///    the stop Status; callers degrade to partial verdicts exactly as they
///    would for an uncached build.
///  - An already-tripped governor short-circuits Acquire without building.
///
/// Data-version contract (DESIGN.md §16): each entry records the data
/// version of every base table its join read (intermediate join-path tables
/// included) at build time. An Acquire that finds any member table at a
/// newer version withdraws the stale entry and rebuilds — charging the
/// rebuild exactly as a cold build would — so a table bump invalidates
/// precisely the relations that read it and nothing else.
///
/// Concurrency: the map mutex only guards entry lookup/insertion; each
/// entry's own mutex serializes the one-time build and the per-run charge,
/// so concurrent acquirers of the *same* relation block on the builder
/// while acquirers of other relations proceed. Build failures are never
/// cached (the entry is removed; a later Acquire retries), but waiters
/// already queued on the failing entry observe the recorded failure Status
/// rather than each re-running the failing build.
class RelationCache {
 public:
  /// Per-call outcome, surfaced into ScanStats/EvalStats join counters.
  struct AcquireInfo {
    bool built = false;          ///< this call materialized the join
    bool hit = false;            ///< served an already-built relation
    double build_seconds = 0.0;  ///< wall time of the build, if any
  };

  /// Canonical cache key of a table set: sorted lower-cased names joined by
  /// ','. Matches EvalEngine::RelationKey so cube grouping and relation
  /// caching agree on what "the same relation" means.
  static std::string KeyOf(const std::vector<std::string>& tables);

  /// Returns the cached (or newly built) join of `tables` over `db`,
  /// charging `shard`'s governor per the contract above. Thread-safe.
  Result<std::shared_ptr<const JoinedRelation>> Acquire(
      const Database& db, const std::vector<std::string>& tables,
      ResourceGovernor::Shard& shard, AcquireInfo* info = nullptr);

  /// Drops every cached relation (relations still referenced by in-flight
  /// readers stay alive through their shared_ptrs). Benches call this
  /// between configurations so each measures a cold start.
  void Clear();

  /// Number of cached relations.
  size_t size() const;

 private:
  struct Entry {
    std::mutex mu;
    std::shared_ptr<const JoinedRelation> relation;
    Status build_status = Status::OK();
    bool build_attempted = false;
    /// run_id of the governor run this relation's bytes were last charged
    /// to; 0 = never charged.
    uint64_t charged_run = 0;
    /// (lowercased table, data version) for every base table the join read,
    /// recorded at build time; a mismatch with the database's current
    /// versions marks the entry stale.
    std::vector<std::pair<std::string, uint64_t>> table_versions;
  };

  /// Removes `entry` from the map if it is still the one registered under
  /// `key` (a concurrent Clear/rebuild may have replaced it).
  void Withdraw(const std::string& key, const std::shared_ptr<Entry>& entry);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
};

/// Acquires `tables`' relation through `cache` when non-null; otherwise
/// builds a private copy and charges its modeled bytes to `shard` — the
/// pre-cache reference path, kept so differential tests can compare cache
/// on/off bit-for-bit. `info` reports built/hit/build-time either way.
Result<std::shared_ptr<const JoinedRelation>> AcquireOrBuildRelation(
    RelationCache* cache, const Database& db,
    const std::vector<std::string>& tables, ResourceGovernor::Shard& shard,
    RelationCache::AcquireInfo* info = nullptr);

}  // namespace db
}  // namespace aggchecker
