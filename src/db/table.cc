#include "db/table.h"

#include <cmath>

#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {

/// Infers the most specific common type of a column's cells.
ValueType InferColumnType(const csv::CsvData& data, size_t col) {
  bool all_long = true;
  bool all_numeric = true;
  bool any_value = false;
  for (const auto& row : data.rows) {
    Value v = ParseCell(row[col]);
    if (v.is_null()) continue;
    any_value = true;
    switch (v.type()) {
      case ValueType::kLong:
        break;
      case ValueType::kDouble:
        all_long = false;
        break;
      default:
        all_long = false;
        all_numeric = false;
        break;
    }
    if (!all_numeric) break;
  }
  if (!any_value) return ValueType::kString;
  if (all_long) return ValueType::kLong;
  if (all_numeric) return ValueType::kDouble;
  return ValueType::kString;
}

/// Coerces a parsed cell to the column's declared type.
Value CoerceTo(Value v, ValueType type) {
  if (v.is_null()) return v;
  switch (type) {
    case ValueType::kLong:
      return v;  // inference guarantees it is already LONG
    case ValueType::kDouble:
      if (v.type() == ValueType::kLong) {
        return Value(static_cast<double>(v.AsLong()));
      }
      return v;
    case ValueType::kString:
      if (v.type() != ValueType::kString) return Value(v.ToString());
      return v;
    case ValueType::kNull:
      return Value::Null();
  }
  return v;
}

/// Ingestion-time coercion: stricter than CoerceTo (which trusts FromCsv's
/// inference) — a value that cannot represent itself in the column's declared
/// type is an error, not a silent reinterpretation.
Result<Value> CoerceForIngest(Value v, ValueType type) {
  if (v.is_null()) return v;
  switch (type) {
    case ValueType::kLong:
      if (v.type() != ValueType::kLong) {
        return Status::InvalidArgument(
            "cannot ingest non-long value into LONG column");
      }
      return v;
    case ValueType::kDouble:
      if (v.type() == ValueType::kLong) {
        return Value(static_cast<double>(v.AsLong()));
      }
      if (v.type() != ValueType::kDouble) {
        return Status::InvalidArgument(
            "cannot ingest non-numeric value into DOUBLE column");
      }
      return v;
    case ValueType::kString:
      if (v.type() != ValueType::kString) return Value(v.ToString());
      return v;
    case ValueType::kNull:
      return Value::Null();
  }
  return v;
}

}  // namespace

Result<Table> Table::FromCsv(std::string name, const csv::CsvData& data) {
  if (data.header.empty()) {
    return Status::InvalidArgument("CSV has no header");
  }
  Table table(std::move(name));
  std::vector<ValueType> types;
  types.reserve(data.header.size());
  for (size_t c = 0; c < data.header.size(); ++c) {
    ValueType type = InferColumnType(data, c);
    types.push_back(type);
    std::string col_name = strings::Trim(data.header[c]);
    if (col_name.empty()) col_name = "col" + std::to_string(c);
    Status s = table.AddColumn(std::move(col_name), type);
    if (!s.ok()) return s;
  }
  for (const auto& raw_row : data.rows) {
    std::vector<Value> row;
    row.reserve(raw_row.size());
    for (size_t c = 0; c < raw_row.size(); ++c) {
      row.push_back(CoerceTo(ParseCell(raw_row[c]), types[c]));
    }
    Status s = table.AddRow(std::move(row));
    if (!s.ok()) return s;
  }
  return table;
}

Result<Table> Table::FromSnapshotParts(
    std::string name, std::vector<std::unique_ptr<Column>> columns,
    size_t num_rows, uint64_t data_version) {
  Table table(std::move(name));
  table.data_version_ = data_version;
  for (auto& column : columns) {
    if (column == nullptr || column->size() != num_rows) {
      return Status::InvalidArgument(strings::Format(
          "snapshot table %s: column size disagrees with row count %zu",
          table.name_.c_str(), num_rows));
    }
    if (table.ColumnIndex(column->name()) >= 0) {
      return Status::InvalidArgument("duplicate column: " + column->name());
    }
    table.columns_.push_back(std::move(column));
  }
  table.num_rows_ = num_rows;
  return table;
}

int Table::ColumnIndex(const std::string& name) const {
  std::string lower = strings::ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (strings::ToLower(columns_[i]->name()) == lower) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const Column* Table::FindColumn(const std::string& name) const {
  int idx = ColumnIndex(name);
  return idx < 0 ? nullptr : columns_[static_cast<size_t>(idx)].get();
}

Status Table::AddColumn(std::string column_name, ValueType type) {
  if (num_rows_ > 0) {
    return Status::InvalidArgument("cannot add column after rows");
  }
  if (ColumnIndex(column_name) >= 0) {
    return Status::InvalidArgument("duplicate column: " + column_name);
  }
  columns_.push_back(std::make_unique<Column>(std::move(column_name), type));
  return Status::OK();
}

Status Table::AddRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(strings::Format(
        "row has %zu values, table has %zu columns", row.size(),
        columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i]->Append(std::move(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRows(std::vector<std::vector<Value>> rows) {
  // Fires before any mutation: a faulted ingest leaves the table at its old
  // version with every version-keyed cache still valid.
  AGG_FAULT_POINT("data.ingest.append");
  // Validate the whole batch first so a bad row cannot leave the table
  // half-appended at a bumped version.
  for (auto& row : rows) {
    if (row.size() != columns_.size()) {
      return Status::InvalidArgument(strings::Format(
          "row has %zu values, table has %zu columns", row.size(),
          columns_.size()));
    }
    for (size_t i = 0; i < row.size(); ++i) {
      auto cell = CoerceForIngest(std::move(row[i]), columns_[i]->type());
      if (!cell.ok()) return cell.status();
      row[i] = *std::move(cell);
    }
  }
  if (rows.empty()) return Status::OK();
  for (auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      columns_[i]->Append(std::move(row[i]));
    }
    ++num_rows_;
  }
  ++data_version_;
  return Status::OK();
}

Status Table::UpdateCell(size_t row, const std::string& column_name,
                         Value v) {
  if (row >= num_rows_) {
    return Status::InvalidArgument(strings::Format(
        "row %zu out of range (table has %zu rows)", row, num_rows_));
  }
  int idx = ColumnIndex(column_name);
  if (idx < 0) return Status::NotFound("unknown column: " + column_name);
  Column& column = *columns_[static_cast<size_t>(idx)];
  auto cell = CoerceForIngest(std::move(v), column.type());
  if (!cell.ok()) return cell.status();
  column.Update(row, *std::move(cell));
  ++data_version_;
  return Status::OK();
}

}  // namespace db
}  // namespace aggchecker
