#include "db/database.h"

#include <algorithm>
#include <deque>
#include <set>

#include "db/relation_cache.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

Database::Database(std::string name)
    : name_(std::move(name)),
      relation_cache_(std::make_unique<RelationCache>()) {}

// Out of line so RelationCache is a complete type where unique_ptr needs it.
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

Status Database::AddTable(Table table) {
  std::string key = strings::ToLower(table.name());
  if (table_index_.count(key) > 0) {
    return Status::InvalidArgument("duplicate table: " + table.name());
  }
  table_index_[key] = static_cast<int>(tables_.size());
  tables_.push_back(std::make_unique<Table>(std::move(table)));
  return Status::OK();
}

int Database::TableIndex(const std::string& name) const {
  auto it = table_index_.find(strings::ToLower(name));
  return it == table_index_.end() ? -1 : it->second;
}

const Table* Database::FindTable(const std::string& name) const {
  int idx = TableIndex(name);
  return idx < 0 ? nullptr : tables_[static_cast<size_t>(idx)].get();
}

const Column* Database::FindColumn(const ColumnRef& ref) const {
  const Table* table = FindTable(ref.table);
  return table == nullptr ? nullptr : table->FindColumn(ref.column);
}

Status Database::AppendRows(const std::string& table,
                            std::vector<std::vector<Value>> rows) {
  int idx = TableIndex(table);
  if (idx < 0) return Status::NotFound("unknown table: " + table);
  return tables_[static_cast<size_t>(idx)]->AppendRows(std::move(rows));
}

Status Database::UpdateCell(const std::string& table, size_t row,
                            const std::string& column, Value v) {
  int idx = TableIndex(table);
  if (idx < 0) return Status::NotFound("unknown table: " + table);
  return tables_[static_cast<size_t>(idx)]->UpdateCell(row, column,
                                                       std::move(v));
}

uint64_t Database::TableVersion(const std::string& table) const {
  int idx = TableIndex(table);
  return idx < 0 ? 0 : tables_[static_cast<size_t>(idx)]->version();
}

std::vector<std::pair<std::string, uint64_t>> Database::VersionVector()
    const {
  std::vector<std::pair<std::string, uint64_t>> versions;
  versions.reserve(tables_.size());
  for (const auto& t : tables_) {
    versions.emplace_back(strings::ToLower(t->name()), t->version());
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

bool Database::WouldCreateCycle(const std::string& a,
                                const std::string& b) const {
  // The join graph (tables as nodes, FKs as undirected edges) must stay a
  // forest: adding edge a-b creates a cycle iff b is already reachable from a.
  std::string la = strings::ToLower(a);
  std::string lb = strings::ToLower(b);
  if (la == lb) return true;  // self edge
  std::deque<std::string> frontier{la};
  std::set<std::string> visited{la};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    for (const ForeignKey& fk : foreign_keys_) {
      std::string u = strings::ToLower(fk.from.table);
      std::string v = strings::ToLower(fk.to.table);
      std::string next;
      if (u == cur) {
        next = v;
      } else if (v == cur) {
        next = u;
      } else {
        continue;
      }
      if (next == lb) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

Status Database::AddForeignKey(const ColumnRef& from, const ColumnRef& to) {
  if (FindColumn(from) == nullptr) {
    return Status::InvalidArgument("unknown FK column: " + from.ToString());
  }
  if (FindColumn(to) == nullptr) {
    return Status::InvalidArgument("unknown PK column: " + to.ToString());
  }
  if (WouldCreateCycle(from.table, to.table)) {
    return Status::InvalidArgument(
        strings::Format("foreign key %s -> %s would create a cycle",
                        from.ToString().c_str(), to.ToString().c_str()));
  }
  foreign_keys_.push_back(ForeignKey{from, to});
  return Status::OK();
}

Result<JoinPlanResult> Database::JoinPlan(
    const std::vector<std::string>& tables) const {
  if (tables.empty()) return Status::InvalidArgument("no tables requested");
  std::set<std::string> wanted;
  for (const auto& t : tables) {
    if (TableIndex(t) < 0) return Status::NotFound("unknown table: " + t);
    wanted.insert(strings::ToLower(t));
  }
  const std::string root = *wanted.begin();
  wanted.erase(wanted.begin());

  // BFS from the root through the FK forest, recording the parent edge of
  // each visited table. Since the graph is a forest, paths are unique.
  struct ParentEdge {
    std::string parent;
    ColumnRef parent_col;
    ColumnRef child_col;
  };
  std::unordered_map<std::string, ParentEdge> parents;
  std::deque<std::string> frontier{root};
  std::set<std::string> visited{root};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    for (const ForeignKey& fk : foreign_keys_) {
      std::string u = strings::ToLower(fk.from.table);
      std::string v = strings::ToLower(fk.to.table);
      std::string next;
      ColumnRef parent_col, child_col;
      if (u == cur && visited.count(v) == 0) {
        next = v;
        parent_col = fk.from;
        child_col = fk.to;
      } else if (v == cur && visited.count(u) == 0) {
        next = u;
        parent_col = fk.to;
        child_col = fk.from;
      } else {
        continue;
      }
      visited.insert(next);
      parents[next] = ParentEdge{cur, parent_col, child_col};
      frontier.push_back(next);
    }
  }

  // Union the root-to-target paths; only tables on those paths are joined.
  std::vector<std::string> join_order;  // child tables, parent-before-child
  std::set<std::string> on_plan{root};
  for (const std::string& target : wanted) {
    if (visited.count(target) == 0) {
      return Status::NotFound("table not reachable via join graph: " + target);
    }
    std::vector<std::string> path;
    for (std::string cur = target; cur != root;
         cur = parents.at(cur).parent) {
      path.push_back(cur);
    }
    // Reverse so parents come first; skip tables already planned.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (on_plan.insert(*it).second) join_order.push_back(*it);
    }
  }

  JoinPlanResult plan;
  plan.root = FindTable(root)->name();
  plan.steps.reserve(join_order.size());
  for (const std::string& t : join_order) {
    const ParentEdge& e = parents.at(t);
    const Table* table = FindTable(t);
    plan.steps.push_back(JoinStep{table->name(), e.parent_col, e.child_col});
  }
  return plan;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_rows();
  return total;
}

size_t Database::TotalColumns() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t->num_columns();
  return total;
}

size_t Database::MaxDistinctValues() const {
  size_t max_card = 0;
  for (const auto& t : tables_) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      const Column& column = t->column(c);
      if (column.is_numeric()) continue;  // measures are not cube dimensions
      max_card = std::max(max_card, column.DistinctValues().size());
    }
  }
  return max_card;
}

}  // namespace db
}  // namespace aggchecker
