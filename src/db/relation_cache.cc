#include "db/relation_cache.h"

#include <algorithm>

#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/timer.h"

namespace aggchecker {
namespace db {

std::string RelationCache::KeyOf(const std::vector<std::string>& tables) {
  std::vector<std::string> sorted;
  sorted.reserve(tables.size());
  for (const std::string& t : tables) sorted.push_back(strings::ToLower(t));
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key;
  for (const std::string& t : sorted) {
    key += t;
    key += ',';
  }
  return key;
}

Result<std::shared_ptr<const JoinedRelation>> RelationCache::Acquire(
    const Database& db, const std::vector<std::string>& tables,
    ResourceGovernor::Shard& shard, AcquireInfo* info) {
  // Cached-path-only fault point (AcquireOrBuildRelation's uncached build
  // bypasses it): models a poisoned cache entry; the ladder's fresh-join
  // rung is the rung that heals it.
  AGG_FAULT_POINT("relation.cache.acquire");
  const ResourceGovernor* governor = shard.governor();
  if (governor != nullptr) {
    Status trip = governor->TripStatus();
    if (!trip.ok()) return trip;  // budget spent before this acquire
  }

  const std::string key = KeyOf(tables);
  // Loop: an entry found stale (a member table's data version moved since
  // the build) is withdrawn and the lookup retried, which installs a fresh
  // entry and rebuilds under it — charging exactly as a cold build would.
  while (true) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto& slot = entries_[key];
      if (slot == nullptr) slot = std::make_shared<Entry>();
      entry = slot;
    }

    std::lock_guard<std::mutex> entry_lock(entry->mu);
    if (!entry->build_attempted) {
      entry->build_attempted = true;
      Timer timer;
      auto built = JoinedRelation::Build(db, tables);
      const double seconds = timer.ElapsedSeconds();
      if (info != nullptr) info->build_seconds = seconds;
      if (!built.ok()) {
        entry->build_status = built.status();
        Withdraw(key, entry);  // failures are never cached; retry later
        return built.status();
      }
      entry->relation =
          std::make_shared<const JoinedRelation>(std::move(*built));
      for (const std::string& t : entry->relation->tables()) {
        entry->table_versions.emplace_back(t, db.TableVersion(t));
      }
      if (info != nullptr) info->built = true;
    } else if (!entry->build_status.ok()) {
      return entry->build_status;
    } else {
      bool stale = false;
      for (const auto& [table, version] : entry->table_versions) {
        if (db.TableVersion(table) != version) {
          stale = true;
          break;
        }
      }
      if (stale) {
        Withdraw(key, entry);
        continue;  // rebuild under a fresh entry
      }
      if (info != nullptr) info->hit = true;
    }

    // Charge the join's modeled bytes once per governor run. The entry
    // mutex is held across build *and* charge, so of two concurrent
    // acquirers the second observes charged_run already stamped and
    // charges nothing.
    if (governor != nullptr && entry->charged_run != governor->run_id()) {
      const uint64_t bytes = entry->relation->ApproxBytes();
      if (bytes > 0) {
        Status mem = shard.ChargeMemoryBytes(bytes);
        if (!mem.ok()) {
          // Withdrawal: the join does not fit this run's budget, so it
          // must not linger as cached-but-unaccounted state. A later run
          // with a larger budget rebuilds and re-charges it.
          Withdraw(key, entry);
          return mem;
        }
      }
      entry->charged_run = governor->run_id();
    }
    return entry->relation;
  }
}

void RelationCache::Withdraw(const std::string& key,
                             const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == entry) entries_.erase(it);
}

void RelationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t RelationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Result<std::shared_ptr<const JoinedRelation>> AcquireOrBuildRelation(
    RelationCache* cache, const Database& db,
    const std::vector<std::string>& tables, ResourceGovernor::Shard& shard,
    RelationCache::AcquireInfo* info) {
  if (cache != nullptr) return cache->Acquire(db, tables, shard, info);
  Timer timer;
  auto built = JoinedRelation::Build(db, tables);
  if (info != nullptr) info->build_seconds = timer.ElapsedSeconds();
  if (!built.ok()) return built.status();
  if (info != nullptr) info->built = true;
  auto relation = std::make_shared<const JoinedRelation>(std::move(*built));
  Status mem = shard.ChargeMemoryBytes(relation->ApproxBytes());
  if (!mem.ok()) return mem;
  return relation;
}

}  // namespace db
}  // namespace aggchecker
