#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/aggregate.h"
#include "db/database.h"
#include "db/value.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief A unary equality predicate `column = value` (Def. 2).
struct Predicate {
  ColumnRef column;
  Value value;

  bool operator==(const Predicate& other) const {
    return column == other.column && value == other.value;
  }
  std::string ToString() const {
    return column.ToString() + " = '" + value.ToString() + "'";
  }
};

/// \brief A Simple Aggregate Query (Definition 2).
///
/// SELECT fn(agg_column) FROM <tables joined along PK-FK paths>
/// WHERE p1 AND p2 AND ...
///
/// An empty `agg_column.column` denotes the "*" all-column (only valid with
/// Count). For ConditionalProbability, `predicates[0]` is the condition and
/// the remaining predicates form the event (footnote 1 of the paper).
struct SimpleAggregateQuery {
  AggFn fn = AggFn::kCount;
  ColumnRef agg_column;  ///< empty column name = "*"
  std::vector<Predicate> predicates;

  bool is_star() const { return agg_column.column.empty(); }

  bool operator==(const SimpleAggregateQuery& other) const;

  /// Canonical key: predicates sorted; used for hashing, caching, and
  /// ground-truth comparison (two queries differing only in predicate order
  /// are the same query).
  std::string CanonicalKey() const;

  /// Parses a CanonicalKey back into a query (used by the corpus
  /// export/import round trip). Values are restored as strings or numbers
  /// by CSV-style type sniffing. Keys whose literals contain '|' or "='"
  /// are not representable and fail to parse.
  static Result<SimpleAggregateQuery> FromCanonicalKey(
      const std::string& key);

  /// Pretty SQL rendering for display and logs.
  std::string ToSql() const;

  /// All table names referenced by the aggregate or any predicate.
  std::vector<std::string> ReferencedTables() const;

  size_t Hash() const;
};

struct QueryHasher {
  size_t operator()(const SimpleAggregateQuery& q) const { return q.Hash(); }
};

}  // namespace db
}  // namespace aggchecker
