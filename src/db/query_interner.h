#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/query.h"

namespace aggchecker {
namespace db {

/// \brief Hash-consing store for query components and whole candidate
/// queries: columns, literal values, predicates, ordered predicate lists,
/// (function, column) aggregate slices, table sets, and dimension sets all
/// receive small dense integer ids, and a full Simple Aggregate Query is
/// identified by a packed 64-bit fingerprint (function | aggregation column
/// | predicate list — the table set is implied by the columns).
///
/// The point: candidate generation and cube planning used to rebuild and
/// compare strings (canonical keys, lower-cased column names, sorted table
/// lists) for every candidate on every EM iteration. With an interner the
/// translator ships integer query ids to the engine, equality is an integer
/// compare, grouping is integer hashing, and the SQL form is materialized
/// lazily — once per distinct query, for reporting and the executor
/// fallback paths.
///
/// Identity rules:
///  - Columns intern case-insensitively (the engine's grouping has always
///    lower-cased column keys); the first-seen spelling is kept for
///    materialization. All catalog-derived candidates share one spelling,
///    so encode -> materialize -> re-encode is the identity.
///  - Values intern by `Value::operator==` (numeric types coerce), matching
///    the literal dedup of the engine's plan phase.
///  - Predicate lists are ORDER-PRESERVING: ConditionalProbability treats
///    predicates[0] as the condition, so (A, B) and (B, A) are distinct
///    fingerprints. Order-insensitive grouping happens downstream via
///    dimension sets.
///
/// Not thread-safe: interning mutates shared tables. The engine and the
/// translator only intern from serial sections (batch assembly, plan
/// phase), per the engine's externally-single-threaded contract.
class QueryInterner {
 public:
  using Id = uint32_t;
  static constexpr Id kNone = 0xFFFFFFFFu;

  /// --- Component interning (all O(1) amortized) ---------------------
  Id InternColumn(const ColumnRef& column);
  Id InternValue(const Value& value);
  Id InternPredicate(const ColumnRef& column, const Value& value);
  /// Ordered predicate-id list (see identity rules above).
  Id InternPredList(const std::vector<Id>& pred_ids);
  /// (base aggregation function, column) pair — the unit the engine's cube
  /// result cache stores slices under.
  Id InternAggregate(AggFn fn, Id column_id);
  /// Canonical table set (sorted, lower-cased — RelationCache::KeyOf).
  Id InternTableSet(const std::vector<std::string>& tables);
  /// Ordered column-id list identifying a cube dimension set (callers pass
  /// the ids in the engine's canonical dimension order).
  Id InternDimSet(const std::vector<Id>& column_ids);

  /// --- Whole queries -------------------------------------------------
  /// Interns a candidate directly from its parts (the translator's path —
  /// no SimpleAggregateQuery is built). Materialization is deferred.
  Id InternCandidate(AggFn fn, Id agg_column_id, Id predlist_id);
  /// Interns a materialized query; consistent with InternCandidate (the
  /// same logical query yields the same id either way). The first
  /// materialization interned under a fingerprint is kept verbatim.
  Id InternQuery(const SimpleAggregateQuery& query);

  /// The packed 64-bit fingerprint of a query id:
  /// fn (8 bits) | aggregation column id (28 bits) | predicate list id
  /// (28 bits). Distinct candidates never collide (distinct parts yield
  /// distinct dense ids; the property test enumerates this).
  uint64_t fingerprint(Id query_id) const;

  /// The materialized query (built lazily, cached; stable reference).
  const SimpleAggregateQuery& Materialize(Id query_id);

  /// --- Accessors ------------------------------------------------------
  const ColumnRef& column(Id column_id) const { return columns_[column_id]; }
  const Value& value(Id value_id) const { return values_[value_id]; }
  struct PredicateParts {
    Id column = kNone;
    Id value = kNone;
  };
  const PredicateParts& predicate(Id pred_id) const {
    return predicates_[pred_id];
  }
  const std::vector<Id>& pred_list(Id predlist_id) const {
    return pred_lists_.list(predlist_id);
  }
  struct AggregateParts {
    AggFn fn = AggFn::kCount;
    Id column = kNone;
  };
  const AggregateParts& aggregate(Id agg_id) const {
    return aggregates_[agg_id];
  }
  /// Canonical relation key of a table-set id (RelationCache::KeyOf form).
  const std::string& relation_key(Id table_set_id) const {
    return table_sets_[table_set_id];
  }
  const std::vector<Id>& dim_set(Id dimset_id) const {
    return dim_sets_.list(dimset_id);
  }
  /// The ordered predicate-list id of a query (its raw predicates).
  Id query_pred_list(Id query_id) const {
    return queries_[query_id].predlist;
  }

  size_t num_columns() const { return columns_.size(); }
  size_t num_predicates() const { return predicates_.size(); }
  size_t num_queries() const { return queries_.size(); }

  /// --- Snapshot accessors ---------------------------------------------
  /// Component counts plus raw candidate parts, letting the snapshot
  /// writer walk every store in first-intern order. All ids are assigned
  /// densely in that order, so replaying the serialized components through
  /// the Intern* methods above reproduces every id exactly (the loader
  /// verifies this and treats any mismatch as corruption).
  size_t num_values() const { return values_.size(); }
  size_t num_pred_lists() const { return pred_lists_.size(); }
  size_t num_aggregates() const { return aggregates_.size(); }
  size_t num_table_sets() const { return table_sets_.size(); }
  size_t num_dim_sets() const { return dim_sets_.size(); }
  struct CandidateParts {
    AggFn fn = AggFn::kCount;
    Id agg_column = kNone;
    Id predlist = kNone;
  };
  CandidateParts candidate(Id query_id) const {
    const QueryRecord& q = queries_[query_id];
    return CandidateParts{q.fn, q.agg_column, q.predlist};
  }

 private:
  /// Hash-consed store of ordered small integer lists.
  class IdListInterner {
   public:
    Id Intern(const std::vector<Id>& ids);
    const std::vector<Id>& list(Id id) const { return lists_[id]; }
    size_t size() const { return lists_.size(); }

   private:
    struct ListHasher {
      size_t operator()(const std::vector<Id>& ids) const {
        size_t h = 1469598103934665603ull;
        for (Id id : ids) {
          h ^= id;
          h *= 1099511628211ull;
        }
        return h;
      }
    };
    std::unordered_map<std::vector<Id>, Id, ListHasher> index_;
    std::deque<std::vector<Id>> lists_;  ///< stable references
  };

  struct QueryRecord {
    AggFn fn = AggFn::kCount;
    Id agg_column = kNone;
    Id predlist = kNone;
    /// Lazily materialized query (or the verbatim first query interned via
    /// InternQuery). std::deque storage keeps references stable.
    std::optional<SimpleAggregateQuery> query;
  };

  std::unordered_map<std::string, Id> column_index_;  ///< lower-cased key
  std::deque<ColumnRef> columns_;                     ///< first-seen form

  std::unordered_map<Value, Id, ValueHasher> value_index_;
  std::deque<Value> values_;

  std::unordered_map<uint64_t, Id> predicate_index_;  ///< col<<32 | value
  std::deque<PredicateParts> predicates_;

  IdListInterner pred_lists_;
  IdListInterner dim_sets_;

  std::unordered_map<uint64_t, Id> aggregate_index_;  ///< fn<<32 | column
  std::deque<AggregateParts> aggregates_;

  std::unordered_map<std::string, Id> table_set_index_;
  std::deque<std::string> table_sets_;  ///< canonical relation keys

  std::unordered_map<uint64_t, Id> query_index_;  ///< packed fingerprint
  std::deque<QueryRecord> queries_;
};

}  // namespace db
}  // namespace aggchecker
