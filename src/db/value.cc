#include "db/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace aggchecker {
namespace db {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kLong:
      return "LONG";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kLong:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kLong:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", std::get<double>(data_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return ToDouble() == other.ToDouble();
  }
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  // NULL sorts first.
  if (is_null()) return !other.is_null();
  if (other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return ToDouble() < other.ToDouble();
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  if (type() == ValueType::kString) return AsString() < other.AsString();
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kLong:
      // Hash longs as their double value so 3 and 3.0 collide (they compare
      // equal).
      return std::hash<double>{}(static_cast<double>(AsLong()));
    case ValueType::kDouble:
      return std::hash<double>{}(AsDoubleExact());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

Value ParseCell(const std::string& raw) {
  std::string s = strings::Trim(raw);
  if (s.empty() || s == "NA" || s == "N/A" || s == "null" || s == "NULL") {
    return Value::Null();
  }
  // Strip thousands separators for numeric detection.
  std::string numeric = s;
  if (numeric.find(',') != std::string::npos) {
    std::string stripped = strings::ReplaceAll(numeric, ",", "");
    // Only treat as numeric candidate if the comma-stripped form parses.
    numeric = stripped;
  }
  // Try integer.
  {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(numeric.c_str(), &end, 10);
    if (errno == 0 && end != numeric.c_str() && *end == '\0') {
      return Value(static_cast<int64_t>(v));
    }
  }
  // Try double.
  {
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(numeric.c_str(), &end);
    if (errno == 0 && end != numeric.c_str() && *end == '\0' &&
        std::isfinite(v)) {
      return Value(v);
    }
  }
  return Value(s);
}

}  // namespace db
}  // namespace aggchecker
