#include "db/cube.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <unordered_set>

#include "db/joined_relation.h"
#include "db/relation_cache.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace db {

int CubeResult::AggregateIndex(const CubeAggregate& agg) const {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (aggregates_[i] == agg) return static_cast<int>(i);
  }
  return -1;
}

std::optional<double> CubeResult::LookupPacked(uint64_t key,
                                               size_t agg_idx) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) return std::nullopt;
  return it->second[agg_idx];
}

int16_t CubeResult::BucketOf(size_t dim, const Value& v) const {
  const auto& index = literal_index_[dim];
  auto it = index.find(v);
  return it == index.end() ? kDefaultBucket : it->second;
}

void CubeResult::SetPacked(uint64_t key, size_t agg_idx, double value) {
  auto& cell = cells_[key];
  if (cell.empty()) cell.resize(aggregates_.size());
  cell[agg_idx] = value;
}

void CubeResult::AdoptSlice(const CubeResult& src, size_t agg_idx) {
  for (const auto& [key, cell] : src.cells_) {
    if (cell[agg_idx].has_value()) SetPacked(key, agg_idx, *cell[agg_idx]);
  }
  if (!live_.empty()) live_[agg_idx] = 1;
}

const char* CubeExecModeName(CubeExecMode mode) {
  switch (mode) {
    case CubeExecMode::kVectorized:
      return "Vectorized";
    case CubeExecMode::kScalarOracle:
      return "ScalarOracle";
  }
  return "?";
}

Result<std::shared_ptr<CubeResult>> ExecuteCube(
    const Database& db, const std::vector<ColumnRef>& dims,
    const std::vector<std::vector<Value>>& relevant_literals,
    const std::vector<CubeAggregate>& aggregates, ScanStats* stats,
    const ResourceGovernor* governor, const CubeExecOptions& options) {
  auto result =
      std::make_shared<CubeResult>(dims, relevant_literals, aggregates);
  Status status = ExecuteCubeInto(db, *result, stats, governor, options);
  if (!status.ok()) return status;
  return result;
}

namespace {

// Modeled memory footprints charged against GovernorLimits::max_memory_bytes.
// Canonical constants shared by both execution modes (not allocator truth),
// so memory totals stay mode- and thread-invariant: one combo charges its
// key + fanout bookkeeping, one group charges key/cell bookkeeping plus one
// accumulator per aggregate. Transient per-mode scratch (the vectorized
// row->combo array, per-block hash maps) is not charged — it is bounded by
// the row-scan budget, not the group/combo structure.
constexpr uint64_t kModeledComboBytes = 64;
constexpr uint64_t kModeledGroupBaseBytes = 32;
constexpr uint64_t kModeledAggStateBytes = 64;

}  // namespace

Status ReplayCubeCharges(const CubeResult& cube,
                         ResourceGovernor::Shard& shard) {
  const size_t num_subsets = static_cast<size_t>(1) << cube.dims().size();
  const uint64_t combo_bytes =
      kModeledComboBytes + num_subsets * sizeof(uint32_t);
  const uint64_t group_bytes =
      kModeledGroupBaseBytes + cube.aggregates().size() * kModeledAggStateBytes;
  const CubeCharges& c = cube.charges;
  // Zero-amount charges are skipped, not passed through: they would still
  // inspect limits, and a cold run performs no inspection for work it never
  // did.
  Status s = Status::OK();
  if (c.rows > 0) s = shard.ChargeRows(c.rows);
  if (s.ok() && c.combos > 0) s = shard.ChargeMemoryBytes(c.combos * combo_bytes);
  if (s.ok() && c.groups > 0) s = shard.ChargeCubeGroups(c.groups);
  if (s.ok() && c.groups > 0) s = shard.ChargeMemoryBytes(c.groups * group_bytes);
  if (s.ok()) s = shard.Flush();
  return s;
}

Status CubeExecution::Prepare(const Database& db, CubeResult* result,
                              ScanStats* stats,
                              const ResourceGovernor* governor,
                              const CubeExecOptions& options) {
  AGG_FAULT_POINT("cube.materialize");
  result_ = result;
  stats_ = stats;
  governor_ = governor;
  mode_ = options.mode;

  const std::vector<ColumnRef>& dims = result->dims();
  const std::vector<CubeAggregate>& aggregates = result->aggregates();
  if (dims.size() != result->literals().size()) {
    return Status::InvalidArgument("dims/literals size mismatch");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("cube query needs at least one aggregate");
  }
  for (const CubeAggregate& agg : aggregates) {
    if (agg.fn == AggFn::kPercentage ||
        agg.fn == AggFn::kConditionalProbability) {
      return Status::InvalidArgument(
          "ratio aggregates must be derived from counts, not cubed directly");
    }
  }
  if (dims.size() > CubeResult::kMaxDims) {
    return Status::Unsupported("cube dimensionality above 4 not supported");
  }

  // Tables referenced by dims and aggregates; joined along PK-FK paths.
  std::set<std::string> table_set;
  for (const ColumnRef& dim : dims) table_set.insert(dim.table);
  for (const CubeAggregate& a : aggregates) {
    // Star aggregates still carry the table to count rows of.
    if (!a.column.table.empty()) table_set.insert(a.column.table);
  }
  if (table_set.empty()) {
    return Status::InvalidArgument("cube query references no table");
  }
  std::vector<std::string> tables(table_set.begin(), table_set.end());

  // The join's row-index arrays are the first modeled allocation; the
  // acquisition charges them (once per cached relation per governor run,
  // or per build when uncached).
  ResourceGovernor::Shard shard(governor);
  RelationCache::AcquireInfo join_info;
  auto rel = AcquireOrBuildRelation(options.relation_cache, db, tables,
                                    shard, &join_info);
  if (stats != nullptr) {
    stats->joins_built += join_info.built ? 1 : 0;
    stats->join_cache_hits += join_info.hit ? 1 : 0;
    stats->join_seconds += join_info.build_seconds;
  }
  if (!rel.ok()) return rel.status();
  relation_ = *rel;

  dim_bindings_.clear();
  dim_bindings_.reserve(dims.size());
  for (const ColumnRef& dim : dims) {
    auto b = relation_->Bind(dim);
    if (!b.ok()) return b.status();
    dim_bindings_.push_back(*b);
  }
  agg_bindings_.assign(aggregates.size(), JoinedRelation::Binding{});
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (aggregates[i].is_star()) continue;
    auto b = relation_->Bind(aggregates[i].column);
    if (!b.ok()) return b.status();
    agg_bindings_[i] = *b;
  }

  access_.assign(dims.size(), DimAccess{});
  for (size_t i = 0; i < dims.size(); ++i) {
    const Column* column = dim_bindings_[i].column;
    access_[i].codes = &column->Codes();
    const auto& distinct = column->DistinctValues();
    access_[i].code_to_bucket.resize(distinct.size());
    for (size_t c = 0; c < distinct.size(); ++c) {
      access_[i].code_to_bucket[c] = result->BucketOf(i, distinct[c]);
    }
  }

  const size_t num_rows = relation_->num_rows();
  constexpr size_t kBlock = ResourceGovernor::kCheckIntervalRows;
  if (mode_ == CubeExecMode::kScalarOracle) {
    // The oracle is inherently sequential: one morsel covers the scan.
    num_blocks_ = 1;
  } else {
    num_blocks_ = (num_rows + kBlock - 1) / kBlock;
    row_combo_.assign(num_rows, 0);
    block_first_keys_.assign(num_blocks_, {});
  }
  return Status::OK();
}

Status CubeExecution::ScanBlock(size_t block) {
  return mode_ == CubeExecMode::kScalarOracle ? RunScalarOracle()
                                              : ScanVectorizedBlock(block);
}

Status CubeExecution::Finish() {
  if (mode_ == CubeExecMode::kVectorized) {
    Status status = FinishVectorized();
    if (!status.ok()) return status;
  }
  // The oracle writes its result cells inside RunScalarOracle.
  if (stats_ != nullptr) stats_->rows_scanned += relation_->num_rows();
  result_->charges.rows = relation_->num_rows();
  return Status::OK();
}

/// \brief Row-at-a-time reference path (CubeExecMode::kScalarOracle).
///
/// Every row fans out to its 2^d groups through boxed `Value`s and
/// `Aggregator`s. This is the semantics oracle the vectorized kernels are
/// differentially tested against, and the baseline the perf-smoke CI step
/// compares with.
Status CubeExecution::RunScalarOracle() {
  const JoinedRelation& rel = *relation_;
  CubeResult& result = *result_;
  const std::vector<CubeAggregate>& aggregates = result.aggregates();
  const size_t d = dim_bindings_.size();
  const size_t num_subsets = static_cast<size_t>(1) << d;
  const Value star_placeholder(static_cast<int64_t>(1));
  const uint64_t combo_bytes =
      kModeledComboBytes + num_subsets * sizeof(uint32_t);
  const uint64_t group_bytes =
      kModeledGroupBaseBytes + aggregates.size() * kModeledAggStateBytes;
  ResourceGovernor::Shard shard(governor_);

  // Group accumulators, addressed by dense index; `group_keys` remembers
  // each group's packed bucket key for the final result assembly.
  std::vector<std::vector<Aggregator>> groups;
  std::vector<uint64_t> group_keys;
  std::unordered_map<uint64_t, uint32_t> group_index;

  // Rows sharing a bucket combination update the same 2^d groups; cache
  // the group-id fan-out per combination so the hot loop performs a single
  // hash lookup per row.
  std::unordered_map<uint64_t, uint32_t> combo_index;
  std::vector<std::vector<uint32_t>> combo_groups;

  int16_t row_buckets[CubeResult::kMaxDims] = {0, 0, 0, 0};
  int16_t key_buckets[CubeResult::kMaxDims] = {0, 0, 0, 0};

  // Probe pruning (DESIGN.md §17): fully decided slices skip accumulation
  // and cell writes only. Group/combo structure and all modeled charges
  // are computed from the full aggregate list above, so a masked run is
  // charge-identical to an unmasked one.
  std::vector<uint8_t> slice_live(aggregates.size(), 1);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    slice_live[a] = result.slice_live(a) ? 1 : 0;
  }

  const size_t num_rows = rel.num_rows();
  constexpr size_t kBlock = ResourceGovernor::kCheckIntervalRows;
  for (size_t r = 0; r < num_rows; ++r) {
    if ((r % kBlock) == 0) {
      Status charge =
          shard.ChargeRows(std::min<uint64_t>(kBlock, num_rows - r));
      if (!charge.ok()) return charge;
    }
    for (size_t i = 0; i < d; ++i) {
      size_t base = dim_bindings_[i].base_row(r);
      int32_t code = (*access_[i].codes)[base];
      row_buckets[i] =
          code < 0 ? kDefaultBucket : access_[i].code_to_bucket[code];
    }
    auto [combo_it, combo_new] =
        combo_index.try_emplace(CubeResult::PackKey(row_buckets, d),
                                static_cast<uint32_t>(combo_groups.size()));
    if (combo_new) {
      // First row with this bucket combination: resolve (creating on
      // demand) the 2^d groups it contributes to.
      Status mem = shard.ChargeMemoryBytes(combo_bytes);
      if (!mem.ok()) return mem;
      std::vector<uint32_t> fanout;
      fanout.reserve(num_subsets);
      uint64_t new_groups = 0;
      for (size_t mask = 0; mask < num_subsets; ++mask) {
        for (size_t i = 0; i < d; ++i) {
          key_buckets[i] = (mask & (1u << i)) ? row_buckets[i] : kAllBucket;
        }
        auto [it, inserted] = group_index.try_emplace(
            CubeResult::PackKey(key_buckets, d),
            static_cast<uint32_t>(groups.size()));
        if (inserted) {
          std::vector<Aggregator> accs;
          accs.reserve(aggregates.size());
          for (const CubeAggregate& a : aggregates) accs.emplace_back(a.fn);
          groups.push_back(std::move(accs));
          group_keys.push_back(it->first);
          ++new_groups;
        }
        fanout.push_back(it->second);
      }
      combo_groups.push_back(std::move(fanout));
      if (new_groups > 0) {
        // Group materialization is the cube-explosion lever; charge it
        // separately from row scans so a budget can bound it directly,
        // then charge its modeled accumulator bytes.
        Status charge = shard.ChargeCubeGroups(new_groups);
        if (!charge.ok()) return charge;
        Status gmem = shard.ChargeMemoryBytes(new_groups * group_bytes);
        if (!gmem.ok()) return gmem;
      }
    }
    for (uint32_t group : combo_groups[combo_it->second]) {
      for (size_t a = 0; a < aggregates.size(); ++a) {
        if (!slice_live[a]) continue;
        const Value& v = aggregates[a].is_star() ? star_placeholder
                                                 : agg_bindings_[a].at(r);
        groups[group][a].Add(v);
      }
    }
  }

  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t a = 0; a < groups[g].size(); ++a) {
      if (!slice_live[a]) continue;
      std::optional<double> v = groups[g][a].Finish();
      if (v.has_value()) result.SetPacked(group_keys[g], a, *v);
    }
  }
  result.charges.combos = combo_groups.size();
  result.charges.groups = groups.size();
  return Status::OK();
}

/// \brief Pass 1 of the combo-partitioned pipeline, one block.
///
/// Maps every row of the block to a block-local bucket-combination id using
/// dictionary codes and records the packed keys in local first-appearance
/// order. Runs concurrently with other blocks (of this or any other cube
/// execution); FinishVectorized renumbers the local ids globally in block
/// order, so global ids equal the oracle's first-appearance order for any
/// thread count or morsel interleaving.
Status CubeExecution::ScanVectorizedBlock(size_t block) {
  // Vectorized-path-only fault point (the scalar oracle never passes
  // through here): chaos tests arm it to prove the fallback ladder's first
  // rung heals a poisoned vectorized kernel bit-identically.
  AGG_FAULT_POINT("cube.scan.vectorized");
  const size_t num_rows = relation_->num_rows();
  const size_t d = dim_bindings_.size();
  constexpr size_t kBlock = ResourceGovernor::kCheckIntervalRows;
  const size_t begin = block * kBlock;
  const size_t end = std::min(begin + kBlock, num_rows);

  std::array<const uint32_t*, CubeResult::kMaxDims> dim_idx{};
  std::array<const int32_t*, CubeResult::kMaxDims> dim_codes{};
  std::array<const int16_t*, CubeResult::kMaxDims> dim_buckets{};
  for (size_t i = 0; i < d; ++i) {
    dim_idx[i] = dim_bindings_[i].index;
    dim_codes[i] = access_[i].codes->data();
    dim_buckets[i] = access_[i].code_to_bucket.data();
  }

  // Per-block shard: row charges fold into the shared governor atomics
  // once per block, the same totals as the oracle's per-block charging.
  ResourceGovernor::Shard block_shard(governor_);
  Status charge = block_shard.ChargeRows(end - begin);
  if (!charge.ok()) return charge;
  std::unordered_map<uint64_t, uint32_t> local;
  std::vector<uint64_t>& first_keys = block_first_keys_[block];
  int16_t buckets[CubeResult::kMaxDims] = {0, 0, 0, 0};
  for (size_t r = begin; r < end; ++r) {
    for (size_t i = 0; i < d; ++i) {
      size_t base = dim_idx[i] != nullptr ? dim_idx[i][r] : r;
      int32_t code = dim_codes[i][base];
      buckets[i] = code < 0 ? kDefaultBucket : dim_buckets[i][code];
    }
    uint64_t key = CubeResult::PackKey(buckets, d);
    auto [it, fresh] =
        local.try_emplace(key, static_cast<uint32_t>(first_keys.size()));
    if (fresh) first_keys.push_back(key);
    row_combo_[r] = it->second;
  }
  return Status::OK();
}

/// \brief Serial epilogue of the combo-partitioned pipeline.
///
/// Folds the per-block combo ids in block order (pass 1's deterministic
/// fold), builds the combo -> group fanout, then runs one typed kernel per
/// aggregate over the flat primitive column views (pass 2) and distributes
/// combo accumulators into the 2^d groups (pass 3).
///
/// Bit-exactness with the oracle is by construction, not by tolerance:
///  - Count / CountDistinct fold integers (order-independent); distinct
///    values are dictionary codes, whose identity matches `Value` equality
///    (numeric coercion, per-occurrence NaN codes) exactly.
///  - Sum / Avg accumulate per *group* in global row order — the identical
///    floating-point addition sequence the oracle performs — because FP
///    addition does not commute across a per-combo regrouping.
///  - Min / Max keep per-combo (best, first row attaining it) and fold with
///    strict comparisons + earliest-row tie-break, reproducing the oracle's
///    first-occurrence semantics (observable only through -0.0/+0.0
///    representation; NaN inputs poison the group to nullopt either way).
Status CubeExecution::FinishVectorized() {
  const JoinedRelation& rel = *relation_;
  CubeResult& result = *result_;
  const std::vector<CubeAggregate>& aggregates = result.aggregates();
  const size_t d = dim_bindings_.size();
  const size_t num_subsets = static_cast<size_t>(1) << d;
  const size_t num_rows = rel.num_rows();
  constexpr size_t kBlock = ResourceGovernor::kCheckIntervalRows;
  const size_t num_blocks = num_blocks_;
  ResourceGovernor::Shard shard(governor_);

  // Serial fold in block order: global combo ids equal first-appearance
  // order over the whole relation — exactly the order the oracle discovers
  // combos in — for any thread count. Fresh combos charge their modeled
  // state here (the oracle charges at discovery inside the scan; totals on
  // completed runs are identical).
  std::unordered_map<uint64_t, uint32_t> combo_ids;
  std::vector<uint64_t> combo_keys;
  std::vector<std::vector<uint32_t>> translate(num_blocks);
  const uint64_t combo_bytes =
      kModeledComboBytes + num_subsets * sizeof(uint32_t);
  for (size_t b = 0; b < num_blocks; ++b) {
    translate[b].reserve(block_first_keys_[b].size());
    for (uint64_t key : block_first_keys_[b]) {
      auto [it, fresh] =
          combo_ids.try_emplace(key, static_cast<uint32_t>(combo_keys.size()));
      if (fresh) {
        combo_keys.push_back(key);
        Status mem = shard.ChargeMemoryBytes(combo_bytes);
        if (!mem.ok()) return mem;
      }
      translate[b].push_back(it->second);
    }
  }
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * kBlock;
    const size_t end = std::min(begin + kBlock, num_rows);
    const std::vector<uint32_t>& tr = translate[b];
    for (size_t r = begin; r < end; ++r) row_combo_[r] = tr[row_combo_[r]];
  }
  const size_t num_combos = combo_keys.size();

  // ---- Combo -> group fanout (serial, combo order) -------------------
  // Same group-id assignment and charge order as the oracle: combos in
  // first-appearance order, masks 0..2^d-1 within each combo.
  std::unordered_map<uint64_t, uint32_t> group_index;
  std::vector<uint64_t> group_keys;
  std::vector<uint32_t> fanout;
  fanout.reserve(num_combos * num_subsets);
  const uint64_t group_bytes =
      kModeledGroupBaseBytes + aggregates.size() * kModeledAggStateBytes;
  int16_t row_buckets[CubeResult::kMaxDims] = {0, 0, 0, 0};
  int16_t key_buckets[CubeResult::kMaxDims] = {0, 0, 0, 0};
  for (size_t c = 0; c < num_combos; ++c) {
    const uint64_t key = combo_keys[c];
    for (size_t i = 0; i < d; ++i) {
      row_buckets[i] = static_cast<int16_t>(
          static_cast<int32_t>((key >> (16 * (d - 1 - i))) & 0xFFFF) - 3);
    }
    uint64_t new_groups = 0;
    for (size_t mask = 0; mask < num_subsets; ++mask) {
      for (size_t i = 0; i < d; ++i) {
        key_buckets[i] = (mask & (1u << i)) ? row_buckets[i] : kAllBucket;
      }
      auto [it, inserted] = group_index.try_emplace(
          CubeResult::PackKey(key_buckets, d),
          static_cast<uint32_t>(group_keys.size()));
      if (inserted) {
        group_keys.push_back(it->first);
        ++new_groups;
      }
      fanout.push_back(it->second);
    }
    if (new_groups > 0) {
      Status charge = shard.ChargeCubeGroups(new_groups);
      if (!charge.ok()) return charge;
      Status gmem = shard.ChargeMemoryBytes(new_groups * group_bytes);
      if (!gmem.ok()) return gmem;
    }
  }
  const size_t num_groups = group_keys.size();
  result.charges.combos = num_combos;
  result.charges.groups = num_groups;

  // ---- Pass 2 + 3: typed kernels, folded into groups -----------------
  // Combo tallies distribute into groups as exact integers.
  auto fold_counts = [&](const std::vector<int64_t>& combo_n) {
    std::vector<int64_t> group_n(num_groups, 0);
    for (size_t c = 0; c < num_combos; ++c) {
      if (combo_n[c] == 0) continue;
      const uint32_t* fan = &fanout[c * num_subsets];
      for (size_t s = 0; s < num_subsets; ++s) group_n[fan[s]] += combo_n[c];
    }
    return group_n;
  };

  // Rows per combo; serves every star aggregate (the oracle feeds them a
  // constant non-null placeholder, so their input is "one 1 per row").
  std::vector<int64_t> combo_rows;
  auto rows_per_combo = [&]() -> const std::vector<int64_t>& {
    if (combo_rows.empty() && num_combos > 0) {
      combo_rows.assign(num_combos, 0);
      for (size_t r = 0; r < num_rows; ++r) ++combo_rows[row_combo_[r]];
    }
    return combo_rows;
  };

  struct Extreme {
    double best = 0.0;
    uint64_t best_row = 0;  ///< first row attaining `best` (tie-break)
    uint8_t has = 0;
    uint8_t poison = 0;  ///< saw a non-finite value
  };

  for (size_t a = 0; a < aggregates.size(); ++a) {
    // Probe pruning: a fully decided slice skips its kernel and cell
    // writes. Charges above came from the full aggregate list, so a
    // masked run stays charge-identical (DESIGN.md §17).
    if (!result.slice_live(a)) continue;
    const AggFn fn = aggregates[a].fn;
    const bool star = aggregates[a].is_star();
    const Column* col = star ? nullptr : agg_bindings_[a].column;
    const uint32_t* idx = star ? nullptr : agg_bindings_[a].index;

    switch (fn) {
      case AggFn::kCount: {
        std::vector<int64_t> combo_n;
        if (star) {
          combo_n = rows_per_combo();
        } else {
          const Column::FlatView& flat = col->Flat();
          combo_n.assign(num_combos, 0);
          for (size_t r = 0; r < num_rows; ++r) {
            size_t base = idx != nullptr ? idx[r] : r;
            combo_n[row_combo_[r]] +=
                static_cast<int64_t>(flat.nulls[base] == 0);
          }
        }
        std::vector<int64_t> group_n = fold_counts(combo_n);
        for (size_t g = 0; g < num_groups; ++g) {
          result.SetPacked(group_keys[g], a, static_cast<double>(group_n[g]));
        }
        break;
      }

      case AggFn::kCountDistinct: {
        if (star) {
          // Oracle semantics: every row feeds the same placeholder, so any
          // materialized group has exactly one distinct value.
          for (size_t g = 0; g < num_groups; ++g) {
            result.SetPacked(group_keys[g], a, 1.0);
          }
          break;
        }
        // Dictionary codes are distinct-value identities: the dictionary
        // dedupes by `Value` equality (numeric coercion included) and gives
        // each NaN occurrence its own code — exactly the membership rule of
        // the oracle's unordered_set<Value>.
        const std::vector<int32_t>& codes = col->Codes();
        std::vector<std::unordered_set<int32_t>> combo_set(num_combos);
        for (size_t r = 0; r < num_rows; ++r) {
          size_t base = idx != nullptr ? idx[r] : r;
          int32_t code = codes[base];
          if (code >= 0) combo_set[row_combo_[r]].insert(code);
        }
        std::vector<std::unordered_set<int32_t>> group_set(num_groups);
        for (size_t c = 0; c < num_combos; ++c) {
          if (combo_set[c].empty()) continue;
          const uint32_t* fan = &fanout[c * num_subsets];
          for (size_t s = 0; s < num_subsets; ++s) {
            group_set[fan[s]].insert(combo_set[c].begin(),
                                     combo_set[c].end());
          }
        }
        for (size_t g = 0; g < num_groups; ++g) {
          result.SetPacked(group_keys[g], a,
                           static_cast<double>(group_set[g].size()));
        }
        break;
      }

      case AggFn::kSum:
      case AggFn::kAvg: {
        if (star) {
          // Sum of n ones is exactly n (n < 2^53); their average exactly 1.
          std::vector<int64_t> group_n = fold_counts(rows_per_combo());
          for (size_t g = 0; g < num_groups; ++g) {
            if (group_n[g] == 0) continue;
            result.SetPacked(
                group_keys[g], a,
                fn == AggFn::kSum ? static_cast<double>(group_n[g]) : 1.0);
          }
          break;
        }
        const Column::FlatView& flat = col->Flat();
        // Non-numeric columns coerce to 0.0 per Value::ToDouble, matching
        // the oracle (queries gate Sum/Avg to numeric columns upstream).
        const double* xs = flat.doubles;
        std::vector<int64_t> combo_n(num_combos, 0);
        std::vector<double> group_sum(num_groups, 0.0);
        std::vector<uint8_t> group_poison(num_groups, 0);
        for (size_t r = 0; r < num_rows; ++r) {
          size_t base = idx != nullptr ? idx[r] : r;
          if (flat.nulls[base]) continue;
          const double x = xs != nullptr ? xs[base] : 0.0;
          const uint32_t c = row_combo_[r];
          ++combo_n[c];
          const uint8_t bad = std::isfinite(x) ? 0 : 1;
          const uint32_t* fan = &fanout[c * num_subsets];
          for (size_t s = 0; s < num_subsets; ++s) {
            group_sum[fan[s]] += x;
            group_poison[fan[s]] |= bad;
          }
        }
        std::vector<int64_t> group_n = fold_counts(combo_n);
        for (size_t g = 0; g < num_groups; ++g) {
          if (group_n[g] == 0 || group_poison[g] ||
              !std::isfinite(group_sum[g])) {
            continue;  // empty, poisoned, or overflowed: undefined
          }
          result.SetPacked(group_keys[g], a,
                           fn == AggFn::kSum
                               ? group_sum[g]
                               : group_sum[g] /
                                     static_cast<double>(group_n[g]));
        }
        break;
      }

      case AggFn::kMin:
      case AggFn::kMax: {
        if (star) {
          for (size_t g = 0; g < num_groups; ++g) {
            result.SetPacked(group_keys[g], a, 1.0);
          }
          break;
        }
        const Column::FlatView& flat = col->Flat();
        const double* xs = flat.doubles;
        const bool is_min = fn == AggFn::kMin;
        std::vector<Extreme> combo_ext(num_combos);
        for (size_t r = 0; r < num_rows; ++r) {
          size_t base = idx != nullptr ? idx[r] : r;
          if (flat.nulls[base]) continue;
          const double x = xs != nullptr ? xs[base] : 0.0;
          Extreme& e = combo_ext[row_combo_[r]];
          e.poison |= !std::isfinite(x);
          if (!e.has) {
            e.best = x;
            e.best_row = r;
            e.has = 1;
          } else if (is_min ? (x < e.best) : (x > e.best)) {
            e.best = x;
            e.best_row = r;
          }
        }
        std::vector<Extreme> group_ext(num_groups);
        for (size_t c = 0; c < num_combos; ++c) {
          const Extreme& e = combo_ext[c];
          if (!e.has) continue;
          const uint32_t* fan = &fanout[c * num_subsets];
          for (size_t s = 0; s < num_subsets; ++s) {
            Extreme& ge = group_ext[fan[s]];
            ge.poison |= e.poison;
            if (!ge.has) {
              ge.best = e.best;
              ge.best_row = e.best_row;
              ge.has = 1;
            } else {
              const bool better =
                  is_min ? (e.best < ge.best) : (e.best > ge.best);
              // Equal bests (e.g. -0.0 vs +0.0) keep the earliest row's
              // representation, like the oracle's strict-compare replace.
              if (better ||
                  (e.best == ge.best && e.best_row < ge.best_row)) {
                ge.best = e.best;
                ge.best_row = e.best_row;
              }
            }
          }
        }
        for (size_t g = 0; g < num_groups; ++g) {
          if (!group_ext[g].has || group_ext[g].poison) continue;
          result.SetPacked(group_keys[g], a, group_ext[g].best);
        }
        break;
      }

      default:
        return Status::Internal("unexpected cube aggregate function");
    }
  }
  return Status::OK();
}

Status ExecuteCubeInto(const Database& db, CubeResult& result,
                       ScanStats* stats, const ResourceGovernor* governor,
                       const CubeExecOptions& options) {
  CubeExecution exec;
  Status prep = exec.Prepare(db, &result, stats, governor, options);
  if (!prep.ok()) return prep;
  const size_t num_blocks = exec.num_blocks();
  if (options.pool != nullptr && num_blocks > 1) {
    Status status = options.pool->ParallelForStatus(
        0, num_blocks, [&](size_t b) { return exec.ScanBlock(b); });
    if (!status.ok()) return status;
  } else {
    for (size_t b = 0; b < num_blocks; ++b) {
      Status status = exec.ScanBlock(b);
      if (!status.ok()) return status;
    }
  }
  return exec.Finish();
}

}  // namespace db
}  // namespace aggchecker
