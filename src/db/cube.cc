#include "db/cube.h"

#include <set>

#include "db/joined_relation.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

int CubeResult::AggregateIndex(const CubeAggregate& agg) const {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (aggregates_[i] == agg) return static_cast<int>(i);
  }
  return -1;
}

std::optional<double> CubeResult::Lookup(const std::vector<int16_t>& key,
                                         size_t agg_idx) const {
  auto it = cells_.find(key);
  if (it == cells_.end()) return std::nullopt;
  return it->second[agg_idx];
}

int16_t CubeResult::BucketOf(size_t dim, const Value& v) const {
  const auto& index = literal_index_[dim];
  auto it = index.find(v);
  return it == index.end() ? kDefaultBucket : it->second;
}

void CubeResult::Set(const std::vector<int16_t>& key, size_t agg_idx,
                     double value) {
  auto& cell = cells_[key];
  if (cell.empty()) cell.resize(aggregates_.size());
  cell[agg_idx] = value;
}

Result<std::shared_ptr<CubeResult>> ExecuteCube(
    const Database& db, const std::vector<ColumnRef>& dims,
    const std::vector<std::vector<Value>>& relevant_literals,
    const std::vector<CubeAggregate>& aggregates, ScanStats* stats,
    const ResourceGovernor* governor) {
  auto result =
      std::make_shared<CubeResult>(dims, relevant_literals, aggregates);
  Status status = ExecuteCubeInto(db, *result, stats, governor);
  if (!status.ok()) return status;
  return result;
}

Status ExecuteCubeInto(const Database& db, CubeResult& result,
                       ScanStats* stats, const ResourceGovernor* governor) {
  AGG_FAULT_POINT("cube.materialize");
  const std::vector<ColumnRef>& dims = result.dims();
  const std::vector<CubeAggregate>& aggregates = result.aggregates();
  if (dims.size() != result.literals().size()) {
    return Status::InvalidArgument("dims/literals size mismatch");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("cube query needs at least one aggregate");
  }
  for (const CubeAggregate& agg : aggregates) {
    if (agg.fn == AggFn::kPercentage ||
        agg.fn == AggFn::kConditionalProbability) {
      return Status::InvalidArgument(
          "ratio aggregates must be derived from counts, not cubed directly");
    }
  }

  // Tables referenced by dims and aggregates; joined along PK-FK paths.
  std::set<std::string> table_set;
  for (const ColumnRef& d : dims) table_set.insert(d.table);
  for (const CubeAggregate& a : aggregates) {
    // Star aggregates still carry the table to count rows of.
    if (!a.column.table.empty()) table_set.insert(a.column.table);
  }
  if (table_set.empty()) {
    return Status::InvalidArgument("cube query references no table");
  }
  std::vector<std::string> tables(table_set.begin(), table_set.end());
  auto rel_result = JoinedRelation::Build(db, tables);
  if (!rel_result.ok()) return rel_result.status();
  const JoinedRelation& rel = *rel_result;

  std::vector<int> dim_handles;
  dim_handles.reserve(dims.size());
  for (const ColumnRef& d : dims) {
    auto h = rel.ResolveColumn(d);
    if (!h.ok()) return h.status();
    dim_handles.push_back(*h);
  }
  std::vector<int> agg_handles(aggregates.size(), -1);
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (aggregates[i].is_star()) continue;
    auto h = rel.ResolveColumn(aggregates[i].column);
    if (!h.ok()) return h.status();
    agg_handles[i] = *h;
  }

  const size_t d = dims.size();
  const size_t num_subsets = static_cast<size_t>(1) << d;
  const Value star_placeholder(static_cast<int64_t>(1));

  // Per-dimension fast access: base-column dictionary codes plus a
  // code -> bucket translation table, so the hot loop never hashes values.
  struct DimAccess {
    const std::vector<int32_t>* codes;
    std::vector<int16_t> code_to_bucket;
  };
  std::vector<DimAccess> access(d);
  for (size_t i = 0; i < d; ++i) {
    const Column* column = rel.column_of(dim_handles[i]);
    access[i].codes = &column->Codes();
    const auto& distinct = column->DistinctValues();
    access[i].code_to_bucket.resize(distinct.size());
    for (size_t c = 0; c < distinct.size(); ++c) {
      access[i].code_to_bucket[c] = result.BucketOf(i, distinct[c]);
    }
  }

  // Group state keyed by a packed bucket code: 16 bits per dimension
  // (bucket + 3, so kAllBucket/kDefaultBucket pack as 1/2). Dimension
  // counts beyond 4 never arise (nG <= max predicates + 1 = 4); reject
  // them rather than overflow the packing.
  if (d > 4) {
    return Status::Unsupported("cube dimensionality above 4 not supported");
  }
  auto pack = [d](const int16_t* buckets) {
    uint64_t key = 0;
    for (size_t i = 0; i < d; ++i) {
      key = (key << 16) |
            static_cast<uint16_t>(static_cast<int32_t>(buckets[i]) + 3);
    }
    return key;
  };

  // Group accumulators, addressed by dense index; `group_keys` remembers
  // each group's bucket vector for the final result assembly.
  std::vector<std::vector<Aggregator>> groups;
  std::vector<std::vector<int16_t>> group_keys;
  std::unordered_map<uint64_t, uint32_t> group_index;

  // Rows sharing a bucket combination update the same 2^d groups; cache
  // the group-id fan-out per combination so the hot loop performs a single
  // hash lookup per row.
  std::unordered_map<uint64_t, uint32_t> combo_index;
  std::vector<std::vector<uint32_t>> combo_groups;

  int16_t row_buckets[4] = {0, 0, 0, 0};
  int16_t key_buckets[4] = {0, 0, 0, 0};

  // Per-call charge shard: scan blocks fold into the governor's atomics at
  // kCheckIntervalRows granularity, group charges pass through immediately.
  ResourceGovernor::Shard shard(governor);
  const size_t num_rows = rel.num_rows();
  constexpr size_t kBlock = ResourceGovernor::kCheckIntervalRows;
  for (size_t r = 0; r < num_rows; ++r) {
    if ((r % kBlock) == 0) {
      Status charge =
          shard.ChargeRows(std::min<uint64_t>(kBlock, num_rows - r));
      if (!charge.ok()) return charge;
    }
    for (size_t i = 0; i < d; ++i) {
      size_t base = rel.base_row(r, dim_handles[i]);
      int32_t code = (*access[i].codes)[base];
      row_buckets[i] =
          code < 0 ? kDefaultBucket : access[i].code_to_bucket[code];
    }
    auto [combo_it, combo_new] =
        combo_index.try_emplace(pack(row_buckets),
                                static_cast<uint32_t>(combo_groups.size()));
    if (combo_new) {
      // First row with this bucket combination: resolve (creating on
      // demand) the 2^d groups it contributes to.
      std::vector<uint32_t> fanout;
      fanout.reserve(num_subsets);
      uint64_t new_groups = 0;
      for (size_t mask = 0; mask < num_subsets; ++mask) {
        for (size_t i = 0; i < d; ++i) {
          key_buckets[i] = (mask & (1u << i)) ? row_buckets[i] : kAllBucket;
        }
        auto [it, inserted] = group_index.try_emplace(
            pack(key_buckets), static_cast<uint32_t>(groups.size()));
        if (inserted) {
          std::vector<Aggregator> accs;
          accs.reserve(aggregates.size());
          for (const CubeAggregate& a : aggregates) accs.emplace_back(a.fn);
          groups.push_back(std::move(accs));
          group_keys.emplace_back(key_buckets, key_buckets + d);
          ++new_groups;
        }
        fanout.push_back(it->second);
      }
      combo_groups.push_back(std::move(fanout));
      if (new_groups > 0) {
        // Group materialization is the cube-explosion lever; charge it
        // separately from row scans so a budget can bound it directly.
        Status charge = shard.ChargeCubeGroups(new_groups);
        if (!charge.ok()) return charge;
      }
    }
    for (uint32_t group : combo_groups[combo_it->second]) {
      for (size_t a = 0; a < aggregates.size(); ++a) {
        const Value& v = aggregates[a].is_star()
                             ? star_placeholder
                             : rel.at(r, agg_handles[a]);
        groups[group][a].Add(v);
      }
    }
  }
  if (stats != nullptr) stats->rows_scanned += rel.num_rows();

  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t a = 0; a < groups[g].size(); ++a) {
      std::optional<double> v = groups[g][a].Finish();
      if (v.has_value()) result.Set(group_keys[g], a, *v);
    }
  }
  return Status::OK();
}

}  // namespace db
}  // namespace aggchecker
