#pragma once

#include <optional>

#include "db/database.h"
#include "db/query.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief Statistics about executed scans (shared by naive and cube paths).
struct ScanStats {
  size_t rows_scanned = 0;
};

/// \brief Reference single-query executor (the "naive" strategy of Table 6).
///
/// Each call materializes the join and scans it once (twice for the ratio
/// aggregates Percentage and ConditionalProbability, which are quotients of
/// two counts per footnote 1 of the paper).
class QueryExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Evaluates `query`. Returns nullopt inside the Result when the aggregate
  /// is undefined (empty input for Avg/Min/Max, zero denominator for ratio
  /// aggregates); returns an error Status for malformed queries (unknown
  /// columns, non-numeric Sum target, unreachable join).
  ///
  /// When `governor` is non-null, scan loops charge it in
  /// ResourceGovernor::kCheckIntervalRows blocks and the call returns the
  /// governor's kDeadlineExceeded / kBudgetExhausted Status when a limit
  /// trips mid-scan (cooperative cancellation).
  Result<std::optional<double>> Execute(
      const SimpleAggregateQuery& query, ScanStats* stats = nullptr,
      const ResourceGovernor* governor = nullptr) const;

  /// Validates a query against the schema without executing it.
  Status Validate(const SimpleAggregateQuery& query) const;

 private:
  const Database* db_;
};

}  // namespace db
}  // namespace aggchecker
