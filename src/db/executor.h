#pragma once

#include <optional>

#include "db/database.h"
#include "db/query.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

class RelationCache;

/// \brief Statistics about executed scans (shared by naive and cube paths).
struct ScanStats {
  size_t rows_scanned = 0;
  /// Join-layer counters: materializations performed vs. served from the
  /// RelationCache, and the wall time spent building joins. Kept out of the
  /// determinism fingerprint (like all wall-clock fields, and because a
  /// warm cache legitimately builds fewer joins than a cold one).
  size_t joins_built = 0;
  size_t join_cache_hits = 0;
  double join_seconds = 0.0;
};

/// \brief Reference single-query executor (the "naive" strategy of Table 6).
///
/// Each call materializes the join and scans it once (twice for the ratio
/// aggregates Percentage and ConditionalProbability, which are quotients of
/// two counts per footnote 1 of the paper).
class QueryExecutor {
 public:
  explicit QueryExecutor(const Database* db) : db_(db) {}

  /// Evaluates `query`. Returns nullopt inside the Result when the aggregate
  /// is undefined (empty input for Avg/Min/Max, zero denominator for ratio
  /// aggregates); returns an error Status for malformed queries (unknown
  /// columns, non-numeric Sum target, unreachable join).
  ///
  /// When `governor` is non-null, scan loops charge it in
  /// ResourceGovernor::kCheckIntervalRows blocks and the call returns the
  /// governor's kDeadlineExceeded / kBudgetExhausted Status when a limit
  /// trips mid-scan (cooperative cancellation).
  ///
  /// When `relation_cache` is non-null the joined relation is acquired
  /// through it (built at most once per distinct table set, its modeled
  /// bytes charged once per governor run); otherwise each call builds and
  /// charges its own join — the pre-cache reference behavior, kept for
  /// differential testing.
  Result<std::optional<double>> Execute(
      const SimpleAggregateQuery& query, ScanStats* stats = nullptr,
      const ResourceGovernor* governor = nullptr,
      RelationCache* relation_cache = nullptr) const;

  /// Validates a query against the schema without executing it.
  Status Validate(const SimpleAggregateQuery& query) const;

 private:
  const Database* db_;
};

}  // namespace db
}  // namespace aggchecker
