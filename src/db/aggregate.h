#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "db/value.h"

namespace aggchecker {
namespace db {

/// Aggregation functions supported by Simple Aggregate Queries (§2).
///
/// Percentage and ConditionalProbability are ratio aggregates defined in the
/// paper's footnote 1; the executor derives them from two count evaluations.
enum class AggFn {
  kCount = 0,
  kCountDistinct,
  kSum,
  kAvg,
  kMin,
  kMax,
  kPercentage,
  kConditionalProbability,
};

constexpr int kNumAggFns = 8;

/// SQL-ish display name ("Count", "CountDistinct", ...).
const char* AggFnName(AggFn fn);

/// All supported aggregation functions, in enum order.
const std::vector<AggFn>& AllAggFns();

/// Keywords associated with an aggregation-function query fragment (§4.2):
/// function name plus natural-language cue words ("number", "how many",
/// "total", "average", "typical", ...).
const std::vector<std::string>& AggFnKeywords(AggFn fn);

/// True if the function needs a specific aggregation column (Count accepts
/// the "*" all-column; the others need a real column).
bool RequiresColumn(AggFn fn);

/// True if the aggregation column must be numeric (Sum/Avg/Min/Max); Count,
/// CountDistinct, Percentage and ConditionalProbability accept any type.
bool RequiresNumericColumn(AggFn fn);

/// \brief Streaming accumulator for the five base aggregates.
///
/// Percentage/ConditionalProbability are not accumulated directly: the
/// engine computes them as ratios of Count results.
class Aggregator {
 public:
  explicit Aggregator(AggFn fn) : fn_(fn) {}

  /// Feeds one cell value (NULL cells are ignored per SQL semantics, except
  /// Count(*) which the caller feeds with non-null placeholders).
  void Add(const Value& v);

  /// Final aggregate; nullopt when undefined. Undefined covers Avg/Sum of
  /// no rows, but also any Sum/Avg/Min/Max that saw a NaN/Inf input or
  /// whose running sum overflowed to +-Inf: a claim verdict must never be
  /// decided by IEEE saturation artifacts, so poisoned aggregates are
  /// treated exactly like empty ones. (Count cannot overflow: it advances
  /// once per row and int64 outlives any materializable relation.)
  std::optional<double> Finish() const;

  int64_t count() const { return count_; }

 private:
  AggFn fn_;
  int64_t count_ = 0;
  double sum_ = 0;
  bool poisoned_ = false;  ///< saw a non-finite input value
  std::optional<double> min_;
  std::optional<double> max_;
  std::unordered_set<Value, ValueHasher> distinct_;
};

}  // namespace db
}  // namespace aggchecker
