#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/table.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

class RelationCache;

/// \brief Reference to a column by table and column name.
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
  bool operator<(const ColumnRef& other) const {
    return table != other.table ? table < other.table : column < other.column;
  }
  std::string ToString() const { return table + "." + column; }
};

struct ColumnRefHasher {
  size_t operator()(const ColumnRef& r) const {
    return std::hash<std::string>{}(r.table) * 1000003 ^
           std::hash<std::string>{}(r.column);
  }
};

/// \brief A primary-key/foreign-key edge between two tables.
struct ForeignKey {
  ColumnRef from;  ///< referencing (foreign-key) column
  ColumnRef to;    ///< referenced (primary-key) column
};

/// \brief One equi-join step along a join path.
struct JoinStep {
  std::string table;  ///< table being joined in
  ColumnRef left;     ///< column on the already-joined side
  ColumnRef right;    ///< column on `table`
};

/// \brief A join plan: the root table plus ordered equi-join steps.
struct JoinPlanResult {
  std::string root;
  std::vector<JoinStep> steps;
};

/// \brief A relational database: named tables plus PK-FK schema edges.
///
/// The schema's join graph must be acyclic (a requirement the paper states
/// in §6.3); AddForeignKey rejects edges that would close a cycle.
class Database {
 public:
  explicit Database(std::string name = "db");
  ~Database();
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  const std::string& name() const { return name_; }

  Status AddTable(Table table);
  Status AddForeignKey(const ColumnRef& from, const ColumnRef& to);

  size_t num_tables() const { return tables_.size(); }
  const Table& table(size_t i) const { return *tables_[i]; }
  const Table* FindTable(const std::string& name) const;
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Resolves a column reference; null if the table or column is missing.
  const Column* FindColumn(const ColumnRef& ref) const;

  /// \brief Post-build ingestion (DESIGN.md §16): appends rows to `table`
  /// and bumps its data version. Validation and atomicity per
  /// Table::AppendRows; version-keyed caches (relation cache, cube results)
  /// invalidate lazily on their next acquire.
  Status AppendRows(const std::string& table,
                    std::vector<std::vector<Value>> rows);

  /// In-place single-cell update on `table`; bumps its data version.
  Status UpdateCell(const std::string& table, size_t row,
                    const std::string& column, Value v);

  /// Current data version of `table` (case-insensitive), or 0 if the table
  /// does not exist — 0 never collides with a real version (they start
  /// at 1), so "unknown table" always compares unequal.
  uint64_t TableVersion(const std::string& table) const;

  /// The full version vector: (lowercased table name, version), sorted by
  /// name. The cache key domain for anything reading multiple tables.
  std::vector<std::pair<std::string, uint64_t>> VersionVector() const;

  /// \brief Join plan covering `tables`: a root table plus equi-join steps.
  ///
  /// Returns the steps needed to connect all requested tables through the
  /// PK-FK graph (possibly pulling in intermediate tables). Fails if some
  /// table is unreachable.
  Result<JoinPlanResult> JoinPlan(
      const std::vector<std::string>& tables) const;

  /// Total number of rows across all tables.
  size_t TotalRows() const;

  /// Total number of columns across all tables (schema width). With
  /// MaxDistinctValues, the stats hook behind the fleet scheduler's
  /// cube-group cost estimate.
  size_t TotalColumns() const;

  /// Largest per-column distinct-value count over the non-numeric
  /// (dimension) columns — the dominant factor of worst-case cube-group
  /// counts. Builds the lazy column dictionaries on first call.
  size_t MaxDistinctValues() const;

  /// \brief Per-database cache of materialized joined relations.
  ///
  /// Shared by every evaluation component running over this database (cube
  /// backend, naive executor, result cache) so a distinct table set is
  /// joined at most once per checking run. Thread-safe; mutable through a
  /// const Database because caching is invisible to relational semantics.
  RelationCache& relation_cache() const { return *relation_cache_; }

 private:
  int TableIndex(const std::string& name) const;
  bool WouldCreateCycle(const std::string& a, const std::string& b) const;

  std::string name_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> table_index_;
  std::vector<ForeignKey> foreign_keys_;
  mutable std::unique_ptr<RelationCache> relation_cache_;
};

}  // namespace db
}  // namespace aggchecker
