#include "db/executor.h"

#include <algorithm>

#include "db/joined_relation.h"
#include "db/relation_cache.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {

/// Scan loops charge the governor once per this many rows (matches the
/// governor's own amortized inspection interval).
constexpr size_t kGovernorBlockRows = ResourceGovernor::kCheckIntervalRows;

/// Charges the shard for the block of rows starting at `r`; called at
/// block boundaries inside scan loops. Returns the governor's stop Status
/// when a limit trips. Charging goes through a per-call shard so parallel
/// executors fold into the shared governor atomics once per block.
inline Status ChargeScanBlock(ResourceGovernor::Shard& shard, size_t r,
                              size_t num_rows) {
  if ((r % kGovernorBlockRows) != 0) return Status::OK();
  return shard.ChargeRows(
      std::min<uint64_t>(kGovernorBlockRows, num_rows - r));
}

/// Counts joined rows that satisfy the given predicates, counting rows whose
/// aggregation column is non-null (or all rows for "*").
Result<std::optional<double>> CountWithPredicates(
    const JoinedRelation& rel, bool star,
    const std::vector<Predicate>& predicates,
    const std::vector<JoinedRelation::Binding>& pred_bindings,
    const JoinedRelation::Binding& agg_binding, ScanStats* stats,
    ResourceGovernor::Shard& shard) {
  int64_t count = 0;
  const size_t num_rows = rel.num_rows();
  for (size_t r = 0; r < num_rows; ++r) {
    Status charge = ChargeScanBlock(shard, r, num_rows);
    if (!charge.ok()) return charge;
    bool match = true;
    for (size_t p = 0; p < predicates.size(); ++p) {
      const Value& cell = pred_bindings[p].at(r);
      if (cell.is_null() || !(cell == predicates[p].value)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (!star && agg_binding.at(r).is_null()) continue;
    ++count;
  }
  if (stats != nullptr) stats->rows_scanned += rel.num_rows();
  return std::optional<double>(static_cast<double>(count));
}

}  // namespace

Status QueryExecutor::Validate(const SimpleAggregateQuery& query) const {
  if (query.is_star()) {
    if (query.fn != AggFn::kCount && query.fn != AggFn::kPercentage &&
        query.fn != AggFn::kConditionalProbability) {
      return Status::InvalidArgument(
          strings::Format("%s requires an aggregation column",
                          AggFnName(query.fn)));
    }
  } else {
    const Column* col = db_->FindColumn(query.agg_column);
    if (col == nullptr) {
      return Status::NotFound("unknown aggregation column: " +
                              query.agg_column.ToString());
    }
    if (RequiresNumericColumn(query.fn) && !col->is_numeric()) {
      return Status::InvalidArgument(
          strings::Format("%s requires a numeric column, %s is %s",
                          AggFnName(query.fn),
                          query.agg_column.ToString().c_str(),
                          ValueTypeName(col->type())));
    }
  }
  if (query.fn == AggFn::kConditionalProbability && query.predicates.empty()) {
    return Status::InvalidArgument(
        "ConditionalProbability requires at least one predicate (condition)");
  }
  for (const Predicate& p : query.predicates) {
    if (db_->FindColumn(p.column) == nullptr) {
      return Status::NotFound("unknown predicate column: " +
                              p.column.ToString());
    }
  }
  auto tables = query.ReferencedTables();
  if (tables.empty()) {
    return Status::InvalidArgument("query references no table");
  }
  auto plan = db_->JoinPlan(tables);
  if (!plan.ok()) return plan.status();
  return Status::OK();
}

Result<std::optional<double>> QueryExecutor::Execute(
    const SimpleAggregateQuery& query, ScanStats* stats,
    const ResourceGovernor* governor, RelationCache* relation_cache) const {
  AGG_FAULT_POINT("executor.execute");
  Status valid = Validate(query);
  if (!valid.ok()) return valid;

  // One charge shard per Execute call: callers run at most one Execute per
  // thread at a time, so this doubles as the per-thread shard.
  ResourceGovernor::Shard shard(governor);

  // The materialized join's row-index arrays are modeled evaluation state;
  // AcquireOrBuildRelation charges them against the governor's memory
  // budget (once per cached relation per run, or per build when uncached;
  // zero for single-table queries, which materialize nothing).
  auto tables = query.ReferencedTables();
  RelationCache::AcquireInfo join_info;
  auto rel_result = AcquireOrBuildRelation(relation_cache, *db_, tables,
                                           shard, &join_info);
  if (stats != nullptr) {
    stats->joins_built += join_info.built ? 1 : 0;
    stats->join_cache_hits += join_info.hit ? 1 : 0;
    stats->join_seconds += join_info.build_seconds;
  }
  if (!rel_result.ok()) return rel_result.status();
  const JoinedRelation& rel = **rel_result;

  JoinedRelation::Binding agg_binding;
  if (!query.is_star()) {
    auto b = rel.Bind(query.agg_column);
    if (!b.ok()) return b.status();
    agg_binding = *b;
  }
  std::vector<JoinedRelation::Binding> pred_bindings;
  pred_bindings.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    auto b = rel.Bind(p.column);
    if (!b.ok()) return b.status();
    pred_bindings.push_back(*b);
  }

  // Ratio aggregates: quotient of two counts (footnote 1 / §4.4).
  if (query.fn == AggFn::kPercentage ||
      query.fn == AggFn::kConditionalProbability) {
    auto num = CountWithPredicates(rel, query.is_star(), query.predicates,
                                   pred_bindings, agg_binding, stats, shard);
    if (!num.ok()) return num.status();

    std::vector<Predicate> denom_preds;
    std::vector<JoinedRelation::Binding> denom_bindings;
    if (query.fn == AggFn::kConditionalProbability) {
      // Denominator restricted to the condition (first predicate) only.
      denom_preds.push_back(query.predicates[0]);
      denom_bindings.push_back(pred_bindings[0]);
    } else {
      // Percentage: denominator drops predicates on the percentage column.
      for (size_t i = 0; i < query.predicates.size(); ++i) {
        bool on_agg_column =
            !query.is_star() &&
            query.predicates[i].column == query.agg_column;
        if (!on_agg_column) {
          denom_preds.push_back(query.predicates[i]);
          denom_bindings.push_back(pred_bindings[i]);
        }
      }
    }
    auto den = CountWithPredicates(rel, query.is_star(), denom_preds,
                                   denom_bindings, agg_binding, stats, shard);
    if (!den.ok()) return den.status();
    double d = den->value_or(0.0);
    if (d == 0.0) return std::optional<double>(std::nullopt);
    return std::optional<double>(num->value_or(0.0) * 100.0 / d);
  }

  // Fires once per aggregate scan, after validation and join acquisition —
  // a path every strategy shares, so injected faults here exercise
  // quarantine (no ladder rung avoids it) rather than ladder recovery.
  AGG_FAULT_POINT("executor.scan");
  Aggregator agg(query.fn);
  const Value star_placeholder(static_cast<int64_t>(1));
  const size_t num_rows = rel.num_rows();
  for (size_t r = 0; r < num_rows; ++r) {
    Status charge = ChargeScanBlock(shard, r, num_rows);
    if (!charge.ok()) return charge;
    bool match = true;
    for (size_t p = 0; p < query.predicates.size(); ++p) {
      const Value& cell = pred_bindings[p].at(r);
      if (cell.is_null() || !(cell == query.predicates[p].value)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    agg.Add(query.is_star() ? star_placeholder : agg_binding.at(r));
  }
  if (stats != nullptr) stats->rows_scanned += rel.num_rows();
  return agg.Finish();
}

}  // namespace db
}  // namespace aggchecker
