#include "db/executor.h"

#include <algorithm>

#include "db/joined_relation.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {

/// Scan loops charge the governor once per this many rows (matches the
/// governor's own amortized inspection interval).
constexpr size_t kGovernorBlockRows = ResourceGovernor::kCheckIntervalRows;

/// Charges the shard for the block of rows starting at `r`; called at
/// block boundaries inside scan loops. Returns the governor's stop Status
/// when a limit trips. Charging goes through a per-call shard so parallel
/// executors fold into the shared governor atomics once per block.
inline Status ChargeScanBlock(ResourceGovernor::Shard& shard, size_t r,
                              size_t num_rows) {
  if ((r % kGovernorBlockRows) != 0) return Status::OK();
  return shard.ChargeRows(
      std::min<uint64_t>(kGovernorBlockRows, num_rows - r));
}

/// Counts joined rows that satisfy the given predicates, counting rows whose
/// aggregation column is non-null (or all rows for "*").
Result<std::optional<double>> CountWithPredicates(
    const JoinedRelation& rel, const ColumnRef& agg_column, bool star,
    const std::vector<Predicate>& predicates,
    const std::vector<int>& pred_handles, int agg_handle, ScanStats* stats,
    ResourceGovernor::Shard& shard) {
  int64_t count = 0;
  const size_t num_rows = rel.num_rows();
  for (size_t r = 0; r < num_rows; ++r) {
    Status charge = ChargeScanBlock(shard, r, num_rows);
    if (!charge.ok()) return charge;
    bool match = true;
    for (size_t p = 0; p < predicates.size(); ++p) {
      const Value& cell = rel.at(r, pred_handles[p]);
      if (cell.is_null() || !(cell == predicates[p].value)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (!star && rel.at(r, agg_handle).is_null()) continue;
    ++count;
  }
  if (stats != nullptr) stats->rows_scanned += rel.num_rows();
  (void)agg_column;
  return std::optional<double>(static_cast<double>(count));
}

}  // namespace

Status QueryExecutor::Validate(const SimpleAggregateQuery& query) const {
  if (query.is_star()) {
    if (query.fn != AggFn::kCount && query.fn != AggFn::kPercentage &&
        query.fn != AggFn::kConditionalProbability) {
      return Status::InvalidArgument(
          strings::Format("%s requires an aggregation column",
                          AggFnName(query.fn)));
    }
  } else {
    const Column* col = db_->FindColumn(query.agg_column);
    if (col == nullptr) {
      return Status::NotFound("unknown aggregation column: " +
                              query.agg_column.ToString());
    }
    if (RequiresNumericColumn(query.fn) && !col->is_numeric()) {
      return Status::InvalidArgument(
          strings::Format("%s requires a numeric column, %s is %s",
                          AggFnName(query.fn),
                          query.agg_column.ToString().c_str(),
                          ValueTypeName(col->type())));
    }
  }
  if (query.fn == AggFn::kConditionalProbability && query.predicates.empty()) {
    return Status::InvalidArgument(
        "ConditionalProbability requires at least one predicate (condition)");
  }
  for (const Predicate& p : query.predicates) {
    if (db_->FindColumn(p.column) == nullptr) {
      return Status::NotFound("unknown predicate column: " +
                              p.column.ToString());
    }
  }
  auto tables = query.ReferencedTables();
  if (tables.empty()) {
    return Status::InvalidArgument("query references no table");
  }
  auto plan = db_->JoinPlan(tables);
  if (!plan.ok()) return plan.status();
  return Status::OK();
}

Result<std::optional<double>> QueryExecutor::Execute(
    const SimpleAggregateQuery& query, ScanStats* stats,
    const ResourceGovernor* governor) const {
  AGG_FAULT_POINT("executor.execute");
  Status valid = Validate(query);
  if (!valid.ok()) return valid;

  // One charge shard per Execute call: callers run at most one Execute per
  // thread at a time, so this doubles as the per-thread shard.
  ResourceGovernor::Shard shard(governor);

  auto tables = query.ReferencedTables();
  auto rel_result = JoinedRelation::Build(*db_, tables);
  if (!rel_result.ok()) return rel_result.status();
  const JoinedRelation& rel = *rel_result;

  // The materialized join's row-index arrays are modeled evaluation state;
  // charge them against the governor's memory budget (zero for
  // single-table queries, which materialize nothing).
  Status join_mem = shard.ChargeMemoryBytes(rel.ApproxBytes());
  if (!join_mem.ok()) return join_mem;

  int agg_handle = -1;
  if (!query.is_star()) {
    auto h = rel.ResolveColumn(query.agg_column);
    if (!h.ok()) return h.status();
    agg_handle = *h;
  }
  std::vector<int> pred_handles;
  pred_handles.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    auto h = rel.ResolveColumn(p.column);
    if (!h.ok()) return h.status();
    pred_handles.push_back(*h);
  }

  // Ratio aggregates: quotient of two counts (footnote 1 / §4.4).
  if (query.fn == AggFn::kPercentage ||
      query.fn == AggFn::kConditionalProbability) {
    auto num = CountWithPredicates(rel, query.agg_column, query.is_star(),
                                   query.predicates, pred_handles, agg_handle,
                                   stats, shard);
    if (!num.ok()) return num.status();

    std::vector<Predicate> denom_preds;
    std::vector<int> denom_handles;
    if (query.fn == AggFn::kConditionalProbability) {
      // Denominator restricted to the condition (first predicate) only.
      denom_preds.push_back(query.predicates[0]);
      denom_handles.push_back(pred_handles[0]);
    } else {
      // Percentage: denominator drops predicates on the percentage column.
      for (size_t i = 0; i < query.predicates.size(); ++i) {
        bool on_agg_column =
            !query.is_star() &&
            query.predicates[i].column == query.agg_column;
        if (!on_agg_column) {
          denom_preds.push_back(query.predicates[i]);
          denom_handles.push_back(pred_handles[i]);
        }
      }
    }
    auto den = CountWithPredicates(rel, query.agg_column, query.is_star(),
                                   denom_preds, denom_handles, agg_handle,
                                   stats, shard);
    if (!den.ok()) return den.status();
    double d = den->value_or(0.0);
    if (d == 0.0) return std::optional<double>(std::nullopt);
    return std::optional<double>(num->value_or(0.0) * 100.0 / d);
  }

  Aggregator agg(query.fn);
  const Value star_placeholder(static_cast<int64_t>(1));
  const size_t num_rows = rel.num_rows();
  for (size_t r = 0; r < num_rows; ++r) {
    Status charge = ChargeScanBlock(shard, r, num_rows);
    if (!charge.ok()) return charge;
    bool match = true;
    for (size_t p = 0; p < query.predicates.size(); ++p) {
      const Value& cell = rel.at(r, pred_handles[p]);
      if (cell.is_null() || !(cell == query.predicates[p].value)) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    agg.Add(query.is_star() ? star_placeholder : rel.at(r, agg_handle));
  }
  if (stats != nullptr) stats->rows_scanned += rel.num_rows();
  return agg.Finish();
}

}  // namespace db
}  // namespace aggchecker
