#pragma once

#include <string>

#include "db/database.h"
#include "db/query.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief Parses the Simple-Aggregate-Query SQL dialect of Definition 2:
///
///   SELECT <Fct>(<column>|*) FROM <table> [E-JOIN <table> ...]
///   [WHERE <column> = '<value>' [AND ...]]
///
/// Accepted function names are the AggFnName spellings (case-insensitive)
/// plus COUNT DISTINCT / COUNT(DISTINCT col). Values may be single-quoted
/// strings or bare numbers. Column references may be table-qualified
/// (t.col); unqualified names are resolved against `db` and must be
/// unambiguous. The FROM clause is validated but join paths are inferred
/// from the schema as usual (§4.4), so listing join tables is optional.
///
/// Used by the review REPL's custom-query action (Figure 3(d)) and by
/// tooling that replays exported ground-truth queries.
Result<SimpleAggregateQuery> ParseSql(const std::string& sql,
                                      const Database& db);

}  // namespace db
}  // namespace aggchecker
