#include "db/aggregate.h"

#include <cmath>

namespace aggchecker {
namespace db {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "Count";
    case AggFn::kCountDistinct:
      return "CountDistinct";
    case AggFn::kSum:
      return "Sum";
    case AggFn::kAvg:
      return "Average";
    case AggFn::kMin:
      return "Min";
    case AggFn::kMax:
      return "Max";
    case AggFn::kPercentage:
      return "Percentage";
    case AggFn::kConditionalProbability:
      return "ConditionalProbability";
  }
  return "?";
}

const std::vector<AggFn>& AllAggFns() {
  static const std::vector<AggFn> kAll = {
      AggFn::kCount,      AggFn::kCountDistinct,
      AggFn::kSum,        AggFn::kAvg,
      AggFn::kMin,        AggFn::kMax,
      AggFn::kPercentage, AggFn::kConditionalProbability,
  };
  return kAll;
}

const std::vector<std::string>& AggFnKeywords(AggFn fn) {
  // Fixed keyword sets per §4.2. These are the "related keywords" indexed
  // with each aggregation-function fragment.
  static const std::vector<std::string> kCount = {
      "count", "number", "many", "times", "total", "amount", "there", "were",
      "only"};
  static const std::vector<std::string> kCountDistinct = {
      "count", "distinct", "unique", "different", "number", "many",
      "separate", "individual"};
  static const std::vector<std::string> kSum = {
      "sum", "total", "overall", "combined", "altogether", "aggregate"};
  static const std::vector<std::string> kAvg = {
      "average", "mean", "typical", "typically", "expected", "per"};
  static const std::vector<std::string> kMin = {
      "min", "minimum", "lowest", "smallest", "least", "fewest", "shortest",
      "worst", "earliest"};
  static const std::vector<std::string> kMax = {
      "max", "maximum", "highest", "largest", "most", "biggest", "longest",
      "best", "latest", "top"};
  static const std::vector<std::string> kPercentage = {
      "percentage", "percent", "share", "fraction", "proportion", "rate",
      "ratio"};
  static const std::vector<std::string> kCondProb = {
      "probability", "likelihood", "chance", "odds", "given", "conditional",
      "likely"};
  switch (fn) {
    case AggFn::kCount:
      return kCount;
    case AggFn::kCountDistinct:
      return kCountDistinct;
    case AggFn::kSum:
      return kSum;
    case AggFn::kAvg:
      return kAvg;
    case AggFn::kMin:
      return kMin;
    case AggFn::kMax:
      return kMax;
    case AggFn::kPercentage:
      return kPercentage;
    case AggFn::kConditionalProbability:
      return kCondProb;
  }
  return kCount;
}

bool RequiresColumn(AggFn fn) {
  return fn != AggFn::kCount && fn != AggFn::kPercentage &&
         fn != AggFn::kConditionalProbability;
}

bool RequiresNumericColumn(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
    case AggFn::kAvg:
    case AggFn::kMin:
    case AggFn::kMax:
      return true;
    default:
      return false;
  }
}

void Aggregator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count_;
  switch (fn_) {
    case AggFn::kCount:
      break;
    case AggFn::kCountDistinct:
      distinct_.insert(v);
      break;
    case AggFn::kSum:
    case AggFn::kAvg: {
      double d = v.ToDouble();
      if (!std::isfinite(d)) poisoned_ = true;
      sum_ += d;
      break;
    }
    case AggFn::kMin: {
      double d = v.ToDouble();
      if (!std::isfinite(d)) poisoned_ = true;
      if (!min_ || d < *min_) min_ = d;
      break;
    }
    case AggFn::kMax: {
      double d = v.ToDouble();
      if (!std::isfinite(d)) poisoned_ = true;
      if (!max_ || d > *max_) max_ = d;
      break;
    }
    default:
      break;  // ratio aggregates are computed outside the accumulator
  }
}

std::optional<double> Aggregator::Finish() const {
  switch (fn_) {
    case AggFn::kCount:
      return static_cast<double>(count_);
    case AggFn::kCountDistinct:
      return static_cast<double>(distinct_.size());
    case AggFn::kSum: {
      // SQL semantics: SUM over zero rows is NULL (also keeps cube lookups,
      // where empty groups are absent, consistent with naive execution).
      if (count_ == 0 || poisoned_) return std::nullopt;
      // A finite input stream can still overflow to +-Inf; a verdict based
      // on an overflowed sum would be wrong either way, so it is undefined.
      if (!std::isfinite(sum_)) return std::nullopt;
      return sum_;
    }
    case AggFn::kAvg:
      if (count_ == 0 || poisoned_) return std::nullopt;
      if (!std::isfinite(sum_)) return std::nullopt;
      return sum_ / static_cast<double>(count_);
    case AggFn::kMin:
      if (poisoned_) return std::nullopt;
      return min_;
    case AggFn::kMax:
      if (poisoned_) return std::nullopt;
      return max_;
    default:
      return std::nullopt;
  }
}

}  // namespace db
}  // namespace aggchecker
