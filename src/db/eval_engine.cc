#include "db/eval_engine.h"

#include <algorithm>
#include <set>

#include "util/strings.h"
#include "util/timer.h"

namespace aggchecker {
namespace db {

const char* EvalStrategyName(EvalStrategy s) {
  switch (s) {
    case EvalStrategy::kNaive:
      return "Naive";
    case EvalStrategy::kMerged:
      return "+ Query Merging";
    case EvalStrategy::kMergedCached:
      return "+ Caching";
  }
  return "?";
}

EvalEngine::NormalizedPreds EvalEngine::Normalize(
    const std::vector<Predicate>& preds) {
  NormalizedPreds np;
  for (const Predicate& p : preds) {
    bool duplicate = false;
    for (const Predicate& q : np.preds) {
      if (q.column == p.column) {
        duplicate = true;
        if (!(q.value == p.value)) np.unsatisfiable = true;
        break;
      }
    }
    if (!duplicate) np.preds.push_back(p);
  }
  return np;
}

std::string EvalEngine::DimSetKey(const std::vector<ColumnRef>& dims) {
  std::string key;
  for (const ColumnRef& d : dims) {
    key += strings::ToLower(d.ToString());
    key += ';';
  }
  return key;
}

std::string EvalEngine::RelationKey(const SimpleAggregateQuery& query) {
  std::vector<std::string> tables;
  for (const std::string& t : query.ReferencedTables()) {
    tables.push_back(strings::ToLower(t));
  }
  std::sort(tables.begin(), tables.end());
  std::string key;
  for (const std::string& t : tables) {
    key += t;
    key += ',';
  }
  return key;
}

std::vector<std::optional<double>> EvalEngine::EvaluateBatch(
    const std::vector<SimpleAggregateQuery>& queries) {
  Timer timer;
  std::vector<std::optional<double>> results;
  switch (strategy_) {
    case EvalStrategy::kNaive:
      results = EvaluateNaive(queries);
      break;
    case EvalStrategy::kMerged:
      results = EvaluateMerged(queries, /*use_cache=*/false);
      break;
    case EvalStrategy::kMergedCached:
      results = EvaluateMerged(queries, /*use_cache=*/true);
      break;
  }
  stats_.queries_answered += queries.size();
  stats_.query_seconds += timer.ElapsedSeconds();
  return results;
}

std::optional<double> EvalEngine::Evaluate(const SimpleAggregateQuery& query) {
  return EvaluateBatch({query})[0];
}

std::vector<std::optional<double>> EvalEngine::EvaluateNaive(
    const std::vector<SimpleAggregateQuery>& queries) {
  std::vector<std::optional<double>> results;
  results.reserve(queries.size());
  ScanStats scan;
  for (const auto& q : queries) {
    if (governor_ != nullptr && governor_->exhausted()) {
      results.push_back(std::nullopt);
      ++stats_.queries_aborted;
      continue;
    }
    auto r = executor_.Execute(q, &scan, governor_);
    if (!r.ok()) {
      if (r.status().IsResourceExhausted()) {
        ++stats_.queries_aborted;
      } else {
        NoteHardError(r.status());
      }
    }
    results.push_back(r.ok() ? *r : std::nullopt);
  }
  stats_.rows_scanned += scan.rows_scanned;
  return results;
}

void EvalEngine::NoteHardError(const Status& status) {
  // Query-shape failures are an expected nullopt ("this candidate is not
  // answerable on this schema"), not a reason to abort the run.
  if (status.code() == StatusCode::kInvalidArgument ||
      status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kUnsupported) {
    return;
  }
  if (hard_error_.ok()) hard_error_ = status;
}

std::optional<double> EvalEngine::AnswerFromCube(
    const SimpleAggregateQuery& query, const NormalizedPreds& np,
    const CubeResult& cube, size_t agg_idx) const {
  const auto& dims = cube.dims();
  // Map each cube dimension to the predicate value (if any).
  std::vector<int16_t> key(dims.size(), kAllBucket);
  std::vector<int> pred_dim(np.preds.size(), -1);
  for (size_t p = 0; p < np.preds.size(); ++p) {
    for (size_t d = 0; d < dims.size(); ++d) {
      if (dims[d] == np.preds[p].column) {
        pred_dim[p] = static_cast<int>(d);
        key[d] = cube.BucketOf(d, np.preds[p].value);
        break;
      }
    }
  }

  const bool is_count_like = query.fn == AggFn::kCount ||
                             query.fn == AggFn::kCountDistinct ||
                             query.fn == AggFn::kPercentage ||
                             query.fn == AggFn::kConditionalProbability;

  auto lookup_count = [&](const std::vector<int16_t>& k) -> double {
    std::optional<double> v = cube.Lookup(k, agg_idx);
    return v.value_or(0.0);  // absent group = zero matching rows
  };

  if (query.fn == AggFn::kPercentage) {
    double num = lookup_count(key);
    std::vector<int16_t> den_key = key;
    if (!query.is_star()) {
      for (size_t p = 0; p < np.preds.size(); ++p) {
        if (np.preds[p].column == query.agg_column && pred_dim[p] >= 0) {
          den_key[static_cast<size_t>(pred_dim[p])] = kAllBucket;
        }
      }
    }
    double den = lookup_count(den_key);
    if (den == 0.0) return std::nullopt;
    return num * 100.0 / den;
  }
  if (query.fn == AggFn::kConditionalProbability) {
    double num = lookup_count(key);
    std::vector<int16_t> den_key(dims.size(), kAllBucket);
    if (!np.preds.empty() && pred_dim[0] >= 0) {
      den_key[static_cast<size_t>(pred_dim[0])] =
          key[static_cast<size_t>(pred_dim[0])];
    }
    double den = lookup_count(den_key);
    if (den == 0.0) return std::nullopt;
    return num * 100.0 / den;
  }

  std::optional<double> v = cube.Lookup(key, agg_idx);
  if (!v.has_value() && is_count_like) return 0.0;
  return v;
}

const EvalEngine::CacheEntry* EvalEngine::FindCached(
    const CubeAggregate& agg, const std::vector<ColumnRef>& cols,
    const std::map<std::string, std::vector<Value>>& needed_literals,
    const std::string& relation_key) const {
  auto covers = [&](const CacheEntry& entry) {
    if (entry.relation_key != relation_key) return false;
    const CubeResult& cube = *entry.cube;
    for (const ColumnRef& col : cols) {
      int dim = -1;
      for (size_t d = 0; d < cube.dims().size(); ++d) {
        if (cube.dims()[d] == col) {
          dim = static_cast<int>(d);
          break;
        }
      }
      if (dim < 0) return false;  // dimension not in this cube
      auto it = needed_literals.find(strings::ToLower(col.ToString()));
      if (it == needed_literals.end()) continue;
      for (const Value& v : it->second) {
        if (cube.BucketOf(static_cast<size_t>(dim), v) == kDefaultBucket) {
          return false;  // literal not separately bucketed
        }
      }
    }
    return true;
  };

  // Exact dimension-set hit first.
  std::string exact_key =
      agg.Key() + "|" + relation_key + "|" + DimSetKey(cols);
  auto it = cache_.find(exact_key);
  if (it != cache_.end() && covers(it->second)) return &it->second;

  // Otherwise any cached cube for the same aggregate whose dimensions are a
  // superset of the query's predicate columns (rollup reuse, §6.3).
  std::string agg_prefix = agg.Key() + "|";
  for (const auto& [key, entry] : cache_) {
    if (!strings::StartsWith(key, agg_prefix)) continue;
    if (covers(entry)) return &entry;
  }
  return nullptr;
}

std::vector<std::optional<double>> EvalEngine::EvaluateMerged(
    const std::vector<SimpleAggregateQuery>& queries, bool use_cache) {
  std::vector<std::optional<double>> results(queries.size());

  // Global relevant-literal map: the union of predicate values per column
  // across the whole batch (the paper's "literals with non-zero marginal
  // probability for any claim").
  std::map<std::string, std::vector<Value>> literals_by_col;
  std::map<std::string, ColumnRef> col_by_key;
  for (const auto& q : queries) {
    for (const Predicate& p : q.predicates) {
      std::string key = strings::ToLower(p.column.ToString());
      col_by_key.emplace(key, p.column);
      auto& lits = literals_by_col[key];
      if (std::find(lits.begin(), lits.end(), p.value) == lits.end()) {
        lits.push_back(p.value);
      }
    }
  }

  // Group queries by relation (referenced-table set) and normalized
  // predicate-column set; only queries over the same joined relation may
  // share a cube.
  struct Group {
    std::vector<ColumnRef> dims;
    std::string relation_key;
    std::vector<size_t> query_indices;
  };
  std::map<std::string, Group> groups;
  std::vector<NormalizedPreds> normalized(queries.size());
  ScanStats scan;

  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    if (!executor_.Validate(q).ok()) {
      results[i] = std::nullopt;
      continue;
    }
    normalized[i] = Normalize(q.predicates);
    if (normalized[i].unsatisfiable) {
      // Rare degenerate case: fall back to the reference executor so all
      // strategies agree on semantics.
      auto r = executor_.Execute(q, &scan, governor_);
      if (!r.ok()) {
        if (r.status().IsResourceExhausted()) {
          ++stats_.queries_aborted;
        } else {
          NoteHardError(r.status());
        }
      }
      results[i] = r.ok() ? *r : std::nullopt;
      continue;
    }
    std::vector<ColumnRef> dims;
    dims.reserve(normalized[i].preds.size());
    for (const Predicate& p : normalized[i].preds) dims.push_back(p.column);
    std::sort(dims.begin(), dims.end());
    std::string relation = RelationKey(q);
    std::string key = relation + "||" + DimSetKey(dims);
    auto& group = groups[key];
    if (group.query_indices.empty()) {
      group.dims = dims;
      group.relation_key = relation;
    }
    group.query_indices.push_back(i);
  }

  for (auto& [group_key, group] : groups) {
    (void)group_key;
    if (governor_ != nullptr && governor_->exhausted()) {
      // Budget spent: remaining groups are skipped, their queries stay
      // nullopt and are reported as aborted (the claim layer marks their
      // owners partial).
      stats_.queries_aborted += group.query_indices.size();
      continue;
    }
    // Base aggregates needed by this group (ratio fns need a Count).
    std::vector<CubeAggregate> needed;
    auto add_needed = [&needed](CubeAggregate agg) {
      for (const auto& a : needed) {
        if (a == agg) return;
      }
      needed.push_back(std::move(agg));
    };
    for (size_t qi : group.query_indices) {
      const auto& q = queries[qi];
      CubeAggregate agg;
      agg.column = q.agg_column;
      switch (q.fn) {
        case AggFn::kPercentage:
        case AggFn::kConditionalProbability:
          agg.fn = AggFn::kCount;
          break;
        default:
          agg.fn = q.fn;
          break;
      }
      add_needed(std::move(agg));
    }

    // Literals needed on this group's dimensions.
    std::map<std::string, std::vector<Value>> needed_literals;
    for (const ColumnRef& d : group.dims) {
      std::string key = strings::ToLower(d.ToString());
      needed_literals[key] = literals_by_col[key];
    }

    // Resolve each aggregate to a (cube, index) source: cache or execute.
    std::unordered_map<std::string, std::pair<std::shared_ptr<CubeResult>,
                                              size_t>>
        sources;
    std::vector<CubeAggregate> to_execute;
    for (const CubeAggregate& agg : needed) {
      if (use_cache) {
        const CacheEntry* hit = FindCached(agg, group.dims, needed_literals,
                                           group.relation_key);
        if (hit != nullptr) {
          ++stats_.cache_hits;
          sources[agg.Key()] = {hit->cube, hit->agg_idx};
          continue;
        }
        ++stats_.cache_misses;
      }
      to_execute.push_back(agg);
    }

    if (!to_execute.empty()) {
      std::vector<std::vector<Value>> dim_literals;
      dim_literals.reserve(group.dims.size());
      for (const ColumnRef& d : group.dims) {
        dim_literals.push_back(
            needed_literals[strings::ToLower(d.ToString())]);
      }
      auto cube = ExecuteCube(*db_, group.dims, dim_literals, to_execute,
                              &scan, governor_);
      ++stats_.cube_queries;
      if (!cube.ok()) {
        if (cube.status().IsResourceExhausted()) {
          stats_.queries_aborted += group.query_indices.size();
        } else {
          NoteHardError(cube.status());
        }
      }
      if (cube.ok()) {
        for (size_t a = 0; a < to_execute.size(); ++a) {
          sources[to_execute[a].Key()] = {*cube, a};
          if (use_cache) {
            std::string cache_key = to_execute[a].Key() + "|" +
                                    group.relation_key + "|" +
                                    DimSetKey(group.dims);
            cache_[cache_key] = CacheEntry{*cube, a, group.relation_key};
          }
        }
      }
    }

    for (size_t qi : group.query_indices) {
      const auto& q = queries[qi];
      CubeAggregate agg;
      agg.column = q.agg_column;
      agg.fn = (q.fn == AggFn::kPercentage ||
                q.fn == AggFn::kConditionalProbability)
                   ? AggFn::kCount
                   : q.fn;
      auto it = sources.find(agg.Key());
      if (it == sources.end()) {
        results[qi] = std::nullopt;  // cube execution failed
        continue;
      }
      results[qi] = AnswerFromCube(q, normalized[qi], *it->second.first,
                                   it->second.second);
    }
  }

  stats_.rows_scanned += scan.rows_scanned;
  return results;
}

}  // namespace db
}  // namespace aggchecker
