#include "db/eval_engine.h"

#include <algorithm>
#include <array>
#include <set>

#include "db/relation_cache.h"
#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/timer.h"

namespace aggchecker {
namespace db {

const char* EvalStrategyName(EvalStrategy s) {
  switch (s) {
    case EvalStrategy::kNaive:
      return "Naive";
    case EvalStrategy::kMerged:
      return "+ Query Merging";
    case EvalStrategy::kMergedCached:
      return "+ Caching";
  }
  return "?";
}

EvalEngine::NormalizedPreds EvalEngine::Normalize(
    const std::vector<Predicate>& preds) {
  NormalizedPreds np;
  for (const Predicate& p : preds) {
    bool duplicate = false;
    for (const Predicate& q : np.preds) {
      if (q.column == p.column) {
        duplicate = true;
        if (!(q.value == p.value)) np.unsatisfiable = true;
        break;
      }
    }
    if (!duplicate) np.preds.push_back(p);
  }
  return np;
}

std::string EvalEngine::DimSetKey(const std::vector<ColumnRef>& dims) {
  std::string key;
  for (const ColumnRef& d : dims) {
    key += strings::ToLower(d.ToString());
    key += ';';
  }
  return key;
}

std::string EvalEngine::RelationKey(const SimpleAggregateQuery& query) {
  // Delegates to the relation cache's canonical key so cube grouping and
  // join caching agree on relation identity by construction.
  return RelationCache::KeyOf(query.ReferencedTables());
}

std::vector<std::optional<double>> EvalEngine::DispatchQueries(
    const std::vector<SimpleAggregateQuery>& queries) {
  switch (strategy_) {
    case EvalStrategy::kNaive:
      return EvaluateNaive(queries);
    case EvalStrategy::kMerged:
    case EvalStrategy::kMergedCached: {
      const bool use_cache = strategy_ == EvalStrategy::kMergedCached;
      if (query_fingerprints_) {
        std::vector<QueryInterner::Id> ids;
        ids.reserve(queries.size());
        for (const auto& q : queries) ids.push_back(interner_.InternQuery(q));
        return EvaluateMergedIds(ids, use_cache);
      }
      return EvaluateMerged(queries, use_cache);
    }
  }
  return {};
}

std::vector<std::optional<double>> EvalEngine::DispatchIds(
    const std::vector<QueryInterner::Id>& ids) {
  switch (strategy_) {
    case EvalStrategy::kNaive: {
      // Naive has no plan to share; materialize and scan per query.
      std::vector<SimpleAggregateQuery> queries;
      queries.reserve(ids.size());
      for (QueryInterner::Id id : ids) queries.push_back(interner_.Materialize(id));
      return EvaluateNaive(queries);
    }
    case EvalStrategy::kMerged:
      return EvaluateMergedIds(ids, /*use_cache=*/false);
    case EvalStrategy::kMergedCached:
      return EvaluateMergedIds(ids, /*use_cache=*/true);
  }
  return {};
}

void EvalEngine::RefreshDataVersions() {
  auto current = db_->VersionVector();
  if (current == data_versions_) return;

  // Tables whose version moved (or that appeared/disappeared) since the
  // last sweep; both vectors are sorted by name.
  std::set<std::string> changed;
  size_t i = 0, j = 0;
  while (i < data_versions_.size() || j < current.size()) {
    if (i >= data_versions_.size()) {
      changed.insert(current[j++].first);
    } else if (j >= current.size()) {
      changed.insert(data_versions_[i++].first);
    } else if (data_versions_[i].first < current[j].first) {
      changed.insert(data_versions_[i++].first);
    } else if (current[j].first < data_versions_[i].first) {
      changed.insert(current[j++].first);
    } else {
      if (data_versions_[i].second != current[j].second) {
        changed.insert(current[j].first);
      }
      ++i;
      ++j;
    }
  }
  data_versions_ = std::move(current);
  if (changed.empty()) return;

  // Whether a relation (by canonical "t1,t2," key) reads a changed table —
  // through its join *closure*: the join plan may pull in intermediate
  // tables the key does not list, and their rows shape the join too.
  std::unordered_map<std::string, bool> stale_memo;
  auto relation_stale = [&](const std::string& relation_key) {
    auto mit = stale_memo.find(relation_key);
    if (mit != stale_memo.end()) return mit->second;
    std::vector<std::string> tables;
    for (std::string& t : strings::Split(relation_key, ',')) {
      if (!t.empty()) tables.push_back(std::move(t));
    }
    bool stale = false;
    for (const std::string& t : tables) {
      if (changed.count(t) > 0) stale = true;
    }
    if (!stale && tables.size() > 1) {
      auto plan = db_->JoinPlan(tables);
      if (plan.ok()) {
        if (changed.count(strings::ToLower(plan->root)) > 0) stale = true;
        for (const JoinStep& step : plan->steps) {
          if (changed.count(strings::ToLower(step.table)) > 0) stale = true;
        }
      } else {
        // Cannot prove independence from the changed tables; evict.
        stale = true;
      }
    }
    stale_memo[relation_key] = stale;
    return stale;
  };

  for (auto it = cache_.begin(); it != cache_.end();) {
    if (relation_stale(it->second.relation_key)) {
      it = cache_.erase(it);
      ++stats_.cache_invalidations;
    } else {
      ++it;
    }
  }
  // Fingerprint-path entries carry relation identity in their SliceKey (the
  // entry's relation_key field is unused there); resolve it through the
  // interner's canonical relation key.
  bool fp_evicted = false;
  for (auto it = fp_cache_.begin(); it != fp_cache_.end();) {
    if (relation_stale(interner_.relation_key(it->first.relation))) {
      it = fp_cache_.erase(it);
      ++stats_.cache_invalidations;
      fp_evicted = true;
    } else {
      ++it;
    }
  }
  // Prune the rollup-scan order lists so evicted slices do not linger as
  // stale keys forever under repeated ingestion.
  if (fp_evicted) {
    for (auto it = fp_cache_order_.begin(); it != fp_cache_order_.end();) {
      std::vector<SliceKey>& order = it->second;
      order.erase(std::remove_if(order.begin(), order.end(),
                                 [&](const SliceKey& key) {
                                   return fp_cache_.count(key) == 0;
                                 }),
                  order.end());
      it = order.empty() ? fp_cache_order_.erase(it) : std::next(it);
    }
  }
}

bool EvalEngine::ReplayChargesForHit(const CacheEntry& entry) {
  if (governor_ == nullptr) return true;
  CubeCharges& charges = entry.cube->charges;
  if (charges.charged_run == governor_->run_id()) return true;
  // An already-tripped governor: a cold run would find no cached entry and
  // its rebuild would abort before charging, so the warm hit must not be
  // served (or charged) either.
  if (!governor_->TripStatus().ok()) return false;
  ResourceGovernor::Shard shard(governor_);
  if (!ReplayCubeCharges(*entry.cube, shard).ok()) return false;
  charges.charged_run = governor_->run_id();
  return true;
}

Status EvalEngine::FillInSlice(const CacheEntry& entry) {
  const CubeResult& cube = *entry.cube;
  CubeResult fresh(cube.dims(), cube.literals(), cube.aggregates());
  std::vector<uint8_t> live(cube.aggregates().size(), 0);
  live[entry.agg_idx] = 1;
  fresh.SetSliceLiveness(std::move(live));
  ScanStats scan;
  CubeExecOptions options;
  options.mode = cube_exec_;
  options.relation_cache = relation_cache_;
  Status status =
      ExecuteCubeInto(*db_, fresh, &scan, /*governor=*/nullptr, options);
  if (!status.ok()) return status;
  entry.cube->AdoptSlice(fresh, entry.agg_idx);
  ++stats_.probe_fillins;
  stats_.probe_fillin_rows += scan.rows_scanned;
  return Status::OK();
}

std::vector<std::optional<double>> EvalEngine::EvaluateBatch(
    const std::vector<SimpleAggregateQuery>& queries) {
  Timer timer;
  batch_failed_.clear();
  batch_decided_.clear();
  RefreshDataVersions();
  auto results = DispatchQueries(queries);
  RecoverBatch(
      [&](const std::vector<size_t>& subset) {
        std::vector<SimpleAggregateQuery> sub;
        sub.reserve(subset.size());
        for (size_t i : subset) sub.push_back(queries[i]);
        return DispatchQueries(sub);
      },
      results);
  stats_.queries_answered += queries.size();
  stats_.query_seconds += timer.ElapsedSeconds();
  return results;
}

std::vector<std::optional<double>> EvalEngine::EvaluateInternedImpl(
    const std::vector<QueryInterner::Id>& ids) {
  Timer timer;
  batch_failed_.clear();
  RefreshDataVersions();
  auto results = DispatchIds(ids);
  RecoverBatch(
      [&](const std::vector<size_t>& subset) {
        // Re-runs materialize and go through the query-keyed dispatch so
        // every ladder rung (including string-keyed plans) is reachable.
        std::vector<SimpleAggregateQuery> sub;
        sub.reserve(subset.size());
        for (size_t i : subset) sub.push_back(interner_.Materialize(ids[i]));
        return DispatchQueries(sub);
      },
      results);
  stats_.queries_answered += ids.size();
  stats_.query_seconds += timer.ElapsedSeconds();
  return results;
}

std::vector<std::optional<double>> EvalEngine::EvaluateInterned(
    const std::vector<QueryInterner::Id>& ids) {
  batch_decided_.clear();
  return EvaluateInternedImpl(ids);
}

std::vector<std::optional<double>> EvalEngine::EvaluateInterned(
    const std::vector<QueryInterner::Id>& ids,
    const std::vector<uint8_t>& decided) {
  // Only the fingerprint merged path honors probe flags; anything else
  // evaluates everything for real (the probe degrades to "don't prune").
  if (strategy_ != EvalStrategy::kNaive && decided.size() == ids.size()) {
    batch_decided_ = decided;
  } else {
    batch_decided_.clear();
    // Everything evaluates for real; present the caller a coherent
    // all-unsettled view instead of flags from an earlier batch.
    decided_settled_.assign(ids.size(), 0);
  }
  return EvaluateInternedImpl(ids);
}

std::vector<std::optional<double>> EvalEngine::EvaluateProbeBackfill(
    const std::vector<QueryInterner::Id>& ids) {
  batch_decided_.clear();
  const ResourceGovernor* saved_governor = governor_;
  governor_ = nullptr;
  publish_read_only_ = true;
  auto results = EvaluateInternedImpl(ids);
  publish_read_only_ = false;
  governor_ = saved_governor;
  return results;
}

std::vector<std::optional<double>> EvalEngine::EvaluateProbeBackfill(
    const std::vector<SimpleAggregateQuery>& queries) {
  batch_decided_.clear();
  const ResourceGovernor* saved_governor = governor_;
  governor_ = nullptr;
  publish_read_only_ = true;
  auto results = EvaluateBatch(queries);
  publish_read_only_ = false;
  governor_ = saved_governor;
  return results;
}

std::optional<double> EvalEngine::Evaluate(const SimpleAggregateQuery& query) {
  return EvaluateBatch({query})[0];
}

void EvalEngine::RunIndexed(size_t n, const std::function<void(size_t)>& body) {
  if (pool_ != nullptr && pool_->num_threads() > 1 && n > 1) {
    pool_->ParallelFor(0, n, body);
    return;
  }
  for (size_t i = 0; i < n; ++i) body(i);
}

std::vector<std::optional<double>> EvalEngine::EvaluateNaive(
    const std::vector<SimpleAggregateQuery>& queries) {
  const size_t n = queries.size();
  std::vector<std::optional<double>> results(n);

  // Execute phase: each query scans independently into its own slot; with
  // one thread this runs inline in index order (today's exact path).
  struct Slot {
    std::optional<double> value;
    Status status = Status::OK();
    ScanStats scan;
    bool skipped = false;
  };
  std::vector<Slot> slots(n);
  Timer execute_timer;
  RunIndexed(n, [&](size_t i) {
    Slot& slot = slots[i];
    if (governor_ != nullptr && governor_->exhausted()) {
      slot.skipped = true;  // budget spent before this query started
      return;
    }
    auto r = executor_.Execute(queries[i], &slot.scan, governor_,
                               relation_cache_);
    if (r.ok()) {
      slot.value = *r;
    } else {
      slot.status = r.status();
    }
  });
  stats_.execute_seconds += execute_timer.ElapsedSeconds();

  // Fold phase (serial, index order): counters and the hard-error channel
  // update deterministically regardless of execution interleaving.
  Timer fold_timer;
  for (size_t i = 0; i < n; ++i) {
    stats_.rows_scanned += slots[i].scan.rows_scanned;
    stats_.joins_built += slots[i].scan.joins_built;
    stats_.join_cache_hits += slots[i].scan.join_cache_hits;
    stats_.join_seconds += slots[i].scan.join_seconds;
    if (slots[i].skipped) {
      ++stats_.queries_aborted;
      continue;
    }
    if (!slots[i].status.ok()) {
      NoteQueryFailure(i, slots[i].status);
      continue;
    }
    results[i] = slots[i].value;
  }
  stats_.fold_seconds += fold_timer.ElapsedSeconds();
  return results;
}

void EvalEngine::NoteHardError(const Status& status) {
  // Query-shape failures are an expected nullopt ("this candidate is not
  // answerable on this schema"), not a reason to abort the run.
  if (status.code() == StatusCode::kInvalidArgument ||
      status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kUnsupported) {
    return;
  }
  std::lock_guard<std::mutex> lock(hard_error_mu_);
  if (hard_error_.ok()) hard_error_ = status;
}

void EvalEngine::NoteQueryFailure(size_t index, const Status& status) {
  if (status.IsResourceExhausted()) {
    // Governor stop: the query degrades to aborted/partial, never retried
    // (the governor's verdict is sticky for the run).
    ++stats_.queries_aborted;
    return;
  }
  if (status.code() == StatusCode::kInvalidArgument ||
      status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kUnsupported) {
    return;  // expected shape failure: plain nullopt
  }
  NoteHardError(status);
  batch_failed_.emplace_back(index, status);
}

const char* EvalEngine::RecoveryRungName(uint32_t rung) {
  switch (rung) {
    case 0:
      return "primary";
    case 1:
      return "scalar-cube";
    case 2:
      return "string-plans";
    case 3:
      return "fresh-join";
  }
  return "?";
}

void EvalEngine::RecoverBatch(
    const std::function<std::vector<std::optional<double>>(
        const std::vector<size_t>&)>& rerun,
    std::vector<std::optional<double>>& results) {
  if (batch_failed_.empty()) return;
  std::vector<std::pair<size_t, Status>> failed = std::move(batch_failed_);
  batch_failed_.clear();
  if (!recovery_.has_value() ||
      (governor_ != nullptr && governor_->exhausted())) {
    // Recovery off (raw-engine/differential use), or the run is already
    // resource-capped — re-runs would fail their first governor charge.
    // The hard error stays in its channel; callers see which queries died.
    for (const auto& [index, status] : failed) {
      (void)status;
      failed_queries_.push_back(index);
    }
    return;
  }

  // Stash the primary attempt's hard error: a fully-healed batch swallows
  // it, a quarantined one re-raises it after the ladder is exhausted.
  const Status primary_error = ConsumeHardError();

  // The fallback ladder, restricted to the downgrades that apply to this
  // engine's current configuration, in canonical order (DESIGN.md §13):
  // vectorized cube → scalar oracle, interned fingerprints → string-keyed
  // plans, cached relations → fresh rebuild. Each entry is cumulative with
  // the previous ones and tagged with its canonical position for records.
  const CubeExecMode saved_mode = cube_exec_;
  const bool saved_fingerprints = query_fingerprints_;
  RelationCache* const saved_cache = relation_cache_;
  struct LadderRung {
    uint32_t canonical;
    std::function<void()> apply;
  };
  std::vector<LadderRung> ladder;
  if (recovery_->fallback_ladder) {
    if (strategy_ != EvalStrategy::kNaive &&
        cube_exec_ == CubeExecMode::kVectorized) {
      ladder.push_back({1, [this] { cube_exec_ = CubeExecMode::kScalarOracle; }});
    }
    if (strategy_ != EvalStrategy::kNaive && query_fingerprints_) {
      ladder.push_back({2, [this] { query_fingerprints_ = false; }});
    }
    if (relation_cache_ != nullptr) {
      ladder.push_back({3, [this] { relation_cache_ = nullptr; }});
    }
  }

  struct Pending {
    size_t index;       ///< batch index of the failing query
    Status last;        ///< its most recent failure
    uint32_t attempts;  ///< evaluation attempts so far (initial included)
  };
  std::vector<Pending> pending;
  pending.reserve(failed.size());
  for (auto& [index, status] : failed) {
    pending.push_back(Pending{index, std::move(status), 1});
  }

  const RetryPolicy& retry = recovery_->retry;
  uint32_t rungs_applied = 0;   // entries of `ladder` engaged so far
  uint32_t canonical_rung = 0;  // canonical position for records
  uint32_t attempt_on_rung = 1;
  while (!pending.empty()) {
    if (governor_ != nullptr && governor_->exhausted()) break;
    bool any_transient = false;
    for (const Pending& p : pending) any_transient |= p.last.IsTransient();
    if (any_transient && attempt_on_rung < retry.max_attempts) {
      // Same-rung retry with capped exponential backoff.
      SleepForBackoff(retry, attempt_on_rung);
      ++attempt_on_rung;
      ++stats_.recovery_retries;
    } else if (rungs_applied < ladder.size()) {
      ladder[rungs_applied].apply();
      canonical_rung = ladder[rungs_applied].canonical;
      ++rungs_applied;
      attempt_on_rung = 1;
      ++stats_.ladder_descents;
    } else {
      break;  // every rung exhausted: quarantine what's left
    }

    std::vector<size_t> subset;
    subset.reserve(pending.size());
    for (const Pending& p : pending) subset.push_back(p.index);
    batch_failed_.clear();
    std::vector<std::optional<double>> sub_results = rerun(subset);
    // Re-run failures feed `pending` below, not the hard-error channel.
    (void)ConsumeHardError();
    std::map<size_t, Status> still_failed;
    for (auto& [local, status] : batch_failed_) {
      still_failed.emplace(local, std::move(status));
    }
    batch_failed_.clear();

    std::vector<Pending> next;
    for (size_t k = 0; k < pending.size(); ++k) {
      Pending p = std::move(pending[k]);
      ++p.attempts;
      auto it = still_failed.find(k);
      if (it == still_failed.end()) {
        // Healed: recovered values are the true values (every rung is a
        // bit-identical twin of the primary path), so verdicts match the
        // fault-free run exactly.
        if (k < sub_results.size()) results[p.index] = sub_results[k];
        recovery_records_.push_back(
            QueryRecovery{p.index, p.attempts, canonical_rung, true});
        ++stats_.queries_recovered;
      } else {
        p.last = it->second;
        next.push_back(std::move(p));
      }
    }
    pending = std::move(next);
  }

  cube_exec_ = saved_mode;
  query_fingerprints_ = saved_fingerprints;
  relation_cache_ = saved_cache;

  if (pending.empty()) return;  // fully healed; primary error stays consumed
  for (Pending& p : pending) {
    failed_queries_.push_back(p.index);
    recovery_records_.push_back(
        QueryRecovery{p.index, p.attempts, canonical_rung, false});
    ++stats_.queries_quarantined;
  }
  {
    std::lock_guard<std::mutex> lock(hard_error_mu_);
    if (hard_error_.ok()) {
      hard_error_ = primary_error.ok() ? pending.front().last : primary_error;
    }
  }
}

std::optional<double> EvalEngine::AnswerFromCube(
    const SimpleAggregateQuery& query, const NormalizedPreds& np,
    const CubeResult& cube, size_t agg_idx) const {
  const auto& dims = cube.dims();
  const size_t nd = dims.size();
  // Map each cube dimension to the predicate value (if any). Bucket codes
  // live in a fixed-size array and lookups pack them into the cube's native
  // uint64 cell key — no per-lookup vector allocation or hashing.
  std::array<int16_t, CubeResult::kMaxDims> key;
  key.fill(kAllBucket);
  std::array<int, CubeResult::kMaxDims> pred_dim;
  pred_dim.fill(-1);
  for (size_t p = 0; p < np.preds.size(); ++p) {
    for (size_t d = 0; d < nd; ++d) {
      if (dims[d] == np.preds[p].column) {
        if (p < pred_dim.size()) pred_dim[p] = static_cast<int>(d);
        key[d] = cube.BucketOf(d, np.preds[p].value);
        break;
      }
    }
  }

  const bool is_count_like = query.fn == AggFn::kCount ||
                             query.fn == AggFn::kCountDistinct ||
                             query.fn == AggFn::kPercentage ||
                             query.fn == AggFn::kConditionalProbability;

  auto lookup_count = [&](const int16_t* k) -> double {
    std::optional<double> v =
        cube.LookupPacked(CubeResult::PackKey(k, nd), agg_idx);
    return v.value_or(0.0);  // absent group = zero matching rows
  };

  if (query.fn == AggFn::kPercentage) {
    double num = lookup_count(key.data());
    std::array<int16_t, CubeResult::kMaxDims> den_key = key;
    if (!query.is_star()) {
      for (size_t p = 0; p < np.preds.size() && p < pred_dim.size(); ++p) {
        if (np.preds[p].column == query.agg_column && pred_dim[p] >= 0) {
          den_key[static_cast<size_t>(pred_dim[p])] = kAllBucket;
        }
      }
    }
    double den = lookup_count(den_key.data());
    if (den == 0.0) return std::nullopt;
    return num * 100.0 / den;
  }
  if (query.fn == AggFn::kConditionalProbability) {
    double num = lookup_count(key.data());
    std::array<int16_t, CubeResult::kMaxDims> den_key;
    den_key.fill(kAllBucket);
    if (!np.preds.empty() && pred_dim[0] >= 0) {
      den_key[static_cast<size_t>(pred_dim[0])] =
          key[static_cast<size_t>(pred_dim[0])];
    }
    double den = lookup_count(den_key.data());
    if (den == 0.0) return std::nullopt;
    return num * 100.0 / den;
  }

  std::optional<double> v =
      cube.LookupPacked(CubeResult::PackKey(key.data(), nd), agg_idx);
  if (!v.has_value() && is_count_like) return 0.0;
  return v;
}

const EvalEngine::CacheEntry* EvalEngine::FindCached(
    const CubeAggregate& agg, const std::vector<ColumnRef>& cols,
    const std::map<std::string, std::vector<Value>>& needed_literals,
    const std::string& relation_key, std::string* hit_key) const {
  auto covers = [&](const CacheEntry& entry) {
    if (entry.relation_key != relation_key) return false;
    const CubeResult& cube = *entry.cube;
    for (const ColumnRef& col : cols) {
      int dim = -1;
      for (size_t d = 0; d < cube.dims().size(); ++d) {
        if (cube.dims()[d] == col) {
          dim = static_cast<int>(d);
          break;
        }
      }
      if (dim < 0) return false;  // dimension not in this cube
      auto it = needed_literals.find(strings::ToLower(col.ToString()));
      if (it == needed_literals.end()) continue;
      for (const Value& v : it->second) {
        if (cube.BucketOf(static_cast<size_t>(dim), v) == kDefaultBucket) {
          return false;  // literal not separately bucketed
        }
      }
    }
    return true;
  };

  // Exact dimension-set hit first.
  std::string exact_key =
      agg.Key() + "|" + relation_key + "|" + DimSetKey(cols);
  auto it = cache_.find(exact_key);
  if (it != cache_.end() && covers(it->second)) {
    if (hit_key != nullptr) *hit_key = exact_key;
    return &it->second;
  }

  // Otherwise any cached cube for the same aggregate whose dimensions are a
  // superset of the query's predicate columns (rollup reuse, §6.3).
  std::string agg_prefix = agg.Key() + "|";
  for (const auto& [key, entry] : cache_) {
    if (!strings::StartsWith(key, agg_prefix)) continue;
    if (covers(entry)) {
      if (hit_key != nullptr) *hit_key = key;
      return &entry;
    }
  }
  return nullptr;
}

std::vector<std::optional<double>> EvalEngine::EvaluateMerged(
    const std::vector<SimpleAggregateQuery>& queries, bool use_cache) {
  std::vector<std::optional<double>> results(queries.size());
  Timer plan_timer;

  // ---- Plan phase (serial) -------------------------------------------
  // Everything that touches shared state — grouping, cache lookups and
  // insertions, stats for hits/misses — happens here, in a deterministic
  // order, before any worker runs. Cubes that must be executed are planned
  // as jobs whose result shells are built (and, in cached mode, published
  // to the cache) up front; the shells' shape is fixed at construction, so
  // later cache-coverage checks within this same plan behave exactly as if
  // the cubes had already been filled.

  // Global relevant-literal map: the union of predicate values per column
  // across the whole batch (the paper's "literals with non-zero marginal
  // probability for any claim").
  std::map<std::string, std::vector<Value>> literals_by_col;
  std::map<std::string, ColumnRef> col_by_key;
  for (const auto& q : queries) {
    for (const Predicate& p : q.predicates) {
      std::string key = strings::ToLower(p.column.ToString());
      col_by_key.emplace(key, p.column);
      auto& lits = literals_by_col[key];
      if (std::find(lits.begin(), lits.end(), p.value) == lits.end()) {
        lits.push_back(p.value);
      }
    }
  }

  // Group queries by relation (referenced-table set) and normalized
  // predicate-column set; only queries over the same joined relation may
  // share a cube.
  struct Group {
    std::vector<ColumnRef> dims;
    std::string relation_key;
    std::vector<size_t> query_indices;
  };
  std::map<std::string, Group> groups;
  std::vector<NormalizedPreds> normalized(queries.size());
  ScanStats serial_scan;

  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    if (!executor_.Validate(q).ok()) {
      results[i] = std::nullopt;
      continue;
    }
    normalized[i] = Normalize(q.predicates);
    if (normalized[i].unsatisfiable) {
      // Rare degenerate case: fall back to the reference executor so all
      // strategies agree on semantics.
      auto r = executor_.Execute(q, &serial_scan, governor_,
                                 relation_cache_);
      if (!r.ok()) NoteQueryFailure(i, r.status());
      results[i] = r.ok() ? *r : std::nullopt;
      continue;
    }
    std::vector<ColumnRef> dims;
    dims.reserve(normalized[i].preds.size());
    for (const Predicate& p : normalized[i].preds) dims.push_back(p.column);
    std::sort(dims.begin(), dims.end());
    std::string relation = RelationKey(q);
    std::string key = relation + "||" + DimSetKey(dims);
    auto& group = groups[key];
    if (group.query_indices.empty()) {
      group.dims = dims;
      group.relation_key = relation;
    }
    group.query_indices.push_back(i);
  }

  /// Where a query's aggregate comes from: a cube (cached or this batch's
  /// shell) and, if the cube is filled by this batch, its job index.
  struct Source {
    std::shared_ptr<CubeResult> cube;
    size_t agg_idx = 0;
    int job = -1;
  };
  struct PlannedGroup {
    std::vector<size_t> query_indices;
    std::unordered_map<std::string, Source> sources;
  };
  std::vector<CubeJob> jobs;
  std::vector<PlannedGroup> planned;
  planned.reserve(groups.size());
  // Shell -> job index, so cache hits on this batch's own shells can be
  // traced to the job that must succeed before they are readable.
  std::unordered_map<const CubeResult*, int> job_of_cube;

  for (auto& [group_key, group] : groups) {
    (void)group_key;
    // Base aggregates needed by this group (ratio fns need a Count).
    std::vector<CubeAggregate> needed;
    auto add_needed = [&needed](CubeAggregate agg) {
      for (const auto& a : needed) {
        if (a == agg) return;
      }
      needed.push_back(std::move(agg));
    };
    for (size_t qi : group.query_indices) {
      const auto& q = queries[qi];
      CubeAggregate agg;
      agg.column = q.agg_column;
      switch (q.fn) {
        case AggFn::kPercentage:
        case AggFn::kConditionalProbability:
          agg.fn = AggFn::kCount;
          break;
        default:
          agg.fn = q.fn;
          break;
      }
      add_needed(std::move(agg));
    }

    // Literals needed on this group's dimensions.
    std::map<std::string, std::vector<Value>> needed_literals;
    for (const ColumnRef& d : group.dims) {
      std::string key = strings::ToLower(d.ToString());
      needed_literals[key] = literals_by_col[key];
    }

    // Resolve each aggregate to a (cube, index) source: cache or job.
    PlannedGroup pg;
    pg.query_indices = std::move(group.query_indices);
    std::vector<CubeAggregate> to_execute;
    for (const CubeAggregate& agg : needed) {
      if (use_cache) {
        std::string hit_key;
        const CacheEntry* hit = FindCached(agg, group.dims, needed_literals,
                                           group.relation_key, &hit_key);
        // A hit on an entry carried over from a previous governor run must
        // replay its recorded charges first (this batch's own shells are
        // exempt — their execution charges directly). A replay that trips
        // withdraws the entry and degrades the lookup to a miss, so the
        // rebuild aborts under the tripped governor exactly as a cold run.
        if (hit != nullptr && job_of_cube.count(hit->cube.get()) == 0 &&
            !ReplayChargesForHit(*hit)) {
          cache_.erase(hit_key);
          hit = nullptr;
        }
        if (hit != nullptr) {
          ++stats_.cache_hits;
          Source src;
          src.cube = hit->cube;
          src.agg_idx = hit->agg_idx;
          auto jit = job_of_cube.find(hit->cube.get());
          if (jit != job_of_cube.end()) src.job = jit->second;
          pg.sources[agg.Key()] = std::move(src);
          continue;
        }
        ++stats_.cache_misses;
      }
      to_execute.push_back(agg);
    }

    if (!to_execute.empty()) {
      std::vector<std::vector<Value>> dim_literals;
      dim_literals.reserve(group.dims.size());
      for (const ColumnRef& d : group.dims) {
        dim_literals.push_back(
            needed_literals[strings::ToLower(d.ToString())]);
        // Pre-warm the dimension's lazy dictionary (codes + distinct
        // values) while still serial; cube workers then only read it.
        if (const Column* col = db_->FindColumn(d)) (void)col->Codes();
      }
      // Likewise pre-warm what the vectorized kernels read: the flat typed
      // view of every aggregate column, and the dictionary for
      // CountDistinct (which aggregates codes instead of hashing Values).
      // Column's lazy builds are internally synchronized, but building here
      // keeps workers on the lock-free already-built path.
      for (const CubeAggregate& agg : to_execute) {
        if (agg.is_star()) continue;
        if (const Column* col = db_->FindColumn(agg.column)) {
          (void)col->Flat();
          if (agg.fn == AggFn::kCountDistinct) (void)col->Codes();
        }
      }
      CubeJob job;
      job.shell = std::make_shared<CubeResult>(group.dims, dim_literals,
                                               to_execute);
      const int job_idx = static_cast<int>(jobs.size());
      job_of_cube[job.shell.get()] = job_idx;
      ++stats_.cube_queries;
      for (size_t a = 0; a < to_execute.size(); ++a) {
        Source src;
        src.cube = job.shell;
        src.agg_idx = a;
        src.job = job_idx;
        pg.sources[to_execute[a].Key()] = std::move(src);
        if (use_cache && !publish_read_only_) {
          std::string cache_key = to_execute[a].Key() + "|" +
                                  group.relation_key + "|" +
                                  DimSetKey(group.dims);
          cache_[cache_key] =
              CacheEntry{job.shell, a, group.relation_key};
          job.cache_keys.push_back(std::move(cache_key));
        }
      }
      jobs.push_back(std::move(job));
    }
    planned.push_back(std::move(pg));
  }

  stats_.plan_seconds += plan_timer.ElapsedSeconds();

  ExecuteJobs(jobs);

  // ---- Fold phase (serial, job order) --------------------------------
  // Stats accumulate and failed jobs withdraw their cache entries in plan
  // order, so cache contents and counters never depend on interleaving.
  Timer fold_timer;
  for (CubeJob& job : jobs) {
    stats_.rows_scanned += job.scan.rows_scanned;
    stats_.joins_built += job.scan.joins_built;
    stats_.join_cache_hits += job.scan.join_cache_hits;
    stats_.join_seconds += job.scan.join_seconds;
    if (job.status.ok()) {
      // The execution just charged this run; stamp it so a later run (not
      // this one) replays the recorded charges on a warm hit.
      if (governor_ != nullptr) {
        job.shell->charges.charged_run = governor_->run_id();
      }
      continue;
    }
    for (const std::string& key : job.cache_keys) cache_.erase(key);
    if (!job.status.IsResourceExhausted()) NoteHardError(job.status);
  }
  stats_.fold_seconds += fold_timer.ElapsedSeconds();

  // ---- Answer phase (serial, group order) ----------------------------
  Timer answer_timer;
  for (const PlannedGroup& pg : planned) {
    for (size_t qi : pg.query_indices) {
      const auto& q = queries[qi];
      CubeAggregate agg;
      agg.column = q.agg_column;
      agg.fn = (q.fn == AggFn::kPercentage ||
                q.fn == AggFn::kConditionalProbability)
                   ? AggFn::kCount
                   : q.fn;
      auto it = pg.sources.find(agg.Key());
      if (it == pg.sources.end()) {
        results[qi] = std::nullopt;
        continue;
      }
      const Source& src = it->second;
      if (src.job >= 0 && !jobs[static_cast<size_t>(src.job)].status.ok()) {
        // Cube execution failed; a governor stop means this query was
        // aborted (its claim degrades to a partial verdict), anything else
        // is recorded for the recovery pass.
        NoteQueryFailure(qi, jobs[static_cast<size_t>(src.job)].status);
        results[qi] = std::nullopt;
        continue;
      }
      results[qi] = AnswerFromCube(q, normalized[qi], *src.cube,
                                   src.agg_idx);
    }
  }

  stats_.answer_seconds += answer_timer.ElapsedSeconds();

  stats_.rows_scanned += serial_scan.rows_scanned;
  stats_.joins_built += serial_scan.joins_built;
  stats_.join_cache_hits += serial_scan.join_cache_hits;
  stats_.join_seconds += serial_scan.join_seconds;
  return results;
}

void EvalEngine::ExecuteJobs(std::vector<CubeJob>& jobs) {
  // ---- Execute phase (parallel, morsel-driven) ------------------------
  // Each job fills exactly one shell; workers share nothing but the
  // database (read-only, dictionaries and flat views pre-warmed), the
  // relation cache (internally synchronized), and the governor (atomic,
  // charged through local shards). Three stages, each a flat RunIndexed
  // so the pool is never entered from inside one of its own regions:
  //
  //  1. Prepare every job: validation, relation acquisition through the
  //     shared cache (one build per distinct table set, concurrent
  //     acquirers block only on that entry), column binding, block sizing.
  //  2. Drain one global queue of (job, row-block) morsels. This replaces
  //     the old jobs-XOR-blocks split — parallelism no longer depends on
  //     the batch's shape: a lone 1M-row cube yields ~256 morsels, many
  //     small cubes yield a few morsels each, and the pool load-balances
  //     across all of them uniformly.
  //  3. Finish every job: the serial block-order combo fold plus the
  //     aggregation kernels, independent per job.
  //
  // Block scans write only job-local state, so the fold in Finish replays
  // block order and results stay bit-identical for any thread count or
  // morsel interleaving.
  Timer execute_timer;
  CubeExecOptions exec_options;
  exec_options.mode = cube_exec_;
  exec_options.relation_cache = relation_cache_;
  std::vector<CubeExecution> execs(jobs.size());
  RunIndexed(jobs.size(), [&](size_t j) {
    CubeJob& job = jobs[j];
    if (governor_ != nullptr) {
      Status trip = governor_->TripStatus();
      if (!trip.ok()) {
        job.status = trip;  // budget spent before this cube started
        return;
      }
    }
    job.status = execs[j].Prepare(*db_, job.shell.get(), &job.scan,
                                  governor_, exec_options);
  });

  struct Morsel {
    uint32_t job = 0;
    uint32_t block = 0;
  };
  std::vector<Morsel> morsels;
  for (size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].status.ok()) continue;
    for (size_t b = 0; b < execs[j].num_blocks(); ++b) {
      morsels.push_back(
          Morsel{static_cast<uint32_t>(j), static_cast<uint32_t>(b)});
    }
  }
  // The cooperative watchdog times every morsel; a job whose slowest morsel
  // exceeds the stall multiple of the batch's median is flagged. Wall-clock
  // based, so strictly measurement-only (never part of determinism
  // fingerprints) — its value is surfacing scheduling pathologies in the
  // harness/bench counters, not changing results.
  const bool watchdog =
      recovery_.has_value() && recovery_->watchdog_stall_multiple > 0.0;
  std::vector<double> morsel_seconds(watchdog ? morsels.size() : 0, 0.0);
  std::vector<Status> morsel_status(morsels.size());
  RunIndexed(morsels.size(), [&](size_t m) {
    if (governor_ != nullptr) {
      Status trip = governor_->TripStatus();
      if (!trip.ok()) {
        morsel_status[m] = trip;  // budget spent before this morsel
        return;
      }
    }
    Timer morsel_timer;
    morsel_status[m] = execs[morsels[m].job].ScanBlock(morsels[m].block);
    if (watchdog) morsel_seconds[m] = morsel_timer.ElapsedSeconds();
  });
  if (watchdog && morsels.size() >= 4) {
    std::vector<uint32_t> morsel_job(morsels.size());
    for (size_t m = 0; m < morsels.size(); ++m) morsel_job[m] = morsels[m].job;
    stats_.watchdog_flags +=
        CountStalledJobs(morsel_seconds, morsel_job, jobs.size(),
                         recovery_->watchdog_stall_multiple);
  }
  // Per-job error fold in ascending morsel order (= ascending block order
  // within a job): the failure a job reports is its lowest failing block,
  // not whichever worker lost the race.
  for (size_t m = 0; m < morsels.size(); ++m) {
    CubeJob& job = jobs[morsels[m].job];
    if (job.status.ok() && !morsel_status[m].ok()) {
      job.status = morsel_status[m];
    }
  }

  RunIndexed(jobs.size(), [&](size_t j) {
    CubeJob& job = jobs[j];
    if (!job.status.ok()) return;  // scans failed; shell stays unfilled
    job.status = execs[j].Finish();
  });
  stats_.execute_seconds += execute_timer.ElapsedSeconds();
}

const EvalEngine::CompiledQuery& EvalEngine::EnsureCompiled(
    QueryInterner::Id id) {
  if (compiled_.size() <= id) compiled_.resize(id + 1);
  CompiledQuery& cq = compiled_[id];
  if (cq.compiled) return cq;
  cq.compiled = true;
  const SimpleAggregateQuery& q = interner_.Materialize(id);
  cq.valid = executor_.Validate(q).ok();
  if (!cq.valid) return cq;
  cq.normalized = Normalize(q.predicates);
  cq.dims.reserve(cq.normalized.preds.size());
  for (const Predicate& p : cq.normalized.preds) cq.dims.push_back(p.column);
  std::sort(cq.dims.begin(), cq.dims.end());
  std::vector<QueryInterner::Id> dim_ids;
  dim_ids.reserve(cq.dims.size());
  for (const ColumnRef& d : cq.dims) dim_ids.push_back(interner_.InternColumn(d));
  cq.dimset = interner_.InternDimSet(dim_ids);
  cq.relation = interner_.InternTableSet(q.ReferencedTables());
  AggFn base_fn = (q.fn == AggFn::kPercentage ||
                   q.fn == AggFn::kConditionalProbability)
                      ? AggFn::kCount
                      : q.fn;
  cq.agg = interner_.InternAggregate(base_fn,
                                     interner_.InternColumn(q.agg_column));
  return cq;
}

const EvalEngine::GroupPlan& EvalEngine::EnsureGroupPlan(
    const CompiledQuery& cq) {
  uint64_t key = (uint64_t{cq.relation} << 32) | uint64_t{cq.dimset};
  auto it = group_plans_.find(key);
  if (it != group_plans_.end()) {
    ++stats_.plan_cache_hits;
    return it->second;
  }
  GroupPlan plan;
  plan.dims = cq.dims;
  plan.dim_columns.reserve(plan.dims.size());
  for (const ColumnRef& d : plan.dims) {
    plan.dim_columns.push_back(db_->FindColumn(d));
  }
  plan.relation = cq.relation;
  plan.dimset = cq.dimset;
  plan.relation_key = interner_.relation_key(cq.relation);
  plan.dimset_key = DimSetKey(plan.dims);
  plan.sort_key = plan.relation_key + "||" + plan.dimset_key;
  ++stats_.plans_built;
  return group_plans_.emplace(key, std::move(plan)).first->second;
}

const EvalEngine::CacheEntry* EvalEngine::FindCachedIds(
    QueryInterner::Id agg, const GroupPlan& plan,
    const std::vector<const std::vector<Value>*>& dim_literals,
    SliceKey* hit_key) const {
  // Same coverage test as the string path's FindCached: every group
  // dimension must be a dimension of the candidate cube, with every batch
  // literal separately bucketed (relation equality is implied by the keys).
  auto covers = [&](const CacheEntry& entry) {
    const CubeResult& cube = *entry.cube;
    for (size_t i = 0; i < plan.dims.size(); ++i) {
      int dim = -1;
      for (size_t d = 0; d < cube.dims().size(); ++d) {
        if (cube.dims()[d] == plan.dims[i]) {
          dim = static_cast<int>(d);
          break;
        }
      }
      if (dim < 0) return false;  // dimension not in this cube
      for (const Value& v : *dim_literals[i]) {
        if (cube.BucketOf(static_cast<size_t>(dim), v) == kDefaultBucket) {
          return false;  // literal not separately bucketed
        }
      }
    }
    return true;
  };

  // Exact dimension-set hit first.
  auto it = fp_cache_.find(SliceKey{agg, plan.relation, plan.dimset});
  if (it != fp_cache_.end() && covers(it->second)) {
    if (hit_key != nullptr) *hit_key = it->first;
    return &it->second;
  }

  // Otherwise any cached cube for the same aggregate over the same relation
  // whose dimensions are a superset of the group's (rollup reuse, §6.3).
  auto oit =
      fp_cache_order_.find((uint64_t{agg} << 32) | uint64_t{plan.relation});
  if (oit == fp_cache_order_.end()) return nullptr;
  for (const SliceKey& key : oit->second) {
    auto eit = fp_cache_.find(key);
    if (eit == fp_cache_.end()) continue;  // withdrawn: stale order entry
    if (covers(eit->second)) {
      if (hit_key != nullptr) *hit_key = key;
      return &eit->second;
    }
  }
  return nullptr;
}

std::vector<std::optional<double>> EvalEngine::EvaluateMergedIds(
    const std::vector<QueryInterner::Id>& ids, bool use_cache) {
  std::vector<std::optional<double>> results(ids.size());
  // Probe-decided flags for this batch, consumed (moved out) at entry:
  // recovery re-runs re-enter this function with a *subset* of the original
  // ids, and stale member flags would misalign with subset indices.
  std::vector<uint8_t> decided = std::move(batch_decided_);
  batch_decided_.clear();
  const bool probe_batch = decided.size() == ids.size();
  if (probe_batch) decided_settled_.assign(ids.size(), 0);
  // Fingerprint-plan-path-only fault point: the string-keyed rung of the
  // fallback ladder does not pass through here, so chaos tests can prove
  // the ladder heals a poisoned fingerprint path.
  {
    Status planner_fault = Status::OK();
    AGG_FAULT_POINT_STATUS("plan.fingerprint", planner_fault);
    if (!planner_fault.ok()) {
      for (size_t i = 0; i < ids.size(); ++i) {
        NoteQueryFailure(i, planner_fault);
      }
      return results;
    }
  }
  Timer plan_timer;

  // ---- Plan phase (serial) -------------------------------------------
  // The fingerprint twin of EvaluateMerged's plan phase: same ordering,
  // same cache decisions, but all identity work is integer hashing against
  // state compiled once per distinct query / group and reused across
  // batches and EM iterations.

  // Compile every query once (validity, normalization, group ids).
  for (QueryInterner::Id id : ids) EnsureCompiled(id);

  // Batch-relevant literals: the union of predicate values per column over
  // the whole batch — including invalid queries, exactly like the string
  // path, which collects literals before validation. Dedup is by predicate
  // id: the interner's value identity is Value::operator==, the same
  // equivalence the string path's std::find dedup uses.
  ++batch_epoch_;
  if (batch_epoch_ == 0) {
    // Epoch counter wrapped: stale stamps could alias. Reset all stamps.
    std::fill(pred_epoch_.begin(), pred_epoch_.end(), 0u);
    std::fill(col_epoch_.begin(), col_epoch_.end(), 0u);
    batch_epoch_ = 1;
  }
  if (pred_epoch_.size() < interner_.num_predicates()) {
    pred_epoch_.resize(interner_.num_predicates(), 0u);
  }
  if (col_epoch_.size() < interner_.num_columns()) {
    col_epoch_.resize(interner_.num_columns(), 0u);
    col_slot_.resize(interner_.num_columns(), 0u);
  }
  batch_cols_.clear();
  for (QueryInterner::Id id : ids) {
    for (QueryInterner::Id pid :
         interner_.pred_list(interner_.query_pred_list(id))) {
      if (pred_epoch_[pid] == batch_epoch_) continue;
      pred_epoch_[pid] = batch_epoch_;
      const auto& parts = interner_.predicate(pid);
      if (col_epoch_[parts.column] != batch_epoch_) {
        col_epoch_[parts.column] = batch_epoch_;
        col_slot_[parts.column] = static_cast<uint32_t>(batch_cols_.size());
        batch_cols_.push_back(parts.column);
        if (batch_literals_.size() < batch_cols_.size()) {
          batch_literals_.emplace_back();
        }
        batch_literals_[col_slot_[parts.column]].clear();
      }
      batch_literals_[col_slot_[parts.column]].push_back(
          interner_.value(parts.value));
    }
  }

  // Group queries by (relation, dimension set) — integer keys — then sort
  // groups by the string path's composite map key so group order (and with
  // it intra-batch cache rollup behavior) is byte-identical.
  struct BatchGroup {
    const GroupPlan* plan = nullptr;
    std::vector<size_t> query_indices;
  };
  std::unordered_map<uint64_t, size_t> group_index;
  std::vector<BatchGroup> batch_groups;
  ScanStats serial_scan;

  for (size_t i = 0; i < ids.size(); ++i) {
    const CompiledQuery& cq = compiled_[ids[i]];
    if (!cq.valid) {
      results[i] = std::nullopt;
      continue;
    }
    if (cq.normalized.unsatisfiable) {
      // Rare degenerate case: fall back to the reference executor so all
      // strategies agree on semantics.
      auto r = executor_.Execute(interner_.Materialize(ids[i]), &serial_scan,
                                 governor_, relation_cache_);
      if (!r.ok()) NoteQueryFailure(i, r.status());
      results[i] = r.ok() ? *r : std::nullopt;
      continue;
    }
    uint64_t gkey = (uint64_t{cq.relation} << 32) | uint64_t{cq.dimset};
    auto [git, inserted] = group_index.emplace(gkey, batch_groups.size());
    if (inserted) {
      batch_groups.push_back(BatchGroup{&EnsureGroupPlan(cq), {}});
    }
    batch_groups[git->second].query_indices.push_back(i);
  }
  std::sort(batch_groups.begin(), batch_groups.end(),
            [](const BatchGroup& a, const BatchGroup& b) {
              return a.plan->sort_key < b.plan->sort_key;
            });

  /// Where a query's aggregate comes from, keyed by aggregate id.
  struct Source {
    std::shared_ptr<CubeResult> cube;
    size_t agg_idx = 0;
    int job = -1;
    /// Failed slice fill-in (see FillInSlice); queries reading this source
    /// fail into the recovery channel, like a failed job.
    Status fill = Status::OK();
  };
  struct PlannedGroup {
    std::vector<size_t> query_indices;
    std::unordered_map<QueryInterner::Id, Source> sources;
  };
  std::vector<CubeJob> jobs;
  std::vector<PlannedGroup> planned;
  planned.reserve(batch_groups.size());
  std::unordered_map<const CubeResult*, int> job_of_cube;

  for (BatchGroup& bg : batch_groups) {
    const GroupPlan& plan = *bg.plan;
    // Base aggregate ids needed by this group, deduplicated in first-need
    // order (matches the string path's CubeAggregate dedup — aggregate ids
    // are injective on (fn, column) identity). An aggregate is "live" when
    // some undecided query reads it; slices read only by probe-decided
    // queries skip their kernels (DESIGN.md §17).
    std::vector<QueryInterner::Id> needed;
    std::vector<uint8_t> needed_live;
    for (size_t qi : bg.query_indices) {
      QueryInterner::Id agg = compiled_[ids[qi]].agg;
      auto nit = std::find(needed.begin(), needed.end(), agg);
      size_t pos;
      if (nit == needed.end()) {
        needed.push_back(agg);
        needed_live.push_back(0);
        pos = needed.size() - 1;
      } else {
        pos = static_cast<size_t>(nit - needed.begin());
      }
      if (!probe_batch || !decided[qi]) needed_live[pos] = 1;
    }

    // This batch's literals per group dimension (every dimension column
    // appeared in some raw predicate, so its batch slot exists).
    std::vector<const std::vector<Value>*> dim_literals;
    dim_literals.reserve(plan.dims.size());
    for (size_t d = 0; d < plan.dims.size(); ++d) {
      QueryInterner::Id col = interner_.dim_set(plan.dimset)[d];
      dim_literals.push_back(&batch_literals_[col_slot_[col]]);
    }

    PlannedGroup pg;
    pg.query_indices = std::move(bg.query_indices);
    std::vector<QueryInterner::Id> to_execute;
    std::vector<uint8_t> to_execute_live;
    for (size_t na = 0; na < needed.size(); ++na) {
      const QueryInterner::Id agg = needed[na];
      const bool live = needed_live[na] != 0;
      if (use_cache) {
        SliceKey hit_key;
        const CacheEntry* hit = FindCachedIds(agg, plan, dim_literals,
                                              &hit_key);
        // Cross-run charge replay, as on the string path.
        if (hit != nullptr && job_of_cube.count(hit->cube.get()) == 0 &&
            !ReplayChargesForHit(*hit)) {
          fp_cache_.erase(hit_key);
          hit = nullptr;
        }
        if (hit != nullptr) {
          ++stats_.cache_hits;
          Source src;
          src.cube = hit->cube;
          src.agg_idx = hit->agg_idx;
          auto jit = job_of_cube.find(hit->cube.get());
          if (jit != job_of_cube.end()) src.job = jit->second;
          if (live && !hit->cube->slice_live(hit->agg_idx)) {
            if (src.job >= 0) {
              // The hit is one of this batch's own shells, not yet
              // executed (the plan phase is serial): flip its mask so the
              // execution materializes the slice.
              hit->cube->MarkSliceLive(hit->agg_idx);
            } else {
              // A cached cube from an earlier batch skipped this slice;
              // repair it off-ledger. A failure (fault injection only —
              // the repair runs ungoverned) is routed through the normal
              // per-query failure channel so recovery heals it.
              src.fill = FillInSlice(*hit);
            }
          }
          pg.sources[agg] = std::move(src);
          continue;
        }
        ++stats_.cache_misses;
      }
      to_execute.push_back(agg);
      to_execute_live.push_back(live ? 1 : 0);
    }

    if (!to_execute.empty()) {
      std::vector<std::vector<Value>> cube_literals;
      cube_literals.reserve(plan.dims.size());
      for (size_t d = 0; d < plan.dims.size(); ++d) {
        cube_literals.push_back(*dim_literals[d]);
        // Pre-warm the dimension's lazy dictionary (codes + distinct
        // values) while still serial; cube workers then only read it.
        if (plan.dim_columns[d] != nullptr) (void)plan.dim_columns[d]->Codes();
      }
      std::vector<CubeAggregate> cube_aggs;
      cube_aggs.reserve(to_execute.size());
      for (QueryInterner::Id agg : to_execute) {
        const auto& parts = interner_.aggregate(agg);
        CubeAggregate ca;
        ca.fn = parts.fn;
        ca.column = interner_.column(parts.column);
        // Pre-warm what the vectorized kernels read: the flat typed view of
        // the aggregate column, and the dictionary for CountDistinct.
        if (!ca.is_star()) {
          if (const Column* col = db_->FindColumn(ca.column)) {
            (void)col->Flat();
            if (ca.fn == AggFn::kCountDistinct) (void)col->Codes();
          }
        }
        cube_aggs.push_back(std::move(ca));
      }
      CubeJob job;
      job.shell = std::make_shared<CubeResult>(plan.dims, cube_literals,
                                               cube_aggs);
      if (std::find(to_execute_live.begin(), to_execute_live.end(),
                    uint8_t{0}) != to_execute_live.end()) {
        // Some slice has only probe-decided readers: install the liveness
        // mask. The shell keeps its full aggregate list, so combos, group
        // keys, and all modeled charges match an unmasked execution; later
        // cache hits of this batch may still flip slices back to live.
        job.shell->SetSliceLiveness(to_execute_live);
      }
      const int job_idx = static_cast<int>(jobs.size());
      job_of_cube[job.shell.get()] = job_idx;
      ++stats_.cube_queries;
      for (size_t a = 0; a < to_execute.size(); ++a) {
        Source src;
        src.cube = job.shell;
        src.agg_idx = a;
        src.job = job_idx;
        pg.sources[to_execute[a]] = std::move(src);
        if (use_cache && !publish_read_only_) {
          SliceKey key{to_execute[a], plan.relation, plan.dimset};
          auto [cit, inserted] =
              fp_cache_.emplace(key, CacheEntry{job.shell, a, {}});
          if (!inserted) {
            // Republished slice (the earlier cube lacked a literal bucket):
            // replace the entry but keep its original rollup-scan position.
            cit->second = CacheEntry{job.shell, a, {}};
          } else {
            fp_cache_order_[(uint64_t{to_execute[a]} << 32) |
                            uint64_t{plan.relation}]
                .push_back(key);
          }
          job.slice_keys.push_back(key);
        }
      }
      jobs.push_back(std::move(job));
    }
    planned.push_back(std::move(pg));
  }

  stats_.plan_seconds += plan_timer.ElapsedSeconds();

  ExecuteJobs(jobs);

  // ---- Fold phase (serial, job order) --------------------------------
  Timer fold_timer;
  for (CubeJob& job : jobs) {
    stats_.rows_scanned += job.scan.rows_scanned;
    stats_.joins_built += job.scan.joins_built;
    stats_.join_cache_hits += job.scan.join_cache_hits;
    stats_.join_seconds += job.scan.join_seconds;
    if (job.status.ok()) {
      if (governor_ != nullptr) {
        job.shell->charges.charged_run = governor_->run_id();
      }
      stats_.probe_slices_total += job.shell->aggregates().size();
      stats_.probe_slice_rows_total +=
          job.scan.rows_scanned * job.shell->aggregates().size();
      if (!job.shell->all_slices_live()) {
        size_t dead = 0;
        for (size_t a = 0; a < job.shell->aggregates().size(); ++a) {
          if (!job.shell->slice_live(a)) ++dead;
        }
        stats_.probe_slices_skipped += dead;
        stats_.probe_slice_rows_skipped += job.scan.rows_scanned * dead;
        if (dead == job.shell->aggregates().size()) ++stats_.probe_jobs_dead;
      }
      continue;
    }
    for (const SliceKey& key : job.slice_keys) fp_cache_.erase(key);
    if (!job.status.IsResourceExhausted()) NoteHardError(job.status);
  }
  stats_.fold_seconds += fold_timer.ElapsedSeconds();

  // ---- Answer phase (serial, group order) ----------------------------
  Timer answer_timer;
  for (const PlannedGroup& pg : planned) {
    for (size_t qi : pg.query_indices) {
      const CompiledQuery& cq = compiled_[ids[qi]];
      auto it = pg.sources.find(cq.agg);
      if (it == pg.sources.end()) {
        results[qi] = std::nullopt;
        continue;
      }
      const Source& src = it->second;
      if (src.job >= 0 && !jobs[static_cast<size_t>(src.job)].status.ok()) {
        // Cube execution failed; a governor stop means this query was
        // aborted (its claim degrades to a partial verdict), anything else
        // is recorded for the recovery pass.
        NoteQueryFailure(qi, jobs[static_cast<size_t>(src.job)].status);
        results[qi] = std::nullopt;
        continue;
      }
      if (!src.fill.ok()) {
        // Slice fill-in failed: same degradation path as a failed job, so
        // recovery re-runs these queries for real.
        NoteQueryFailure(qi, src.fill);
        results[qi] = std::nullopt;
        continue;
      }
      if (probe_batch && decided[qi] != 0) {
        // The probe decided this query and its cube completed cleanly:
        // settle it. If the slice was materialized anyway (shared with an
        // undecided query, or an unmasked cached cube) answer for real —
        // strictly more evidence; otherwise the caller's synthesized
        // outcome stands.
        decided_settled_[qi] = 1;
        if (!src.cube->slice_live(src.agg_idx)) {
          results[qi] = std::nullopt;
          continue;
        }
      }
      results[qi] = AnswerFromCube(interner_.Materialize(ids[qi]),
                                   cq.normalized, *src.cube, src.agg_idx);
    }
  }

  stats_.answer_seconds += answer_timer.ElapsedSeconds();

  stats_.rows_scanned += serial_scan.rows_scanned;
  stats_.joins_built += serial_scan.joins_built;
  stats_.join_cache_hits += serial_scan.join_cache_hits;
  stats_.join_seconds += serial_scan.join_seconds;
  return results;
}

size_t EvalEngine::CountStalledJobs(const std::vector<double>& morsel_seconds,
                                    const std::vector<uint32_t>& morsel_job,
                                    size_t num_jobs, double stall_multiple) {
  if (morsel_seconds.empty() || morsel_seconds.size() != morsel_job.size() ||
      stall_multiple <= 0.0 || num_jobs == 0) {
    return 0;
  }
  std::vector<double> sorted = morsel_seconds;
  const size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  const double median = sorted[mid];
  if (median <= 0.0) return 0;  // timings below clock resolution: no signal
  std::vector<double> worst(num_jobs, 0.0);
  for (size_t m = 0; m < morsel_seconds.size(); ++m) {
    if (morsel_job[m] >= num_jobs) continue;
    worst[morsel_job[m]] = std::max(worst[morsel_job[m]], morsel_seconds[m]);
  }
  size_t flagged = 0;
  for (double w : worst) {
    if (w > stall_multiple * median) ++flagged;
  }
  return flagged;
}

}  // namespace db
}  // namespace aggchecker

