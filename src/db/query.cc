#include "db/query.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {
std::vector<std::string> SortedPredicateKeys(
    const std::vector<Predicate>& preds) {
  std::vector<std::string> keys;
  keys.reserve(preds.size());
  for (const auto& p : preds) {
    keys.push_back(p.column.ToString() + "='" + p.value.ToString() + "'");
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
}  // namespace

bool SimpleAggregateQuery::operator==(
    const SimpleAggregateQuery& other) const {
  if (fn != other.fn || !(agg_column == other.agg_column)) return false;
  if (predicates.size() != other.predicates.size()) return false;
  // ConditionalProbability is order-sensitive in its first predicate.
  if (fn == AggFn::kConditionalProbability) {
    if (!predicates.empty() && !(predicates[0] == other.predicates[0])) {
      return false;
    }
  }
  return SortedPredicateKeys(predicates) ==
         SortedPredicateKeys(other.predicates);
}

std::string SimpleAggregateQuery::CanonicalKey() const {
  std::string key = AggFnName(fn);
  key += '(';
  key += is_star() ? agg_column.table + ".*" : agg_column.ToString();
  key += ')';
  if (fn == AggFn::kConditionalProbability && !predicates.empty()) {
    key += "|cond:" + predicates[0].column.ToString() + "='" +
           predicates[0].value.ToString() + "'";
  }
  for (const auto& pk : SortedPredicateKeys(predicates)) {
    key += '|';
    key += pk;
  }
  return key;
}

std::string SimpleAggregateQuery::ToSql() const {
  std::string sql = "SELECT ";
  sql += AggFnName(fn);
  sql += '(';
  sql += is_star() ? "*" : agg_column.column;
  sql += ") FROM ";
  auto tables = ReferencedTables();
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) sql += " E-JOIN ";
    sql += tables[i];
  }
  if (!predicates.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i].column.column + " = '" +
             predicates[i].value.ToString() + "'";
    }
  }
  return sql;
}

std::vector<std::string> SimpleAggregateQuery::ReferencedTables() const {
  std::set<std::string> seen;
  std::vector<std::string> tables;
  auto add = [&](const std::string& t) {
    if (!t.empty() && seen.insert(t).second) tables.push_back(t);
  };
  add(agg_column.table);
  for (const auto& p : predicates) add(p.column.table);
  return tables;
}

size_t SimpleAggregateQuery::Hash() const {
  return std::hash<std::string>{}(CanonicalKey());
}

namespace {

Result<std::pair<ColumnRef, Value>> ParseKeyPredicate(
    const std::string& piece) {
  // Format: table.column='value'
  size_t eq = piece.find("='");
  if (eq == std::string::npos || piece.empty() || piece.back() != '\'') {
    return Status::ParseError("bad predicate piece: " + piece);
  }
  std::string col_part = piece.substr(0, eq);
  std::string value_raw = piece.substr(eq + 2, piece.size() - eq - 3);
  size_t dot = col_part.find('.');
  if (dot == std::string::npos) {
    return Status::ParseError("predicate column missing table: " + col_part);
  }
  ColumnRef column{col_part.substr(0, dot), col_part.substr(dot + 1)};
  return std::make_pair(column, ParseCell(value_raw));
}

std::optional<AggFn> AggFnByName(const std::string& name) {
  for (AggFn fn : AllAggFns()) {
    if (name == AggFnName(fn)) return fn;
  }
  return std::nullopt;
}

}  // namespace

Result<SimpleAggregateQuery> SimpleAggregateQuery::FromCanonicalKey(
    const std::string& key) {
  size_t open = key.find('(');
  size_t close = key.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return Status::ParseError("malformed canonical key: " + key);
  }
  SimpleAggregateQuery q;
  auto fn = AggFnByName(key.substr(0, open));
  if (!fn.has_value()) {
    return Status::ParseError("unknown aggregation function in key: " + key);
  }
  q.fn = *fn;
  std::string target = key.substr(open + 1, close - open - 1);
  if (target != "*") {
    size_t dot = target.find('.');
    if (dot == std::string::npos) {
      return Status::ParseError("aggregation column missing table: " +
                                target);
    }
    std::string column = target.substr(dot + 1);
    if (column == "*") column.clear();  // "table.*" star form
    q.agg_column = ColumnRef{target.substr(0, dot), std::move(column)};
  }

  std::string rest = key.substr(close + 1);
  std::optional<Predicate> condition;
  size_t pos = 0;
  while (pos < rest.size()) {
    if (rest[pos] != '|') {
      return Status::ParseError("malformed canonical key tail: " + rest);
    }
    size_t next = rest.find('|', pos + 1);
    std::string piece = rest.substr(
        pos + 1, next == std::string::npos ? std::string::npos
                                           : next - pos - 1);
    pos = next == std::string::npos ? rest.size() : next;
    if (strings::StartsWith(piece, "cond:")) {
      auto parsed = ParseKeyPredicate(piece.substr(5));
      if (!parsed.ok()) return parsed.status();
      condition = Predicate{parsed->first, parsed->second};
      continue;
    }
    auto parsed = ParseKeyPredicate(piece);
    if (!parsed.ok()) return parsed.status();
    q.predicates.push_back(Predicate{parsed->first, parsed->second});
  }
  // ConditionalProbability: the condition must come first; it is also
  // listed among the sorted predicates, so just reorder.
  if (condition.has_value()) {
    for (size_t i = 0; i < q.predicates.size(); ++i) {
      if (q.predicates[i] == *condition) {
        std::swap(q.predicates[0], q.predicates[i]);
        break;
      }
    }
  }
  // Resolve the star target's table from predicates when possible.
  if (q.is_star() && q.agg_column.table.empty() && !q.predicates.empty()) {
    q.agg_column.table = q.predicates[0].column.table;
  }
  return q;
}

}  // namespace db
}  // namespace aggchecker
