#include "db/sql_parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {

/// SQL token: word, quoted string, number, or punctuation character.
struct SqlToken {
  enum Kind { kWord, kString, kNumber, kPunct } kind;
  std::string text;  ///< words lower-cased; strings/numbers verbatim
};

Result<std::vector<SqlToken>> Lex(const std::string& sql) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char ch = sql[i];
    if (std::isspace(static_cast<unsigned char>(ch))) {
      ++i;
      continue;
    }
    if (ch == '\'') {
      std::string value;
      ++i;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        value.push_back(sql[i++]);
      }
      if (i >= n) return Status::ParseError("unterminated string literal");
      ++i;  // closing quote
      tokens.push_back({SqlToken::kString, std::move(value)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        ((ch == '-' || ch == '+') && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string number;
      number.push_back(ch);
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        number.push_back(sql[i++]);
      }
      tokens.push_back({SqlToken::kNumber, std::move(number)});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(sql[i]))));
        ++i;
      }
      tokens.push_back({SqlToken::kWord, std::move(word)});
      continue;
    }
    tokens.push_back({SqlToken::kPunct, std::string(1, ch)});
    ++i;
  }
  return tokens;
}

/// Cursor over the token stream.
class Parser {
 public:
  Parser(std::vector<SqlToken> tokens, const Database& db)
      : tokens_(std::move(tokens)), db_(db) {}

  Result<SimpleAggregateQuery> Run() {
    if (!EatWord("select")) {
      return Status::ParseError("expected SELECT");
    }
    SimpleAggregateQuery query;

    // Aggregation function.
    std::optional<AggFn> fn = ParseFunctionName();
    if (!fn.has_value()) {
      return Status::ParseError("unknown aggregation function");
    }
    query.fn = *fn;

    // (column | * | DISTINCT column)
    if (!EatPunct("(")) return Status::ParseError("expected '('");
    if (EatWord("distinct")) {
      if (query.fn != AggFn::kCount) {
        return Status::ParseError("DISTINCT only valid with COUNT");
      }
      query.fn = AggFn::kCountDistinct;
    }
    if (EatPunct("*")) {
      // all-column; table resolved after FROM
    } else {
      auto column = ParseColumnRef();
      if (!column.ok()) return column.status();
      query.agg_column = *column;
    }
    if (!EatPunct(")")) return Status::ParseError("expected ')'");

    // FROM table [E-JOIN table ...]
    if (!EatWord("from")) return Status::ParseError("expected FROM");
    std::vector<std::string> tables;
    while (true) {
      const SqlToken* t = Next();
      if (t == nullptr || t->kind != SqlToken::kWord) {
        return Status::ParseError("expected table name after FROM");
      }
      const Table* table = db_.FindTable(t->text);
      if (table == nullptr) {
        return Status::NotFound("unknown table: " + t->text);
      }
      tables.push_back(table->name());
      // E-JOIN / JOIN separators.
      size_t mark = pos_;
      if (EatWord("e") && EatPunct("-") && EatWord("join")) continue;
      pos_ = mark;
      if (EatWord("join")) continue;
      break;
    }
    if (query.agg_column.table.empty() && query.agg_column.column.empty()) {
      query.agg_column.table = tables[0];  // the "*" target
    }

    // WHERE clause.
    if (EatWord("where")) {
      while (true) {
        auto column = ParseColumnRef();
        if (!column.ok()) return column.status();
        if (!EatPunct("=")) return Status::ParseError("expected '='");
        const SqlToken* value = Next();
        if (value == nullptr ||
            (value->kind != SqlToken::kString &&
             value->kind != SqlToken::kNumber &&
             value->kind != SqlToken::kWord)) {
          return Status::ParseError("expected literal after '='");
        }
        query.predicates.push_back(
            Predicate{*column, ParseCell(value->text)});
        if (!EatWord("and")) break;
      }
    }
    if (pos_ != tokens_.size() && !(pos_ + 1 == tokens_.size() &&
                                    tokens_[pos_].kind == SqlToken::kPunct &&
                                    tokens_[pos_].text == ";")) {
      return Status::ParseError("unexpected trailing tokens");
    }

    // Final resolution sanity: every referenced column must exist.
    if (!query.is_star() && db_.FindColumn(query.agg_column) == nullptr) {
      return Status::NotFound("unknown column: " +
                              query.agg_column.ToString());
    }
    return query;
  }

 private:
  const SqlToken* Peek() const {
    return pos_ < tokens_.size() ? &tokens_[pos_] : nullptr;
  }
  const SqlToken* Next() {
    return pos_ < tokens_.size() ? &tokens_[pos_++] : nullptr;
  }
  bool EatWord(const std::string& word) {
    const SqlToken* t = Peek();
    if (t != nullptr && t->kind == SqlToken::kWord && t->text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatPunct(const std::string& punct) {
    const SqlToken* t = Peek();
    if (t != nullptr && t->kind == SqlToken::kPunct && t->text == punct) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<AggFn> ParseFunctionName() {
    const SqlToken* t = Next();
    if (t == nullptr || t->kind != SqlToken::kWord) return std::nullopt;
    std::string name = t->text;
    if (name == "count") {
      // COUNT DISTINCT as two words.
      size_t mark = pos_;
      if (EatWord("distinct")) return AggFn::kCountDistinct;
      pos_ = mark;
      return AggFn::kCount;
    }
    if (name == "countdistinct") return AggFn::kCountDistinct;
    if (name == "sum") return AggFn::kSum;
    if (name == "avg" || name == "average") return AggFn::kAvg;
    if (name == "min") return AggFn::kMin;
    if (name == "max") return AggFn::kMax;
    if (name == "percentage" || name == "percent") return AggFn::kPercentage;
    if (name == "conditionalprobability" || name == "condprob") {
      return AggFn::kConditionalProbability;
    }
    return std::nullopt;
  }

  /// column | table.column — unqualified names resolved over all tables.
  Result<ColumnRef> ParseColumnRef() {
    const SqlToken* first = Next();
    if (first == nullptr || first->kind != SqlToken::kWord) {
      return Status::ParseError("expected column name");
    }
    size_t mark = pos_;
    if (EatPunct(".")) {
      const SqlToken* second = Next();
      if (second == nullptr || second->kind != SqlToken::kWord) {
        return Status::ParseError("expected column after '.'");
      }
      const Table* table = db_.FindTable(first->text);
      if (table == nullptr) {
        return Status::NotFound("unknown table: " + first->text);
      }
      const Column* column = table->FindColumn(second->text);
      if (column == nullptr) {
        return Status::NotFound("unknown column: " + first->text + "." +
                                second->text);
      }
      return ColumnRef{table->name(), column->name()};
    }
    pos_ = mark;
    // Unqualified: must match exactly one table's column.
    std::optional<ColumnRef> found;
    for (size_t t = 0; t < db_.num_tables(); ++t) {
      const Table& table = db_.table(t);
      const Column* column = table.FindColumn(first->text);
      if (column == nullptr) continue;
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column: " + first->text);
      }
      found = ColumnRef{table.name(), column->name()};
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column: " + first->text);
    }
    return *found;
  }

  std::vector<SqlToken> tokens_;
  const Database& db_;
  size_t pos_ = 0;
};

}  // namespace

Result<SimpleAggregateQuery> ParseSql(const std::string& sql,
                                      const Database& db) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(*tokens), db).Run();
}

}  // namespace db
}  // namespace aggchecker
