#include "db/joined_relation.h"

#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

Result<JoinedRelation> JoinedRelation::Build(
    const Database& db, const std::vector<std::string>& tables) {
  AGG_FAULT_POINT("join.materialize");
  JoinedRelation rel;
  rel.db_ = &db;

  auto plan = db.JoinPlan(tables);
  if (!plan.ok()) return plan.status();

  const Table* root = db.FindTable(plan->root);
  if (plan->steps.empty()) {
    rel.single_table_ = true;
    rel.num_rows_ = root->num_rows();
    rel.table_order_.push_back(strings::ToLower(root->name()));
    return rel;
  }

  // Start with the root table's identity mapping.
  rel.table_order_.push_back(strings::ToLower(root->name()));
  rel.row_indices_.emplace_back(root->num_rows());
  for (uint32_t r = 0; r < root->num_rows(); ++r) {
    rel.row_indices_[0][r] = r;
  }
  rel.num_rows_ = root->num_rows();

  for (const JoinStep& step : plan->steps) {
    const Table* right_table = db.FindTable(step.table);
    const Column* right_col = db.FindColumn(step.right);
    const Column* left_col = db.FindColumn(step.left);
    if (right_table == nullptr || right_col == nullptr ||
        left_col == nullptr) {
      return Status::Internal("join plan references unknown column");
    }
    // Locate the already-joined table holding the left column.
    std::string left_table = strings::ToLower(step.left.table);
    int left_pos = -1;
    for (size_t i = 0; i < rel.table_order_.size(); ++i) {
      if (rel.table_order_[i] == left_table) {
        left_pos = static_cast<int>(i);
        break;
      }
    }
    if (left_pos < 0) {
      return Status::Internal("join step left table not yet joined: " +
                              step.left.table);
    }

    // Hash the right side on the join column.
    std::unordered_multimap<Value, uint32_t, ValueHasher> hash;
    hash.reserve(right_table->num_rows());
    for (uint32_t r = 0; r < right_table->num_rows(); ++r) {
      const Value& v = right_col->at(r);
      if (!v.is_null()) hash.emplace(v, r);
    }

    // Probe with current joined rows; inner-join semantics.
    std::vector<std::vector<uint32_t>> next(rel.row_indices_.size() + 1);
    for (size_t r = 0; r < rel.num_rows_; ++r) {
      uint32_t left_base =
          rel.row_indices_[static_cast<size_t>(left_pos)][r];
      const Value& key = left_col->at(left_base);
      if (key.is_null()) continue;
      auto [begin, end] = hash.equal_range(key);
      for (auto it = begin; it != end; ++it) {
        for (size_t t = 0; t < rel.row_indices_.size(); ++t) {
          next[t].push_back(rel.row_indices_[t][r]);
        }
        next.back().push_back(it->second);
      }
    }
    rel.row_indices_ = std::move(next);
    rel.table_order_.push_back(strings::ToLower(right_table->name()));
    rel.num_rows_ = rel.row_indices_[0].size();
  }
  return rel;
}

Result<JoinedRelation::Binding> JoinedRelation::Bind(
    const ColumnRef& ref) const {
  const Column* column = db_->FindColumn(ref);
  if (column == nullptr) {
    return Status::NotFound("unknown column: " + ref.ToString());
  }
  std::string table = strings::ToLower(ref.table);
  size_t pos = 0;
  bool found = false;
  for (size_t i = 0; i < table_order_.size(); ++i) {
    if (table_order_[i] == table) {
      pos = i;
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::InvalidArgument("table not part of join: " + ref.table);
  }
  Binding binding;
  binding.column = column;
  binding.index = single_table_ ? nullptr : row_indices_[pos].data();
  return binding;
}

}  // namespace db
}  // namespace aggchecker
