#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief Materialized equi-join over the PK-FK join path of a table set.
///
/// Rows are represented as per-table row indices; column access goes through
/// the base tables without copying values. Single-table requests skip the
/// join machinery entirely.
class JoinedRelation {
 public:
  /// Builds the join of `tables` (inner join along the database's unique
  /// PK-FK paths, per §4.4). Fails if tables are not connected.
  static Result<JoinedRelation> Build(const Database& db,
                                      const std::vector<std::string>& tables);

  size_t num_rows() const { return num_rows_; }

  /// Resolves a column for fast repeated access. Fails if the column's
  /// table was not part of the join.
  Result<int> ResolveColumn(const ColumnRef& ref) const;

  /// Value of resolved column `handle` in joined row `row`.
  const Value& at(size_t row, int handle) const {
    const Slot& slot = slots_[static_cast<size_t>(handle)];
    size_t base_row =
        single_table_ ? row : row_indices_[slot.table_pos][row];
    return slot.column->at(base_row);
  }

  /// Base table of a resolved column (for dictionary-code access).
  const Column* column_of(int handle) const {
    return slots_[static_cast<size_t>(handle)].column;
  }

  /// Base-table row index behind joined row `row` for column `handle`.
  size_t base_row(size_t row, int handle) const {
    const Slot& slot = slots_[static_cast<size_t>(handle)];
    return single_table_ ? row : row_indices_[slot.table_pos][row];
  }

  /// Row-index array for column `handle`, or nullptr for single-table
  /// relations (joined row == base row). Lets vectorized kernels hoist the
  /// slot lookup out of their per-row loops:
  ///   base_row = idx ? idx[row] : row.
  const uint32_t* row_index_data(int handle) const {
    if (single_table_) return nullptr;
    return row_indices_[slots_[static_cast<size_t>(handle)].table_pos].data();
  }

  /// Modeled bytes of the materialized join state (the per-table row-index
  /// arrays). Zero for single-table relations, which materialize nothing.
  uint64_t ApproxBytes() const {
    uint64_t bytes = 0;
    for (const auto& idx : row_indices_) {
      bytes += static_cast<uint64_t>(idx.size()) * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  JoinedRelation() = default;

  struct Slot {
    const Column* column;
    size_t table_pos;  ///< index into row_indices_
  };

  const Database* db_ = nullptr;
  bool single_table_ = false;
  size_t num_rows_ = 0;
  std::vector<std::string> table_order_;  // lower-cased names
  // row_indices_[t][r] = row in base table t for joined row r.
  std::vector<std::vector<uint32_t>> row_indices_;
  mutable std::vector<Slot> slots_;
};

}  // namespace db
}  // namespace aggchecker
