#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief Materialized equi-join over the PK-FK join path of a table set.
///
/// Rows are represented as per-table row indices; column access goes through
/// the base tables without copying values. Single-table requests skip the
/// join machinery entirely.
///
/// Immutable after Build: every accessor (including Bind) is const and
/// touches no mutable state, so one relation may be shared by any number of
/// concurrent readers — the RelationCache hands the same instance to every
/// cube job and naive scan that needs it.
class JoinedRelation {
 public:
  /// Builds the join of `tables` (inner join along the database's unique
  /// PK-FK paths, per §4.4). Fails if tables are not connected. The join
  /// plan normalizes the table set internally, so the resulting row order
  /// is canonical for a table *set* regardless of the order `tables` lists
  /// it in — a cached relation is bit-identical to a per-caller rebuild.
  static Result<JoinedRelation> Build(const Database& db,
                                      const std::vector<std::string>& tables);

  size_t num_rows() const { return num_rows_; }

  /// Every base table this relation reads (lower-cased, join order) —
  /// including intermediate tables the join plan pulled in to connect the
  /// requested set. The dependency domain for data-version invalidation.
  const std::vector<std::string>& tables() const { return table_order_; }

  /// \brief A column bound to this relation for fast repeated access.
  ///
  /// Plain pointers into the relation and its base table; valid as long as
  /// the relation (and database) live. `index == nullptr` means joined row
  /// == base row (single-table relations).
  struct Binding {
    const Column* column = nullptr;
    const uint32_t* index = nullptr;

    /// Base-table row behind joined row `row`.
    size_t base_row(size_t row) const {
      return index != nullptr ? index[row] : row;
    }
    /// Value of the bound column in joined row `row`.
    const Value& at(size_t row) const { return column->at(base_row(row)); }
  };

  /// Binds a column for repeated access. Fails if the column's table was
  /// not part of the join. Const and thread-safe: bindings are snapshots,
  /// not registrations.
  Result<Binding> Bind(const ColumnRef& ref) const;

  /// Modeled bytes of the materialized join state (the per-table row-index
  /// arrays). Zero for single-table relations, which materialize nothing.
  uint64_t ApproxBytes() const {
    uint64_t bytes = 0;
    for (const auto& idx : row_indices_) {
      bytes += static_cast<uint64_t>(idx.size()) * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  JoinedRelation() = default;

  const Database* db_ = nullptr;
  bool single_table_ = false;
  size_t num_rows_ = 0;
  std::vector<std::string> table_order_;  // lower-cased names
  // row_indices_[t][r] = row in base table t for joined row r.
  std::vector<std::vector<uint32_t>> row_indices_;
};

}  // namespace db
}  // namespace aggchecker
