#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "db/column.h"
#include "util/csv.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief A named table: an ordered list of equally sized columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  /// Builds a table from parsed CSV, inferring column types: a column whose
  /// non-null cells are all integral is LONG, all numeric is DOUBLE,
  /// otherwise STRING (numeric-looking cells in a string column keep their
  /// string rendering).
  static Result<Table> FromCsv(std::string name, const csv::CsvData& data);

  /// Snapshot hook: assembles a table directly from restored columns (all
  /// already sized to `num_rows`), bypassing the AddColumn-before-AddRow
  /// staging rules. Fails if any column's size disagrees with `num_rows`.
  /// `data_version` restores the version counter the snapshot recorded, so
  /// caches keyed on it stay comparable across a save/load cycle.
  static Result<Table> FromSnapshotParts(
      std::string name, std::vector<std::unique_ptr<Column>> columns,
      size_t num_rows, uint64_t data_version = 1);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Monotonically increasing data version (starts at 1). Bumped only by
  /// the post-build ingestion API (AppendRows / UpdateCell), never by the
  /// initial staging path (AddRow) — a table under construction has no
  /// observers, so caches key on the version a finished table exposes.
  uint64_t version() const { return data_version_; }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }

  /// Case-insensitive column lookup. Returns -1 if absent.
  int ColumnIndex(const std::string& name) const;
  const Column* FindColumn(const std::string& name) const;

  /// Appends an empty column; all columns must be appended before rows.
  Status AddColumn(std::string column_name, ValueType type);

  /// Appends a row of values (one per column, in column order).
  Status AddRow(std::vector<Value> row);

  /// \brief Post-build ingestion: appends `rows` and bumps the data version.
  ///
  /// All rows are validated (arity and type: a LONG column accepts only
  /// longs, a DOUBLE column coerces longs, a STRING column renders anything)
  /// before anything mutates, so a rejected batch leaves the table — and its
  /// version — exactly as it was. Snapshot-backed columns materialize and
  /// detach on first touch (Column::Append). The `data.ingest.append` fault
  /// point fires before any mutation; chaos runs verify a faulted append
  /// leaves the version and every version-keyed cache untouched.
  Status AppendRows(std::vector<std::vector<Value>> rows);

  /// Replaces one cell in place and bumps the data version. Same type rules
  /// as AppendRows.
  Status UpdateCell(size_t row, const std::string& column_name, Value v);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
  uint64_t data_version_ = 1;
};

}  // namespace db
}  // namespace aggchecker
