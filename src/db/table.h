#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/column.h"
#include "util/csv.h"
#include "util/status.h"

namespace aggchecker {
namespace db {

/// \brief A named table: an ordered list of equally sized columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  /// Builds a table from parsed CSV, inferring column types: a column whose
  /// non-null cells are all integral is LONG, all numeric is DOUBLE,
  /// otherwise STRING (numeric-looking cells in a string column keep their
  /// string rendering).
  static Result<Table> FromCsv(std::string name, const csv::CsvData& data);

  /// Snapshot hook: assembles a table directly from restored columns (all
  /// already sized to `num_rows`), bypassing the AddColumn-before-AddRow
  /// staging rules. Fails if any column's size disagrees with `num_rows`.
  static Result<Table> FromSnapshotParts(
      std::string name, std::vector<std::unique_ptr<Column>> columns,
      size_t num_rows);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return *columns_[i]; }
  Column& column(size_t i) { return *columns_[i]; }

  /// Case-insensitive column lookup. Returns -1 if absent.
  int ColumnIndex(const std::string& name) const;
  const Column* FindColumn(const std::string& name) const;

  /// Appends an empty column; all columns must be appended before rows.
  Status AddColumn(std::string column_name, ValueType type);

  /// Appends a row of values (one per column, in column order).
  Status AddRow(std::vector<Value> row);

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace db
}  // namespace aggchecker
