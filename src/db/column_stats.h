#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace aggchecker {
namespace db {

/// \brief Per-column summary statistics backing verification-aware probes
/// (DESIGN.md §17).
///
/// Computed lazily by `Column::Stats()` under the column's double-checked
/// lazy-build idiom, persisted in snapshot format v3, and discarded whenever
/// the column mutates (Append/Update reset the built flag exactly like the
/// dictionary and flat view), so a stale prune can never survive a
/// `DataVersion` bump.
///
/// All numeric aggregates range over the *finite* non-null cells only
/// (`finite_count` of them); NaN/±inf cells set `has_non_finite` instead of
/// poisoning the bounds. With `finite_count == 0`, `min > max` — an empty
/// interval, which probe arithmetic treats as "no finite result attainable".
struct ColumnStats {
  size_t rows = 0;        ///< total cells
  size_t non_null = 0;    ///< cells that are not NULL
  size_t distinct = 0;    ///< exact distinct non-null values (dictionary size)
  bool numeric = false;   ///< LONG or DOUBLE column

  // Numeric-only aggregates (zero-initialized / empty for string columns).
  size_t finite_count = 0;  ///< non-null cells with a finite numeric value
  bool has_non_finite = false;  ///< some non-null cell is NaN or ±inf
  bool integral = false;    ///< every finite cell is an exact integer
  double min = std::numeric_limits<double>::infinity();   ///< over finite
  double max = -std::numeric_limits<double>::infinity();  ///< over finite
  double sum_pos = 0.0;     ///< sum of the positive finite cells
  double sum_neg = 0.0;     ///< sum of the negative finite cells
  double max_abs = 0.0;     ///< max |v| over finite cells
};

}  // namespace db
}  // namespace aggchecker
