#include "db/query_interner.h"

#include "db/relation_cache.h"
#include "util/strings.h"

namespace aggchecker {
namespace db {

namespace {

constexpr int kColumnBits = 28;
constexpr int kPredListBits = 28;
constexpr uint64_t kColumnMask = (uint64_t{1} << kColumnBits) - 1;
constexpr uint64_t kPredListMask = (uint64_t{1} << kPredListBits) - 1;

uint64_t PackFingerprint(AggFn fn, QueryInterner::Id agg_column,
                         QueryInterner::Id predlist) {
  return (uint64_t{static_cast<uint8_t>(fn)} << (kColumnBits + kPredListBits)) |
         ((uint64_t{agg_column} & kColumnMask) << kPredListBits) |
         (uint64_t{predlist} & kPredListMask);
}

}  // namespace

QueryInterner::Id QueryInterner::IdListInterner::Intern(
    const std::vector<Id>& ids) {
  auto it = index_.find(ids);
  if (it != index_.end()) return it->second;
  Id id = static_cast<Id>(lists_.size());
  lists_.push_back(ids);
  index_.emplace(ids, id);
  return id;
}

QueryInterner::Id QueryInterner::InternColumn(const ColumnRef& column) {
  std::string key = strings::ToLower(column.ToString());
  auto it = column_index_.find(key);
  if (it != column_index_.end()) return it->second;
  Id id = static_cast<Id>(columns_.size());
  columns_.push_back(column);
  column_index_.emplace(std::move(key), id);
  return id;
}

QueryInterner::Id QueryInterner::InternValue(const Value& value) {
  auto it = value_index_.find(value);
  if (it != value_index_.end()) return it->second;
  Id id = static_cast<Id>(values_.size());
  values_.push_back(value);
  value_index_.emplace(value, id);
  return id;
}

QueryInterner::Id QueryInterner::InternPredicate(const ColumnRef& column,
                                                 const Value& value) {
  Id col = InternColumn(column);
  Id val = InternValue(value);
  uint64_t key = (uint64_t{col} << 32) | uint64_t{val};
  auto it = predicate_index_.find(key);
  if (it != predicate_index_.end()) return it->second;
  Id id = static_cast<Id>(predicates_.size());
  predicates_.push_back(PredicateParts{col, val});
  predicate_index_.emplace(key, id);
  return id;
}

QueryInterner::Id QueryInterner::InternPredList(
    const std::vector<Id>& pred_ids) {
  return pred_lists_.Intern(pred_ids);
}

QueryInterner::Id QueryInterner::InternAggregate(AggFn fn, Id column_id) {
  uint64_t key = (uint64_t{static_cast<uint8_t>(fn)} << 32) |
                 uint64_t{column_id};
  auto it = aggregate_index_.find(key);
  if (it != aggregate_index_.end()) return it->second;
  Id id = static_cast<Id>(aggregates_.size());
  aggregates_.push_back(AggregateParts{fn, column_id});
  aggregate_index_.emplace(key, id);
  return id;
}

QueryInterner::Id QueryInterner::InternTableSet(
    const std::vector<std::string>& tables) {
  std::string key = RelationCache::KeyOf(tables);
  auto it = table_set_index_.find(key);
  if (it != table_set_index_.end()) return it->second;
  Id id = static_cast<Id>(table_sets_.size());
  table_sets_.push_back(key);
  table_set_index_.emplace(std::move(key), id);
  return id;
}

QueryInterner::Id QueryInterner::InternDimSet(
    const std::vector<Id>& column_ids) {
  return dim_sets_.Intern(column_ids);
}

QueryInterner::Id QueryInterner::InternCandidate(AggFn fn, Id agg_column_id,
                                                 Id predlist_id) {
  uint64_t fp = PackFingerprint(fn, agg_column_id, predlist_id);
  auto it = query_index_.find(fp);
  if (it != query_index_.end()) return it->second;
  Id id = static_cast<Id>(queries_.size());
  QueryRecord rec;
  rec.fn = fn;
  rec.agg_column = agg_column_id;
  rec.predlist = predlist_id;
  queries_.push_back(std::move(rec));
  query_index_.emplace(fp, id);
  return id;
}

QueryInterner::Id QueryInterner::InternQuery(
    const SimpleAggregateQuery& query) {
  Id agg_col = InternColumn(query.agg_column);
  std::vector<Id> pred_ids;
  pred_ids.reserve(query.predicates.size());
  for (const Predicate& p : query.predicates) {
    pred_ids.push_back(InternPredicate(p.column, p.value));
  }
  Id predlist = InternPredList(pred_ids);
  Id id = InternCandidate(query.fn, agg_col, predlist);
  if (!queries_[id].query.has_value()) queries_[id].query = query;
  return id;
}

uint64_t QueryInterner::fingerprint(Id query_id) const {
  const QueryRecord& rec = queries_[query_id];
  return PackFingerprint(rec.fn, rec.agg_column, rec.predlist);
}

const SimpleAggregateQuery& QueryInterner::Materialize(Id query_id) {
  QueryRecord& rec = queries_[query_id];
  if (!rec.query.has_value()) {
    SimpleAggregateQuery q;
    q.fn = rec.fn;
    q.agg_column = columns_[rec.agg_column];
    const std::vector<Id>& preds = pred_lists_.list(rec.predlist);
    q.predicates.reserve(preds.size());
    for (Id pid : preds) {
      const PredicateParts& parts = predicates_[pid];
      q.predicates.push_back(
          Predicate{columns_[parts.column], values_[parts.value]});
    }
    rec.query = std::move(q);
  }
  return *rec.query;
}

}  // namespace db
}  // namespace aggchecker
