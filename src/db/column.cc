#include "db/column.h"

namespace aggchecker {
namespace db {

void Column::Append(Value v) {
  if (v.is_null()) ++null_count_;
  values_.push_back(std::move(v));
  dict_built_ = false;
}

void Column::BuildDictionary() const {
  distinct_.clear();
  distinct_index_.clear();
  codes_.clear();
  codes_.reserve(values_.size());
  for (const Value& v : values_) {
    if (v.is_null()) {
      codes_.push_back(-1);
      continue;
    }
    auto [it, inserted] =
        distinct_index_.emplace(v, static_cast<int>(distinct_.size()));
    if (inserted) distinct_.push_back(v);
    codes_.push_back(it->second);
  }
  dict_built_ = true;
}

const std::vector<int32_t>& Column::Codes() const {
  if (!dict_built_) BuildDictionary();
  return codes_;
}

const std::vector<Value>& Column::DistinctValues() const {
  if (!dict_built_) BuildDictionary();
  return distinct_;
}

int Column::DistinctIndexOf(const Value& v) const {
  if (!dict_built_) BuildDictionary();
  auto it = distinct_index_.find(v);
  return it == distinct_index_.end() ? -1 : it->second;
}

}  // namespace db
}  // namespace aggchecker
