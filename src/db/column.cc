#include "db/column.h"

namespace aggchecker {
namespace db {

void Column::Append(Value v) {
  if (v.is_null()) ++null_count_;
  values_.push_back(std::move(v));
  dict_built_.store(false, std::memory_order_release);
  flat_built_.store(false, std::memory_order_release);
}

void Column::BuildDictionary() const {
  distinct_.clear();
  distinct_index_.clear();
  codes_.clear();
  codes_.reserve(values_.size());
  for (const Value& v : values_) {
    if (v.is_null()) {
      codes_.push_back(-1);
      continue;
    }
    auto [it, inserted] =
        distinct_index_.emplace(v, static_cast<int>(distinct_.size()));
    if (inserted) distinct_.push_back(v);
    codes_.push_back(it->second);
  }
}

void Column::EnsureDictionary() const {
  if (dict_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (dict_built_.load(std::memory_order_relaxed)) return;
  BuildDictionary();
  dict_built_.store(true, std::memory_order_release);
}

void Column::BuildFlat() const {
  flat_longs_.clear();
  flat_doubles_.clear();
  flat_nulls_.clear();
  flat_nulls_.reserve(values_.size());
  const bool numeric = is_numeric();
  if (type_ == ValueType::kLong) flat_longs_.reserve(values_.size());
  if (numeric) flat_doubles_.reserve(values_.size());
  for (const Value& v : values_) {
    flat_nulls_.push_back(v.is_null() ? 1 : 0);
    // NULL slots hold 0; kernels must consult `nulls` before reading.
    // `doubles` is materialized for every numeric column via ToDouble so
    // kernels see bit-for-bit what the row-at-a-time Aggregator sees,
    // including long->double coercion in mixed DOUBLE columns.
    if (numeric) flat_doubles_.push_back(v.is_null() ? 0.0 : v.ToDouble());
    if (type_ == ValueType::kLong) {
      flat_longs_.push_back(
          v.is_null() || v.type() != ValueType::kLong ? 0 : v.AsLong());
    }
  }
  flat_view_.longs =
      type_ == ValueType::kLong ? flat_longs_.data() : nullptr;
  flat_view_.doubles = numeric ? flat_doubles_.data() : nullptr;
  flat_view_.nulls = flat_nulls_.data();
  flat_view_.size = values_.size();
}

void Column::EnsureFlat() const {
  if (flat_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (flat_built_.load(std::memory_order_relaxed)) return;
  BuildFlat();
  flat_built_.store(true, std::memory_order_release);
}

const std::vector<int32_t>& Column::Codes() const {
  EnsureDictionary();
  return codes_;
}

const std::vector<Value>& Column::DistinctValues() const {
  EnsureDictionary();
  return distinct_;
}

const Column::FlatView& Column::Flat() const {
  EnsureFlat();
  return flat_view_;
}

int Column::DistinctIndexOf(const Value& v) const {
  EnsureDictionary();
  auto it = distinct_index_.find(v);
  return it == distinct_index_.end() ? -1 : it->second;
}

}  // namespace db
}  // namespace aggchecker
