#include "db/column.h"

#include <cmath>

namespace aggchecker {
namespace db {

std::unique_ptr<Column> Column::FromSnapshot(std::string name, ValueType type,
                                             ColumnSnapshotData data) {
  auto column = std::unique_ptr<Column>(new Column(std::move(name), type));
  column->num_rows_ = data.rows;
  column->null_count_ = data.null_count;
  column->snap_ = std::make_unique<ColumnSnapshotData>(std::move(data));
  column->values_built_.store(false, std::memory_order_release);
  return column;
}

void Column::Append(Value v) {
  // A snapshot-backed column materializes its boxed values before the first
  // mutation and then owns its storage like a freshly built column; the
  // reset lazy flags below force dictionary/flat rebuilds from `values_`.
  if (snap_ != nullptr) {
    EnsureValues();
    snap_.reset();
  }
  if (v.is_null()) ++null_count_;
  values_.push_back(std::move(v));
  ++num_rows_;
  dict_built_.store(false, std::memory_order_release);
  flat_built_.store(false, std::memory_order_release);
  stats_built_.store(false, std::memory_order_release);
}

void Column::Update(size_t row, Value v) {
  // Same materialize-then-detach dance as Append: after the first mutation
  // the column owns plain boxed storage and the lazy views rebuild from it.
  if (snap_ != nullptr) {
    EnsureValues();
    snap_.reset();
  }
  Value& cell = values_[row];
  if (cell.is_null()) --null_count_;
  if (v.is_null()) ++null_count_;
  cell = std::move(v);
  dict_built_.store(false, std::memory_order_release);
  flat_built_.store(false, std::memory_order_release);
  stats_built_.store(false, std::memory_order_release);
}

void Column::MaterializeValues() const {
  values_.clear();
  values_.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    switch (static_cast<ValueType>(snap_->tags[r])) {
      case ValueType::kNull:
        values_.push_back(Value::Null());
        break;
      case ValueType::kLong:
        values_.push_back(Value(snap_->longs[r]));
        break;
      case ValueType::kDouble:
        // doubles[r] is ToDouble() of the cell, which for a double cell is
        // the stored double verbatim — exact bits round-trip.
        values_.push_back(Value(snap_->doubles[r]));
        break;
      case ValueType::kString: {
        uint32_t begin = snap_->string_offsets[r];
        uint32_t end = snap_->string_offsets[r + 1];
        values_.push_back(
            Value(std::string(snap_->string_heap + begin, end - begin)));
        break;
      }
    }
  }
}

void Column::EnsureValues() const {
  if (values_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (values_built_.load(std::memory_order_relaxed)) return;
  MaterializeValues();
  values_built_.store(true, std::memory_order_release);
}

void Column::BuildDictionary() const {
  if (snap_ != nullptr) {
    // Adopt the serialized dictionary: codes verbatim (one memcpy), the
    // distinct list as decoded at load, and the index map replayed in
    // first-appearance order — exactly how a fresh build assigns ids.
    // (NaN distinct entries never win a find(), same as a fresh map.)
    codes_.assign(snap_->codes, snap_->codes + num_rows_);
    distinct_ = std::move(snap_->distinct);
    distinct_index_.clear();
    distinct_index_.reserve(distinct_.size());
    for (size_t i = 0; i < distinct_.size(); ++i) {
      distinct_index_.emplace(distinct_[i], static_cast<int>(i));
    }
    return;
  }
  distinct_.clear();
  distinct_index_.clear();
  codes_.clear();
  codes_.reserve(values_.size());
  for (const Value& v : values_) {
    if (v.is_null()) {
      codes_.push_back(-1);
      continue;
    }
    auto [it, inserted] =
        distinct_index_.emplace(v, static_cast<int>(distinct_.size()));
    if (inserted) distinct_.push_back(v);
    codes_.push_back(it->second);
  }
}

void Column::EnsureDictionary() const {
  if (dict_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (dict_built_.load(std::memory_order_relaxed)) return;
  BuildDictionary();
  dict_built_.store(true, std::memory_order_release);
}

void Column::BuildFlat() const {
  if (snap_ != nullptr) {
    // Zero-copy: the flat view aliases the mapped snapshot image. The
    // writer serialized these arrays with BuildFlat's exact formulas, so
    // kernels see bit-for-bit what a fresh build would hand them.
    flat_view_.longs = type_ == ValueType::kLong ? snap_->longs : nullptr;
    flat_view_.doubles = is_numeric() ? snap_->doubles : nullptr;
    flat_view_.nulls = snap_->nulls;
    flat_view_.size = num_rows_;
    return;
  }
  flat_longs_.clear();
  flat_doubles_.clear();
  flat_nulls_.clear();
  flat_nulls_.reserve(values_.size());
  const bool numeric = is_numeric();
  if (type_ == ValueType::kLong) flat_longs_.reserve(values_.size());
  if (numeric) flat_doubles_.reserve(values_.size());
  for (const Value& v : values_) {
    flat_nulls_.push_back(v.is_null() ? 1 : 0);
    // NULL slots hold 0; kernels must consult `nulls` before reading.
    // `doubles` is materialized for every numeric column via ToDouble so
    // kernels see bit-for-bit what the row-at-a-time Aggregator sees,
    // including long->double coercion in mixed DOUBLE columns.
    if (numeric) flat_doubles_.push_back(v.is_null() ? 0.0 : v.ToDouble());
    if (type_ == ValueType::kLong) {
      flat_longs_.push_back(
          v.is_null() || v.type() != ValueType::kLong ? 0 : v.AsLong());
    }
  }
  flat_view_.longs =
      type_ == ValueType::kLong ? flat_longs_.data() : nullptr;
  flat_view_.doubles = numeric ? flat_doubles_.data() : nullptr;
  flat_view_.nulls = flat_nulls_.data();
  flat_view_.size = values_.size();
}

void Column::EnsureFlat() const {
  if (flat_built_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (flat_built_.load(std::memory_order_relaxed)) return;
  BuildFlat();
  flat_built_.store(true, std::memory_order_release);
}

const std::vector<int32_t>& Column::Codes() const {
  EnsureDictionary();
  return codes_;
}

const std::vector<Value>& Column::DistinctValues() const {
  EnsureDictionary();
  return distinct_;
}

const Column::FlatView& Column::Flat() const {
  EnsureFlat();
  return flat_view_;
}

void Column::BuildStats() const {
  ColumnStats s;
  s.rows = num_rows_;
  s.non_null = num_rows_ - null_count_;
  s.distinct = distinct_.size();
  s.numeric = is_numeric();
  if (s.numeric) {
    s.integral = true;
    const double* doubles = flat_view_.doubles;
    const uint8_t* nulls = flat_view_.nulls;
    for (size_t r = 0; r < flat_view_.size; ++r) {
      if (nulls[r]) continue;
      double d = doubles[r];
      if (!std::isfinite(d)) {
        s.has_non_finite = true;
        continue;
      }
      ++s.finite_count;
      if (d < s.min) s.min = d;
      if (d > s.max) s.max = d;
      if (d > 0) {
        s.sum_pos += d;
      } else if (d < 0) {
        s.sum_neg += d;
      }
      double a = std::fabs(d);
      if (a > s.max_abs) s.max_abs = a;
      if (s.integral && std::floor(d) != d) s.integral = false;
    }
  }
  stats_ = s;
}

void Column::EnsureStats() const {
  if (stats_built_.load(std::memory_order_acquire)) return;
  // Build the prerequisites *before* taking lazy_mu_ — EnsureFlat and
  // EnsureDictionary take the same mutex.
  EnsureFlat();
  EnsureDictionary();
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (stats_built_.load(std::memory_order_relaxed)) return;
  BuildStats();
  stats_built_.store(true, std::memory_order_release);
}

const ColumnStats& Column::Stats() const {
  EnsureStats();
  return stats_;
}

void Column::SeedStats(const ColumnStats& stats) {
  stats_ = stats;
  stats_built_.store(true, std::memory_order_release);
}

int Column::DistinctIndexOf(const Value& v) const {
  EnsureDictionary();
  auto it = distinct_index_.find(v);
  return it == distinct_index_.end() ? -1 : it->second;
}

}  // namespace db
}  // namespace aggchecker
