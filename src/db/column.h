#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/column_stats.h"
#include "db/value.h"

namespace aggchecker {
namespace db {

/// \brief External backing for a snapshot-loaded column (DESIGN.md §15).
///
/// Raw typed arrays aliasing a read-only memory-mapped snapshot image; the
/// column adopts them zero-copy (`Flat()` points straight into the mapping)
/// and materializes boxed `Value`s / the dictionary lazily, on first use.
/// `keepalive` pins the mapping for as long as any pointer here is alive.
///
/// Array semantics mirror the build path exactly, so a loaded column is
/// bit-identical to one rebuilt from the same cells:
///  - `nulls[r]`    1 for NULL cells (always present),
///  - `tags[r]`     the cell's ValueType (always present),
///  - `doubles[r]`  `Value::ToDouble()` of every cell, 0.0 for NULL — the
///                  `Flat().doubles` contract; present iff some cell is
///                  numeric,
///  - `longs[r]`    `AsLong()` for long cells, 0 otherwise — the
///                  `Flat().longs` contract; present iff some cell is long,
///  - string cells  live in `string_heap` delimited by `string_offsets`
///                  (rows + 1 entries); present iff some cell is a string,
///  - `codes` / `distinct`  the dictionary exactly as BuildDictionary
///                  assigns it (codes[r] = -1 for NULL, NaN cells each get
///                  their own code).
struct ColumnSnapshotData {
  size_t rows = 0;
  size_t null_count = 0;
  const uint8_t* nulls = nullptr;
  const uint8_t* tags = nullptr;
  const int64_t* longs = nullptr;
  const double* doubles = nullptr;
  const uint32_t* string_offsets = nullptr;
  const char* string_heap = nullptr;
  const int32_t* codes = nullptr;
  std::vector<Value> distinct;  ///< first-appearance order
  std::shared_ptr<const void> keepalive;
};

/// \brief A named, typed column of values.
///
/// The declared type is the most specific type covering all non-null cells
/// (LONG ⊂ DOUBLE; anything mixed with strings becomes STRING). Two lazily
/// built derived representations back the evaluation engine:
///  - a distinct-value dictionary (query-fragment generation, cube
///    bucketing, CountDistinct over dictionary codes), and
///  - a flat typed view (primitive arrays + null flags) that lets the
///    vectorized aggregation kernels run over `int64_t*`/`double*` instead
///    of boxed `Value` variants.
///
/// Thread safety: `Append` must not race with anything, but every const
/// accessor — including the *first* call that builds a lazy representation —
/// is safe to call from any number of threads concurrently (double-checked
/// atomic flag + mutex). The eval engine still pre-builds what its cube
/// workers need during the serial plan phase, so workers normally only hit
/// the fast already-built path; the lock is the safety net for direct API
/// users.
class Column {
 public:
  /// Flat primitive view of the column for typed aggregation kernels.
  /// Exactly one of `longs`/`doubles` is non-null for numeric columns
  /// (`doubles` holds `Value::ToDouble()` of every cell, so mixed
  /// long/double columns coerce exactly like the row-at-a-time path);
  /// both are null for string columns. `nulls[r]` is 1 for NULL cells —
  /// always present, whatever the type.
  struct FlatView {
    const int64_t* longs = nullptr;
    const double* doubles = nullptr;
    const uint8_t* nulls = nullptr;
    size_t size = 0;
  };

  Column(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  /// Snapshot hook: a column whose storage lives in a mapped snapshot
  /// image. `Flat()` is free (pointers into the mapping); boxed values and
  /// the dictionary materialize lazily. Bit-identical to a column built by
  /// appending the same cells (the snapshot differential tests enumerate
  /// this).
  static std::unique_ptr<Column> FromSnapshot(std::string name,
                                              ValueType type,
                                              ColumnSnapshotData data);

  const std::string& name() const { return name_; }
  ValueType type() const { return type_; }
  bool is_numeric() const {
    return type_ == ValueType::kLong || type_ == ValueType::kDouble;
  }

  size_t size() const { return num_rows_; }
  const Value& at(size_t row) const {
    if (!values_built_.load(std::memory_order_acquire)) EnsureValues();
    return values_[row];
  }
  const std::vector<Value>& values() const {
    if (!values_built_.load(std::memory_order_acquire)) EnsureValues();
    return values_;
  }

  void Append(Value v);

  /// Replaces the value at `row` (no bounds check beyond the debug assert a
  /// vector gives you — Table::UpdateCell validates). Shares Append's
  /// mutation contract: a snapshot-backed column materializes and detaches
  /// first, derived representations rebuild lazily, and no const accessor
  /// may run concurrently.
  void Update(size_t row, Value v);

  /// Distinct non-null values, in first-appearance order. Built lazily and
  /// cached; invalidated by Append.
  const std::vector<Value>& DistinctValues() const;

  /// Index of `v` in DistinctValues(), or -1 if absent.
  int DistinctIndexOf(const Value& v) const;

  /// Dictionary codes per row: Codes()[r] is the DistinctValues() index of
  /// row r's value, or -1 for NULL. Built lazily with the dictionary; used
  /// by the cube executor to avoid per-row value hashing. NaN cells each
  /// get their own code (NaN != NaN), mirroring how `Value` sets treat
  /// them as pairwise distinct.
  const std::vector<int32_t>& Codes() const;

  /// Flat typed view (see FlatView). Built lazily and cached; invalidated
  /// by Append.
  const FlatView& Flat() const;

  /// Number of null cells.
  size_t null_count() const { return null_count_; }

  /// Summary statistics for verification-aware probes (DESIGN.md §17).
  /// Built lazily (builds the dictionary and flat view first if needed) and
  /// cached; invalidated by Append/Update like the other derived views.
  const ColumnStats& Stats() const;

  /// Snapshot hook: adopts precomputed statistics so a loaded column skips
  /// the first Stats() scan. The snapshot writer persists exactly what
  /// Stats() computed, so adopted stats are bit-identical to a rebuild.
  void SeedStats(const ColumnStats& stats);

 private:
  void EnsureDictionary() const;
  void EnsureFlat() const;
  void EnsureStats() const;
  void EnsureValues() const;
  void BuildDictionary() const;
  void BuildFlat() const;
  void BuildStats() const;
  void MaterializeValues() const;

  std::string name_;
  ValueType type_;
  mutable std::vector<Value> values_;
  size_t num_rows_ = 0;
  size_t null_count_ = 0;

  /// Set for snapshot-loaded columns: the typed arrays live in the mapped
  /// image and `values_` starts empty (values_built_ == false). Cleared by
  /// Append (the column materializes first, then owns its storage again).
  mutable std::unique_ptr<ColumnSnapshotData> snap_;

  // Lazy-build guard: acquire-load on the built flag, first builder takes
  // the mutex. Append resets the flags (no concurrent readers allowed
  // during mutation, per the class contract).
  mutable std::mutex lazy_mu_;
  mutable std::atomic<bool> values_built_{true};
  mutable std::atomic<bool> dict_built_{false};
  mutable std::vector<Value> distinct_;
  mutable std::unordered_map<Value, int, ValueHasher> distinct_index_;
  mutable std::vector<int32_t> codes_;

  mutable std::atomic<bool> flat_built_{false};
  mutable std::vector<int64_t> flat_longs_;
  mutable std::vector<double> flat_doubles_;
  mutable std::vector<uint8_t> flat_nulls_;
  mutable FlatView flat_view_;

  mutable std::atomic<bool> stats_built_{false};
  mutable ColumnStats stats_;
};

}  // namespace db
}  // namespace aggchecker
