#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"

namespace aggchecker {
namespace db {

/// \brief A named, typed column of values.
///
/// The declared type is the most specific type covering all non-null cells
/// (LONG ⊂ DOUBLE; anything mixed with strings becomes STRING). A lazily
/// built distinct-value dictionary supports query-fragment generation and
/// cube bucketing.
class Column {
 public:
  Column(std::string name, ValueType type)
      : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ValueType type() const { return type_; }
  bool is_numeric() const {
    return type_ == ValueType::kLong || type_ == ValueType::kDouble;
  }

  size_t size() const { return values_.size(); }
  const Value& at(size_t row) const { return values_[row]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v);

  /// Distinct non-null values, in first-appearance order. Built lazily and
  /// cached; invalidated by Append.
  const std::vector<Value>& DistinctValues() const;

  /// Index of `v` in DistinctValues(), or -1 if absent.
  int DistinctIndexOf(const Value& v) const;

  /// Dictionary codes per row: Codes()[r] is the DistinctValues() index of
  /// row r's value, or -1 for NULL. Built lazily with the dictionary; used
  /// by the cube executor to avoid per-row value hashing.
  const std::vector<int32_t>& Codes() const;

  /// Number of null cells.
  size_t null_count() const { return null_count_; }

 private:
  void BuildDictionary() const;

  std::string name_;
  ValueType type_;
  std::vector<Value> values_;
  size_t null_count_ = 0;

  mutable bool dict_built_ = false;
  mutable std::vector<Value> distinct_;
  mutable std::unordered_map<Value, int, ValueHasher> distinct_index_;
  mutable std::vector<int32_t> codes_;
};

}  // namespace db
}  // namespace aggchecker
