#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/cube.h"
#include "db/database.h"
#include "db/executor.h"
#include "db/query.h"
#include "db/query_interner.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace db {

/// Execution strategies compared in Table 6 of the paper.
enum class EvalStrategy {
  kNaive = 0,        ///< one scan per candidate query
  kMerged,           ///< merge candidates into cube queries (§6.2)
  kMergedCached,     ///< cubes + result cache across claims/iterations (§6.3)
};

const char* EvalStrategyName(EvalStrategy s);

/// \brief Counters exposed for the Table 6 / Figure 13 benchmarks.
///
/// The wall-clock fields (query/join/phase seconds) are measurement-only:
/// they vary run to run and stay out of the determinism fingerprints.
struct EvalStats {
  size_t queries_answered = 0;
  size_t cube_queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t rows_scanned = 0;
  /// Join-layer counters: how many times a joined relation was actually
  /// materialized vs. served from the shared RelationCache. In cached mode
  /// joins_built stays at one per distinct table set per checking run.
  size_t joins_built = 0;
  size_t join_cache_hits = 0;
  /// Queries left unanswered because the resource governor tripped; their
  /// results surface as nullopt and the owning claims become partial.
  size_t queries_aborted = 0;
  /// Plan-cache counters (fingerprint path only; the string-keyed reference
  /// path re-plans every batch and leaves both at zero). A "plan" is the
  /// per-(relation, dimension-set) grouping work — canonical keys, sorted
  /// dims, column bindings — built once and reused across batches, claims,
  /// and EM iterations.
  size_t plans_built = 0;
  size_t plan_cache_hits = 0;
  /// Cached cube slices evicted because a base table's data version moved
  /// (DESIGN.md §16). Counts evictions of the version sweep only — entries
  /// withdrawn for job failure or budget trips are not included.
  size_t cache_invalidations = 0;
  double query_seconds = 0.0;
  double join_seconds = 0.0;  ///< wall time spent materializing joins
  /// Per-phase breakdown of EvaluateBatch: plan (grouping, cache lookups,
  /// shell construction), execute (relation acquisition + morsel scans +
  /// epilogues), fold (serial stats/cache reconciliation), answer (cube
  /// lookups). Naive batches report execute/fold only.
  double plan_seconds = 0.0;
  double execute_seconds = 0.0;
  double fold_seconds = 0.0;
  double answer_seconds = 0.0;
  /// Self-healing counters (recovery enabled via SetRecovery; see
  /// DESIGN.md §13). Deterministic for a fixed fault schedule — except
  /// watchdog_flags, which is wall-clock based (measurement-only, excluded
  /// from determinism fingerprints like the phase timers above).
  size_t recovery_retries = 0;    ///< same-rung re-attempts after transients
  size_t ladder_descents = 0;     ///< fallback-ladder rungs engaged
  size_t queries_recovered = 0;   ///< hard-failed queries healed by recovery
  size_t queries_quarantined = 0; ///< failed on every rung; owning claims
                                  ///< degrade to quarantined partials
  size_t watchdog_flags = 0;      ///< jobs whose slowest morsel exceeded the
                                  ///< stall multiple of the batch median
  /// Probe-pruning counters (DESIGN.md §17). Slices whose every reader was
  /// decided by the probe stage skip their aggregation kernels
  /// (probe_slices_skipped); cached cubes missing a skipped slice that a
  /// live query later needs are repaired by an off-ledger re-scan
  /// (probe_fillins, with the repair's rows in probe_fillin_rows — kept out
  /// of rows_scanned, which stays charge-comparable across pruned and
  /// unpruned runs).
  size_t probe_slices_skipped = 0;
  size_t probe_fillins = 0;
  size_t probe_fillin_rows = 0;
  /// Cube jobs whose every slice was probe-decided. Their scans compute
  /// only group keys and charges (no kernels); the counter sizes the
  /// remaining headroom for whole-job elision.
  size_t probe_jobs_dead = 0;
  /// Kernel-work accounting: slices executed across all cube jobs, and the
  /// same weighted by the job's scanned rows (a slice's kernel cost is
  /// proportional to rows). skipped/total is the honest measure of how much
  /// aggregation work the probe stage eliminated.
  size_t probe_slices_total = 0;
  size_t probe_slice_rows_total = 0;
  size_t probe_slice_rows_skipped = 0;

  void Reset() { *this = EvalStats{}; }
};

/// \brief Batch evaluator for candidate queries (Function RefineByEval's
/// processing backend, §6).
///
/// In merged mode, candidates sharing a predicate-column set are answered by
/// one multi-aggregate cube query; the cached mode additionally persists
/// per-(aggregate, dimension-set) cube slices across batches and EM
/// iterations. All strategies return identical results — the property tests
/// assert this.
///
/// Concurrency: a batch may be spread over an attached ThreadPool
/// (SetThreadPool). Parallelism is internal to EvaluateBatch — the engine's
/// public interface stays externally single-threaded (one batch at a time),
/// and batches follow a plan → execute → fold structure where only the
/// execute phase runs on workers (see DESIGN.md "Concurrency contract").
/// The merged execute phase is morsel-driven: every cube job is split into
/// (job, row-block) morsels drained from one global queue, so a batch with
/// a single large cube saturates the pool just like one with many small
/// cubes. Results and cache state are bit-identical for any thread count.
class EvalEngine {
 public:
  EvalEngine(const Database* db, EvalStrategy strategy)
      : db_(db),
        strategy_(strategy),
        executor_(db),
        relation_cache_(&db->relation_cache()) {}

  /// Evaluates every query; result[i] is nullopt when query i is invalid,
  /// unsatisfiable for value-returning aggregates, or undefined.
  /// With query fingerprints enabled (the default) merged strategies intern
  /// the queries and run the fingerprint path; results are bit-identical
  /// either way (the plan-cache differential test pins this down).
  std::vector<std::optional<double>> EvaluateBatch(
      const std::vector<SimpleAggregateQuery>& queries);

  /// Evaluates a batch of interned queries by id (see interner()). The
  /// fast path for callers that generate candidates as fingerprints — no
  /// SimpleAggregateQuery strings are built except lazily for the naive
  /// strategy and executor fallbacks. Ids must come from this engine's
  /// interner. Requires query fingerprints enabled.
  std::vector<std::optional<double>> EvaluateInterned(
      const std::vector<QueryInterner::Id>& ids);

  /// \brief Probe-aware batch evaluation (DESIGN.md §17).
  ///
  /// `decided[i] != 0` marks queries whose outcome the probe stage already
  /// determined; `decided` must be ids.size() long. Decided queries still
  /// flow through planning, grouping, cube-shell construction, and cache
  /// publication exactly like undecided ones — so literal collection, job
  /// formation, and every modeled governor charge are byte-identical to an
  /// unflagged batch — but a cube slice needed *only* by decided queries
  /// skips its aggregation kernel and cell writes. Decided queries whose
  /// slice is live anyway (shared with an undecided query, or served by an
  /// unmasked cached cube) are answered for real; the rest return nullopt
  /// with their decided_settled() flag set, telling the caller its
  /// synthesized outcome stands. Failure handling (aborted jobs, recovery,
  /// quarantine) treats decided queries exactly like undecided ones.
  std::vector<std::optional<double>> EvaluateInterned(
      const std::vector<QueryInterner::Id>& ids,
      const std::vector<uint8_t>& decided);

  /// Per-query flags from the last EvaluateInterned(ids, decided) call:
  /// settled[i] != 0 means decided query i reached a completed cube (its
  /// slice was either answered for real or cleanly skipped), so the
  /// caller's synthesized outcome may stand. Unsettled decided queries
  /// (failed or aborted jobs) carry no evidence either way and must degrade
  /// exactly like an unpruned failure.
  const std::vector<uint8_t>& decided_settled() const {
    return decided_settled_;
  }

  /// \brief Off-ledger evaluation for report backfill (DESIGN.md §17).
  ///
  /// Evaluates `ids` with the governor detached and cache publication
  /// disabled: reads (and slice fill-ins of existing entries) are allowed,
  /// but no new cache entries appear — a cube executed here was never
  /// charged, so publishing it would let a later budgeted run hit an entry
  /// whose charge replay diverges from a cold rebuild. Recovery still runs,
  /// so chaos faults heal the same way they do on the main path.
  std::vector<std::optional<double>> EvaluateProbeBackfill(
      const std::vector<QueryInterner::Id>& ids);

  /// String-path variant of the probe backfill (naive strategy or
  /// query_fingerprints off): same off-ledger contract, materialized
  /// queries instead of interned ids.
  std::vector<std::optional<double>> EvaluateProbeBackfill(
      const std::vector<SimpleAggregateQuery>& queries);

  /// Evaluates a single query using the engine's strategy (and cache).
  std::optional<double> Evaluate(const SimpleAggregateQuery& query);

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  void ClearCache() {
    cache_.clear();
    fp_cache_.clear();
    fp_cache_order_.clear();
  }
  EvalStrategy strategy() const { return strategy_; }

  /// Toggles the fingerprint-keyed plan/cache path (default on). Off = the
  /// string-keyed reference path, kept for differential testing exactly as
  /// the scalar cube oracle and the uncached relation path are.
  void SetQueryFingerprints(bool enabled) { query_fingerprints_ = enabled; }
  bool query_fingerprints() const { return query_fingerprints_; }

  /// The engine's query interner. Callers (the translator) intern candidate
  /// fragments through this and ship ids to EvaluateInterned. Interning is
  /// NOT thread-safe: only use it from serial sections, per the engine's
  /// externally-single-threaded contract.
  QueryInterner& interner() { return interner_; }

  /// Attaches a resource governor for subsequent evaluations (nullptr
  /// detaches). Not owned; the caller scopes it to one checking run. When a
  /// governor limit trips mid-batch, remaining queries return nullopt and
  /// are counted in EvalStats::queries_aborted; failed scans are never
  /// cached, so a later unbudgeted run recomputes them correctly.
  void SetGovernor(const ResourceGovernor* governor) { governor_ = governor; }
  const ResourceGovernor* governor() const { return governor_; }

  /// Attaches a thread pool for batch evaluation (nullptr detaches = serial,
  /// today's exact path). Not owned; must outlive the engine's use of it.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Overrides the relation cache joins are acquired through (default: the
  /// database's own shared cache). nullptr disables caching — every query
  /// and cube materializes a private join, the pre-cache reference behavior
  /// the differential tests and benches compare against. Not owned.
  void SetRelationCache(RelationCache* cache) { relation_cache_ = cache; }
  RelationCache* relation_cache() const { return relation_cache_; }

  /// Selects how cube queries materialize (default: vectorized). The scalar
  /// oracle is the row-at-a-time reference path; results are bit-identical
  /// either way — differential tests switch this to pin that down.
  void SetCubeExecMode(CubeExecMode mode) { cube_exec_ = mode; }
  CubeExecMode cube_exec_mode() const { return cube_exec_; }

  /// \brief One query's trip through the recovery layer (consumed per batch
  /// via ConsumeRecoveryRecords). `rung` is the canonical ladder position
  /// the query ended on: 0 = healed by same-rung retries on the primary
  /// configuration, 1 = scalar cube oracle, 2 = string-keyed plans,
  /// 3 = fresh (uncached) joins; see RecoveryRungName.
  struct QueryRecovery {
    size_t query_index = 0;  ///< index within the batch that failed
    uint32_t attempts = 1;   ///< total evaluation attempts, initial included
    uint32_t rung = 0;       ///< canonical ladder position (0 = primary)
    bool recovered = false;  ///< false = quarantined on every rung
  };

  /// Enables (options.enabled, the default) or disables the self-healing
  /// layer: hard-failed queries are retried with backoff while their error
  /// is transient, then re-run down the fallback ladder (scalar cube →
  /// string-keyed plans → uncached joins), and only queries failing on every
  /// rung are surrendered (ConsumeFailedQueries / queries_quarantined).
  /// Raw engines default to OFF so differential tests observe unmasked
  /// errors; core::AggChecker turns it on from CheckOptions::recovery.
  void SetRecovery(const RecoveryOptions& options) {
    if (options.enabled) {
      recovery_ = options;
    } else {
      recovery_.reset();
    }
  }
  bool recovery_enabled() const { return recovery_.has_value(); }

  /// Returns (and clears) the batch-local indices of queries whose hard
  /// failure survived recovery (or recovery was disabled). Callers that map
  /// queries to claims use this to quarantine the owners instead of
  /// aborting the run.
  std::vector<size_t> ConsumeFailedQueries() {
    return std::move(failed_queries_);
  }

  /// Returns (and clears) the per-query recovery records accumulated since
  /// the last call (only queries that entered recovery appear).
  std::vector<QueryRecovery> ConsumeRecoveryRecords() {
    return std::move(recovery_records_);
  }

  /// Human-readable name of a canonical ladder position: "primary",
  /// "scalar-cube", "string-plans", "fresh-join".
  static const char* RecoveryRungName(uint32_t rung);

  /// Watchdog core, exposed for deterministic unit tests: given per-morsel
  /// wall times and their owning job, counts jobs whose slowest morsel
  /// exceeds `stall_multiple` times the median morsel time.
  static size_t CountStalledJobs(const std::vector<double>& morsel_seconds,
                                 const std::vector<uint32_t>& morsel_job,
                                 size_t num_jobs, double stall_multiple);

  /// Returns (and clears) the first *unexpected* execution error since the
  /// last call. Expected failures stay out of this channel: query-shape
  /// errors (kInvalidArgument / kNotFound / kUnsupported) mean "this
  /// candidate is not answerable" and surface as nullopt, and governor
  /// stops degrade to aborted queries. Anything else — an I/O fault, an
  /// internal invariant break — must NOT silently become an "undefined
  /// result" (which the verdict layer could misread as evidence of an
  /// erroneous claim), so the translator aborts the run on it.
  Status ConsumeHardError() {
    std::lock_guard<std::mutex> lock(hard_error_mu_);
    Status error = hard_error_;
    hard_error_ = Status::OK();
    return error;
  }

  /// Canonical key of the relation a query runs over (its sorted
  /// referenced-table set). Queries may share cubes and cache entries only
  /// within one relation.
  static std::string RelationKey(const SimpleAggregateQuery& query);

 private:
  /// One cached slice: a cube result plus the index of the aggregate within
  /// it that this cache entry answers, tagged with the relation the cube
  /// was computed over.
  struct CacheEntry {
    std::shared_ptr<CubeResult> cube;
    size_t agg_idx;
    std::string relation_key;
  };

  /// Normalized predicates: deduplicated, with a flag when the conjunction
  /// is unsatisfiable (same column constrained to two different values).
  struct NormalizedPreds {
    std::vector<Predicate> preds;
    bool unsatisfiable = false;
  };
  static NormalizedPreds Normalize(const std::vector<Predicate>& preds);

  /// Slice identity on the fingerprint path: which (aggregate, relation,
  /// dimension-set) a cached cube slice answers. The integer twin of the
  /// string path's "AggKey|relation|dimset" cache key.
  struct SliceKey {
    QueryInterner::Id agg = QueryInterner::kNone;
    QueryInterner::Id relation = QueryInterner::kNone;
    QueryInterner::Id dimset = QueryInterner::kNone;
    bool operator==(const SliceKey& o) const {
      return agg == o.agg && relation == o.relation && dimset == o.dimset;
    }
  };
  struct SliceKeyHasher {
    size_t operator()(const SliceKey& k) const {
      uint64_t h = (uint64_t{k.agg} << 40) ^ (uint64_t{k.relation} << 20) ^
                   uint64_t{k.dimset};
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  /// Per-query compilation cached across batches (indexed by interned query
  /// id): validity, normalized predicates, sorted dimension columns, and the
  /// interned ids planning groups by. Built once per distinct candidate for
  /// the lifetime of the engine — the per-iteration plan work the string
  /// path re-does from scratch.
  struct CompiledQuery {
    bool compiled = false;
    bool valid = false;
    NormalizedPreds normalized;
    std::vector<ColumnRef> dims;  ///< normalized pred columns, sorted
    QueryInterner::Id agg = QueryInterner::kNone;  ///< base-fn aggregate id
    QueryInterner::Id relation = QueryInterner::kNone;
    QueryInterner::Id dimset = QueryInterner::kNone;
  };

  /// Cached plan of one (relation, dimension-set) cube group: everything
  /// the plan phase used to rebuild per batch from strings. Plans hold no
  /// result data, so they never need governor-trip invalidation; the
  /// catalog (hence every dim/relation here) is immutable per run.
  struct GroupPlan {
    std::vector<ColumnRef> dims;
    std::vector<const Column*> dim_columns;  ///< bound once; may hold null
    QueryInterner::Id relation = QueryInterner::kNone;
    QueryInterner::Id dimset = QueryInterner::kNone;
    std::string relation_key;
    std::string dimset_key;
    /// The string path's std::map composite key; batch groups sort by this
    /// so group order (and thus intra-batch cache rollup behavior) is
    /// byte-identical to the reference path.
    std::string sort_key;
  };

  /// One cube to materialize: fills `shell` on a worker. The cache keys
  /// (string- or fingerprint-keyed, per mode) published for it at plan time
  /// are withdrawn on failure.
  struct CubeJob {
    std::shared_ptr<CubeResult> shell;
    std::vector<std::string> cache_keys;
    std::vector<SliceKey> slice_keys;
    Status status = Status::OK();
    ScanStats scan;
  };

  std::vector<std::optional<double>> EvaluateNaive(
      const std::vector<SimpleAggregateQuery>& queries);
  std::vector<std::optional<double>> EvaluateMerged(
      const std::vector<SimpleAggregateQuery>& queries, bool use_cache);
  std::vector<std::optional<double>> EvaluateMergedIds(
      const std::vector<QueryInterner::Id>& ids, bool use_cache);

  /// Shared body of the EvaluateInterned overloads (timer, version sweep,
  /// dispatch, recovery). batch_decided_ must already hold this batch's
  /// probe flags (or be empty).
  std::vector<std::optional<double>> EvaluateInternedImpl(
      const std::vector<QueryInterner::Id>& ids);

  /// \brief Off-ledger repair of a cached cube whose slice `entry.agg_idx`
  /// was skipped by probe pruning but is now needed by a live query.
  ///
  /// Re-executes the cube's scan into a fresh shell with only that slice
  /// live — governor detached, so the repair charges nothing (the cached
  /// cube's recorded charges already replay in full on hits) — and adopts
  /// the produced cells into the cached cube. The repair's ScanStats stay
  /// out of the main counters except probe_fillins / probe_fillin_rows.
  Status FillInSlice(const CacheEntry& entry);

  /// Strategy dispatch without the public wrappers' stats bumping or
  /// recovery pass — the single evaluation primitive both the primary
  /// attempt and recovery re-runs go through.
  std::vector<std::optional<double>> DispatchQueries(
      const std::vector<SimpleAggregateQuery>& queries);
  std::vector<std::optional<double>> DispatchIds(
      const std::vector<QueryInterner::Id>& ids);

  /// Routes one query's execution failure: resource-exhausted counts as
  /// aborted, shape errors are an expected nullopt, anything else raises
  /// the hard-error channel AND records (index, status) in batch_failed_
  /// for the recovery pass.
  void NoteQueryFailure(size_t index, const Status& status);

  /// The recovery pass (DESIGN.md §13): retries batch_failed_ queries with
  /// capped backoff while transient, then re-runs the still-failing subset
  /// down the fallback ladder via `rerun` (which evaluates a subset of the
  /// original batch under the engine's current configuration and refills
  /// batch_failed_ with subset-local indices). Healed results are written
  /// into `results`; queries failing on every rung are quarantined.
  void RecoverBatch(
      const std::function<std::vector<std::optional<double>>(
          const std::vector<size_t>&)>& rerun,
      std::vector<std::optional<double>>& results);

  /// Compiles query `id` (validity, normalization, group ids) if not yet
  /// cached and returns the compilation.
  const CompiledQuery& EnsureCompiled(QueryInterner::Id id);

  /// Returns the cached plan of group (cq.relation, cq.dimset), building it
  /// from `cq` on first sight (counted in EvalStats::plans_built; hits in
  /// plan_cache_hits).
  const GroupPlan& EnsureGroupPlan(const CompiledQuery& cq);

  /// Shared execute phase: Prepare / morsel-drained ScanBlock / Finish over
  /// `jobs`, adding wall time to EvalStats::execute_seconds. Both merged
  /// paths funnel through this so scheduling behavior cannot drift.
  void ExecuteJobs(std::vector<CubeJob>& jobs);

  /// Runs body(i) for i in [0, n): on the attached pool when present,
  /// inline (in index order) otherwise.
  void RunIndexed(size_t n, const std::function<void(size_t)>& body);

  /// Answers one query from a cube result. `dims` is the cube's dimension
  /// list; lookups translate missing count cells to 0.
  std::optional<double> AnswerFromCube(const SimpleAggregateQuery& query,
                                       const NormalizedPreds& np,
                                       const CubeResult& cube,
                                       size_t agg_idx) const;

  /// Finds a cached slice answering `agg` over predicate columns `cols`
  /// with the required literals, for a query running over relation
  /// `relation_key`; nullptr on miss. Cubes over different relations are
  /// never interchangeable: an aggregate over a PK-FK join differs from the
  /// same aggregate over a base table (inner joins drop dangling rows and
  /// joins multiply cardinalities).
  ///
  /// During a batch's plan phase the cache may hold entries whose cube is a
  /// still-empty shell scheduled for this batch; coverage only inspects the
  /// cube's shape (dims + literal buckets), which is fixed at construction,
  /// so hit/miss decisions are identical whether the cube is filled yet.
  /// `hit_key`, when non-null, receives the cache key the returned entry is
  /// registered under (which differs from the exact key on rollup hits) so
  /// the caller can withdraw the entry if its charge replay trips.
  const CacheEntry* FindCached(const CubeAggregate& agg,
                               const std::vector<ColumnRef>& cols,
                               const std::map<std::string, std::vector<Value>>&
                                   needed_literals,
                               const std::string& relation_key,
                               std::string* hit_key = nullptr) const;

  /// Fingerprint-path twin of FindCached: exact SliceKey hit first, then a
  /// rollup scan over the insertion-ordered slices of (agg, plan.relation).
  /// Hit/miss *existence* matches the string path exactly (same candidate
  /// set, same coverage test); when several cached cubes cover, the one
  /// chosen may differ — covering cubes answer identically, so this only
  /// shows up through job linkage under governor trips (see DESIGN.md §12).
  /// `dim_literals[d]` are the batch literals of plan.dims[d].
  /// `hit_key` as in FindCached: the SliceKey the entry lives under.
  const CacheEntry* FindCachedIds(
      QueryInterner::Id agg, const GroupPlan& plan,
      const std::vector<const std::vector<Value>*>& dim_literals,
      SliceKey* hit_key = nullptr) const;

  static std::string DimSetKey(const std::vector<ColumnRef>& dims);

  /// \brief Data-version sweep (DESIGN.md §16), run once per public
  /// evaluation entry point before any cache lookup.
  ///
  /// Diffs the database's current version vector against the last observed
  /// one; when tables changed, evicts exactly the cached cube slices whose
  /// relation's join closure reads a changed table (counted in
  /// EvalStats::cache_invalidations) from cache_ / fp_cache_ /
  /// fp_cache_order_. Plans (group_plans_), compilations (compiled_), and
  /// the interner survive: they hold no result data, and their bound
  /// Column pointers stay valid because ingestion mutates columns in place.
  void RefreshDataVersions();

  /// \brief Charge replay for a cross-run cache hit (DESIGN.md §16).
  ///
  /// If `entry`'s cube was last charged under a different governor run,
  /// replays its recorded charges so warm totals match a cold rebuild.
  /// Returns false — and the caller must withdraw the entry and treat the
  /// lookup as a miss — when the governor is already tripped (a cold run
  /// would find no entry and its rebuild would abort un-charged) or the
  /// replay itself trips a limit. Entries linked to a job of the current
  /// batch are skipped (their execution charges this run directly).
  bool ReplayChargesForHit(const CacheEntry& entry);

  /// Records `status` as the run's hard error unless it is an expected
  /// query-shape failure (kInvalidArgument/kNotFound/kUnsupported). First
  /// error wins under a mutex — safe from concurrent workers, though batch
  /// fold phases call it serially in plan order so the surfaced error does
  /// not depend on thread interleaving.
  void NoteHardError(const Status& status);

  const Database* db_;
  EvalStrategy strategy_;
  QueryExecutor executor_;
  EvalStats stats_;
  const ResourceGovernor* governor_ = nullptr;
  ThreadPool* pool_ = nullptr;
  RelationCache* relation_cache_ = nullptr;  ///< see SetRelationCache
  CubeExecMode cube_exec_ = CubeExecMode::kVectorized;
  std::mutex hard_error_mu_;
  Status hard_error_;  ///< first unexpected error; see ConsumeHardError()
  // ---- Recovery state (see SetRecovery) --------------------------------
  std::optional<RecoveryOptions> recovery_;  ///< nullopt = recovery off
  /// (batch index, status) of this dispatch's hard-failed queries; filled
  /// serially by fold/answer phases, drained by RecoverBatch.
  std::vector<std::pair<size_t, Status>> batch_failed_;
  std::vector<size_t> failed_queries_;       ///< see ConsumeFailedQueries
  std::vector<QueryRecovery> recovery_records_;
  // Cache key: aggregate key + "|" + relation key + "|" + sorted dim-set
  // key. Written only from serial plan/fold phases.
  std::unordered_map<std::string, CacheEntry> cache_;
  /// Last observed database version vector (see RefreshDataVersions);
  /// starts empty, so the first sweep observes every table as "changed"
  /// against empty caches — a no-op.
  std::vector<std::pair<std::string, uint64_t>> data_versions_;

  // ---- Fingerprint path state (see DESIGN.md §12) ----------------------
  // All of it is written only from serial plan/fold phases; workers never
  // touch the interner or these maps.
  bool query_fingerprints_ = true;
  QueryInterner interner_;
  /// Indexed by interned query id (ids are dense). Deque: references stay
  /// stable while new queries compile.
  std::deque<CompiledQuery> compiled_;
  /// (relation id << 32 | dimset id) -> plan. Survives batches and EM
  /// iterations; holds no result data, so ClearCache leaves it alone.
  std::unordered_map<uint64_t, GroupPlan> group_plans_;
  /// Result cache, fingerprint-keyed. fp_cache_order_ lists the SliceKeys
  /// of each (agg id << 32 | relation id) in first-publish order for the
  /// rollup scan; withdrawn entries linger there as stale keys (skipped via
  /// map membership) — republishing may append a duplicate, bounded by the
  /// number of governor trips.
  std::unordered_map<SliceKey, CacheEntry, SliceKeyHasher> fp_cache_;
  std::unordered_map<uint64_t, std::vector<SliceKey>> fp_cache_order_;
  /// Batch-local scratch for literal collection, epoch-stamped so clearing
  /// between batches is O(touched), not O(interned).
  // ---- Probe-pruning state (DESIGN.md §17) -----------------------------
  /// Probe-decided flags staged by EvaluateInterned(ids, decided) and
  /// consumed (moved out) at EvaluateMergedIds entry, so recovery re-runs —
  /// which re-enter with a *subset* of the original ids — can never observe
  /// misaligned flags.
  std::vector<uint8_t> batch_decided_;
  std::vector<uint8_t> decided_settled_;  ///< see decided_settled()
  /// True while EvaluateProbeBackfill runs: cache publication sites are
  /// skipped (reads and fill-ins of existing entries still happen).
  bool publish_read_only_ = false;

  uint32_t batch_epoch_ = 0;
  std::vector<uint32_t> pred_epoch_;
  std::vector<uint32_t> col_epoch_;
  std::vector<uint32_t> col_slot_;
  std::vector<QueryInterner::Id> batch_cols_;  ///< touched, in batch order
  std::vector<std::vector<Value>> batch_literals_;  ///< by col_slot_
};

}  // namespace db
}  // namespace aggchecker
