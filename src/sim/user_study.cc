#include "sim/user_study.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace aggchecker {
namespace sim {

namespace {

double ClampPositive(double v, double floor_value = 1.0) {
  return v < floor_value ? floor_value : v;
}

/// Simulates one user verifying one article with one tool.
Session SimulateSession(const ArticleRuntime& runtime, size_t user,
                        size_t article, Tool tool, double time_limit,
                        double skill, const UserModel& model, Rng* rng) {
  Session session;
  session.user = user;
  session.article = article;
  session.tool = tool;
  session.time_limit = time_limit;

  double clock = 0;
  const auto& truth = runtime.article->ground_truth;
  for (size_t i = 0; i < truth.size(); ++i) {
    VerificationEvent event;
    event.claim_index = i;
    double duration = 0;
    if (tool == Tool::kAggChecker) {
      size_t rank = i < runtime.gt_ranks.size() ? runtime.gt_ranks[i] : 0;
      if (rank == 1) {
        event.action = UiAction::kTop1;
        duration = rng->NextGaussian(model.top1_seconds, model.top1_stddev);
        event.correct_query = true;
      } else if (rank >= 2 && rank <= 5) {
        event.action = UiAction::kTop5;
        duration = rng->NextGaussian(model.top5_seconds, model.top5_stddev);
        event.correct_query = true;
      } else if (rank >= 6 && rank <= 10) {
        event.action = UiAction::kTop10;
        duration = rng->NextGaussian(model.top10_seconds,
                                     model.top10_stddev);
        event.correct_query = true;
      } else {
        event.action = UiAction::kCustom;
        duration = rng->NextGaussian(model.custom_seconds,
                                     model.custom_stddev);
        event.correct_query = rng->NextBool(model.custom_success);
      }
    } else {
      event.action = UiAction::kSql;
      double base = model.sql_base_seconds +
                    model.sql_per_predicate *
                        static_cast<double>(truth[i].query.predicates.size());
      duration = rng->NextGaussian(base, model.sql_stddev);
      event.correct_query = rng->NextBool(model.sql_success);
    }
    duration = ClampPositive(duration * skill * model.speed_factor, 2.0);
    if (clock + duration > time_limit) break;
    clock += duration;
    event.timestamp = clock;
    // Flagging: with the right query in hand the verdict is exact; with a
    // wrong query users sometimes false-flag.
    event.user_flagged = event.correct_query
                             ? truth[i].is_erroneous
                             : rng->NextBool(model.wrong_query_flag_rate);
    session.events.push_back(event);
  }
  return session;
}

}  // namespace

UserStudy::UserStudy(const std::vector<corpus::CorpusCase>* corpus,
                     std::vector<size_t> article_indices, StudyConfig config)
    : corpus_(corpus),
      article_indices_(std::move(article_indices)),
      config_(config) {}

Result<StudyResult> UserStudy::Run() {
  StudyResult result;
  Rng rng(config_.seed);

  // Run the real pipeline once per article.
  for (size_t a : article_indices_) {
    const corpus::CorpusCase& article = (*corpus_)[a];
    ArticleRuntime runtime;
    runtime.article = &article;
    core::CheckOptions options;
    options.report_top_k = 20;
    auto checker = core::AggChecker::Create(&article.database, options);
    if (!checker.ok()) return checker.status();
    auto report = checker->Check(article.document);
    if (!report.ok()) return report.status();
    runtime.report = std::move(*report);
    size_t n = std::min(runtime.report.verdicts.size(),
                        article.ground_truth.size());
    for (size_t i = 0; i < n; ++i) {
      runtime.gt_ranks.push_back(corpus::GroundTruthRank(
          article.ground_truth[i], runtime.report.verdicts[i]));
    }
    result.articles.push_back(std::move(runtime));
  }

  // Per-user skills; tools alternate per (user, article) so each user sees
  // each document once and uses both tools across the study.
  std::vector<double> skills;
  for (size_t u = 0; u < config_.num_users; ++u) {
    skills.push_back(
        ClampPositive(rng.NextGaussian(1.0, config_.model.skill_stddev),
                      0.5));
  }
  for (size_t u = 0; u < config_.num_users; ++u) {
    for (size_t a = 0; a < result.articles.size(); ++a) {
      Tool tool = ((u + a) % 2 == 0) ? Tool::kAggChecker : Tool::kSql;
      const ArticleRuntime& runtime = result.articles[a];
      double limit = runtime.article->ground_truth.size() >
                             config_.long_article_threshold
                         ? config_.long_article_limit
                         : config_.short_article_limit;
      result.sessions.push_back(SimulateSession(
          runtime, u, a, tool, limit, skills[u], config_.model, &rng));
    }
  }
  return result;
}

StudyResult::ActionShares StudyResult::ComputeActionShares() const {
  ActionShares shares;
  size_t total = 0;
  for (const Session& s : sessions) {
    if (s.tool != Tool::kAggChecker) continue;
    for (const auto& e : s.events) {
      ++total;
      switch (e.action) {
        case UiAction::kTop1:
          shares.top1 += 1;
          break;
        case UiAction::kTop5:
          shares.top5 += 1;
          break;
        case UiAction::kTop10:
          shares.top10 += 1;
          break;
        default:
          shares.custom += 1;
          break;
      }
    }
  }
  if (total > 0) {
    shares.top1 *= 100.0 / total;
    shares.top5 *= 100.0 / total;
    shares.top10 *= 100.0 / total;
    shares.custom *= 100.0 / total;
  }
  return shares;
}

corpus::ErrorDetectionMetrics StudyResult::ErrorDetection(Tool tool) const {
  corpus::ErrorDetectionMetrics m;
  // Per claim instance across sessions with this tool: a user-flag is a
  // positive; erroneous claims never reached within the limit count as
  // false negatives (the user failed to find them).
  for (const Session& s : sessions) {
    if (s.tool != tool) continue;
    const auto& truth = articles[s.article].article->ground_truth;
    std::vector<bool> reached(truth.size(), false);
    for (const auto& e : s.events) {
      reached[e.claim_index] = true;
      bool erroneous = truth[e.claim_index].is_erroneous;
      if (e.user_flagged && erroneous) ++m.true_positives;
      if (e.user_flagged && !erroneous) ++m.false_positives;
      if (!e.user_flagged && erroneous) ++m.false_negatives;
    }
    for (size_t i = 0; i < truth.size(); ++i) {
      if (!reached[i] && truth[i].is_erroneous) ++m.false_negatives;
    }
    m.total_claims += truth.size();
  }
  return m;
}

double StudyResult::ThroughputByUser(size_t user, Tool tool) const {
  size_t verified = 0;
  double minutes = 0;
  for (const Session& s : sessions) {
    if (s.user != user || s.tool != tool) continue;
    verified += s.NumCorrect();
    minutes += s.time_limit / 60.0;
  }
  return minutes > 0 ? verified / minutes : 0.0;
}

double StudyResult::ThroughputByArticle(size_t article, Tool tool) const {
  size_t verified = 0;
  double minutes = 0;
  for (const Session& s : sessions) {
    if (s.article != article || s.tool != tool) continue;
    verified += s.NumCorrect();
    minutes += s.time_limit / 60.0;
  }
  return minutes > 0 ? verified / minutes : 0.0;
}

std::vector<double> StudyResult::VerifiedOverTime(size_t article, Tool tool,
                                                  double step) const {
  double limit = 0;
  size_t num_sessions = 0;
  for (const Session& s : sessions) {
    if (s.article == article && s.tool == tool) {
      limit = s.time_limit;
      ++num_sessions;
    }
  }
  std::vector<double> curve;
  if (num_sessions == 0) return curve;
  for (double t = step; t <= limit + 1e-9; t += step) {
    double total = 0;
    for (const Session& s : sessions) {
      if (s.article != article || s.tool != tool) continue;
      for (const auto& e : s.events) {
        if (e.timestamp <= t && e.correct_query) total += 1;
      }
    }
    curve.push_back(total / static_cast<double>(num_sessions));
  }
  return curve;
}

StudyResult::SurveyRow StudyResult::Survey(const char* criterion) const {
  SurveyRow row;
  // Preferences derived from each user's measured speedup; criteria shift
  // the thresholds slightly (users found incorrect-claim hunting via SQL
  // especially painful, and the AggChecker trivial to learn — §A).
  double bias = 0.0;
  if (std::strcmp(criterion, "learning") == 0) bias = 1.0;
  if (std::strcmp(criterion, "correct") == 0) bias = 1.5;
  if (std::strcmp(criterion, "incorrect") == 0) bias = -0.5;
  size_t num_users = 0;
  for (const Session& s : sessions) num_users = std::max(num_users,
                                                         s.user + 1);
  for (size_t u = 0; u < num_users; ++u) {
    double ac = ThroughputByUser(u, Tool::kAggChecker);
    double sql = ThroughputByUser(u, Tool::kSql);
    double speedup = sql > 0 ? ac / sql : 10.0;
    double score = speedup + bias;
    if (score > 5.0) {
      ++row.ac_strong;
    } else if (score > 2.0) {
      ++row.ac_weak;
    } else if (score > 0.8) {
      ++row.neutral;
    } else if (score > 0.4) {
      ++row.sql_weak;
    } else {
      ++row.sql_strong;
    }
  }
  return row;
}

}  // namespace sim
}  // namespace aggchecker
