#include "sim/crowd_study.h"

#include <algorithm>

#include "core/aggchecker.h"
#include "util/rng.h"

namespace aggchecker {
namespace sim {

namespace {

/// Claim indices in scope: the whole article, or the claims of the first
/// paragraph that contains an erroneous claim (the paper's two-sentence
/// excerpt deliberately included one).
std::vector<size_t> ScopedClaims(const corpus::CorpusCase& article,
                                 const core::CheckReport& report,
                                 CrowdScope scope) {
  std::vector<size_t> indices;
  if (scope == CrowdScope::kDocument) {
    for (size_t i = 0; i < article.ground_truth.size(); ++i) {
      indices.push_back(i);
    }
    return indices;
  }
  // The paper's paragraph task is a two-sentence excerpt containing one
  // erroneous claim: scope = the first erroneous claim plus its preceding
  // claim.
  size_t erroneous = 0;
  bool found = false;
  for (size_t i = 0; i < article.ground_truth.size(); ++i) {
    if (article.ground_truth[i].is_erroneous) {
      erroneous = i;
      found = true;
      break;
    }
  }
  (void)report;
  if (!found) {
    indices.push_back(0);
    return indices;
  }
  if (erroneous > 0) indices.push_back(erroneous - 1);
  indices.push_back(erroneous);
  return indices;
}

}  // namespace

Result<CrowdResult> RunCrowdStudy(const corpus::CorpusCase& article,
                                  CrowdScope scope, CrowdConfig config) {
  core::CheckOptions options;
  options.report_top_k = 20;
  auto checker = core::AggChecker::Create(&article.database, options);
  if (!checker.ok()) return checker.status();
  auto report = checker->Check(article.document);
  if (!report.ok()) return report.status();

  std::vector<size_t> in_scope = ScopedClaims(article, *report, scope);
  std::vector<size_t> ranks;
  for (size_t i : in_scope) {
    ranks.push_back(corpus::GroundTruthRank(article.ground_truth[i],
                                            report->verdicts[i]));
  }

  Rng rng(config.seed);
  CrowdResult result;
  result.aggchecker_workers = config.aggchecker_workers;
  result.sheet_workers = config.sheet_workers;

  auto simulate_worker = [&](bool uses_aggchecker,
                             corpus::ErrorDetectionMetrics* metrics) {
    double budget = 60.0 * std::max(2.0, rng.NextGaussian(
                                             config.attention_minutes_mean,
                                             config.attention_minutes_stddev));
    double clock = 0;
    for (size_t k = 0; k < in_scope.size(); ++k) {
      size_t claim = in_scope[k];
      bool erroneous = article.ground_truth[claim].is_erroneous;
      double duration;
      bool correct;
      if (uses_aggchecker) {
        size_t rank = ranks[k];
        if (rank >= 1 && rank <= 5) {
          duration = rng.NextGaussian(20, 6);
          correct = true;
        } else if (rank >= 6 && rank <= 10) {
          duration = rng.NextGaussian(38, 10);
          correct = true;
        } else {
          duration = rng.NextGaussian(90, 30);
          correct = rng.NextBool(scope == CrowdScope::kParagraph
                                     ? config.custom_success_paragraph
                                     : config.custom_success);
        }
      } else {
        duration = rng.NextGaussian(config.sheet_seconds_mean,
                                    config.sheet_seconds_stddev);
        correct = rng.NextBool(scope == CrowdScope::kDocument
                                   ? config.sheet_success_document
                                   : config.sheet_success_paragraph);
      }
      duration = std::max(5.0, duration * config.worker_speed_factor);
      if (clock + duration > budget) {
        // Unreached erroneous claims are misses.
        for (size_t rest = k; rest < in_scope.size(); ++rest) {
          if (article.ground_truth[in_scope[rest]].is_erroneous) {
            ++metrics->false_negatives;
          }
        }
        break;
      }
      clock += duration;
      bool flagged =
          correct ? erroneous : rng.NextBool(config.wrong_flag_rate);
      if (flagged && erroneous) ++metrics->true_positives;
      if (flagged && !erroneous) ++metrics->false_positives;
      if (!flagged && erroneous) ++metrics->false_negatives;
    }
    metrics->total_claims += in_scope.size();
  };

  for (size_t w = 0; w < config.aggchecker_workers; ++w) {
    simulate_worker(true, &result.aggchecker);
  }
  for (size_t w = 0; w < config.sheet_workers; ++w) {
    simulate_worker(false, &result.sheet);
  }
  return result;
}

}  // namespace sim
}  // namespace aggchecker
