#pragma once

#include <vector>

#include "core/aggchecker.h"
#include "corpus/corpus_case.h"
#include "corpus/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace aggchecker {
namespace sim {

/// Verification tools compared in the user study (§7.2).
enum class Tool { kAggChecker, kSql };

/// UI action a simulated AggChecker user resolved a claim with (Table 3).
enum class UiAction { kTop1, kTop5, kTop10, kCustom, kSql };

/// \brief One completed claim verification by a simulated user.
struct VerificationEvent {
  double timestamp = 0;     ///< seconds from session start, at completion
  size_t claim_index = 0;
  UiAction action = UiAction::kTop1;
  bool correct_query = false;  ///< user ended on the ground-truth query
  bool user_flagged = false;   ///< user marked the claim as erroneous
};

/// \brief One (user, article, tool) session.
struct Session {
  size_t user = 0;
  size_t article = 0;  ///< index into the study's article list
  Tool tool = Tool::kAggChecker;
  double time_limit = 0;
  std::vector<VerificationEvent> events;

  size_t NumCorrect() const {
    size_t n = 0;
    for (const auto& e : events) n += e.correct_query ? 1 : 0;
    return n;
  }
};

/// \brief Behavioural parameters of the simulated verifiers. Defaults are
/// calibrated so that per-claim verification times land in the ranges the
/// paper's timing curves imply; the *relative* AggChecker-vs-SQL outcome is
/// driven by the measured top-k coverage of the pipeline, not by these
/// constants (see DESIGN.md §1).
struct UserModel {
  double top1_seconds = 9, top1_stddev = 2;
  double top5_seconds = 18, top5_stddev = 4;
  double top10_seconds = 32, top10_stddev = 6;
  double custom_seconds = 80, custom_stddev = 20;
  double custom_success = 0.8;
  double sql_base_seconds = 100, sql_per_predicate = 50, sql_stddev = 25;
  double sql_success = 0.72;
  /// Chance a user who ended on a WRONG query still flags the claim.
  double wrong_query_flag_rate = 0.4;
  /// Per-user speed spread (multiplier ~ N(1, skill_stddev)).
  double skill_stddev = 0.15;
  /// Global slow-down factor (crowd workers use > 1).
  double speed_factor = 1.0;
};

/// \brief Study configuration (§7.2: eight users, six articles, 20/5-minute
/// limits, tools alternating so nobody verifies a document twice).
struct StudyConfig {
  size_t num_users = 8;
  uint64_t seed = 7;
  double long_article_limit = 1200;
  double short_article_limit = 300;
  size_t long_article_threshold = 15;  ///< claims above this = long
  UserModel model;
};

/// \brief Pipeline output for one study article: the checker's report plus
/// the rank of each claim's ground-truth query.
struct ArticleRuntime {
  const corpus::CorpusCase* article = nullptr;
  core::CheckReport report;
  std::vector<size_t> gt_ranks;  ///< 1-based; 0 = not in the top list
};

/// \brief Full study output plus the aggregations the paper reports.
struct StudyResult {
  std::vector<ArticleRuntime> articles;
  std::vector<Session> sessions;

  /// Table 3: share of AggChecker verifications by UI action (percent).
  struct ActionShares {
    double top1 = 0, top5 = 0, top10 = 0, custom = 0;
  };
  ActionShares ComputeActionShares() const;

  /// Table 4: recall/precision of "tool + user" error detection.
  corpus::ErrorDetectionMetrics ErrorDetection(Tool tool) const;

  /// Figure 7: claims verified per minute for one user or article.
  double ThroughputByUser(size_t user, Tool tool) const;
  double ThroughputByArticle(size_t article, Tool tool) const;

  /// Figure 6: average #correctly-verified-claims over time for an article
  /// and tool, sampled every `step` seconds up to the article's limit.
  std::vector<double> VerifiedOverTime(size_t article, Tool tool,
                                       double step) const;

  /// Table 8: survey preference counts derived from per-user speedups.
  struct SurveyRow {
    int sql_strong = 0, sql_weak = 0, neutral = 0, ac_weak = 0,
        ac_strong = 0;
  };
  SurveyRow Survey(const char* criterion) const;
};

/// \brief Runs the simulated on-site user study: executes the real pipeline
/// on every article, then simulates users verifying claims with either the
/// AggChecker UI or a plain SQL interface.
class UserStudy {
 public:
  UserStudy(const std::vector<corpus::CorpusCase>* corpus,
            std::vector<size_t> article_indices, StudyConfig config = {});

  Result<StudyResult> Run();

 private:
  const std::vector<corpus::CorpusCase>* corpus_;
  std::vector<size_t> article_indices_;
  StudyConfig config_;
};

}  // namespace sim
}  // namespace aggchecker
