#pragma once

#include "corpus/corpus_case.h"
#include "corpus/metrics.h"
#include "util/status.h"

namespace aggchecker {
namespace sim {

/// Verification scope of the crowd study (§D / Table 11).
enum class CrowdScope {
  kDocument,   ///< verify the whole article
  kParagraph,  ///< verify two sentences only
};

/// \brief Configuration of the Amazon-Mechanical-Turk-style study.
///
/// Crowd workers are slower and less persistent than on-site participants:
/// they use the tool untrained, give up quickly, and — with a spreadsheet —
/// must eyeball filters by hand, which at document scope essentially never
/// surfaces an erroneous claim (the paper's G-Sheet row is all zeros).
struct CrowdConfig {
  uint64_t seed = 11;
  size_t aggchecker_workers = 19;  ///< respondents in the paper
  size_t sheet_workers = 13;
  double worker_speed_factor = 1.8;      ///< crowd slow-down vs on-site
  double attention_minutes_mean = 12.0;  ///< time before giving up
  double attention_minutes_stddev = 4.0;
  double custom_success = 0.35;          ///< untrained custom-query success
  /// At paragraph scope the paper doubled the payment and the task shrank
  /// to two sentences; workers invest far more effort per claim.
  double custom_success_paragraph = 0.8;
  double sheet_seconds_mean = 200;
  double sheet_seconds_stddev = 80;
  double sheet_success_document = 0.04;
  double sheet_success_paragraph = 0.45;
  double wrong_flag_rate = 0.25;
};

/// \brief Per-tool outcome of a crowd study run.
struct CrowdResult {
  corpus::ErrorDetectionMetrics aggchecker;
  corpus::ErrorDetectionMetrics sheet;
  size_t aggchecker_workers = 0;
  size_t sheet_workers = 0;
};

/// \brief Runs the simulated crowd study on one article (the paper uses a
/// 538 survey article for document scope and a two-sentence excerpt for
/// paragraph scope).
Result<CrowdResult> RunCrowdStudy(const corpus::CorpusCase& article,
                                  CrowdScope scope, CrowdConfig config = {});

}  // namespace sim
}  // namespace aggchecker
