#include "core/aggchecker.h"

#include "core/fault_domain.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace aggchecker {
namespace core {

std::vector<ClaimVerdict> AssembleVerdicts(
    const std::vector<claims::Claim>& detected,
    const model::TranslationResult& translation, size_t top_k) {
  std::vector<ClaimVerdict> verdicts;
  verdicts.reserve(detected.size());
  for (size_t i = 0; i < detected.size(); ++i) {
    ClaimVerdict verdict;
    verdict.claim = detected[i];
    const model::ClaimDistribution& dist = translation.distributions[i];
    verdict.total_candidates = dist.total_candidates;
    for (const auto& cand : dist.ranked) {
      if (cand.matches) verdict.correctness_probability += cand.probability;
    }
    verdict.partial =
        i < translation.partial.size() && translation.partial[i];
    if (i < translation.recovery.size()) {
      verdict.recovery = translation.recovery[i];
    }
    // A partial claim is "gave up", never "wrong": the budget ran out
    // before its candidates could be evaluated, so a non-matching (or
    // missing) top candidate is not evidence of an error.
    verdict.likely_erroneous =
        !verdict.partial &&
        (dist.ranked.empty() || !dist.ranked[0].matches);
    size_t keep = std::min(top_k, dist.ranked.size());
    verdict.top_queries.assign(dist.ranked.begin(),
                               dist.ranked.begin() + keep);
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

Result<AggChecker> AggChecker::Create(const db::Database* db,
                                      CheckOptions options) {
  if (db == nullptr || db->num_tables() == 0) {
    return Status::InvalidArgument("AggChecker needs a non-empty database");
  }
  AggChecker checker(db, std::move(options));
  if (checker.options_.prebuilt_catalog != nullptr) {
    // Snapshot path: adopt the restored catalog instead of re-generating
    // fragments and re-indexing keywords (the dominant cold-start cost).
    checker.catalog_ = checker.options_.prebuilt_catalog;
  } else {
    auto catalog = fragments::FragmentCatalog::Build(*db,
                                                     checker.options_.catalog);
    if (!catalog.ok()) return catalog.status();
    checker.catalog_ = std::make_shared<const fragments::FragmentCatalog>(
        std::move(*catalog));
  }
  checker.engine_ =
      std::make_shared<db::EvalEngine>(db, checker.options_.strategy);
  checker.engine_->SetCubeExecMode(checker.options_.cube_exec);
  checker.engine_->SetQueryFingerprints(checker.options_.query_fingerprints);
  if (!checker.options_.relation_cache) {
    checker.engine_->SetRelationCache(nullptr);
  }
  checker.engine_->SetRecovery(checker.options_.recovery);
  // num_threads == 1 keeps the engine pool-free (the exact serial path);
  // 0 sizes the pool to the hardware. Results are identical either way.
  if (checker.options_.model.num_threads != 1) {
    checker.pool_ =
        std::make_shared<ThreadPool>(checker.options_.model.num_threads);
    checker.engine_->SetThreadPool(checker.pool_.get());
  }
  return checker;
}

namespace {

/// Detaches a run-scoped governor from the (longer-lived) engine on every
/// exit path, so the engine never holds a dangling pointer.
class GovernorScope {
 public:
  GovernorScope(db::EvalEngine* engine, const ResourceGovernor* governor)
      : engine_(engine) {
    engine_->SetGovernor(governor);
  }
  ~GovernorScope() { engine_->SetGovernor(nullptr); }
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  db::EvalEngine* engine_;
};

}  // namespace

Result<CheckReport> AggChecker::Check(const text::TextDocument& doc) {
  AGG_FAULT_POINT("check.run");
  Timer timer;
  CheckReport report;

  // Per-run resource governor: the deadline clock starts here and every
  // evaluation below (naive scans, cubes, EM) charges it via the engine.
  ResourceGovernor governor(options_.governor);
  GovernorScope governor_scope(engine_.get(), &governor);

  // Claim detection (§3) and keyword matching (Algorithm 1).
  claims::ClaimDetector detector(options_.detector);
  std::vector<claims::Claim> detected = detector.Detect(doc);

  claims::KeywordExtractor extractor(options_.context);
  claims::RelevanceScorer scorer(catalog_.get(), extractor,
                                 options_.model.lucene_hits);
  std::vector<claims::ClaimRelevance> relevance =
      scorer.ScoreAll(doc, detected);

  // EM translation with candidate evaluations (Algorithms 3 and 4), inside
  // the run-level fault domain: per-query faults are healed or quarantined
  // by the engine's recovery pass; what surfaces here are run-level faults
  // with no owning query, retried while transient. Engine caches persist
  // across attempts (failed scans are never cached, so re-runs are safe).
  model::Translator translator(db_, catalog_.get(), options_.model);
  model::TranslationResult translation;
  RetryPolicy run_policy = options_.recovery.retry;
  if (!options_.recovery.enabled) run_policy.max_attempts = 1;
  FaultDomain run_domain(run_policy);
  Status run_status = run_domain.Run([&] {
    translation = translator.Translate(detected, relevance, engine_.get());
    return translation.status;
  });
  report.run_attempts = run_domain.record().attempts;
  if (!run_status.ok()) return run_status;

  report.verdicts =
      AssembleVerdicts(detected, translation, options_.report_top_k);

  report.eval_stats = engine_->stats();
  report.em_iterations = translation.em_iterations;
  report.total_candidates = translation.total_candidates;
  report.queries_evaluated = translation.queries_evaluated;
  report.governor_usage = governor.usage();
  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace core
}  // namespace aggchecker
