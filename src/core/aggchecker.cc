#include "core/aggchecker.h"

#include "core/fault_domain.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace aggchecker {
namespace core {

std::vector<ClaimVerdict> AssembleVerdicts(
    const std::vector<claims::Claim>& detected,
    const model::TranslationResult& translation, size_t top_k) {
  std::vector<ClaimVerdict> verdicts;
  verdicts.reserve(detected.size());
  for (size_t i = 0; i < detected.size(); ++i) {
    ClaimVerdict verdict;
    verdict.claim = detected[i];
    const model::ClaimDistribution& dist = translation.distributions[i];
    verdict.total_candidates = dist.total_candidates;
    for (const auto& cand : dist.ranked) {
      if (cand.matches) verdict.correctness_probability += cand.probability;
    }
    verdict.partial =
        i < translation.partial.size() && translation.partial[i];
    if (i < translation.recovery.size()) {
      verdict.recovery = translation.recovery[i];
    }
    // A partial claim is "gave up", never "wrong": the budget ran out
    // before its candidates could be evaluated, so a non-matching (or
    // missing) top candidate is not evidence of an error.
    verdict.likely_erroneous =
        !verdict.partial &&
        (dist.ranked.empty() || !dist.ranked[0].matches);
    size_t keep = std::min(top_k, dist.ranked.size());
    verdict.top_queries.assign(dist.ranked.begin(),
                               dist.ranked.begin() + keep);
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

Result<AggChecker> AggChecker::Create(const db::Database* db,
                                      CheckOptions options) {
  if (db == nullptr || db->num_tables() == 0) {
    return Status::InvalidArgument("AggChecker needs a non-empty database");
  }
  AggChecker checker(db, std::move(options));
  if (checker.options_.prebuilt_catalog != nullptr) {
    // Snapshot path: adopt the restored catalog instead of re-generating
    // fragments and re-indexing keywords (the dominant cold-start cost).
    checker.catalog_ = checker.options_.prebuilt_catalog;
  } else {
    auto catalog = fragments::FragmentCatalog::Build(*db,
                                                     checker.options_.catalog);
    if (!catalog.ok()) return catalog.status();
    checker.catalog_ = std::make_shared<const fragments::FragmentCatalog>(
        std::move(*catalog));
  }
  checker.engine_ =
      std::make_shared<db::EvalEngine>(db, checker.options_.strategy);
  checker.engine_->SetCubeExecMode(checker.options_.cube_exec);
  checker.engine_->SetQueryFingerprints(checker.options_.query_fingerprints);
  if (!checker.options_.relation_cache) {
    checker.engine_->SetRelationCache(nullptr);
  }
  checker.engine_->SetRecovery(checker.options_.recovery);
  // num_threads == 1 keeps the engine pool-free (the exact serial path);
  // 0 sizes the pool to the hardware. Results are identical either way.
  if (checker.options_.model.num_threads != 1) {
    checker.pool_ =
        std::make_shared<ThreadPool>(checker.options_.model.num_threads);
    checker.engine_->SetThreadPool(checker.pool_.get());
  }
  return checker;
}

namespace {

/// Detaches a run-scoped governor from the (longer-lived) engine on every
/// exit path, so the engine never holds a dangling pointer.
class GovernorScope {
 public:
  GovernorScope(db::EvalEngine* engine, const ResourceGovernor* governor)
      : engine_(engine) {
    engine_->SetGovernor(governor);
  }
  ~GovernorScope() { engine_->SetGovernor(nullptr); }
  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  db::EvalEngine* engine_;
};

}  // namespace

Result<CheckReport> AggChecker::Check(const text::TextDocument& doc) {
  AGG_FAULT_POINT("check.run");
  // Claim detection (§3); everything downstream of the detected list is
  // shared with ReCheck through CheckDetected.
  claims::ClaimDetector detector(options_.detector);
  return CheckDetected(doc, detector.Detect(doc), options_.model);
}

Result<CheckReport> AggChecker::CheckDetected(
    const text::TextDocument& doc, std::vector<claims::Claim> detected,
    const model::ModelOptions& model) {
  Timer timer;
  CheckReport report;

  // Per-run resource governor: the deadline clock starts here and every
  // evaluation below (naive scans, cubes, EM) charges it via the engine.
  ResourceGovernor governor(options_.governor);
  GovernorScope governor_scope(engine_.get(), &governor);

  // Keyword matching (Algorithm 1).
  claims::KeywordExtractor extractor(options_.context);
  claims::RelevanceScorer scorer(catalog_.get(), extractor,
                                 model.lucene_hits);
  std::vector<claims::ClaimRelevance> relevance =
      scorer.ScoreAll(doc, detected);

  // EM translation with candidate evaluations (Algorithms 3 and 4), inside
  // the run-level fault domain: per-query faults are healed or quarantined
  // by the engine's recovery pass; what surfaces here are run-level faults
  // with no owning query, retried while transient. Engine caches persist
  // across attempts (failed scans are never cached, so re-runs are safe).
  // Probe pruning runs everywhere on the fingerprint path (decided flags
  // ship to the engine, so governor charges stay bit-identical). The
  // string path — naive strategy, or query_fingerprints off — has no flag
  // transport: a settled probe skips evaluation outright, which is
  // work-proportional charging, so it engages only when no budget is in
  // play (exhaustion points must never move under pruning).
  model::ModelOptions effective_model = model;
  const bool fingerprint_path =
      options_.query_fingerprints &&
      options_.strategy != db::EvalStrategy::kNaive;
  effective_model.probe_pruning =
      options_.probe_pruning &&
      (fingerprint_path || options_.governor.unlimited());
  effective_model.probe_verify = options_.probe_verify;
  // Every reported candidate must show a real result: raise the backfill
  // cover to the report depth.
  effective_model.probe_backfill_top_k =
      std::max(effective_model.probe_backfill_top_k, options_.report_top_k);
  model::Translator translator(db_, catalog_.get(), effective_model);
  model::TranslationResult translation;
  RetryPolicy run_policy = options_.recovery.retry;
  if (!options_.recovery.enabled) run_policy.max_attempts = 1;
  FaultDomain run_domain(run_policy);
  Status run_status = run_domain.Run([&] {
    translation = translator.Translate(detected, relevance, engine_.get());
    return translation.status;
  });
  report.run_attempts = run_domain.record().attempts;
  if (!run_status.ok()) return run_status;

  report.verdicts =
      AssembleVerdicts(detected, translation, options_.report_top_k);

  // Stamp each verdict's dependency versions: the (table, version) pairs
  // ReCheck compares against the live database to decide splice vs re-check.
  for (size_t i = 0; i < report.verdicts.size() &&
                     i < translation.dependency_tables.size();
       ++i) {
    auto& deps = report.verdicts[i].dependencies;
    deps.reserve(translation.dependency_tables[i].size());
    for (const std::string& table : translation.dependency_tables[i]) {
      deps.emplace_back(table, db_->TableVersion(table));
    }
  }

  report.eval_stats = engine_->stats();
  report.probe_stats = translation.probe_stats;
  report.em_iterations = translation.em_iterations;
  report.total_candidates = translation.total_candidates;
  report.queries_evaluated = translation.queries_evaluated;
  report.governor_usage = governor.usage();
  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

Result<CheckReport> AggChecker::ReCheck(const text::TextDocument& doc,
                                        const CheckReport& prior) {
  Timer timer;

  // Re-detect and align against the prior report. Detection is pure text
  // processing (no data reads), so a mismatch means the document itself
  // changed — incremental accounting is meaningless then and the whole
  // run falls back to a from-scratch Check.
  claims::ClaimDetector detector(options_.detector);
  std::vector<claims::Claim> detected = detector.Detect(doc);
  bool aligned = detected.size() == prior.verdicts.size();
  for (size_t i = 0; aligned && i < detected.size(); ++i) {
    const claims::Claim& was = prior.verdicts[i].claim;
    aligned = detected[i].id == was.id &&
              detected[i].claimed_value() == was.claimed_value();
  }
  if (!aligned) return Check(doc);

  const size_t n = detected.size();

  // A claim needs re-checking iff some dependency table moved past the
  // version stamped at check time. Claims with no dependencies read no
  // table and splice forever.
  std::vector<bool> changed(n, false);
  size_t num_changed = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& dep : prior.verdicts[i].dependencies) {
      if (db_->TableVersion(dep.first) != dep.second) {
        changed[i] = true;
        break;
      }
    }
    if (!changed[i]) {
      // Chaos hook: a faulted splice degrades the claim to a full
      // re-evaluation — correctness never depends on splicing working.
      Status splice_status = Status::OK();
      AGG_FAULT_POINT_STATUS("eval.recheck.splice", splice_status);
      if (!splice_status.ok()) changed[i] = true;
    }
    num_changed += changed[i] ? 1 : 0;
  }

  if (num_changed == 0) {
    // Nothing a changed table can reach: the entire prior report is still
    // the answer. No evaluation, no governor, no translation.
    CheckReport report;
    report.verdicts = prior.verdicts;
    report.em_iterations = prior.em_iterations;
    report.total_candidates = prior.total_candidates;
    report.queries_evaluated = prior.queries_evaluated;
    report.governor_usage = prior.governor_usage;
    report.eval_stats = engine_->stats();
    report.claims_spliced = n;
    report.total_seconds = timer.ElapsedSeconds();
    return report;
  }

  if (options_.model.use_priors || !options_.governor.unlimited()) {
    // Document-wide coupling is in play: learned priors tie every claim's
    // distribution to every other claim's evaluations, and a shared budget
    // means the evaluated set itself shapes which claims go partial. Claim
    // splicing would be unsound, so re-run the full pipeline — the speedup
    // comes from the version sweep keeping every cube over untouched
    // tables warm (with its governor charges replayed for budget parity).
    auto report = CheckDetected(doc, std::move(detected), options_.model);
    if (report.ok()) report->claims_rechecked = n;
    return report;
  }

  // Priors off and no budget: per-claim distributions are independent and
  // per-query answers don't depend on batch composition (merged == naive),
  // so only the changed claims need re-translation. Pin PickScope to the
  // full document's claim count so the subset gets the same per-claim
  // budget a from-scratch run would compute.
  std::vector<claims::Claim> subset;
  subset.reserve(num_changed);
  for (size_t i = 0; i < n; ++i) {
    if (changed[i]) subset.push_back(detected[i]);
  }
  model::ModelOptions subset_model = options_.model;
  subset_model.scope_num_claims = n;
  auto sub = CheckDetected(doc, std::move(subset), subset_model);
  if (!sub.ok()) return sub.status();

  CheckReport report;
  report.verdicts = prior.verdicts;
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (changed[i]) report.verdicts[i] = std::move(sub->verdicts[next++]);
  }
  report.eval_stats = sub->eval_stats;
  report.probe_stats = sub->probe_stats;
  report.em_iterations = sub->em_iterations;
  // Candidate spaces are data-independent given the catalog, so the
  // from-scratch total is the prior's total.
  report.total_candidates = prior.total_candidates;
  report.queries_evaluated = sub->queries_evaluated;
  report.governor_usage = sub->governor_usage;
  report.run_attempts = sub->run_attempts;
  report.claims_rechecked = num_changed;
  report.claims_spliced = n - num_changed;
  report.total_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace core
}  // namespace aggchecker
