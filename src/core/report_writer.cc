#include "core/report_writer.h"

#include <map>

#include "core/markup.h"
#include "core/query_describer.h"
#include "util/strings.h"

namespace aggchecker {
namespace core {

namespace {

std::string EscapeHtml(const std::string& s) {
  std::string out = strings::ReplaceAll(s, "&", "&amp;");
  out = strings::ReplaceAll(out, "<", "&lt;");
  out = strings::ReplaceAll(out, ">", "&gt;");
  return out;
}

constexpr const char* kCss = R"(
body { font-family: Georgia, serif; max-width: 52rem; margin: 2rem auto;
       line-height: 1.5; color: #1a1a1a; padding: 0 1rem; }
h1 { font-size: 1.6rem; } h2 { font-size: 1.2rem; margin-top: 1.6rem; }
.verified { background: #e2f4e2; color: #14601c; border-radius: 3px;
            padding: 0 2px; font-weight: 600; }
.flagged { background: #fbe3e4; color: #8f1d22; border-radius: 3px;
           padding: 0 2px; font-weight: 700; }
.claim-card { border: 1px solid #ddd; border-radius: 6px; margin: 0.8rem 0;
              padding: 0.6rem 0.9rem; font-family: Helvetica, sans-serif;
              font-size: 0.85rem; }
.claim-card.bad { border-color: #d9a0a4; background: #fdf7f7; }
.claim-card h3 { margin: 0 0 0.4rem; font-size: 0.95rem; }
table { border-collapse: collapse; width: 100%; }
td, th { text-align: left; padding: 2px 8px 2px 0; vertical-align: top; }
.prob { font-variant-numeric: tabular-nums; }
.match { color: #14601c; } .nomatch { color: #8f1d22; }
.summary { font-family: Helvetica, sans-serif; font-size: 0.85rem;
           color: #555; margin-bottom: 1.5rem; }
)";

}  // namespace

std::string WriteHtmlReport(const text::TextDocument& doc,
                            const CheckReport& report,
                            const std::string& title_note) {
  std::string out = "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  out += "<title>AggChecker report";
  if (!doc.title().empty()) out += ": " + EscapeHtml(doc.title());
  out += "</title>\n<style>" + std::string(kCss) + "</style></head>\n<body>\n";

  out += strings::Format(
      "<p class=\"summary\">AggChecker checked %zu claim%s, flagged %zu as "
      "likely erroneous. %d EM iteration%s, %zu candidate queries "
      "evaluated, %.2fs.%s</p>\n",
      report.verdicts.size(), report.verdicts.size() == 1 ? "" : "s",
      report.NumFlagged(), report.em_iterations,
      report.em_iterations == 1 ? "" : "s", report.queries_evaluated,
      report.total_seconds,
      title_note.empty() ? "" : (" " + EscapeHtml(title_note)).c_str());

  // The marked-up article. RenderMarkup emits markdown-ish headings with
  // HTML spans around claims; convert the heading lines.
  std::string marked = RenderMarkup(doc, report, MarkupStyle::kHtml);
  for (std::string& line : strings::Split(marked, '\n')) {
    if (strings::StartsWith(line, "!! ")) continue;  // appendix lines
    if (strings::StartsWith(line, "## ")) {
      out += "<h2>" + line.substr(3) + "</h2>\n";
    } else if (strings::StartsWith(line, "# ")) {
      out += "<h1>" + line.substr(2) + "</h1>\n";
    } else if (!strings::Trim(line).empty()) {
      out += "<p>" + line + "</p>\n";
    }
  }

  // Per-claim detail cards.
  out += "<h2>Claim details</h2>\n";
  for (const ClaimVerdict& v : report.verdicts) {
    out += strings::Format(
        "<div class=\"claim-card%s\">\n<h3>claim %s — \"%s\" — %s "
        "(correctness probability %.2f)</h3>\n<table>\n",
        v.likely_erroneous ? " bad" : "", EscapeHtml(v.claim.id).c_str(),
        EscapeHtml(v.claim.number.raw).c_str(),
        v.likely_erroneous ? "LIKELY ERRONEOUS" : "verified",
        v.correctness_probability);
    out += "<tr><th></th><th>p</th><th>query</th><th>result</th></tr>\n";
    size_t shown = 0;
    for (const auto& cand : v.top_queries) {
      if (++shown > 5) break;
      std::string result =
          cand.result.has_value() ? strings::Format("%g", *cand.result)
                                  : "—";
      out += strings::Format(
          "<tr><td>%zu.</td><td class=\"prob\">%.3f</td>"
          "<td>%s<br><small>%s</small></td>"
          "<td class=\"%s\">%s</td></tr>\n",
          shown, cand.probability,
          EscapeHtml(DescribeQuery(cand.query)).c_str(),
          EscapeHtml(cand.query.ToSql()).c_str(),
          cand.matches ? "match" : "nomatch", result.c_str());
    }
    out += "</table>\n</div>\n";
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace core
}  // namespace aggchecker
