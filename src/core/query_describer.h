#pragma once

#include <string>

#include "db/query.h"

namespace aggchecker {
namespace core {

/// \brief Renders a candidate query as a natural-language description, as
/// shown in the AggChecker UI when hovering over a claim (Figure 3(b)).
///
/// Example: Count(*) over nflsuspensions with Games='indef' becomes
/// "the number of rows in nflsuspensions where Games is 'indef'".
std::string DescribeQuery(const db::SimpleAggregateQuery& query);

}  // namespace core
}  // namespace aggchecker
