#include "core/fault_domain.h"

namespace aggchecker {
namespace core {

Status FaultDomain::Run(const std::function<Status()>& op) {
  record_ = RunRecord{};
  Status status = op();
  while (!status.ok() && status.IsTransient() &&
         record_.attempts < policy_.max_attempts) {
    record_.last_error = status;
    SleepForBackoff(policy_, record_.attempts);
    ++record_.attempts;
    status = op();
  }
  if (!status.ok()) {
    record_.last_error = status;
  } else if (record_.attempts > 1) {
    record_.recovered = true;
  }
  return status;
}

}  // namespace core
}  // namespace aggchecker
