#include "core/query_describer.h"

namespace aggchecker {
namespace core {

namespace {
std::string AggPhrase(const db::SimpleAggregateQuery& query) {
  const std::string target =
      query.is_star() ? "rows" : "'" + query.agg_column.column + "'";
  switch (query.fn) {
    case db::AggFn::kCount:
      return query.is_star() ? "the number of rows"
                             : "the number of entries in " + target;
    case db::AggFn::kCountDistinct:
      return "the number of distinct values of " + target;
    case db::AggFn::kSum:
      return "the sum of " + target;
    case db::AggFn::kAvg:
      return "the average of " + target;
    case db::AggFn::kMin:
      return "the minimum of " + target;
    case db::AggFn::kMax:
      return "the maximum of " + target;
    case db::AggFn::kPercentage:
      return "the percentage of " + (query.is_star()
                                         ? std::string("rows")
                                         : target + " entries");
    case db::AggFn::kConditionalProbability:
      return "the probability (in percent)";
  }
  return "the value";
}
}  // namespace

std::string DescribeQuery(const db::SimpleAggregateQuery& query) {
  std::string out = AggPhrase(query);
  auto tables = query.ReferencedTables();
  if (!tables.empty()) {
    out += " in ";
    for (size_t i = 0; i < tables.size(); ++i) {
      if (i > 0) out += " joined with ";
      out += tables[i];
    }
  }
  if (query.fn == db::AggFn::kConditionalProbability &&
      !query.predicates.empty()) {
    out += " that ";
    for (size_t i = 1; i < query.predicates.size(); ++i) {
      if (i > 1) out += " and ";
      out += query.predicates[i].column.column + " is '" +
             query.predicates[i].value.ToString() + "'";
    }
    if (query.predicates.size() == 1) out += "any row is selected";
    out += ", given that " + query.predicates[0].column.column + " is '" +
           query.predicates[0].value.ToString() + "'";
    return out;
  }
  if (!query.predicates.empty()) {
    out += " where ";
    for (size_t i = 0; i < query.predicates.size(); ++i) {
      if (i > 0) out += " and ";
      out += query.predicates[i].column.column + " is '" +
             query.predicates[i].value.ToString() + "'";
    }
  }
  return out;
}

}  // namespace core
}  // namespace aggchecker
