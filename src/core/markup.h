#pragma once

#include <string>

#include "core/aggchecker.h"
#include "text/document.h"

namespace aggchecker {
namespace core {

/// Output styles for claim markup.
enum class MarkupStyle {
  kAnsi,   ///< terminal colors (green = verified, red = flagged)
  kPlain,  ///< [OK]/[??] textual markers
  kHtml,   ///< <span class="verified|flagged"> wrappers
};

/// \brief Renders the document with claims colored by their verdict —
/// the "spell checker" view of Figure 3(a).
///
/// Each claim's numeric mention is wrapped according to `style`; flagged
/// claims additionally show the best query's description and result.
std::string RenderMarkup(const text::TextDocument& doc,
                         const CheckReport& report,
                         MarkupStyle style = MarkupStyle::kAnsi);

}  // namespace core
}  // namespace aggchecker
