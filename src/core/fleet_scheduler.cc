#include "core/fleet_scheduler.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>

#include "db/column_stats.h"
#include "db/table.h"
#include "util/fault_injection.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace aggchecker {
namespace core {

namespace {

/// Modeled scans per claim: candidates merge into a handful of cube scans
/// per claim per EM pass (see DESIGN.md §14 — constants only need to order
/// documents correctly, not predict wall time).
constexpr double kScansPerClaim = 3.0;
/// Weight of the cube-group term (groups are far cheaper than row scans).
constexpr double kGroupCostWeight = 0.5;

/// Runs one document under its slice and writes its result slot. `out`
/// slots are distinct per document, so workers never share one.
void RunDocument(const FleetDocument& doc, const CheckOptions& sliced,
                 FleetDocumentResult* out) {
  auto checker = AggChecker::Create(doc.database, sliced);
  if (!checker.ok()) {
    out->status = checker.status();
    return;
  }
  auto report = checker->Check(*doc.document);
  if (!report.ok()) {
    out->status = report.status();
    return;
  }
  out->report = std::move(*report);
}

/// Folds per-document outcomes into the fleet totals.
void Aggregate(FleetRunResult* result) {
  for (const FleetDocumentResult& doc : result->documents) {
    if (!doc.status.ok()) {
      ++result->documents_failed;
      continue;
    }
    for (const ClaimVerdict& v : doc.report.verdicts) {
      ++result->claims_total;
      if (v.partial) {
        ++result->claims_partial;
      } else {
        ++result->claims_verified;
      }
    }
    const GovernorUsage& usage = doc.report.governor_usage;
    result->usage.rows_charged += usage.rows_charged;
    result->usage.cube_groups_charged += usage.cube_groups_charged;
    result->usage.memory_bytes_charged += usage.memory_bytes_charged;
    result->usage.checkpoints += usage.checkpoints;
    if (usage.exhausted) {
      ++result->documents_exhausted;
      result->usage.exhausted = true;
      if (result->usage.stop_code == StatusCode::kOk) {
        result->usage.stop_code = usage.stop_code;
      }
    }
  }
}

/// The per-document CheckOptions: the global budget replaced by the fair
/// slice, document-internal parallelism off (the fleet parallelizes across
/// documents; nested pools would oversubscribe and add nothing).
CheckOptions SliceOptions(const FleetOptions& options, size_t num_documents) {
  CheckOptions check = options.check;
  check.governor = SliceGovernorBudget(options.check.governor, num_documents);
  check.model.num_threads = 1;
  return check;
}

void FillThreadReport(FleetRunResult* result, size_t threads) {
  result->threads_used = threads;
  result->hardware_concurrency = ThreadPool::HardwareConcurrency();
  result->threads_oversubscribed =
      result->threads_used > result->hardware_concurrency;
}

}  // namespace

GovernorLimits SliceGovernorBudget(const GovernorLimits& global,
                                   size_t num_documents) {
  const uint64_t n = std::max<uint64_t>(num_documents, 1);
  GovernorLimits slice = global;
  if (global.max_row_scans > 0) {
    slice.max_row_scans = std::max<uint64_t>(1, global.max_row_scans / n);
  }
  if (global.max_cube_groups > 0) {
    slice.max_cube_groups = std::max<uint64_t>(1, global.max_cube_groups / n);
  }
  if (global.max_memory_bytes > 0) {
    slice.max_memory_bytes =
        std::max<uint64_t>(1, global.max_memory_bytes / n);
  }
  // deadline_seconds passes through: it is measured from each document's
  // own start, so queue wait never counts against a document's budget.
  return slice;
}

double EstimateDocumentCost(const FleetDocument& doc, bool relation_warm) {
  if (doc.database == nullptr) return 1.0;
  const double rows =
      static_cast<double>(std::max<size_t>(doc.database->TotalRows(), 1));
  const double claims =
      static_cast<double>(std::max<size_t>(doc.num_claims_hint, 1));
  // Join materialization: one pass over the data, already paid when the
  // dataset's relation cache is warm from an earlier-scheduled document.
  const double join_cost = relation_warm ? 0.0 : rows;
  // Cube scans: claims share merged scans, but more claims mean more
  // distinct predicate-column sets and EM batches.
  const double scan_cost = claims * kScansPerClaim * rows;
  // Cube groups: the same per-column statistics the probes run on
  // (DESIGN.md §17) give an exact per-dimension cardinality, so the group
  // estimate sums each column's real distinct count instead of the old
  // width × max-cardinality upper bound, which over-charged wide tables
  // with one high-cardinality key column. Deterministic: ColumnStats are a
  // pure function of the data, and scheduling forces the same lazy build
  // the checker's probes reuse. NULL buckets add one group per nullable
  // column.
  double total_groups = 0.0;
  for (size_t t = 0; t < doc.database->num_tables(); ++t) {
    const db::Table& table = doc.database->table(t);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const db::ColumnStats& stats = table.column(c).Stats();
      total_groups += static_cast<double>(stats.distinct) +
                      (stats.non_null < stats.rows ? 1.0 : 0.0);
    }
  }
  const double group_cost =
      kGroupCostWeight * claims * std::max(total_groups, 1.0);
  return join_cost + scan_cost + group_cost;
}

FleetRunResult RunFleet(const std::vector<FleetDocument>& documents,
                        const FleetOptions& options) {
  FleetRunResult result;
  result.documents.resize(documents.size());
  const size_t threads =
      options.num_threads == 0 ? ThreadPool::HardwareConcurrency()
                               : options.num_threads;
  FillThreadReport(&result, threads);
  if (documents.empty()) return result;

  const CheckOptions sliced = SliceOptions(options, documents.size());
  Timer fleet_timer;

  // Scheduler state. Pops are serialized and greedy: each pop takes the
  // best benefit/cost over the *remaining* documents under the warmth known
  // at that instant, and warmth only changes inside the same critical
  // section — so the schedule order is a pure function of the input,
  // whatever the thread count or timing.
  std::mutex mu;
  std::vector<char> pending(documents.size(), 1);
  size_t remaining = documents.size();
  std::set<const db::Database*> warm;
  size_t next_position = 0;

  auto drain_one = [&]() {
    size_t pick = documents.size();
    double pick_cost = 0;
    size_t position = 0;
    Status pop_status;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (remaining == 0) return;
      if (options.prioritize) {
        double best_priority = -1.0;
        for (size_t i = 0; i < documents.size(); ++i) {
          if (!pending[i]) continue;
          const bool is_warm = warm.count(documents[i].database) > 0;
          const double cost = EstimateDocumentCost(documents[i], is_warm);
          const double benefit = static_cast<double>(
              std::max<size_t>(documents[i].num_claims_hint, 1));
          const double priority = benefit / cost;
          if (priority > best_priority) {  // ties break on lowest index
            best_priority = priority;
            pick = i;
            pick_cost = cost;
          }
        }
      } else {
        for (size_t i = 0; i < documents.size(); ++i) {
          if (!pending[i]) continue;
          pick = i;
          pick_cost = EstimateDocumentCost(
              documents[i], warm.count(documents[i].database) > 0);
          break;
        }
      }
      pending[pick] = 0;
      --remaining;
      position = next_position++;
      // By the time anything scheduled after this pop runs, this document
      // will have built (or be building) its dataset's joins.
      warm.insert(documents[pick].database);
      // Chaos hook: a pop fault quarantines the popped document alone —
      // the slot records the injected error and the queue keeps draining.
      AGG_FAULT_POINT_STATUS("fleet.schedule.pop", pop_status);
    }

    FleetDocumentResult& out = result.documents[pick];
    out.index = pick;
    out.cost_estimate = pick_cost;
    out.schedule_position = position;
    if (!pop_status.ok()) {
      out.status = pop_status;
      out.latency_seconds = fleet_timer.ElapsedSeconds();
      return;
    }
    RunDocument(documents[pick], sliced, &out);
    out.latency_seconds = fleet_timer.ElapsedSeconds();
  };

  if (threads <= 1) {
    for (size_t i = 0; i < documents.size(); ++i) drain_one();
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(0, documents.size(),
                     [&](size_t) { drain_one(); });
  }

  result.total_seconds = fleet_timer.ElapsedSeconds();
  Aggregate(&result);
  return result;
}

FleetRunResult RunFleetSequential(
    const std::vector<FleetDocument>& documents,
    const FleetOptions& options) {
  FleetRunResult result;
  result.documents.resize(documents.size());
  FillThreadReport(&result, 1);
  if (documents.empty()) return result;

  const CheckOptions sliced = SliceOptions(options, documents.size());
  Timer fleet_timer;
  std::set<const db::Database*> warm;
  for (size_t i = 0; i < documents.size(); ++i) {
    FleetDocumentResult& out = result.documents[i];
    out.index = i;
    out.schedule_position = i;
    out.cost_estimate = EstimateDocumentCost(
        documents[i], warm.count(documents[i].database) > 0);
    warm.insert(documents[i].database);
    RunDocument(documents[i], sliced, &out);
    out.latency_seconds = fleet_timer.ElapsedSeconds();
  }
  result.total_seconds = fleet_timer.ElapsedSeconds();
  Aggregate(&result);
  return result;
}

std::string FleetVerdictFingerprint(const CheckReport& report) {
  std::string out;
  auto bits = [](double v) { return strings::Format("%a", v); };
  for (const auto& v : report.verdicts) {
    out += strings::Format(
        "claim %s cand=%zu correct=%s err=%d partial=%d\n",
        v.claim.id.c_str(), v.total_candidates,
        bits(v.correctness_probability).c_str(), v.likely_erroneous ? 1 : 0,
        v.partial ? 1 : 0);
    for (const auto& q : v.top_queries) {
      out += strings::Format(
          "  p=%s result=%s match=%d sql=%s\n", bits(q.probability).c_str(),
          q.result.has_value() ? bits(*q.result).c_str() : "none",
          q.matches ? 1 : 0, q.query.ToSql().c_str());
    }
  }
  return out;
}

}  // namespace core
}  // namespace aggchecker
