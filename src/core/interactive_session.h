#pragma once

#include <optional>
#include <vector>

#include "core/aggchecker.h"

namespace aggchecker {
namespace core {

/// \brief Semi-automated checking session (Definition 3 / Figure 3).
///
/// Wraps one document's check and lets a user take the corrective actions
/// of the AggChecker UI: confirming the top query, picking another
/// candidate from the top-k list (Figure 3(c)), or assembling a custom
/// query (Figure 3(d)). Confirmed translations are *pinned*; Refresh()
/// re-runs the expectation-maximization translation with pinned claims
/// fixed, so the signal propagates through the learned priors to the
/// still-unresolved claims ("the information gained from easy cases
/// spreads across claims", Example 5).
///
/// \code
///   auto session = core::InteractiveSession::Start(&checker, &doc);
///   session->SelectCandidate(2, 3);      // claim 2: pick 3rd candidate
///   session->Refresh();                  // propagate to other claims
///   const core::CheckReport& r = session->report();
/// \endcode
class InteractiveSession {
 public:
  /// Runs the initial automated pass.
  static Result<InteractiveSession> Start(AggChecker* checker,
                                          const text::TextDocument* doc);

  const CheckReport& report() const { return report_; }
  size_t num_claims() const { return detected_.size(); }

  /// Pins claim `claim_idx` to its candidate at `rank` (1-based) in the
  /// current report. Rank 1 confirms the tentative translation.
  Status SelectCandidate(size_t claim_idx, size_t rank);

  /// Pins claim `claim_idx` to a user-assembled query; the query is
  /// validated against the schema first.
  Status SetCustomQuery(size_t claim_idx, db::SimpleAggregateQuery query);

  /// Removes a pin; the claim becomes automatic again on the next Refresh.
  Status ClearCorrection(size_t claim_idx);

  /// Marks a detected number as not actually being a claim (the paper's
  /// "user feedback to prune spurious matches", §3). Dismissed claims drop
  /// out of the report and the prior maximization on the next Refresh.
  Status DismissClaim(size_t claim_idx);
  bool IsDismissed(size_t claim_idx) const {
    return claim_idx < dismissed_.size() && dismissed_[claim_idx];
  }

  bool IsPinned(size_t claim_idx) const {
    return claim_idx < pinned_.size() && pinned_[claim_idx].has_value();
  }
  size_t NumPinned() const;

  /// Re-translates with the current pins; updates report().
  Status Refresh();

 private:
  InteractiveSession(AggChecker* checker, const text::TextDocument* doc)
      : checker_(checker), doc_(doc) {}

  Status Translate();

  AggChecker* checker_;
  const text::TextDocument* doc_;
  std::vector<claims::Claim> detected_;
  std::vector<claims::ClaimRelevance> relevance_;
  std::vector<std::optional<db::SimpleAggregateQuery>> pinned_;
  std::vector<bool> dismissed_;
  CheckReport report_;
};

}  // namespace core
}  // namespace aggchecker
