#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "claims/claim_detector.h"
#include "claims/keyword_extractor.h"
#include "claims/relevance_scorer.h"
#include "db/eval_engine.h"
#include "fragments/catalog.h"
#include "model/translator.h"
#include "text/document.h"
#include "util/resource_governor.h"
#include "util/retry.h"
#include "util/status.h"

namespace aggchecker {
namespace core {

/// \brief All configuration of a checking run.
struct CheckOptions {
  claims::ClaimDetectorOptions detector;
  claims::KeywordContextOptions context;
  model::ModelOptions model;
  db::EvalStrategy strategy = db::EvalStrategy::kMergedCached;
  /// Cube materialization backend. The vectorized default and the scalar
  /// oracle produce bit-identical reports; the oracle exists for
  /// differential testing and as the perf-smoke baseline.
  db::CubeExecMode cube_exec = db::CubeExecMode::kVectorized;
  /// Acquire joined relations through the database's shared RelationCache
  /// (built once per distinct table set, reused across batches, claims, and
  /// EM iterations). false = every query/cube rebuilds its join privately —
  /// the pre-cache reference behavior kept for differential tests and the
  /// cache-off bench columns. Reports are bit-identical either way.
  bool relation_cache = true;
  /// Ship candidates to the engine as interned query fingerprints and plan
  /// merged cubes against integer-keyed caches that survive EM iterations
  /// (DESIGN.md §12). false = the string-keyed reference path, which
  /// re-plans every batch from rebuilt SQL strings — kept for differential
  /// tests and benches. Reports are bit-identical either way.
  bool query_fingerprints = true;
  /// Verification-aware candidate pruning (DESIGN.md §17): probe candidates
  /// against column statistics and dictionaries before evaluation and skip
  /// the kernels of cube slices whose every reader is already decided.
  /// Needs the fingerprint path and an optimized strategy; silently off
  /// otherwise. Reports are bit-identical with pruning on or off.
  bool probe_pruning = true;
  /// Differential mode: probe everything but evaluate everything too,
  /// counting probe/synthesis disagreements in CheckReport::probe_stats
  /// (probe_conflicts must stay zero).
  bool probe_verify = false;
  fragments::CatalogOptions catalog;
  /// Pre-built fragment catalog — the snapshot load path (DESIGN.md §15):
  /// when set, Create adopts it instead of building one from the database,
  /// skipping fragment generation and keyword indexing entirely. It must
  /// have been built (or snapshot-restored) from the same database
  /// contents; `catalog` options are ignored. Reports are bit-identical to
  /// a fresh Build — the catalog's dense ids and index scores round-trip
  /// exactly.
  std::shared_ptr<const fragments::FragmentCatalog> prebuilt_catalog;
  /// Candidates kept per claim in the report (the UI shows top-5/top-10).
  size_t report_top_k = 10;
  /// Per-run resource limits (wall-clock deadline, row-scan budget,
  /// cube-group budget). Defaults enforce nothing; with limits set, a run
  /// that exhausts them still completes, marking unfinished claims
  /// `partial` instead of erroneous (see DESIGN.md "Failure-handling
  /// contract").
  GovernorLimits governor;
  /// Self-healing layer (DESIGN.md §13), ON by default: transient faults
  /// retry with capped backoff, persistent faults in optimized paths
  /// descend the fallback ladder to bit-identical reference twins, and
  /// claims failing on every rung are quarantined as partial verdicts
  /// instead of aborting the run. Set `recovery.enabled = false` to get the
  /// fail-fast behavior differential tests rely on.
  RecoveryOptions recovery;
};

/// \brief The verdict for one claim: its ranked query candidates and the
/// erroneous-claim markup decision.
struct ClaimVerdict {
  claims::Claim claim;
  /// Top candidates (query + probability + evaluation result), best first.
  std::vector<model::RankedCandidate> top_queries;
  /// Size of the full candidate space this claim was translated against.
  size_t total_candidates = 0;
  /// Probability mass of candidates whose result matches the claim.
  double correctness_probability = 0.0;
  /// The claim is marked up when its most likely query does not evaluate
  /// (after rounding) to the claimed value.
  bool likely_erroneous = false;
  /// The user dismissed this detection as not-a-claim (spurious match);
  /// it carries no translation and is never marked up.
  bool dismissed = false;
  /// The resource budget ran out before this claim's candidates were fully
  /// evaluated. The verdict is best-effort: top_queries may be incomplete
  /// and the claim is never flagged erroneous ("gave up" ≠ "wrong").
  bool partial = false;
  /// The claim's trip through the self-healing layer: attempts, deepest
  /// fallback-ladder rung, and whether it was healed or quarantined
  /// (quarantined claims are also partial). All-defaults when evaluation
  /// never faulted.
  model::ClaimRecovery recovery;
  /// (lower-cased table, data version) of every base table this claim's
  /// candidate space can read — join closure included — stamped at check
  /// time. The invalidation key for incremental re-verification (DESIGN.md
  /// §16): ReCheck re-evaluates the claim iff some entry here no longer
  /// matches the database's current version.
  std::vector<std::pair<std::string, uint64_t>> dependencies;

  const model::RankedCandidate* best() const {
    return top_queries.empty() ? nullptr : &top_queries[0];
  }
};

/// \brief Summary of one checking run.
struct CheckReport {
  std::vector<ClaimVerdict> verdicts;
  db::EvalStats eval_stats;   ///< backend counters (cube queries, cache)
  double total_seconds = 0;   ///< end-to-end wall time
  int em_iterations = 0;
  size_t total_candidates = 0;
  size_t queries_evaluated = 0;
  /// Resource consumption of this run's governor (rows scanned, cube groups
  /// materialized, whether a limit tripped and which code stopped the run).
  /// Lets callers distinguish "verified clean" from "gave up on a budget".
  GovernorUsage governor_usage;
  /// Times the run-level fault domain executed the translation (1 = no
  /// run-level fault; >1 = a transient run-level fault was retried).
  uint32_t run_attempts = 1;
  /// Incremental re-verification accounting (DESIGN.md §16). A from-scratch
  /// Check leaves both zero. ReCheck counts every claim exactly once:
  /// spliced (verdict copied from the prior report because no dependency
  /// table changed) or rechecked (re-evaluated against the current data).
  size_t claims_spliced = 0;
  size_t claims_rechecked = 0;
  /// Verification-aware probe counters (DESIGN.md §17): candidates probed /
  /// pruned (by family), top-k results backfilled, and — in probe_verify
  /// runs — conflicts between synthesized and real outcomes (must be 0).
  model::ProbeStats probe_stats;

  size_t NumFlagged() const {
    size_t n = 0;
    for (const auto& v : verdicts) n += v.likely_erroneous ? 1 : 0;
    return n;
  }

  /// Claims whose verification was cut short by the resource budget.
  size_t NumPartial() const {
    size_t n = 0;
    for (const auto& v : verdicts) n += v.partial ? 1 : 0;
    return n;
  }

  /// Claims that failed on every fallback-ladder rung (partial, isolated).
  size_t NumQuarantined() const {
    size_t n = 0;
    for (const auto& v : verdicts) n += v.recovery.quarantined ? 1 : 0;
    return n;
  }

  /// Claims the self-healing layer fully healed (faulted, then recovered).
  size_t NumRecovered() const {
    size_t n = 0;
    for (const auto& v : verdicts) n += v.recovery.recovered ? 1 : 0;
    return n;
  }
};

/// Assembles per-claim verdicts from a translation result (shared by
/// AggChecker::Check and InteractiveSession).
std::vector<ClaimVerdict> AssembleVerdicts(
    const std::vector<claims::Claim>& detected,
    const model::TranslationResult& translation, size_t top_k);

/// \brief The AggChecker: verifies text summaries of relational data sets.
///
/// Usage:
/// \code
///   auto checker = core::AggChecker::Create(&database, options);
///   auto report = checker->Check(document);
///   for (const auto& v : report->verdicts) { ... }
/// \endcode
///
/// One AggChecker instance per database; the fragment catalog is built once
/// at Create time and the evaluation cache persists across Check calls on
/// the same instance (mirroring the per-data-set setup of §3).
class AggChecker {
 public:
  static Result<AggChecker> Create(const db::Database* db,
                                   CheckOptions options = {});

  /// Runs the full pipeline on a document: claim detection, keyword
  /// matching, EM translation, verdict assembly.
  Result<CheckReport> Check(const text::TextDocument& doc);

  /// Incrementally re-verifies `doc` against the current database state
  /// given a prior report from this instance (DESIGN.md §16). Claims whose
  /// dependency-table versions are unchanged splice their prior verdicts;
  /// only claims reading a bumped table are re-evaluated — against caches
  /// the version sweep has already narrowed to the touched tables. The
  /// returned report is bit-identical (FleetVerdictFingerprint) to a
  /// from-scratch Check on the current data at any thread count and under
  /// any governor budget. Falls back to a full Check when the detected
  /// claims no longer line up with `prior` (the document changed).
  Result<CheckReport> ReCheck(const text::TextDocument& doc,
                              const CheckReport& prior);

  const fragments::FragmentCatalog& catalog() const { return *catalog_; }
  /// The catalog as an adoptable handle: differential harnesses hand it to
  /// a second checker via CheckOptions::prebuilt_catalog so both compare
  /// reports over the identical fragment space (the catalog is built from
  /// the data at Create time and deliberately does NOT track ingestion —
  /// DESIGN.md §16 pins this down).
  std::shared_ptr<const fragments::FragmentCatalog> shared_catalog() const {
    return catalog_;
  }
  const CheckOptions& options() const { return options_; }
  db::EvalEngine& engine() { return *engine_; }
  const db::Database& database() const { return *db_; }

 private:
  AggChecker(const db::Database* db, CheckOptions options)
      : db_(db), options_(std::move(options)) {}

  /// Check minus detection: scoring, translation, and verdict assembly over
  /// an already-detected claim list. Check and ReCheck both funnel here so
  /// the two paths share one pipeline. `model` overrides options_.model
  /// (ReCheck's subset path pins scope_num_claims); pass options_.model for
  /// the default behavior.
  Result<CheckReport> CheckDetected(const text::TextDocument& doc,
                                    std::vector<claims::Claim> detected,
                                    const model::ModelOptions& model);

  const db::Database* db_;
  CheckOptions options_;
  std::shared_ptr<const fragments::FragmentCatalog> catalog_;
  /// Worker pool sized by ModelOptions::num_threads, shared with the engine
  /// (and through it the translator) for the instance's lifetime. Null when
  /// num_threads == 1 — the fully serial path. Declared before engine_ so
  /// the engine (which holds a raw pointer to it) is destroyed first.
  std::shared_ptr<ThreadPool> pool_;
  std::shared_ptr<db::EvalEngine> engine_;
};

}  // namespace core
}  // namespace aggchecker
