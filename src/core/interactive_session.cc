#include "core/interactive_session.h"

#include "core/fault_domain.h"
#include "db/executor.h"
#include "util/strings.h"
#include "util/timer.h"

namespace aggchecker {
namespace core {

Result<InteractiveSession> InteractiveSession::Start(
    AggChecker* checker, const text::TextDocument* doc) {
  if (checker == nullptr || doc == nullptr) {
    return Status::InvalidArgument("session needs a checker and a document");
  }
  InteractiveSession session(checker, doc);
  const CheckOptions& options = checker->options();

  claims::ClaimDetector detector(options.detector);
  session.detected_ = detector.Detect(*doc);
  session.pinned_.assign(session.detected_.size(), std::nullopt);

  session.dismissed_.assign(session.detected_.size(), false);

  claims::KeywordExtractor extractor(options.context);
  claims::RelevanceScorer scorer(&checker->catalog(), extractor,
                                 options.model.lucene_hits);
  session.relevance_ = scorer.ScoreAll(*doc, session.detected_);

  Status status = session.Translate();
  if (!status.ok()) return status;
  return session;
}

Status InteractiveSession::Translate() {
  Timer timer;
  // Per-refresh governor: each interactive re-translation gets a fresh
  // budget, so a run that tripped once does not poison later refreshes.
  ResourceGovernor governor(checker_->options().governor);
  checker_->engine().SetGovernor(&governor);
  // Dismissed claims drop out of translation (and of the priors' claim
  // pool) entirely.
  std::vector<claims::Claim> active;
  std::vector<claims::ClaimRelevance> active_relevance;
  std::vector<std::optional<db::SimpleAggregateQuery>> active_pins;
  std::vector<size_t> active_index;
  for (size_t i = 0; i < detected_.size(); ++i) {
    if (dismissed_[i]) continue;
    active.push_back(detected_[i]);
    active_relevance.push_back(relevance_[i]);
    active_pins.push_back(pinned_[i]);
    active_index.push_back(i);
  }

  // Same two-layer fault handling as AggChecker::Check: per-query faults
  // are healed or quarantined inside the engine; run-level transients are
  // retried here so one flaky refresh doesn't surface as an error mid-typing.
  model::Translator translator(&checker_->database(), &checker_->catalog(),
                               checker_->options().model);
  model::TranslationResult translation;
  RetryPolicy run_policy = checker_->options().recovery.retry;
  if (!checker_->options().recovery.enabled) run_policy.max_attempts = 1;
  FaultDomain run_domain(run_policy);
  Status run_status = run_domain.Run([&] {
    translation = translator.Translate(active, active_relevance,
                                       &checker_->engine(), &active_pins);
    return translation.status;
  });
  checker_->engine().SetGovernor(nullptr);
  if (!run_status.ok()) return run_status;
  std::vector<ClaimVerdict> active_verdicts = AssembleVerdicts(
      active, translation, checker_->options().report_top_k);

  report_.verdicts.assign(detected_.size(), ClaimVerdict{});
  for (size_t a = 0; a < active_verdicts.size(); ++a) {
    report_.verdicts[active_index[a]] = std::move(active_verdicts[a]);
  }
  for (size_t i = 0; i < detected_.size(); ++i) {
    if (!dismissed_[i]) continue;
    report_.verdicts[i].claim = detected_[i];
    report_.verdicts[i].dismissed = true;
    report_.verdicts[i].likely_erroneous = false;
  }
  report_.eval_stats = checker_->engine().stats();
  report_.em_iterations = translation.em_iterations;
  report_.total_candidates = translation.total_candidates;
  report_.queries_evaluated = translation.queries_evaluated;
  report_.governor_usage = governor.usage();
  report_.run_attempts = run_domain.record().attempts;
  report_.total_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status InteractiveSession::SelectCandidate(size_t claim_idx, size_t rank) {
  if (claim_idx >= report_.verdicts.size()) {
    return Status::OutOfRange("no such claim");
  }
  const auto& top = report_.verdicts[claim_idx].top_queries;
  if (rank < 1 || rank > top.size()) {
    return Status::OutOfRange(strings::Format(
        "claim has %zu candidates, rank %zu requested", top.size(), rank));
  }
  pinned_[claim_idx] = top[rank - 1].query;
  return Status::OK();
}

Status InteractiveSession::SetCustomQuery(size_t claim_idx,
                                          db::SimpleAggregateQuery query) {
  if (claim_idx >= detected_.size()) {
    return Status::OutOfRange("no such claim");
  }
  db::QueryExecutor executor(&checker_->database());
  Status valid = executor.Validate(query);
  if (!valid.ok()) return valid;
  pinned_[claim_idx] = std::move(query);
  return Status::OK();
}

Status InteractiveSession::ClearCorrection(size_t claim_idx) {
  if (claim_idx >= pinned_.size()) return Status::OutOfRange("no such claim");
  pinned_[claim_idx] = std::nullopt;
  dismissed_[claim_idx] = false;
  return Status::OK();
}

Status InteractiveSession::DismissClaim(size_t claim_idx) {
  if (claim_idx >= dismissed_.size()) {
    return Status::OutOfRange("no such claim");
  }
  dismissed_[claim_idx] = true;
  pinned_[claim_idx] = std::nullopt;
  return Status::OK();
}

size_t InteractiveSession::NumPinned() const {
  size_t n = 0;
  for (const auto& p : pinned_) n += p.has_value() ? 1 : 0;
  return n;
}

Status InteractiveSession::Refresh() { return Translate(); }

}  // namespace core
}  // namespace aggchecker
