#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "db/database.h"
#include "text/document.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace aggchecker {
namespace core {

/// \brief One unit of fleet work: a document's claim batch over a (possibly
/// shared) dataset. The scheduler never owns these — the caller keeps
/// databases and documents alive and address-stable for the whole run.
struct FleetDocument {
  std::string name;
  const db::Database* database = nullptr;
  const text::TextDocument* document = nullptr;
  /// Claims this document is expected to resolve — the benefit term of the
  /// scheduling priority (ground-truth claim count when known, otherwise
  /// any monotone estimate such as numeric-sentence count).
  size_t num_claims_hint = 0;
};

/// \brief Fleet-run configuration.
///
/// `check.governor` holds the GLOBAL fleet budget. The scheduler never
/// shares one tripping governor across documents — that would make each
/// document's verdicts depend on scheduling interleaving. Instead the
/// global budget is partitioned into fair, deterministic per-document
/// slices (SliceGovernorBudget): row/group/memory budgets divide evenly
/// across documents, the wall-clock deadline applies per document from its
/// own start (queue wait never counts against a document's budget). The
/// fleet-wide spend is bounded by the sum of slices, every document gets
/// the same slice regardless of queue position (the fairness invariant),
/// and per-document verdicts are bit-identical to a one-at-a-time run of
/// the same slice, for any thread count and any schedule order.
struct FleetOptions {
  CheckOptions check;
  /// Documents checked concurrently (each document runs serially inside —
  /// parallelism is across documents). 0 = hardware concurrency.
  size_t num_threads = 1;
  /// Order work by estimated benefit/cost (relation-cache warmth, rows,
  /// schema width, claim count) instead of submission order.
  bool prioritize = true;
};

/// \brief Outcome of one document's run.
struct FleetDocumentResult {
  size_t index = 0;  ///< position in the input vector
  /// Non-OK when the document never produced a report: checker creation
  /// failed, the run-level fault domain gave up, or an injected
  /// `fleet.schedule.pop` fault quarantined the document at dispatch.
  Status status;
  CheckReport report;
  double cost_estimate = 0;      ///< scheduler's estimate at pop time
  size_t schedule_position = 0;  ///< 0-based pop order
  double latency_seconds = 0;    ///< fleet start -> document completion
};

/// \brief Aggregated fleet outcome. `documents` is in input order;
/// scheduling order is recoverable from schedule_position.
struct FleetRunResult {
  std::vector<FleetDocumentResult> documents;
  double total_seconds = 0;
  size_t claims_total = 0;     ///< verdicts across all documents
  size_t claims_verified = 0;  ///< full (non-partial) verdicts
  size_t claims_partial = 0;   ///< cut short by a budget slice
  size_t documents_failed = 0;     ///< non-OK status (quarantined alone)
  size_t documents_exhausted = 0;  ///< governor slice tripped
  /// Charge totals summed over per-document governors — the fleet-budget
  /// ledger. Deterministic across thread counts and schedule orders.
  GovernorUsage usage;
  /// Verified-claims-per-second over the whole run.
  double throughput() const {
    return total_seconds > 0 ? static_cast<double>(claims_verified) /
                                   total_seconds
                             : 0.0;
  }
  /// Worker breadth actually used, plus the clamp self-report (satellite:
  /// a 1-core host must say so instead of recording phantom scaling data).
  size_t threads_used = 1;
  size_t hardware_concurrency = 1;
  bool threads_oversubscribed = false;  ///< threads_used > hardware
};

/// Fair per-document slice of the global budget: countable budgets divide
/// by `num_documents` (never below 1 once limited), the deadline passes
/// through per document. Deterministic — slices depend only on the global
/// limits and the document count, never on schedule order.
GovernorLimits SliceGovernorBudget(const GovernorLimits& global,
                                   size_t num_documents);

/// The scheduler's cost model for one document (DESIGN.md §14): modeled
/// row-scan cost of evaluating the document's claims over its dataset,
/// plus the join-materialization cost when the dataset's relation cache is
/// still cold, plus a cube-group term from schema width and cardinality.
double EstimateDocumentCost(const FleetDocument& doc, bool relation_warm);

/// \brief Drains the fleet through a priority queue into a worker pool.
///
/// Work items are popped highest benefit/cost first (lazily re-costed as
/// dataset warmth changes; ties break on input index, FIFO when
/// `prioritize` is false). The pop sequence is serialized and greedy, so
/// the schedule order is deterministic for a given input regardless of
/// thread count or timing. Each popped document runs a full Check under
/// its own budget slice; an injected pop fault quarantines that document
/// alone and the queue keeps draining.
FleetRunResult RunFleet(const std::vector<FleetDocument>& documents,
                        const FleetOptions& options);

/// One-at-a-time reference: the same budget slices, input order, no pool,
/// no scheduler. RunFleet must be bit-identical to this per document.
FleetRunResult RunFleetSequential(const std::vector<FleetDocument>& documents,
                                  const FleetOptions& options);

/// \brief Canonical byte rendering of the verdict surface of one document
/// report — what fleet-vs-sequential bit-identity is asserted over (exact
/// hexfloat probabilities/results; wall-clock stats excluded).
std::string FleetVerdictFingerprint(const CheckReport& report);

}  // namespace core
}  // namespace aggchecker
