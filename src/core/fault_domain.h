#pragma once

#include <functional>

#include "util/retry.h"
#include "util/status.h"

namespace aggchecker {
namespace core {

/// \brief Run-level fault domain: executes an operation and retries it with
/// capped exponential backoff while its failure is transient
/// (Status::IsTransient).
///
/// This is the outer layer of the self-healing stack (DESIGN.md §13). The
/// engine's per-query recovery pass heals faults attributable to individual
/// candidate queries; what reaches this domain are run-level faults with no
/// owning query — an EM iteration tripping on a flaky dependency, a
/// poisoned shared structure — where re-running the whole operation is the
/// only recovery available. Permanent errors propagate immediately.
class FaultDomain {
 public:
  /// What happened inside the domain, for CheckReport/telemetry.
  struct RunRecord {
    uint32_t attempts = 1;  ///< total executions, the initial one included
    bool recovered = false; ///< a retry turned a transient failure into OK
    Status last_error;      ///< most recent failure (OK when none occurred)
  };

  explicit FaultDomain(const RetryPolicy& policy) : policy_(policy) {}

  /// Runs `op` until it returns OK, fails permanently, or the policy's
  /// attempts run out; returns the final status. The record is reset per
  /// call, so a domain can guard successive operations.
  Status Run(const std::function<Status()>& op);

  const RunRecord& record() const { return record_; }

 private:
  RetryPolicy policy_;
  RunRecord record_;
};

}  // namespace core
}  // namespace aggchecker
