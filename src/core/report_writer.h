#pragma once

#include <string>

#include "core/aggchecker.h"
#include "text/document.h"

namespace aggchecker {
namespace core {

/// \brief Renders a complete standalone HTML page for a checking run: the
/// marked-up article (green = verified, red = flagged, as in Figure 3(a))
/// followed by a per-claim detail section with the top candidate queries,
/// their natural-language descriptions, probabilities, and evaluation
/// results (Figure 3(b)-(c)'s hover/selection content, in static form).
///
/// The page is self-contained (inline CSS, no scripts) so it can be opened
/// directly or attached to a review.
std::string WriteHtmlReport(const text::TextDocument& doc,
                            const CheckReport& report,
                            const std::string& title_note = "");

}  // namespace core
}  // namespace aggchecker
