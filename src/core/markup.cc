#include "core/markup.h"

#include <map>

#include "core/query_describer.h"
#include "util/strings.h"

namespace aggchecker {
namespace core {

namespace {

struct Wrap {
  std::string ok_open, ok_close, bad_open, bad_close;
};

Wrap WrapFor(MarkupStyle style) {
  switch (style) {
    case MarkupStyle::kAnsi:
      return {"\x1b[32m", "\x1b[0m", "\x1b[31m", "\x1b[0m"};
    case MarkupStyle::kPlain:
      return {"[OK ", "]", "[?? ", "]"};
    case MarkupStyle::kHtml:
      return {"<span class=\"verified\">", "</span>",
              "<span class=\"flagged\">", "</span>"};
  }
  return {};
}

}  // namespace

std::string RenderMarkup(const text::TextDocument& doc,
                         const CheckReport& report, MarkupStyle style) {
  Wrap wrap = WrapFor(style);

  // Verdicts per sentence, ordered by token position.
  std::map<int, std::vector<const ClaimVerdict*>> by_sentence;
  for (const auto& v : report.verdicts) {
    by_sentence[v.claim.sentence].push_back(&v);
  }

  std::string out;
  if (!doc.title().empty()) {
    out += "# " + doc.title() + "\n\n";
  }
  int last_section = -2;
  for (size_t p = 0; p < doc.paragraphs().size(); ++p) {
    const text::Paragraph& para = doc.paragraphs()[p];
    if (para.section != last_section && para.section >= 0) {
      out += "## " + doc.section(para.section).headline + "\n\n";
    }
    last_section = para.section;
    for (int sentence_idx : para.sentence_indices) {
      const text::Sentence& sentence = doc.sentence(sentence_idx);
      auto it = by_sentence.find(sentence_idx);
      if (it == by_sentence.end()) {
        out += sentence.text;
        out += ' ';
        continue;
      }
      // Wrap each claim's raw character span, right to left so offsets stay
      // valid.
      std::string marked = sentence.text;
      std::vector<const ClaimVerdict*> verdicts = it->second;
      std::sort(verdicts.begin(), verdicts.end(),
                [](const ClaimVerdict* a, const ClaimVerdict* b) {
                  return a->claim.number.token_begin >
                         b->claim.number.token_begin;
                });
      for (const ClaimVerdict* v : verdicts) {
        if (v->dismissed) continue;  // pruned by the user, no markup
        size_t tok = v->claim.number.token_begin;
        if (tok >= sentence.tokens.size()) continue;
        size_t begin = sentence.tokens[tok].offset;
        size_t last_tok = v->claim.number.token_end - 1;
        size_t end = sentence.tokens[last_tok].offset +
                     sentence.tokens[last_tok].text.size();
        const std::string& open =
            v->likely_erroneous ? wrap.bad_open : wrap.ok_open;
        const std::string& close =
            v->likely_erroneous ? wrap.bad_close : wrap.ok_close;
        marked.insert(end, close);
        marked.insert(begin, open);
      }
      out += marked;
      out += ' ';
    }
    out += "\n\n";
  }

  // Appendix: flagged claims with their best translation.
  for (const auto& v : report.verdicts) {
    if (!v.likely_erroneous || v.best() == nullptr) continue;
    const auto& best = *v.best();
    out += strings::Format(
        "!! claim %s (\"%s\") - best query: %s = %s\n", v.claim.id.c_str(),
        v.claim.number.raw.c_str(), DescribeQuery(best.query).c_str(),
        best.result.has_value()
            ? strings::Format("%g", *best.result).c_str()
            : "undefined");
  }
  return out;
}

}  // namespace core
}  // namespace aggchecker
