#pragma once

#include <string>
#include <string_view>

namespace aggchecker {
namespace ir {

/// \brief Classic Porter (1980) stemming algorithm.
///
/// Used to match morphological variants between claim keywords and
/// database-derived fragment keywords ("suspensions" vs "suspension",
/// "donated" vs "donate"). Input should be a lower-cased alphabetic token;
/// tokens shorter than 3 characters or containing non-letters are returned
/// unchanged.
std::string PorterStem(std::string_view word);

}  // namespace ir
}  // namespace aggchecker
