#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aggchecker {
namespace ir {

/// \brief A token with its character offset in the source text.
struct Token {
  std::string text;   ///< lower-cased token
  size_t offset = 0;  ///< byte offset of the first character
};

/// \brief Splits text into lower-cased word tokens.
///
/// A token is a maximal run of alphanumeric characters; embedded
/// apostrophes ("don't") and number punctuation ("13.6", "1,200", "1.5e3")
/// are kept inside a single token. Everything else is a separator.
std::vector<Token> TokenizeWithOffsets(std::string_view text);

/// Token texts only.
std::vector<std::string> Tokenize(std::string_view text);

/// True for tokens that are purely numeric (digits with optional sign,
/// decimal point, thousands separators).
bool IsNumericToken(std::string_view token);

/// \brief Common English stop words excluded from keyword indexing.
bool IsStopWord(std::string_view token);

}  // namespace ir
}  // namespace aggchecker
