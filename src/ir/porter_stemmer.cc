#include "ir/porter_stemmer.h"

#include <cctype>

namespace aggchecker {
namespace ir {

namespace {

/// Working buffer for the Porter algorithm, operating in place on the word.
class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)) {}

  std::string Run() {
    if (b_.size() < 3) return b_;
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    return b_;
  }

 private:
  bool IsConsonant(size_t i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// Measure m of the stem b_[0..end): number of VC sequences.
  int Measure(size_t end) const {
    int m = 0;
    size_t i = 0;
    // skip initial consonants
    while (i < end && IsConsonant(i)) ++i;
    while (true) {
      while (i < end && !IsConsonant(i)) ++i;
      if (i >= end) return m;
      ++m;
      while (i < end && IsConsonant(i)) ++i;
      if (i >= end) return m;
    }
  }

  bool HasVowel(size_t end) const {
    for (size_t i = 0; i < end; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool EndsWith(std::string_view suffix) const {
    return b_.size() >= suffix.size() &&
           b_.compare(b_.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  /// Stem length if `suffix` were removed.
  size_t StemLen(std::string_view suffix) const {
    return b_.size() - suffix.size();
  }

  bool DoubleConsonant() const {
    size_t n = b_.size();
    if (n < 2) return false;
    return b_[n - 1] == b_[n - 2] && IsConsonant(n - 1);
  }

  /// cvc pattern at the end, where the final c is not w, x, or y.
  bool CvcEnd(size_t end) const {
    if (end < 3) return false;
    if (!IsConsonant(end - 3) || IsConsonant(end - 2) ||
        !IsConsonant(end - 1)) {
      return false;
    }
    char c = b_[end - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  /// Replaces `suffix` (must match) with `repl`.
  void Replace(std::string_view suffix, std::string_view repl) {
    b_.resize(b_.size() - suffix.size());
    b_.append(repl);
  }

  /// If the word ends with `suffix` and the remaining stem has measure > m,
  /// replaces it with `repl` and returns true. Returns true (without
  /// replacing) also when the suffix matched but the condition failed, so
  /// rule chains stop at the first matching suffix, per the algorithm.
  bool Rule(std::string_view suffix, std::string_view repl, int m) {
    if (!EndsWith(suffix)) return false;
    if (Measure(StemLen(suffix)) > m) Replace(suffix, repl);
    return true;
  }

  void Step1a() {
    if (EndsWith("sses")) {
      Replace("sses", "ss");
    } else if (EndsWith("ies")) {
      Replace("ies", "i");
    } else if (EndsWith("ss")) {
      // keep
    } else if (EndsWith("s")) {
      Replace("s", "");
    }
  }

  void Step1b() {
    bool second_third = false;
    if (EndsWith("eed")) {
      if (Measure(StemLen("eed")) > 0) Replace("eed", "ee");
    } else if (EndsWith("ed")) {
      if (HasVowel(StemLen("ed"))) {
        Replace("ed", "");
        second_third = true;
      }
    } else if (EndsWith("ing")) {
      if (HasVowel(StemLen("ing"))) {
        Replace("ing", "");
        second_third = true;
      }
    }
    if (second_third) {
      if (EndsWith("at") || EndsWith("bl") || EndsWith("iz")) {
        b_.push_back('e');
      } else if (DoubleConsonant()) {
        char c = b_.back();
        if (c != 'l' && c != 's' && c != 'z') b_.pop_back();
      } else if (Measure(b_.size()) == 1 && CvcEnd(b_.size())) {
        b_.push_back('e');
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && HasVowel(b_.size() - 1)) {
      b_.back() = 'i';
    }
  }

  void Step2() {
    if (b_.size() < 3) return;
    // Dispatch on penultimate character as in the original description.
    static const struct {
      const char* suffix;
      const char* repl;
    } kRules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    };
    for (const auto& r : kRules) {
      if (Rule(r.suffix, r.repl, 0)) return;
    }
  }

  void Step3() {
    static const struct {
      const char* suffix;
      const char* repl;
    } kRules[] = {
        {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},    {"ness", ""},
    };
    for (const auto& r : kRules) {
      if (Rule(r.suffix, r.repl, 0)) return;
    }
  }

  void Step4() {
    static const char* kSuffixes[] = {
        "al",   "ance", "ence", "er",   "ic",   "able", "ible", "ant",
        "ement", "ment", "ent",  "ou",   "ism",  "ate",  "iti",  "ous",
        "ive",  "ize",
    };
    for (const char* s : kSuffixes) {
      if (EndsWith(s)) {
        if (Measure(StemLen(s)) > 1) Replace(s, "");
        return;
      }
    }
    // (m>1 and (*S or *T)) ION -> delete
    if (EndsWith("ion")) {
      size_t stem = StemLen("ion");
      if (stem > 0 && (b_[stem - 1] == 's' || b_[stem - 1] == 't') &&
          Measure(stem) > 1) {
        Replace("ion", "");
      }
    }
  }

  void Step5a() {
    if (EndsWith("e")) {
      size_t stem = b_.size() - 1;
      int m = Measure(stem);
      if (m > 1 || (m == 1 && !CvcEnd(stem))) b_.pop_back();
    }
  }

  void Step5b() {
    if (b_.size() >= 2 && b_.back() == 'l' && DoubleConsonant() &&
        Measure(b_.size()) > 1) {
      b_.pop_back();
    }
  }

  std::string b_;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() < 3) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) {
      return std::string(word);  // only plain lower-case words are stemmed
    }
  }
  return Stemmer(std::string(word)).Run();
}

}  // namespace ir
}  // namespace aggchecker
