#include "ir/synonyms.h"

#include <algorithm>

namespace aggchecker {
namespace ir {

void SynonymDictionary::AddGroup(const std::vector<std::string>& words) {
  for (const std::string& w : words) {
    auto& syns = map_[w];
    for (const std::string& other : words) {
      if (other == w) continue;
      if (std::find(syns.begin(), syns.end(), other) == syns.end()) {
        syns.push_back(other);
      }
    }
  }
}

const std::vector<std::string>& SynonymDictionary::Lookup(
    const std::string& word) const {
  auto it = map_.find(word);
  return it == map_.end() ? empty_ : it->second;
}

const SynonymDictionary& SynonymDictionary::Empty() {
  static const SynonymDictionary* kEmpty = new SynonymDictionary();
  return *kEmpty;
}

const SynonymDictionary& SynonymDictionary::Default() {
  static const SynonymDictionary* kDefault = [] {
    auto* d = new SynonymDictionary();
    // Generic data-summary vocabulary.
    d->AddGroup({"ban", "suspension", "punishment", "penalty", "sanction"});
    d->AddGroup({"lifetime", "indefinite", "permanent", "indef"});
    d->AddGroup({"game", "match", "contest"});
    d->AddGroup({"team", "club", "franchise", "squad"});
    d->AddGroup({"player", "athlete"});
    d->AddGroup({"category", "type", "kind", "class", "group", "reason"});
    d->AddGroup({"gambling", "betting", "wagering"});
    d->AddGroup({"substance", "drug", "drugs"});
    d->AddGroup({"abuse", "violation", "offense", "offence", "misuse"});
    d->AddGroup({"repeated", "repeat", "multiple"});
    d->AddGroup({"year", "season"});
    d->AddGroup({"salary", "pay", "wage", "compensation", "earnings",
                 "income"});
    d->AddGroup({"money", "dollars", "funds", "cash", "amount"});
    d->AddGroup({"donation", "contribution", "donor", "gift"});
    d->AddGroup({"candidate", "nominee", "contender"});
    d->AddGroup({"vote", "ballot"});
    d->AddGroup({"election", "race", "primary", "campaign"});
    d->AddGroup({"party", "affiliation"});
    d->AddGroup({"state", "region", "territory"});
    d->AddGroup({"country", "nation"});
    d->AddGroup({"city", "town", "municipality"});
    d->AddGroup({"respondent", "participant", "user", "developer",
                 "surveyed"});
    d->AddGroup({"survey", "poll", "questionnaire"});
    d->AddGroup({"answer", "response", "reply"});
    d->AddGroup({"question", "item"});
    d->AddGroup({"education", "schooling", "degree", "taught", "training"});
    d->AddGroup({"job", "occupation", "role", "position", "employment"});
    d->AddGroup({"experience", "tenure", "seniority"});
    d->AddGroup({"gender", "sex"});
    d->AddGroup({"age", "old"});
    d->AddGroup({"language", "tongue"});
    d->AddGroup({"rude", "impolite", "inconsiderate", "disrespectful"});
    d->AddGroup({"recline", "lean"});
    d->AddGroup({"flier", "flyer", "passenger", "traveler"});
    d->AddGroup({"airplane", "plane", "aircraft", "flight"});
    d->AddGroup({"etiquette", "manners", "courtesy"});
    d->AddGroup({"seat", "chair"});
    d->AddGroup({"child", "kid", "children", "kids"});
    d->AddGroup({"parent", "guardian"});
    d->AddGroup({"speech", "address", "talk", "commencement"});
    d->AddGroup({"president", "presidential"});
    d->AddGroup({"show", "program", "appearance", "broadcast"});
    d->AddGroup({"song", "track", "lyric", "lyrics"});
    d->AddGroup({"artist", "rapper", "musician", "singer"});
    d->AddGroup({"mention", "reference", "namecheck"});
    d->AddGroup({"positive", "favorable", "supportive", "endorsing"});
    d->AddGroup({"negative", "unfavorable", "critical", "hostile"});
    d->AddGroup({"price", "cost", "fee", "charge"});
    d->AddGroup({"sale", "sales", "revenue", "turnover"});
    d->AddGroup({"profit", "earnings", "gain"});
    d->AddGroup({"product", "item", "good", "goods"});
    d->AddGroup({"store", "shop", "outlet", "retailer"});
    d->AddGroup({"customer", "client", "buyer", "shopper"});
    d->AddGroup({"order", "purchase", "transaction"});
    d->AddGroup({"employee", "worker", "staff", "staffer"});
    d->AddGroup({"company", "firm", "corporation", "business", "employer"});
    d->AddGroup({"industry", "sector", "field", "domain"});
    d->AddGroup({"goal", "score", "point", "points"});
    d->AddGroup({"win", "victory", "triumph"});
    d->AddGroup({"loss", "defeat"});
    d->AddGroup({"coach", "manager", "trainer"});
    d->AddGroup({"league", "division", "conference"});
    d->AddGroup({"stadium", "arena", "venue"});
    d->AddGroup({"attendance", "crowd", "turnout"});
    d->AddGroup({"rating", "score", "grade", "mark"});
    d->AddGroup({"movie", "film", "picture"});
    d->AddGroup({"budget", "spending", "expenditure"});
    d->AddGroup({"tax", "levy", "duty"});
    d->AddGroup({"population", "residents", "inhabitants", "people"});
    d->AddGroup({"area", "size", "extent"});
    d->AddGroup({"growth", "increase", "rise"});
    d->AddGroup({"decline", "decrease", "drop", "fall"});
    d->AddGroup({"rate", "ratio", "frequency"});
    d->AddGroup({"median", "middle", "midpoint"});
    d->AddGroup({"female", "woman", "women"});
    d->AddGroup({"male", "man", "men"});
    d->AddGroup({"remote", "distributed", "offsite"});
    d->AddGroup({"programmer", "coder", "developer", "engineer"});
    d->AddGroup({"code", "software", "programming"});
    d->AddGroup({"tool", "technology", "framework", "stack"});
    d->AddGroup({"happy", "satisfied", "content"});
    d->AddGroup({"unhappy", "dissatisfied", "discontent"});
    d->AddGroup({"big", "large", "huge", "sizable"});
    d->AddGroup({"small", "little", "tiny", "modest"});
    d->AddGroup({"new", "recent", "fresh"});
    d->AddGroup({"old", "former", "previous", "prior"});
    d->AddGroup({"poor", "poorer", "poorest", "low-income"});
    d->AddGroup({"rich", "wealthy", "affluent"});
    d->AddGroup({"soccer", "football", "fifa"});
    d->AddGroup({"injury", "injured", "hurt"});
    d->AddGroup({"violence", "violent", "assault"});
    d->AddGroup({"domestic", "family", "household"});
    d->AddGroup({"conduct", "behavior", "behaviour"});
    d->AddGroup({"self-taught", "self", "autodidact"});
    d->AddGroup({"fund", "funding", "fundraising", "funds"});
    d->AddGroup({"committee", "pac", "commission"});
    d->AddGroup({"recipient", "receiver", "beneficiary"});
    d->AddGroup({"genre", "style", "category"});
    d->AddGroup({"station", "network", "channel", "outlet"});
    d->AddGroup({"guest", "visitor", "appearance"});
    d->AddGroup({"sunday", "weekend"});
    d->AddGroup({"morning", "am"});
    d->AddGroup({"senator", "lawmaker", "legislator", "congressman"});
    return d;
  }();
  return *kDefault;
}

}  // namespace ir
}  // namespace aggchecker
