#include "ir/word_splitter.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace aggchecker {
namespace ir {

void WordSplitter::AddWord(const std::string& word) {
  if (word.size() < 2) return;
  if (!Contains(word)) dictionary_.push_back(word);
}

bool WordSplitter::Contains(const std::string& word) const {
  return std::find(dictionary_.begin(), dictionary_.end(), word) !=
         dictionary_.end();
}

std::vector<std::string> WordSplitter::SegmentRun(
    const std::string& run) const {
  // Dynamic program: best[i] = minimal number of dictionary words covering
  // run[0..i), or -1 if not coverable. Prefer fewer (hence longer) words.
  const size_t n = run.size();
  if (n < 4) return {run};  // too short to be a concatenation
  std::vector<int> best(n + 1, -1);
  std::vector<size_t> prev(n + 1, 0);
  best[0] = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (best[j] < 0) continue;
      std::string piece = run.substr(j, i - j);
      if (piece.size() < 2 || !Contains(piece)) continue;
      if (best[i] < 0 || best[j] + 1 < best[i]) {
        best[i] = best[j] + 1;
        prev[i] = j;
      }
    }
  }
  if (best[n] < 0 || best[n] < 2) return {run};  // no split, or trivial
  std::vector<std::string> parts;
  for (size_t i = n; i > 0; i = prev[i]) {
    parts.push_back(run.substr(prev[i], i - prev[i]));
  }
  std::reverse(parts.begin(), parts.end());
  return parts;
}

std::vector<std::string> WordSplitter::Split(
    const std::string& identifier) const {
  // Pass 1: split on explicit separators and case/digit boundaries.
  std::vector<std::string> runs;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      runs.push_back(strings::ToLower(cur));
      cur.clear();
    }
  };
  for (size_t i = 0; i < identifier.size(); ++i) {
    char c = identifier[i];
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      flush();
      continue;
    }
    bool boundary = false;
    if (!cur.empty()) {
      char p = identifier[i - 1];
      bool p_lower = std::islower(static_cast<unsigned char>(p));
      bool c_upper = std::isupper(static_cast<unsigned char>(c));
      bool p_digit = std::isdigit(static_cast<unsigned char>(p));
      bool c_digit = std::isdigit(static_cast<unsigned char>(c));
      if (p_lower && c_upper) boundary = true;          // camelCase
      if (p_digit != c_digit) boundary = true;          // digit edges
      // ABBRWord: split before the last upper of an upper run.
      if (std::isupper(static_cast<unsigned char>(p)) && c_upper &&
          i + 1 < identifier.size() &&
          std::islower(static_cast<unsigned char>(identifier[i + 1]))) {
        boundary = true;
      }
    }
    if (boundary) flush();
    cur.push_back(c);
  }
  flush();

  // Pass 2: dictionary segmentation of long all-letter runs.
  std::vector<std::string> out;
  for (const std::string& run : runs) {
    bool all_alpha = std::all_of(run.begin(), run.end(), [](unsigned char c) {
      return std::isalpha(c) != 0;
    });
    if (all_alpha && !Contains(run)) {
      for (auto& part : SegmentRun(run)) out.push_back(std::move(part));
    } else {
      out.push_back(run);
    }
  }
  return out;
}

const WordSplitter& WordSplitter::Default() {
  static const WordSplitter* kDefault = [] {
    auto* s = new WordSplitter();
    // Compact dictionary targeted at column-name vocabulary: common data
    // headers across the corpus domains plus frequent English nouns.
    static const char* kWords[] = {
        "suspension", "suspensions", "nfl", "team", "teams", "game", "games",
        "player", "players", "category", "name", "names", "year", "years",
        "date", "season", "seasons", "state", "states", "city", "cities",
        "country", "countries", "region", "regions", "county", "counties",
        "vote", "votes", "voter", "voters", "party", "candidate",
        "candidates", "election", "elections", "donor", "donors", "donation",
        "donations", "amount", "amounts", "recipient", "recipients", "fund",
        "funds", "committee", "salary", "salaries", "income", "incomes",
        "price", "prices", "cost", "costs", "total", "count", "number",
        "rate", "rates", "percent", "percentage", "share", "ratio", "age",
        "ages", "gender", "education", "degree", "occupation", "job", "jobs",
        "employment", "employer", "employers", "employee", "employees",
        "company", "companies", "industry", "experience", "level", "levels",
        "response", "responses", "respondent", "respondents", "answer",
        "answers", "question", "questions", "survey", "surveys", "language",
        "languages", "tool", "tools", "tech", "stack", "code", "developer",
        "developers", "remote", "satisfaction", "happy", "happiness",
        "score", "scores", "rating", "ratings", "rank", "ranks", "ranking",
        "goal", "goals", "point", "points", "win", "wins", "loss", "losses",
        "match", "matches", "league", "division", "club", "clubs", "coach",
        "stadium", "attendance", "crowd", "capacity", "population", "area",
        "density", "growth", "gdp", "budget", "revenue", "profit", "sales",
        "sale", "tax", "taxes", "order", "orders", "customer", "customers",
        "product", "products", "store", "stores", "item", "items",
        "quantity", "unit", "units", "speech", "speeches", "president",
        "presidents", "commencement", "school", "schools", "college",
        "university", "station", "stations", "network", "networks", "show",
        "shows", "guest", "guests", "appearance", "appearances", "song",
        "songs", "artist", "artists", "album", "albums", "lyric", "lyrics",
        "mention", "mentions", "sentiment", "genre", "genres", "movie",
        "movies", "film", "films", "title", "titles", "length", "duration",
        "time", "times", "month", "months", "day", "days", "week", "weeks",
        "flight", "flights", "airline", "airlines", "passenger",
        "passengers", "seat", "seats", "recline", "etiquette", "rude",
        "child", "children", "parent", "parents", "household", "weight",
        "height", "distance", "speed", "size", "type", "types", "kind",
        "status", "group", "groups", "class", "classes", "code", "codes",
        "id", "key", "label", "labels", "value", "values", "source", "flag",
        "min", "max", "mean", "median", "avg", "average", "first", "last",
        "start", "end", "home", "away", "male", "female", "self", "taught",
        "formal", "per", "capita", "gross", "net", "annual", "monthly",
        "weekly", "daily", "hourly", "hour", "hours",
    };
    for (const char* w : kWords) s->AddWord(w);
    return s;
  }();
  return *kDefault;
}

}  // namespace ir
}  // namespace aggchecker
