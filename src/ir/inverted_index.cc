#include "ir/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "ir/porter_stemmer.h"

namespace aggchecker {
namespace ir {

int InvertedIndex::AddDocument(const std::vector<TermWeight>& terms) {
  const int doc_id = static_cast<int>(doc_norms_.size());
  // Accumulate weights per stemmed term.
  std::unordered_map<std::string, double> tf;
  for (const auto& [term, weight] : terms) {
    if (term.empty() || weight <= 0) continue;
    tf[PorterStem(term)] += weight;
  }
  double norm_sq = 0;
  for (const auto& [term, weight] : tf) {
    double w = 1.0 + std::log(weight);
    if (w <= 0) w = weight;  // weights < 1 stay sub-linear but positive
    postings_[term].push_back(Posting{doc_id, w});
    norm_sq += w * w;
  }
  doc_norms_.push_back(norm_sq > 0 ? std::sqrt(norm_sq) : 1.0);
  finalized_ = false;
  return doc_id;
}

void InvertedIndex::Finalize() const { finalized_ = true; }

std::vector<InvertedIndex::TermPostings> InvertedIndex::ExportPostings()
    const {
  std::vector<TermPostings> out;
  out.reserve(postings_.size());
  for (const auto& [term, postings] : postings_) {
    out.push_back(TermPostings{term, postings});
  }
  // Deterministic serialization order; restore order does not affect
  // scoring (per-term lookups), but byte-identical snapshots of the same
  // state make the format testable.
  std::sort(out.begin(), out.end(),
            [](const TermPostings& a, const TermPostings& b) {
              return a.term < b.term;
            });
  return out;
}

InvertedIndex InvertedIndex::FromParts(std::vector<TermPostings> postings,
                                       std::vector<double> doc_norms) {
  InvertedIndex index;
  index.doc_norms_ = std::move(doc_norms);
  index.postings_.reserve(postings.size());
  for (TermPostings& tp : postings) {
    index.postings_.emplace(std::move(tp.term), std::move(tp.postings));
  }
  return index;
}

double InvertedIndex::Idf(size_t df) const {
  return std::log(1.0 + static_cast<double>(doc_norms_.size()) /
                            (1.0 + static_cast<double>(df)));
}

InvertedIndex::ScoreScratch& InvertedIndex::TlsScratch() {
  static thread_local ScoreScratch scratch;
  return scratch;
}

void InvertedIndex::Accumulate(const std::vector<TermWeight>& query,
                               ScoreScratch* scratch) const {
  if (!finalized_) Finalize();
  // Merge duplicate query terms first.
  std::unordered_map<std::string, double> qtf;
  for (const auto& [term, weight] : query) {
    if (term.empty() || weight <= 0) continue;
    qtf[PorterStem(term)] += weight;
  }
  for (const auto& [term, weight] : qtf) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    double idf = Idf(it->second.size());
    double qw = weight * idf;
    for (const Posting& p : it->second) {
      scratch->Add(p.doc_id, qw * p.weight * idf /
                                 doc_norms_[static_cast<size_t>(p.doc_id)]);
    }
  }
}

std::vector<ScoredDoc> InvertedIndex::Search(
    const std::vector<TermWeight>& query, size_t top_k) const {
  ScoreScratch& scratch = TlsScratch();
  scratch.Begin(doc_norms_.size());
  Accumulate(query, &scratch);
  std::vector<ScoredDoc> hits;
  hits.reserve(scratch.touched.size());
  for (int doc : scratch.touched) {
    double score = scratch.At(doc);
    if (score > 0) hits.push_back(ScoredDoc{doc, score});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a,
                                         const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

double InvertedIndex::Score(const std::vector<TermWeight>& query,
                            int doc_id) const {
  ScoreScratch& scratch = TlsScratch();
  scratch.Begin(doc_norms_.size());
  Accumulate(query, &scratch);
  if (doc_id < 0 || static_cast<size_t>(doc_id) >= scratch.stamp.size()) {
    return 0.0;
  }
  return scratch.At(doc_id);
}

}  // namespace ir
}  // namespace aggchecker
