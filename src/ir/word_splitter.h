#pragma once

#include <string>
#include <vector>

namespace aggchecker {
namespace ir {

/// \brief Decomposes identifier-style column names into word keywords
/// (§4.2: "Column names are often concatenations of multiple words and
/// abbreviations. We therefore decompose column names into all possible
/// substrings and compare against a dictionary.").
///
/// Handles snake_case, kebab-case, camelCase, digit boundaries, and — for
/// fully concatenated lower-case names like "nflsuspensions" — a
/// dictionary-driven segmentation that prefers fewer, longer words.
/// Unsplittable residue is kept as-is so exotic abbreviations still index.
class WordSplitter {
 public:
  /// Shared splitter with the built-in dictionary.
  static const WordSplitter& Default();

  WordSplitter() = default;

  void AddWord(const std::string& word);

  /// Splits an identifier into lower-cased word parts.
  std::vector<std::string> Split(const std::string& identifier) const;

  bool Contains(const std::string& word) const;

 private:
  /// Dictionary segmentation of a single lower-case run; returns {run} if no
  /// full segmentation into dictionary words exists.
  std::vector<std::string> SegmentRun(const std::string& run) const;

  std::vector<std::string> dictionary_;
};

}  // namespace ir
}  // namespace aggchecker
