#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace aggchecker {
namespace ir {

/// \brief Hand-curated synonym dictionary standing in for WordNet (§4.2).
///
/// Maps a word to its synonym set. Groups are symmetric: every member of a
/// group maps to all other members. The vocabulary is curated for the
/// corpus domains (sports, politics, surveys, economics, entertainment)
/// plus generic data-summary terms; see DESIGN.md §1 for why this
/// substitution preserves the keyword-context ablation behaviour.
class SynonymDictionary {
 public:
  /// The built-in dictionary (shared, immutable).
  static const SynonymDictionary& Default();

  /// An empty dictionary (used by ablations that disable synonyms).
  static const SynonymDictionary& Empty();

  SynonymDictionary() = default;

  /// Registers a symmetric synonym group.
  void AddGroup(const std::vector<std::string>& words);

  /// Synonyms of `word` (excluding the word itself); empty if unknown.
  const std::vector<std::string>& Lookup(const std::string& word) const;

  size_t num_words() const { return map_.size(); }

 private:
  std::unordered_map<std::string, std::vector<std::string>> map_;
  std::vector<std::string> empty_;
};

}  // namespace ir
}  // namespace aggchecker
