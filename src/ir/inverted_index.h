#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aggchecker {
namespace ir {

/// \brief A retrieval hit: document id plus relevance score.
struct ScoredDoc {
  int doc_id = -1;
  double score = 0.0;
};

/// \brief TF-IDF inverted index over weighted keyword bags — the engine the
/// AggChecker uses in place of Apache Lucene (§4.1).
///
/// Documents are weighted term bags (query fragments index their keyword
/// sets; claims query with their weighted keyword contexts). Terms are
/// Porter-stemmed on both sides. Scoring is cosine similarity with
/// log-scaled term frequencies and smoothed idf, matching Lucene's classic
/// practical scoring closely enough to act as the relevance-score source
/// S_c of the probabilistic model.
class InvertedIndex {
 public:
  using TermWeight = std::pair<std::string, double>;

  /// Adds a document; returns its id (dense, starting at 0).
  /// Documents added after the first Search call are an error in spirit —
  /// the index finalizes lazily and asserts immutability via idf caching.
  int AddDocument(const std::vector<TermWeight>& terms);

  /// Top-k documents by score. Ties broken by lower doc id. Query terms are
  /// stemmed; unknown terms are ignored. Scores are always > 0 for returned
  /// docs; fewer than k hits may be returned.
  std::vector<ScoredDoc> Search(const std::vector<TermWeight>& query,
                                size_t top_k) const;

  /// Relevance score of a specific document for a query (0 if no overlap).
  double Score(const std::vector<TermWeight>& query, int doc_id) const;

  size_t num_documents() const { return doc_norms_.size(); }

 private:
  struct Posting {
    int doc_id;
    double weight;  ///< log-scaled term frequency
  };

  void Finalize() const;
  double Idf(size_t df) const;

  /// Accumulates per-document scores for a query into `scores`.
  void Accumulate(const std::vector<TermWeight>& query,
                  std::unordered_map<int, double>* scores) const;

  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<double> doc_norms_;
  mutable bool finalized_ = false;
};

}  // namespace ir
}  // namespace aggchecker
