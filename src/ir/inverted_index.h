#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace aggchecker {
namespace ir {

/// \brief A retrieval hit: document id plus relevance score.
struct ScoredDoc {
  int doc_id = -1;
  double score = 0.0;
};

/// \brief TF-IDF inverted index over weighted keyword bags — the engine the
/// AggChecker uses in place of Apache Lucene (§4.1).
///
/// Documents are weighted term bags (query fragments index their keyword
/// sets; claims query with their weighted keyword contexts). Terms are
/// Porter-stemmed on both sides. Scoring is cosine similarity with
/// log-scaled term frequencies and smoothed idf, matching Lucene's classic
/// practical scoring closely enough to act as the relevance-score source
/// S_c of the probabilistic model.
class InvertedIndex {
 public:
  using TermWeight = std::pair<std::string, double>;

  /// One posting: document id plus its log-scaled term frequency. Public
  /// because the snapshot subsystem serializes postings lists verbatim.
  struct Posting {
    int doc_id;
    double weight;  ///< log-scaled term frequency
  };

  /// One stemmed term's postings list, in document-insertion order.
  struct TermPostings {
    std::string term;
    std::vector<Posting> postings;
  };

  /// Adds a document; returns its id (dense, starting at 0).
  /// Documents added after the first Search call are an error in spirit —
  /// the index finalizes lazily and asserts immutability via idf caching.
  int AddDocument(const std::vector<TermWeight>& terms);

  /// Top-k documents by score. Ties broken by lower doc id. Query terms are
  /// stemmed; unknown terms are ignored. Scores are always > 0 for returned
  /// docs; fewer than k hits may be returned.
  std::vector<ScoredDoc> Search(const std::vector<TermWeight>& query,
                                size_t top_k) const;

  /// Relevance score of a specific document for a query (0 if no overlap).
  double Score(const std::vector<TermWeight>& query, int doc_id) const;

  size_t num_documents() const { return doc_norms_.size(); }

  /// Snapshot hooks (DESIGN.md §15). Scores depend only on the posting
  /// vectors, the document norms, and the document count — all exact
  /// doubles — so an index reassembled by FromParts from ExportPostings'
  /// output scores bit-identically to the original.
  std::vector<TermPostings> ExportPostings() const;  ///< sorted by term
  const std::vector<double>& doc_norms() const { return doc_norms_; }
  static InvertedIndex FromParts(std::vector<TermPostings> postings,
                                 std::vector<double> doc_norms);

 private:
  /// Dense per-document score accumulator, reused across queries (scoring
  /// every claim against every fragment is the retrieval hot path; a hash
  /// map here allocated and rehashed per query). Epoch-stamped: Begin()
  /// invalidates previous scores in O(1), docs touched by the current query
  /// are listed in first-touch order. Per-thread, see TlsScratch().
  struct ScoreScratch {
    std::vector<double> score;    ///< by doc id, valid when stamped
    std::vector<uint32_t> stamp;  ///< epoch the score slot was written
    std::vector<int> touched;     ///< docs scored by the current query
    uint32_t epoch = 0;

    void Begin(size_t num_docs) {
      if (score.size() < num_docs) {
        score.resize(num_docs, 0.0);
        stamp.resize(num_docs, 0u);
      }
      ++epoch;
      if (epoch == 0) {  // wrapped: stale stamps could alias
        for (auto& s : stamp) s = 0u;
        epoch = 1;
      }
      touched.clear();
    }
    void Add(int doc, double v) {
      size_t d = static_cast<size_t>(doc);
      if (stamp[d] != epoch) {
        stamp[d] = epoch;
        score[d] = 0.0;
        touched.push_back(doc);
      }
      score[d] += v;
    }
    double At(int doc) const {
      size_t d = static_cast<size_t>(doc);
      return stamp[d] == epoch ? score[d] : 0.0;
    }
  };

  void Finalize() const;
  double Idf(size_t df) const;

  /// The calling thread's scratch (Search/Score may run concurrently from
  /// the per-claim parallel loops; scratches are never shared).
  static ScoreScratch& TlsScratch();

  /// Accumulates per-document scores for a query into `scratch` (which must
  /// have Begin() called for this query already). Per-document sums run in
  /// the same term-major order as always, so scores are bit-identical to
  /// the old hash-map accumulation.
  void Accumulate(const std::vector<TermWeight>& query,
                  ScoreScratch* scratch) const;

  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<double> doc_norms_;
  mutable bool finalized_ = false;
};

}  // namespace ir
}  // namespace aggchecker
