#include "ir/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace aggchecker {
namespace ir {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// Inner punctuation kept inside a token when flanked by word characters.
bool IsInnerPunct(char c) { return c == '\'' || c == '.' || c == ','; }
}  // namespace

std::vector<Token> TokenizeWithOffsets(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (!IsWordChar(text[i])) {
      ++i;
      continue;
    }
    size_t start = i;
    std::string token;
    while (i < n) {
      char c = text[i];
      if (IsWordChar(c)) {
        token.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        ++i;
      } else if (IsInnerPunct(c) && i + 1 < n && IsWordChar(text[i + 1])) {
        // Keep "don't", "13.6", "1,200" as single tokens; commas only join
        // digit groups ("1,200"), never words.
        if (c == ',' &&
            !(std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
              std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
          break;
        }
        token.push_back(c);
        ++i;
      } else {
        break;
      }
    }
    tokens.push_back(Token{std::move(token), start});
  }
  return tokens;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  for (auto& t : TokenizeWithOffsets(text)) out.push_back(std::move(t.text));
  return out;
}

bool IsNumericToken(std::string_view token) {
  if (token.empty()) return false;
  bool digit_seen = false;
  bool dot_seen = false;
  for (size_t i = 0; i < token.size(); ++i) {
    char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c == '.') {
      if (dot_seen) return false;
      dot_seen = true;
    } else if (c == ',') {
      // thousands separator, must be between digits (tokenizer guarantees)
      continue;
    } else if ((c == '-' || c == '+') && i == 0) {
      continue;
    } else {
      return false;
    }
  }
  return digit_seen;
}

bool IsStopWord(std::string_view token) {
  static const std::unordered_set<std::string_view> kStopWords = {
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "but",
      "by",    "for",   "from",  "had",   "has",   "have",  "he",    "her",
      "his",   "i",     "in",    "is",    "it",    "its",   "of",    "on",
      "or",    "our",   "she",   "that",  "the",   "their", "them",  "then",
      "they",  "this",  "to",    "was",   "we",    "were",  "which", "who",
      "will",  "with",  "you",   "your",  "these", "those", "been",  "being",
      "do",    "does",  "did",   "if",    "into",  "than",  "so",    "such",
      "about", "after", "before", "also", "not",   "no",    "up",    "out",
      "over",  "under", "again", "once",  "here",  "when",  "where", "why",
      "how",   "all",   "any",   "both",  "each",  "few",   "more",  "some",
      "own",   "same",  "s",     "t",     "can",   "just",  "very",  "what",
  };
  return kStopWords.count(token) > 0;
}

}  // namespace ir
}  // namespace aggchecker
