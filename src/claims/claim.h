#pragma once

#include <string>

#include "text/number_parser.h"

namespace aggchecker {
namespace claims {

/// \brief A detected claim: a numeric mention assumed to be the rounded
/// result of a Simple Aggregate Query (Definition 1).
struct Claim {
  int sentence = -1;          ///< sentence index in the TextDocument
  text::ParsedNumber number;  ///< value + token span + flags

  double claimed_value() const { return number.value; }
  bool is_percent() const { return number.is_percent; }

  /// Display id such as "s3#1" (sentence 3, second claim in it).
  std::string id;
};

/// \brief Options for claim detection (§3: "simple heuristics", with user
/// feedback pruning spurious matches — the flags model that pruning).
struct ClaimDetectorOptions {
  bool skip_years = true;     ///< four-digit 1900..2099 literals
  bool skip_ordinals = true;  ///< "3rd", "third"
  /// Values this large are section numbers / ids more often than aggregates
  /// in our corpus; 0 disables the cap.
  double max_value = 0;
};

}  // namespace claims
}  // namespace aggchecker
