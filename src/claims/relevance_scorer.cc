#include "claims/relevance_scorer.h"

namespace aggchecker {
namespace claims {

ClaimRelevance RelevanceScorer::Score(const text::TextDocument& doc,
                                      const Claim& claim) const {
  auto keywords = extractor_.Extract(doc, claim);
  ClaimRelevance rel;
  // All aggregation functions are few; retrieve them all so the model can
  // always score the full function marginal.
  rel.functions = catalog_->Retrieve(fragments::FragmentType::kAggFunction,
                                     keywords, 16);
  rel.columns = catalog_->Retrieve(fragments::FragmentType::kAggColumn,
                                   keywords, hits_);
  rel.predicates = catalog_->Retrieve(fragments::FragmentType::kPredicate,
                                      keywords, hits_);
  return rel;
}

std::vector<ClaimRelevance> RelevanceScorer::ScoreAll(
    const text::TextDocument& doc, const std::vector<Claim>& claims) const {
  std::vector<ClaimRelevance> out;
  out.reserve(claims.size());
  for (const Claim& claim : claims) out.push_back(Score(doc, claim));
  return out;
}

}  // namespace claims
}  // namespace aggchecker
