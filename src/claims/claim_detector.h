#pragma once

#include <vector>

#include "claims/claim.h"
#include "text/document.h"

namespace aggchecker {
namespace claims {

/// \brief Finds potentially check-worthy numeric claims in a document.
///
/// Every numeric mention in body sentences becomes a claim, except those
/// heuristically unlikely to be claimed query results: ordinals, year
/// literals, and values inside headlines. In the paper this stage is
/// deliberately high-recall, with users pruning spurious matches.
class ClaimDetector {
 public:
  explicit ClaimDetector(ClaimDetectorOptions options = {})
      : options_(options) {}

  std::vector<Claim> Detect(const text::TextDocument& doc) const;

 private:
  ClaimDetectorOptions options_;
};

}  // namespace claims
}  // namespace aggchecker
