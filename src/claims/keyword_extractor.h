#pragma once

#include <vector>

#include "claims/claim.h"
#include "ir/inverted_index.h"
#include "ir/synonyms.h"
#include "text/document.h"

namespace aggchecker {
namespace claims {

/// \brief Keyword-context switches — the increments of the Figure 11 /
/// Table 5 keyword-context ablation. The full AggChecker enables all.
struct KeywordContextOptions {
  bool previous_sentence = true;  ///< sentence before the claim sentence
  bool paragraph_start = true;    ///< first sentence of the paragraph
  bool synonyms = true;           ///< synonym expansion of claim keywords
  bool headlines = true;          ///< enclosing section headlines + title

  static KeywordContextOptions ClaimSentenceOnly() {
    return KeywordContextOptions{false, false, false, false};
  }
};

/// \brief Implements Algorithm 2: extracts a weighted keyword set for a
/// claim from its sentence (weighted by approximated dependency-tree
/// distance) and surrounding context (previous sentence, paragraph start,
/// enclosing headlines, document title).
class KeywordExtractor {
 public:
  explicit KeywordExtractor(
      KeywordContextOptions options = {},
      const ir::SynonymDictionary* synonyms = &ir::SynonymDictionary::Default())
      : options_(options), synonyms_(synonyms) {}

  /// Weighted keywords for `claim`. Stop words and the claim's own numeric
  /// tokens are excluded; duplicate words keep their maximum weight before
  /// synonym expansion.
  std::vector<ir::InvertedIndex::TermWeight> Extract(
      const text::TextDocument& doc, const Claim& claim) const;

  const KeywordContextOptions& options() const { return options_; }

 private:
  KeywordContextOptions options_;
  const ir::SynonymDictionary* synonyms_;
};

}  // namespace claims
}  // namespace aggchecker
