#include "claims/keyword_extractor.h"

#include <algorithm>
#include <map>

#include "text/dependency_proxy.h"

namespace aggchecker {
namespace claims {

namespace {

/// Keeps the maximum weight per word.
void AddKeyword(const std::string& word, double weight,
                std::map<std::string, double>* keywords) {
  if (word.empty() || weight <= 0) return;
  if (ir::IsStopWord(word)) return;
  auto [it, inserted] = keywords->emplace(word, weight);
  if (!inserted && weight > it->second) it->second = weight;
}

/// Adds all non-stop-word tokens of a sentence/headline at a flat weight.
void AddSentenceKeywords(const std::vector<ir::Token>& tokens, double weight,
                         std::map<std::string, double>* keywords) {
  for (const ir::Token& t : tokens) AddKeyword(t.text, weight, keywords);
}

}  // namespace

std::vector<ir::InvertedIndex::TermWeight> KeywordExtractor::Extract(
    const text::TextDocument& doc, const Claim& claim) const {
  std::map<std::string, double> keywords;
  const text::Sentence& sentence = doc.sentence(claim.sentence);

  // --- Claim sentence: weight 1/TreeDistance(word, claim). ---
  text::DependencyProxy proxy(sentence.text);
  const auto& tokens = proxy.tokens();
  // The claim anchor is the first token of the numeric mention.
  const size_t anchor =
      std::min(claim.number.token_begin,
               tokens.empty() ? size_t{0} : tokens.size() - 1);
  double min_weight = 1.0;
  for (size_t t = 0; t < tokens.size(); ++t) {
    if (t >= claim.number.token_begin && t < claim.number.token_end) {
      continue;  // the claimed value itself is not a keyword
    }
    double weight = 1.0 / static_cast<double>(std::max(
                              1, proxy.TreeDistance(t, anchor)));
    min_weight = std::min(min_weight, weight);
    AddKeyword(tokens[t].text, weight, &keywords);
  }

  // --- Previous sentence and paragraph start: weight 0.4 * m. ---
  if (options_.previous_sentence) {
    int prev = doc.PreviousSentenceInParagraph(claim.sentence);
    if (prev >= 0) {
      AddSentenceKeywords(doc.sentence(prev).tokens, 0.4 * min_weight,
                          &keywords);
    }
  }
  if (options_.paragraph_start) {
    int first = doc.ParagraphFirstSentence(claim.sentence);
    if (first != claim.sentence) {
      AddSentenceKeywords(doc.sentence(first).tokens, 0.4 * min_weight,
                          &keywords);
    }
  }

  // --- Enclosing headlines (and the document title): weight 0.7 * m. ---
  if (options_.headlines) {
    for (int sec : doc.EnclosingSections(claim.sentence)) {
      AddSentenceKeywords(ir::TokenizeWithOffsets(doc.section(sec).headline),
                          0.7 * min_weight, &keywords);
    }
    if (!doc.title().empty()) {
      AddSentenceKeywords(ir::TokenizeWithOffsets(doc.title()),
                          0.7 * min_weight, &keywords);
    }
  }

  // --- Synonym expansion at a discount, without overriding originals. ---
  std::vector<ir::InvertedIndex::TermWeight> out;
  out.reserve(keywords.size());
  if (options_.synonyms && synonyms_ != nullptr) {
    std::map<std::string, double> expanded;
    for (const auto& [word, weight] : keywords) {
      for (const std::string& syn : synonyms_->Lookup(word)) {
        if (keywords.count(syn) > 0) continue;
        auto [it, inserted] = expanded.emplace(syn, 0.6 * weight);
        if (!inserted && 0.6 * weight > it->second) it->second = 0.6 * weight;
      }
    }
    for (const auto& [word, weight] : expanded) {
      keywords.emplace(word, weight);
    }
  }

  for (const auto& [word, weight] : keywords) {
    out.push_back({word, weight});
  }
  return out;
}

}  // namespace claims
}  // namespace aggchecker
