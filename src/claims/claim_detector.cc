#include "claims/claim_detector.h"

#include "util/strings.h"

namespace aggchecker {
namespace claims {

std::vector<Claim> ClaimDetector::Detect(const text::TextDocument& doc) const {
  std::vector<Claim> claims;
  for (size_t s = 0; s < doc.sentences().size(); ++s) {
    const text::Sentence& sentence = doc.sentences()[s];
    int in_sentence = 0;
    for (text::ParsedNumber& number :
         text::FindNumbers(sentence.text, sentence.tokens)) {
      if (options_.skip_ordinals && number.is_ordinal) continue;
      if (options_.skip_years && number.looks_like_year) continue;
      if (options_.max_value > 0 && number.value > options_.max_value &&
          !number.is_percent) {
        continue;
      }
      Claim claim;
      claim.sentence = static_cast<int>(s);
      claim.number = std::move(number);
      claim.id = strings::Format("s%zu#%d", s, in_sentence++);
      claims.push_back(std::move(claim));
    }
  }
  return claims;
}

}  // namespace claims
}  // namespace aggchecker
