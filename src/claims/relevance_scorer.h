#pragma once

#include <vector>

#include "claims/claim.h"
#include "claims/keyword_extractor.h"
#include "fragments/catalog.h"
#include "text/document.h"

namespace aggchecker {
namespace claims {

/// \brief Per-claim relevance scores: ranked fragments per category
/// (the observable variable S_c of the probabilistic model).
struct ClaimRelevance {
  std::vector<fragments::ScoredFragment> functions;
  std::vector<fragments::ScoredFragment> columns;
  std::vector<fragments::ScoredFragment> predicates;

  const std::vector<fragments::ScoredFragment>& of(
      fragments::FragmentType type) const {
    switch (type) {
      case fragments::FragmentType::kAggFunction:
        return functions;
      case fragments::FragmentType::kAggColumn:
        return columns;
      case fragments::FragmentType::kPredicate:
        return predicates;
    }
    return functions;
  }
};

/// \brief Implements Algorithm 1 (KeywordMatch): extracts claim keywords and
/// queries the fragment indexes, producing relevance scores per claim.
class RelevanceScorer {
 public:
  RelevanceScorer(const fragments::FragmentCatalog* catalog,
                  KeywordExtractor extractor, size_t hits_per_category)
      : catalog_(catalog),
        extractor_(std::move(extractor)),
        hits_(hits_per_category) {}

  ClaimRelevance Score(const text::TextDocument& doc,
                       const Claim& claim) const;

  /// Scores all claims of a document.
  std::vector<ClaimRelevance> ScoreAll(const text::TextDocument& doc,
                                       const std::vector<Claim>& claims) const;

 private:
  const fragments::FragmentCatalog* catalog_;
  KeywordExtractor extractor_;
  size_t hits_;
};

}  // namespace claims
}  // namespace aggchecker
