#include "fragments/data_dictionary.h"

#include "util/csv.h"
#include "util/strings.h"

namespace aggchecker {
namespace fragments {

std::string DataDictionary::KeyOf(const db::ColumnRef& column) {
  return strings::ToLower(column.table) + "." +
         strings::ToLower(column.column);
}

void DataDictionary::Add(const db::ColumnRef& column,
                         std::string description) {
  entries_[KeyOf(column)] = std::move(description);
}

const std::string& DataDictionary::Lookup(const db::ColumnRef& column) const {
  auto it = entries_.find(KeyOf(column));
  if (it != entries_.end()) return it->second;
  // Fall back to a table-agnostic entry.
  it = entries_.find("." + strings::ToLower(column.column));
  return it == entries_.end() ? empty_ : it->second;
}

Result<DataDictionary> DataDictionary::Parse(const std::string& csv_text) {
  auto data = csv::Parse(csv_text);
  if (!data.ok()) return data.status();
  if (data->header.size() < 3) {
    return Status::ParseError(
        "data dictionary needs columns: table, column, description");
  }
  DataDictionary dict;
  for (const auto& row : data->rows) {
    if (strings::Trim(row[1]).empty()) {
      return Status::ParseError("data dictionary entry with empty column");
    }
    dict.Add(db::ColumnRef{strings::Trim(row[0]), strings::Trim(row[1])},
             strings::Trim(row[2]));
  }
  return dict;
}

}  // namespace fragments
}  // namespace aggchecker
