#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "fragments/data_dictionary.h"
#include "fragments/fragment.h"
#include "ir/inverted_index.h"
#include "util/status.h"

namespace aggchecker {
namespace fragments {

/// \brief A retrieved fragment with its IR relevance score.
struct ScoredFragment {
  int fragment_index = -1;  ///< into FragmentCatalog::fragments(type)
  double score = 0.0;
};

/// \brief Options controlling fragment generation.
struct CatalogOptions {
  /// Columns with more distinct values than this still index only the first
  /// N literals (protects against id-like columns exploding the index; the
  /// paper's data sets cap out far below this).
  size_t max_literals_per_column = 2000;

  /// Optional data dictionary adding description keywords per column.
  const DataDictionary* dictionary = nullptr;
};

/// \brief Catalog of all potentially relevant query fragments of a database,
/// indexed by keywords (Function IndexFragments of Algorithm 1).
///
/// Three separate inverted indexes — one per fragment category — supply the
/// category-wise relevance scores S^F, S^A, S^R of the probabilistic model.
class FragmentCatalog {
 public:
  /// Traverses the database and builds all fragments plus keyword indexes.
  static Result<FragmentCatalog> Build(const db::Database& db,
                                       const CatalogOptions& options = {});

  /// \brief The parts Build assembles, exposed for snapshot serialization.
  struct Parts {
    std::vector<QueryFragment> fragments[kNumFragmentTypes];
    ir::InvertedIndex indexes[kNumFragmentTypes];
    std::vector<db::ColumnRef> predicate_columns;
  };

  /// Snapshot hook: reassembles a catalog from previously built (snapshot-
  /// restored) parts. The dense-id lookup maps are rebuilt with the same
  /// first-occurrence-wins rule as Build, so fragment and predicate-column
  /// ids — and with them query fingerprints — match a fresh Build over the
  /// same database exactly.
  static FragmentCatalog FromParts(Parts parts);

  const std::vector<QueryFragment>& fragments(FragmentType type) const {
    return fragments_[static_cast<size_t>(type)];
  }

  /// The keyword index of one fragment category (snapshot serialization).
  const ir::InvertedIndex& index(FragmentType type) const {
    return indexes_[static_cast<size_t>(type)];
  }
  const QueryFragment& fragment(FragmentType type, int index) const {
    return fragments_[static_cast<size_t>(type)][static_cast<size_t>(index)];
  }

  /// Top-k fragments of one category for a weighted keyword query.
  std::vector<ScoredFragment> Retrieve(
      FragmentType type, const std::vector<ir::InvertedIndex::TermWeight>& query,
      size_t top_k) const;

  /// Number of distinct predicate columns (used for prior bookkeeping).
  const std::vector<db::ColumnRef>& predicate_columns() const {
    return predicate_columns_;
  }

  /// Index of a predicate column in predicate_columns(), or -1.
  /// O(1): hash lookup on the lower-cased column name. The returned index
  /// is a stable dense id for the lifetime of the catalog (the catalog is
  /// immutable after Build), which is what query fingerprints rely on.
  int PredicateColumnIndex(const db::ColumnRef& column) const;

  /// Index of an aggregation-column fragment (empty column name = the "*"
  /// fragment of that table), or -1. O(1), stable per catalog like
  /// PredicateColumnIndex.
  int AggColumnIndex(const db::ColumnRef& column) const;

  /// \brief Number of Simple Aggregate Queries expressible over `db`
  /// (Figure 8): sum over compatible (function, column) pairs times the
  /// product over predicate columns of (1 + #distinct literals).
  ///
  /// Returned as double since real data sets exceed 10^12 (§B).
  static double CountPossibleQueries(const db::Database& db);

 private:
  FragmentCatalog() = default;

  /// Rebuilds the dense-id lookup maps from fragments_/predicate_columns_
  /// (shared by Build and FromParts; first occurrence wins).
  void BuildLookupMaps();

  std::vector<QueryFragment> fragments_[kNumFragmentTypes];
  ir::InvertedIndex indexes_[kNumFragmentTypes];
  std::vector<db::ColumnRef> predicate_columns_;
  /// Lower-cased "table.column" -> index, built once in Build.
  std::unordered_map<std::string, int> predicate_column_index_;
  std::unordered_map<std::string, int> agg_column_index_;
};

}  // namespace fragments
}  // namespace aggchecker
