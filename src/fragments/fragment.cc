#include "fragments/fragment.h"

namespace aggchecker {
namespace fragments {

const char* FragmentTypeName(FragmentType type) {
  switch (type) {
    case FragmentType::kAggFunction:
      return "function";
    case FragmentType::kAggColumn:
      return "column";
    case FragmentType::kPredicate:
      return "predicate";
  }
  return "?";
}

std::string QueryFragment::Describe() const {
  switch (type) {
    case FragmentType::kAggFunction:
      return db::AggFnName(fn);
    case FragmentType::kAggColumn:
      return is_star_column() ? column.table + ".*" : column.ToString();
    case FragmentType::kPredicate:
      return column.column + " = '" + value.ToString() + "'";
  }
  return "";
}

std::string QueryFragment::Key() const {
  switch (type) {
    case FragmentType::kAggFunction:
      return std::string("f:") + db::AggFnName(fn);
    case FragmentType::kAggColumn:
      return "a:" + column.ToString();
    case FragmentType::kPredicate:
      return "r:" + column.ToString() + "='" + value.ToString() + "'";
  }
  return "";
}

}  // namespace fragments
}  // namespace aggchecker
