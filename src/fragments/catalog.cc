#include "fragments/catalog.h"

#include <algorithm>

#include "ir/tokenizer.h"
#include "ir/word_splitter.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace fragments {

namespace {

using TermWeight = ir::InvertedIndex::TermWeight;

/// Adds the word parts of an identifier (column or table name) at `weight`.
void AddIdentifierKeywords(const std::string& identifier, double weight,
                           std::vector<TermWeight>* terms) {
  for (const std::string& part : ir::WordSplitter::Default().Split(
           identifier)) {
    if (part.size() < 2 && !strings::IsDigits(part)) continue;
    terms->push_back({part, weight});
  }
}

/// Adds free-text keywords (dictionary descriptions, literal values).
void AddTextKeywords(const std::string& text, double weight,
                     std::vector<TermWeight>* terms) {
  for (const std::string& token : ir::Tokenize(text)) {
    if (ir::IsStopWord(token)) continue;
    terms->push_back({token, weight});
  }
}

}  // namespace

Result<FragmentCatalog> FragmentCatalog::Build(const db::Database& db,
                                               const CatalogOptions& options) {
  AGG_FAULT_POINT("catalog.build");
  if (db.num_tables() == 0) {
    return Status::InvalidArgument("database has no tables");
  }
  FragmentCatalog catalog;

  // --- Aggregation-function fragments: fixed keyword sets. ---
  auto& fn_fragments =
      catalog.fragments_[static_cast<size_t>(FragmentType::kAggFunction)];
  auto& fn_index =
      catalog.indexes_[static_cast<size_t>(FragmentType::kAggFunction)];
  for (db::AggFn fn : db::AllAggFns()) {
    QueryFragment frag;
    frag.type = FragmentType::kAggFunction;
    frag.fn = fn;
    std::vector<TermWeight> terms;
    for (const std::string& kw : db::AggFnKeywords(fn)) {
      terms.push_back({kw, 1.0});
    }
    fn_index.AddDocument(terms);
    fn_fragments.push_back(std::move(frag));
  }

  // --- Aggregation-column fragments: every numeric column plus one "*" per
  // table. Keywords from the column name, table name, and dictionary. ---
  auto& col_fragments =
      catalog.fragments_[static_cast<size_t>(FragmentType::kAggColumn)];
  auto& col_index =
      catalog.indexes_[static_cast<size_t>(FragmentType::kAggColumn)];
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const db::Table& table = db.table(t);
    {
      QueryFragment star;
      star.type = FragmentType::kAggColumn;
      star.column = db::ColumnRef{table.name(), ""};
      std::vector<TermWeight> terms;
      AddIdentifierKeywords(table.name(), 1.0, &terms);
      // Generic row-count vocabulary so "*" is reachable from count-ish
      // phrasings without a named column.
      for (const char* kw : {"rows", "entries", "records", "cases"}) {
        terms.push_back({kw, 0.5});
      }
      col_index.AddDocument(terms);
      col_fragments.push_back(std::move(star));
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const db::Column& column = table.column(c);
      QueryFragment frag;
      frag.type = FragmentType::kAggColumn;
      frag.column = db::ColumnRef{table.name(), column.name()};
      std::vector<TermWeight> terms;
      AddIdentifierKeywords(column.name(), 1.0, &terms);
      AddIdentifierKeywords(table.name(), 0.4, &terms);
      if (options.dictionary != nullptr) {
        AddTextKeywords(options.dictionary->Lookup(frag.column), 0.8, &terms);
      }
      // Non-numeric columns are still valid aggregation targets for
      // CountDistinct / Percentage; numeric ones additionally for
      // Sum/Avg/Min/Max. The model's validator rejects bad pairings.
      col_index.AddDocument(terms);
      col_fragments.push_back(std::move(frag));
    }
  }

  // --- Predicate fragments: one per (column, distinct literal). ---
  auto& pred_fragments =
      catalog.fragments_[static_cast<size_t>(FragmentType::kPredicate)];
  auto& pred_index =
      catalog.indexes_[static_cast<size_t>(FragmentType::kPredicate)];
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const db::Table& table = db.table(t);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const db::Column& column = table.column(c);
      db::ColumnRef col_ref{table.name(), column.name()};
      const auto& distinct = column.DistinctValues();
      size_t limit = std::min(distinct.size(),
                              options.max_literals_per_column);
      if (limit > 0) catalog.predicate_columns_.push_back(col_ref);
      for (size_t v = 0; v < limit; ++v) {
        QueryFragment frag;
        frag.type = FragmentType::kPredicate;
        frag.column = col_ref;
        frag.value = distinct[v];
        std::vector<TermWeight> terms;
        AddTextKeywords(distinct[v].ToString(), 1.0, &terms);
        AddIdentifierKeywords(column.name(), 0.6, &terms);
        AddIdentifierKeywords(table.name(), 0.2, &terms);
        if (options.dictionary != nullptr) {
          AddTextKeywords(options.dictionary->Lookup(col_ref), 0.5, &terms);
        }
        pred_index.AddDocument(terms);
        pred_fragments.push_back(std::move(frag));
      }
    }
  }

  catalog.BuildLookupMaps();
  return catalog;
}

FragmentCatalog FragmentCatalog::FromParts(Parts parts) {
  FragmentCatalog catalog;
  for (int t = 0; t < kNumFragmentTypes; ++t) {
    catalog.fragments_[t] = std::move(parts.fragments[t]);
    catalog.indexes_[t] = std::move(parts.indexes[t]);
  }
  catalog.predicate_columns_ = std::move(parts.predicate_columns);
  catalog.BuildLookupMaps();
  return catalog;
}

void FragmentCatalog::BuildLookupMaps() {
  // Dense-id lookup maps (first occurrence wins, matching the linear scans
  // these replace).
  predicate_column_index_.clear();
  agg_column_index_.clear();
  for (size_t i = 0; i < predicate_columns_.size(); ++i) {
    predicate_column_index_.emplace(
        strings::ToLower(predicate_columns_[i].ToString()),
        static_cast<int>(i));
  }
  const auto& col_fragments =
      fragments_[static_cast<size_t>(FragmentType::kAggColumn)];
  for (size_t i = 0; i < col_fragments.size(); ++i) {
    agg_column_index_.emplace(
        strings::ToLower(col_fragments[i].column.ToString()),
        static_cast<int>(i));
  }
}

std::vector<ScoredFragment> FragmentCatalog::Retrieve(
    FragmentType type, const std::vector<TermWeight>& query,
    size_t top_k) const {
  std::vector<ScoredFragment> out;
  for (const ir::ScoredDoc& hit :
       indexes_[static_cast<size_t>(type)].Search(query, top_k)) {
    out.push_back(ScoredFragment{hit.doc_id, hit.score});
  }
  return out;
}

int FragmentCatalog::PredicateColumnIndex(const db::ColumnRef& column) const {
  auto it = predicate_column_index_.find(strings::ToLower(column.ToString()));
  return it == predicate_column_index_.end() ? -1 : it->second;
}

int FragmentCatalog::AggColumnIndex(const db::ColumnRef& column) const {
  auto it = agg_column_index_.find(strings::ToLower(column.ToString()));
  return it == agg_column_index_.end() ? -1 : it->second;
}

double FragmentCatalog::CountPossibleQueries(const db::Database& db) {
  // (function, column) pairs.
  double select_choices = 0;
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const db::Table& table = db.table(t);
    select_choices += 1;  // Count(*) — plus ratio-on-star pairs below
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const db::Column& column = table.column(c);
      for (db::AggFn fn : db::AllAggFns()) {
        if (db::RequiresNumericColumn(fn) && !column.is_numeric()) continue;
        select_choices += 1;
      }
    }
  }
  // Predicate combinations: any subset of columns, one literal each.
  double predicate_choices = 1;
  for (size_t t = 0; t < db.num_tables(); ++t) {
    const db::Table& table = db.table(t);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      predicate_choices *=
          1.0 + static_cast<double>(table.column(c).DistinctValues().size());
    }
  }
  return select_choices * predicate_choices;
}

}  // namespace fragments
}  // namespace aggchecker
