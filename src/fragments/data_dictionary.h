#pragma once

#include <string>
#include <unordered_map>

#include "db/database.h"
#include "util/status.h"

namespace aggchecker {
namespace fragments {

/// \brief Optional data dictionary mapping columns to text descriptions
/// (§4.2: "If a data dictionary is provided, we add for each column the
/// data dictionary description to its associated keywords").
///
/// The supported format is CSV with columns (table, column, description);
/// the table field may be empty when the database has a single table.
class DataDictionary {
 public:
  DataDictionary() = default;

  /// Parses the CSV dictionary format described above.
  static Result<DataDictionary> Parse(const std::string& csv_text);

  void Add(const db::ColumnRef& column, std::string description);

  /// Description for a column; empty string if absent. Lookup is
  /// case-insensitive; an entry with an empty table name matches any table.
  const std::string& Lookup(const db::ColumnRef& column) const;

  size_t size() const { return entries_.size(); }

 private:
  static std::string KeyOf(const db::ColumnRef& column);

  std::unordered_map<std::string, std::string> entries_;
  std::string empty_;
};

}  // namespace fragments
}  // namespace aggchecker
