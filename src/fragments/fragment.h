#pragma once

#include <string>
#include <vector>

#include "db/aggregate.h"
#include "db/database.h"
#include "db/value.h"

namespace aggchecker {
namespace fragments {

/// The three query-fragment categories of §4.2.
enum class FragmentType {
  kAggFunction = 0,
  kAggColumn,
  kPredicate,
};

constexpr int kNumFragmentTypes = 3;

const char* FragmentTypeName(FragmentType type);

/// \brief A query fragment: an aggregation function, an aggregation column
/// (including the "*" all-column), or a unary equality predicate.
///
/// Fragments are the building blocks of candidate queries (§4.4) and the
/// unit of keyword indexing. Which members are meaningful depends on `type`.
struct QueryFragment {
  FragmentType type = FragmentType::kAggFunction;
  db::AggFn fn = db::AggFn::kCount;  ///< kAggFunction only
  db::ColumnRef column;              ///< kAggColumn (empty column = "*"),
                                     ///< kPredicate
  db::Value value;                   ///< kPredicate only

  bool is_star_column() const {
    return type == FragmentType::kAggColumn && column.column.empty();
  }

  /// Short display form: "Count", "nflsuspensions.Games",
  /// "Games = 'indef'".
  std::string Describe() const;

  /// Stable identity key used for prior bookkeeping and tests.
  std::string Key() const;
};

}  // namespace fragments
}  // namespace aggchecker
