#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/tokenizer.h"

namespace aggchecker {
namespace text {

/// \brief A numeric mention found in a sentence — a potential claimed query
/// result (Definition 1's value `e`).
struct ParsedNumber {
  double value = 0;
  size_t token_begin = 0;  ///< first token of the mention
  size_t token_end = 0;    ///< one past the last token
  bool is_percent = false; ///< "41%", "41 percent"
  bool from_words = false; ///< spelled out ("four", "two hundred")
  bool is_ordinal = false; ///< "1st", "third" (usually not a claim)
  bool looks_like_year = false;  ///< 1900..2099 four-digit literal
  bool is_fraction = false;      ///< "half of", "a third of", "one in five"
  std::string raw;         ///< original surface form
};

/// \brief Finds all numeric mentions in a tokenized sentence.
///
/// Handles digit literals ("63", "13.6", "1,200"), percent markers ('%'
/// adjacent in the raw text or a following "percent"/"pct" token), number
/// words ("four", "twenty-one", "two hundred", "three million"), fraction
/// phrases read as percentages ("half of" = 50%, "two-thirds of" = 67%,
/// "one in five" = 20%), and flags ordinals and year-like literals so the
/// claim detector can skip them.
std::vector<ParsedNumber> FindNumbers(const std::string& raw_sentence,
                                      const std::vector<ir::Token>& tokens);

/// Parses a sequence of number words starting at `begin`; on success returns
/// the value and sets `*end` to one past the last consumed token.
std::optional<double> ParseNumberWords(const std::vector<ir::Token>& tokens,
                                       size_t begin, size_t* end);

/// Parses a single numeric literal token ("1,200", "13.6"); nullopt if the
/// token is not purely numeric.
std::optional<double> ParseNumericLiteral(const std::string& token);

}  // namespace text
}  // namespace aggchecker
