#include "text/number_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "util/rounding.h"
#include "util/strings.h"

namespace aggchecker {
namespace text {

namespace {

const std::unordered_map<std::string, double>& Units() {
  static const std::unordered_map<std::string, double> kUnits = {
      {"zero", 0},   {"one", 1},      {"two", 2},       {"three", 3},
      {"four", 4},   {"five", 5},     {"six", 6},       {"seven", 7},
      {"eight", 8},  {"nine", 9},     {"ten", 10},      {"eleven", 11},
      {"twelve", 12}, {"thirteen", 13}, {"fourteen", 14}, {"fifteen", 15},
      {"sixteen", 16}, {"seventeen", 17}, {"eighteen", 18},
      {"nineteen", 19},
  };
  return kUnits;
}

const std::unordered_map<std::string, double>& Tens() {
  static const std::unordered_map<std::string, double> kTens = {
      {"twenty", 20}, {"thirty", 30}, {"forty", 40},  {"fifty", 50},
      {"sixty", 60},  {"seventy", 70}, {"eighty", 80}, {"ninety", 90},
  };
  return kTens;
}

const std::unordered_map<std::string, double>& Scales() {
  static const std::unordered_map<std::string, double> kScales = {
      {"hundred", 100},
      {"thousand", 1000},
      {"million", 1e6},
      {"billion", 1e9},
      {"trillion", 1e12},
  };
  return kScales;
}

const std::unordered_map<std::string, double>& OrdinalWords() {
  static const std::unordered_map<std::string, double> kOrdinals = {
      {"first", 1}, {"second", 2}, {"third", 3},  {"fourth", 4},
      {"fifth", 5}, {"sixth", 6},  {"seventh", 7}, {"eighth", 8},
      {"ninth", 9}, {"tenth", 10},
  };
  return kOrdinals;
}

bool IsOrdinalSuffixToken(const std::string& token) {
  // "1st", "2nd", "3rd", "4th" ... — tokenizer keeps them as one token.
  if (token.size() < 3) return false;
  size_t i = 0;
  while (i < token.size() && std::isdigit(static_cast<unsigned char>(
                                 token[i]))) {
    ++i;
  }
  if (i == 0 || i + 2 != token.size()) return false;
  std::string suffix = token.substr(i);
  return suffix == "st" || suffix == "nd" || suffix == "rd" || suffix == "th";
}

}  // namespace

std::optional<double> ParseNumericLiteral(const std::string& token) {
  if (!ir::IsNumericToken(token)) return std::nullopt;
  std::string stripped = strings::ReplaceAll(token, ",", "");
  char* end = nullptr;
  double v = std::strtod(stripped.c_str(), &end);
  if (end == stripped.c_str() || *end != '\0' || !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> ParseNumberWords(const std::vector<ir::Token>& tokens,
                                       size_t begin, size_t* end) {
  double total = 0;
  double current = 0;
  size_t i = begin;
  bool any = false;
  while (i < tokens.size()) {
    const std::string& w = tokens[i].text;
    auto unit = Units().find(w);
    auto ten = Tens().find(w);
    auto scale = Scales().find(w);
    if (unit != Units().end()) {
      // Two adjacent units ("one two") are separate numbers, not one.
      if (any && current != 0 &&
          current < 20 /* already consumed a unit */) {
        break;
      }
      current += unit->second;
      any = true;
      ++i;
    } else if (ten != Tens().end()) {
      if (any && current != 0 && std::fmod(current, 100) != 0) break;
      current += ten->second;
      any = true;
      ++i;
    } else if (scale != Scales().end()) {
      if (!any) break;  // "hundred" alone is not a number mention
      if (current == 0) current = 1;
      if (scale->second == 100) {
        current *= 100;
      } else {
        total += current * scale->second;
        current = 0;
      }
      any = true;
      ++i;
    } else if (w == "and" && any && i + 1 < tokens.size() &&
               (Units().count(tokens[i + 1].text) > 0 ||
                Tens().count(tokens[i + 1].text) > 0)) {
      ++i;  // "two hundred and five"
    } else {
      break;
    }
  }
  if (!any) return std::nullopt;
  *end = i;
  return total + current;
}

std::vector<ParsedNumber> FindNumbers(const std::string& raw_sentence,
                                      const std::vector<ir::Token>& tokens) {
  std::vector<ParsedNumber> numbers;

  auto percent_after = [&](size_t token_end_idx, size_t raw_end) {
    // '%' directly after the raw span, or a following percent word.
    for (size_t p = raw_end; p < raw_sentence.size(); ++p) {
      char c = raw_sentence[p];
      if (c == ' ') continue;
      if (c == '%') return true;
      break;
    }
    if (token_end_idx < tokens.size()) {
      const std::string& next = tokens[token_end_idx].text;
      if (next == "percent" || next == "percentage" || next == "pct") {
        return true;
      }
    }
    return false;
  };

  // Fraction vocabulary, read as a percentage of a population ("half of
  // the fliers" = 50%). Values are rounded the way prose uses them.
  auto fraction_percent = [](const std::string& word) -> double {
    if (word == "half") return 50;
    if (word == "third" || word == "thirds") return 100.0 / 3.0;
    if (word == "quarter" || word == "quarters" || word == "fourth") {
      return 25;
    }
    if (word == "fifth" || word == "fifths") return 20;
    return 0;
  };
  auto followed_by_of = [&tokens](size_t idx) {
    return idx + 1 < tokens.size() && tokens[idx + 1].text == "of";
  };

  for (size_t i = 0; i < tokens.size();) {
    const std::string& w = tokens[i].text;

    // "one in five (respondents)" — a ratio phrase read as a percentage.
    if (i + 2 < tokens.size() && tokens[i + 1].text == "in") {
      auto numer = Units().find(w);
      auto denom = Units().find(tokens[i + 2].text);
      double denom_digits = 0;
      if (denom == Units().end()) {
        if (auto v = ParseNumericLiteral(tokens[i + 2].text)) {
          denom_digits = *v;
        }
      } else {
        denom_digits = denom->second;
      }
      if (numer != Units().end() && numer->second > 0 && denom_digits > 1) {
        ParsedNumber n;
        n.value = 100.0 * numer->second / denom_digits;
        n.token_begin = i;
        n.token_end = i + 3;
        n.is_percent = true;
        n.is_fraction = true;
        n.from_words = true;
        n.raw = w + " in " + tokens[i + 2].text;
        numbers.push_back(std::move(n));
        i += 3;
        continue;
      }
    }

    // Fraction words followed by "of": "half of", "a third of",
    // "two-thirds of". Ordinal readings ("the third attempt") are excluded
    // by the "of" requirement.
    {
      double multiplier = 1.0;
      size_t frac_idx = i;
      auto unit = Units().find(w);
      if (unit != Units().end() && unit->second >= 1 && unit->second <= 9 &&
          i + 1 < tokens.size()) {
        multiplier = unit->second;
        frac_idx = i + 1;
      }
      double base = frac_idx < tokens.size()
                        ? fraction_percent(tokens[frac_idx].text)
                        : 0.0;
      double value = base * multiplier;
      if (base > 0 && followed_by_of(frac_idx) && value < 100) {
        ParsedNumber n;
        // Prose fractions carry ~2 significant digits (a third = 33%).
        n.value = rounding::RoundToSignificant(value, 2);
        n.token_begin = i;
        n.token_end = frac_idx + 1;
        n.is_percent = true;
        n.is_fraction = true;
        n.from_words = true;
        for (size_t t = i; t <= frac_idx; ++t) {
          if (t > i) n.raw += ' ';
          n.raw += tokens[t].text;
        }
        numbers.push_back(std::move(n));
        i = frac_idx + 1;
        continue;
      }
    }

    // Ordinal digit forms ("3rd"): flag and move on.
    if (IsOrdinalSuffixToken(w)) {
      ParsedNumber n;
      n.value = std::strtod(w.c_str(), nullptr);
      n.token_begin = i;
      n.token_end = i + 1;
      n.is_ordinal = true;
      n.raw = w;
      numbers.push_back(std::move(n));
      ++i;
      continue;
    }

    // Digit literals, optionally scaled by a following word ("1.5 million").
    if (auto v = ParseNumericLiteral(w)) {
      ParsedNumber n;
      n.value = *v;
      n.token_begin = i;
      n.token_end = i + 1;
      n.raw = w;
      if (n.token_end < tokens.size()) {
        auto scale = Scales().find(tokens[n.token_end].text);
        if (scale != Scales().end()) {
          n.value *= scale->second;
          n.raw += " " + tokens[n.token_end].text;
          ++n.token_end;
        }
      }
      size_t raw_end = tokens[i].offset + w.size();
      n.is_percent = percent_after(n.token_end, raw_end);
      n.looks_like_year = (w.size() == 4 && n.value >= 1900 &&
                           n.value <= 2099 && !n.is_percent &&
                           n.value == std::floor(n.value));
      i = n.token_end;
      numbers.push_back(std::move(n));
      continue;
    }

    // Ordinal words ("third"): flagged, usually skipped by the detector.
    auto ow = OrdinalWords().find(w);
    if (ow != OrdinalWords().end()) {
      ParsedNumber n;
      n.value = ow->second;
      n.token_begin = i;
      n.token_end = i + 1;
      n.is_ordinal = true;
      n.from_words = true;
      n.raw = w;
      numbers.push_back(std::move(n));
      ++i;
      continue;
    }

    // Spelled-out cardinals.
    size_t end = i;
    if (auto v = ParseNumberWords(tokens, i, &end)) {
      ParsedNumber n;
      n.value = *v;
      n.token_begin = i;
      n.token_end = end;
      n.from_words = true;
      for (size_t t = i; t < end; ++t) {
        if (t > i) n.raw += ' ';
        n.raw += tokens[t].text;
      }
      size_t raw_end = tokens[end - 1].offset + tokens[end - 1].text.size();
      n.is_percent = percent_after(end, raw_end);
      i = end;
      numbers.push_back(std::move(n));
      continue;
    }
    ++i;
  }
  return numbers;
}

}  // namespace text
}  // namespace aggchecker
