#include "text/dependency_proxy.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace aggchecker {
namespace text {

namespace {
bool IsClauseBreakChar(char c) {
  // ASCII clause punctuation; UTF-8 em-dashes in source text are preceded by
  // a space in practice and the '-' fallback is not needed for them.
  return c == ',' || c == ';' || c == ':' || c == '(' || c == ')' ||
         c == '-';
}

bool IsCoordConjunction(const std::string& word) {
  static const std::unordered_set<std::string> kConj = {
      "and", "but", "or", "while", "whereas", "although", "though",
      "because", "since", "unless", "which", "who", "whom", "where",
  };
  return kConj.count(word) > 0;
}
}  // namespace

DependencyProxy::DependencyProxy(const std::string& sentence)
    : tokens_(ir::TokenizeWithOffsets(sentence)) {
  clause_.resize(tokens_.size(), 0);
  int clause = 0;
  for (size_t t = 0; t < tokens_.size(); ++t) {
    if (t > 0) {
      // Punctuation between the previous token's end and this token's start
      // opens a new clause.
      size_t prev_end = tokens_[t - 1].offset + tokens_[t - 1].text.size();
      bool breaks = false;
      for (size_t p = prev_end; p < tokens_[t].offset; ++p) {
        // A hyphen joining two words without spaces ("twenty-one",
        // "self-taught") is not a clause break.
        if (sentence[p] == '-' && p == prev_end &&
            p + 1 == tokens_[t].offset) {
          continue;
        }
        if (IsClauseBreakChar(sentence[p])) {
          breaks = true;
          break;
        }
      }
      if (breaks || IsCoordConjunction(tokens_[t].text)) ++clause;
    }
    clause_[t] = clause;
  }
}

int DependencyProxy::TreeDistance(size_t i, size_t j) const {
  if (i == j) return 0;
  long gap = std::labs(static_cast<long>(i) - static_cast<long>(j));
  int within = 1 + static_cast<int>(std::min<long>(gap - 1, 4));
  int across = 4 * std::abs(clause_[i] - clause_[j]);
  return within + across;
}

}  // namespace text
}  // namespace aggchecker
