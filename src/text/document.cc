#include "text/document.h"

#include "text/sentence_splitter.h"
#include "util/strings.h"

namespace aggchecker {
namespace text {

int TextDocument::AddSection(std::string headline, int parent, int level) {
  sections_.push_back(Section{std::move(headline), parent, level});
  return static_cast<int>(sections_.size() - 1);
}

int TextDocument::AddParagraph(const std::string& raw_text, int section) {
  Paragraph para;
  para.section = section;
  const int para_idx = static_cast<int>(paragraphs_.size());
  int pos = 0;
  for (std::string& text : SplitSentences(raw_text)) {
    Sentence s;
    s.tokens = ir::TokenizeWithOffsets(text);
    s.text = std::move(text);
    s.paragraph = para_idx;
    s.index_in_paragraph = pos++;
    para.sentence_indices.push_back(static_cast<int>(sentences_.size()));
    sentences_.push_back(std::move(s));
  }
  paragraphs_.push_back(std::move(para));
  return para_idx;
}

int TextDocument::PreviousSentenceInParagraph(int sentence_idx) const {
  const Sentence& s = sentence(sentence_idx);
  if (s.index_in_paragraph == 0) return -1;
  const Paragraph& p = paragraph(s.paragraph);
  return p.sentence_indices[static_cast<size_t>(s.index_in_paragraph - 1)];
}

int TextDocument::ParagraphFirstSentence(int sentence_idx) const {
  const Sentence& s = sentence(sentence_idx);
  return paragraph(s.paragraph).sentence_indices[0];
}

std::vector<int> TextDocument::EnclosingSections(int sentence_idx) const {
  std::vector<int> chain;
  int sec = paragraph(sentence(sentence_idx).paragraph).section;
  while (sec >= 0) {
    chain.push_back(sec);
    sec = sections_[static_cast<size_t>(sec)].parent;
  }
  return chain;
}

namespace {

/// Extracts the body of an HTML-ish tag if `line` is "<tag>body</tag>".
bool MatchTag(const std::string& line, const std::string& tag,
              std::string* body) {
  std::string open = "<" + tag + ">";
  std::string close = "</" + tag + ">";
  if (!strings::StartsWith(line, open)) return false;
  std::string rest = line.substr(open.size());
  if (strings::EndsWith(rest, close)) {
    rest = rest.substr(0, rest.size() - close.size());
  }
  *body = strings::Trim(rest);
  return true;
}

}  // namespace

Result<TextDocument> ParseDocument(const std::string& input) {
  TextDocument doc;
  int current_h2 = -1;  // innermost level-1 section
  int current_h3 = -1;  // innermost level-2 section
  std::string pending_paragraph;

  auto flush_paragraph = [&] {
    std::string text = strings::Trim(pending_paragraph);
    pending_paragraph.clear();
    if (text.empty()) return;
    int section = current_h3 >= 0 ? current_h3 : current_h2;
    doc.AddParagraph(text, section);
  };

  bool in_paragraph_tag = false;
  for (std::string& raw_line : strings::Split(input, '\n')) {
    std::string line = strings::Trim(raw_line);
    std::string body;
    if (in_paragraph_tag) {
      // Accumulate until the closing </p>.
      bool closes = strings::EndsWith(line, "</p>");
      if (closes) line = strings::Trim(line.substr(0, line.size() - 4));
      if (!line.empty()) {
        if (!pending_paragraph.empty()) pending_paragraph += ' ';
        pending_paragraph += line;
      }
      if (closes) {
        flush_paragraph();
        in_paragraph_tag = false;
      }
      continue;
    }
    if (line.empty()) {
      flush_paragraph();
      continue;
    }
    if (MatchTag(line, "h1", &body) || strings::StartsWith(line, "# ")) {
      flush_paragraph();
      doc.set_title(body.empty() ? strings::Trim(line.substr(2)) : body);
      continue;
    }
    if (MatchTag(line, "h2", &body) || strings::StartsWith(line, "## ")) {
      flush_paragraph();
      if (body.empty()) body = strings::Trim(line.substr(3));
      current_h2 = doc.AddSection(body, -1, 1);
      current_h3 = -1;
      continue;
    }
    if (MatchTag(line, "h3", &body) || strings::StartsWith(line, "### ")) {
      flush_paragraph();
      if (body.empty()) body = strings::Trim(line.substr(4));
      current_h3 = doc.AddSection(body, current_h2, 2);
      continue;
    }
    if (strings::StartsWith(line, "<p>")) {
      flush_paragraph();
      bool closes = MatchTag(line, "p", &body) &&
                    strings::EndsWith(line, "</p>");
      pending_paragraph = body;
      if (closes) {
        flush_paragraph();
      } else {
        in_paragraph_tag = true;
      }
      continue;
    }
    // Plain text line: accumulate into the pending paragraph.
    if (!pending_paragraph.empty()) pending_paragraph += ' ';
    pending_paragraph += line;
  }
  flush_paragraph();

  if (doc.sentences().empty()) {
    return Status::ParseError("document contains no sentences");
  }
  return doc;
}

}  // namespace text
}  // namespace aggchecker
