#pragma once

#include <string>
#include <vector>

namespace aggchecker {
namespace text {

/// \brief Splits a paragraph into sentences.
///
/// Boundaries are '.', '!', '?' followed by whitespace and an upper-case
/// letter, digit, or quote. Decimal points ("13.6"), common abbreviations
/// ("Mr.", "U.S.", "e.g."), and single-initial periods ("J. Smith") do not
/// split. Trailing text without terminal punctuation forms a final sentence.
std::vector<std::string> SplitSentences(const std::string& paragraph);

}  // namespace text
}  // namespace aggchecker
