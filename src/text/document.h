#pragma once

#include <string>
#include <vector>

#include "ir/tokenizer.h"
#include "util/status.h"

namespace aggchecker {
namespace text {

/// \brief One sentence with its token stream.
struct Sentence {
  std::string text;
  std::vector<ir::Token> tokens;
  int paragraph = -1;       ///< owning paragraph index
  int index_in_paragraph = 0;
};

/// \brief A paragraph: consecutive sentences under one section.
struct Paragraph {
  std::vector<int> sentence_indices;  ///< into TextDocument::sentences()
  int section = -1;                   ///< owning section index (-1 = root)
};

/// \brief A (sub)section with a headline, nested via parent links.
struct Section {
  std::string headline;
  int parent = -1;  ///< enclosing section, -1 for top level
  int level = 1;    ///< 1 = <h2>, 2 = <h3>, ...
};

/// \brief Hierarchical text document (Figure 4): title, nested sections,
/// paragraphs, sentences.
///
/// Built either programmatically (corpus generator) or from HTML-lite /
/// markdown-ish input (ParseDocument). Claims reference sentences by index;
/// the keyword extractor walks this structure for context.
class TextDocument {
 public:
  explicit TextDocument(std::string title = "") : title_(std::move(title)) {}

  const std::string& title() const { return title_; }
  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a section under `parent` (-1 for top level); returns its index.
  int AddSection(std::string headline, int parent = -1, int level = 1);

  /// Adds a paragraph of raw text under `section`; the text is split into
  /// sentences and tokenized. Returns the paragraph index.
  int AddParagraph(const std::string& raw_text, int section = -1);

  const std::vector<Section>& sections() const { return sections_; }
  const std::vector<Paragraph>& paragraphs() const { return paragraphs_; }
  const std::vector<Sentence>& sentences() const { return sentences_; }

  const Sentence& sentence(int i) const {
    return sentences_[static_cast<size_t>(i)];
  }
  const Paragraph& paragraph(int i) const {
    return paragraphs_[static_cast<size_t>(i)];
  }
  const Section& section(int i) const {
    return sections_[static_cast<size_t>(i)];
  }

  /// Index of the sentence preceding `sentence_idx` within the same
  /// paragraph, or -1.
  int PreviousSentenceInParagraph(int sentence_idx) const;

  /// Index of the first sentence of the paragraph containing
  /// `sentence_idx`.
  int ParagraphFirstSentence(int sentence_idx) const;

  /// Chain of enclosing sections of a sentence, innermost first.
  std::vector<int> EnclosingSections(int sentence_idx) const;

 private:
  std::string title_;
  std::vector<Section> sections_;
  std::vector<Paragraph> paragraphs_;
  std::vector<Sentence> sentences_;
};

/// \brief Parses HTML-lite / markdown-ish text into a TextDocument.
///
/// Supported structure markers (the paper uses HTML markup; any word
/// processor's outline maps to this):
///   <h1>..</h1> or "# "   — document title
///   <h2>..</h2> or "## "  — section
///   <h3>..</h3> or "### " — subsection
///   <p>..</p> or blank-line separated text — paragraph
Result<TextDocument> ParseDocument(const std::string& input);

}  // namespace text
}  // namespace aggchecker
