#include "text/sentence_splitter.h"

#include <cctype>
#include <unordered_set>

#include "util/strings.h"

namespace aggchecker {
namespace text {

namespace {

/// Abbreviations whose trailing period does not end a sentence.
const std::unordered_set<std::string>& Abbreviations() {
  static const std::unordered_set<std::string> kAbbrev = {
      "mr", "mrs", "ms", "dr", "prof", "sr", "jr", "st", "no", "vs", "etc",
      "e.g", "i.e", "u.s", "u.k", "fig", "sept", "oct", "nov", "dec", "jan",
      "feb", "mar", "apr", "aug", "jun", "jul", "inc", "ltd", "co", "corp",
      "approx", "dept", "est", "min", "max", "avg",
  };
  return kAbbrev;
}

/// The word (lower-cased) immediately before position `i` (which holds a
/// terminator character).
std::string WordBefore(const std::string& s, size_t i) {
  size_t end = i;
  size_t begin = end;
  while (begin > 0) {
    char c = s[begin - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.') {
      --begin;
    } else {
      break;
    }
  }
  std::string word = s.substr(begin, end - begin);
  // Drop a trailing period chain ("U.S." -> "u.s").
  while (!word.empty() && word.back() == '.') word.pop_back();
  return strings::ToLower(word);
}

}  // namespace

std::vector<std::string> SplitSentences(const std::string& paragraph) {
  std::vector<std::string> sentences;
  std::string cur;
  const size_t n = paragraph.size();
  for (size_t i = 0; i < n; ++i) {
    char c = paragraph[i];
    cur.push_back(c);
    if (c != '.' && c != '!' && c != '?') continue;

    if (c == '.') {
      // Decimal point: digit on both sides.
      if (i > 0 && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(paragraph[i - 1])) &&
          std::isdigit(static_cast<unsigned char>(paragraph[i + 1]))) {
        continue;
      }
      std::string word = WordBefore(paragraph, i);
      if (Abbreviations().count(word) > 0) continue;
      // Single-letter initials ("J. Smith").
      if (word.size() == 1 &&
          std::isalpha(static_cast<unsigned char>(word[0]))) {
        continue;
      }
    }
    // Consume closing quotes/parens directly after the terminator.
    while (i + 1 < n &&
           (paragraph[i + 1] == '"' || paragraph[i + 1] == '\'' ||
            paragraph[i + 1] == ')')) {
      cur.push_back(paragraph[++i]);
    }
    // Boundary requires whitespace then an upper-case letter, digit, or
    // quote — or end of paragraph.
    size_t j = i + 1;
    while (j < n && (paragraph[j] == ' ' || paragraph[j] == '\t')) ++j;
    bool at_end = (j >= n) || paragraph[j] == '\n';
    bool next_starts_sentence =
        j < n && (std::isupper(static_cast<unsigned char>(paragraph[j])) ||
                  std::isdigit(static_cast<unsigned char>(paragraph[j])) ||
                  paragraph[j] == '"' || paragraph[j] == '\'');
    if (at_end || next_starts_sentence) {
      std::string trimmed = strings::Trim(cur);
      if (!trimmed.empty()) sentences.push_back(std::move(trimmed));
      cur.clear();
    }
  }
  std::string trimmed = strings::Trim(cur);
  if (!trimmed.empty()) sentences.push_back(std::move(trimmed));
  return sentences;
}

}  // namespace text
}  // namespace aggchecker
