#pragma once

#include <string>
#include <vector>

#include "ir/tokenizer.h"

namespace aggchecker {
namespace text {

/// \brief Deterministic approximation of dependency-parse-tree distance.
///
/// The paper uses a Stanford dependency parse only to compute
/// TreeDistance(word, claim) — a proximity measure that separates multiple
/// claims within one sentence (Algorithm 2 / Example 3). This proxy
/// segments the sentence into clauses (split at commas, semicolons, dashes,
/// parentheses, and coordinating conjunctions) and defines
///
///   TreeDistance(i, j) = 1 + min(|i-j| - 1, 4) + 4 * |clause(i)-clause(j)|
///
/// for i != j (0 for i == j). Words in the same clause are near; words in
/// sibling clauses are far — the exact property the keyword weighting
/// relies on. See DESIGN.md §1 for the substitution rationale.
class DependencyProxy {
 public:
  explicit DependencyProxy(const std::string& sentence);

  const std::vector<ir::Token>& tokens() const { return tokens_; }

  /// Clause index of a token (0-based, left to right).
  int clause_of(size_t token_idx) const {
    return clause_[token_idx];
  }

  /// Approximated tree distance between two token positions.
  int TreeDistance(size_t i, size_t j) const;

 private:
  std::vector<ir::Token> tokens_;
  std::vector<int> clause_;
};

}  // namespace text
}  // namespace aggchecker
