#include "model/candidate_space.h"

#include <algorithm>
#include <set>
#include <string>

#include "util/strings.h"

namespace aggchecker {
namespace model {

namespace {

using fragments::FragmentType;

/// True when `table` sits in the FK component of some keyword-supported
/// table (or is one itself) — the scope star-column padding is allowed to
/// reach. JoinPlan succeeds exactly for connected pairs.
bool InSupportedComponent(const db::Database& db, const std::string& table,
                          const std::set<std::string>& support) {
  for (const std::string& s : support) {
    if (s == table || db.JoinPlan({table, s}).ok()) return true;
  }
  return false;
}

/// Smoothes and normalizes raw retrieval scores over a considered set.
void Normalize(std::vector<ScoredOption>* options, double smoothing) {
  double max_score = 0;
  for (const auto& o : *options) max_score = std::max(max_score, o.norm_score);
  double eps = smoothing * (max_score > 0 ? max_score : 1.0);
  double total = 0;
  for (auto& o : *options) {
    o.norm_score += eps;
    total += o.norm_score;
  }
  if (total <= 0) return;
  for (auto& o : *options) o.norm_score /= total;
}

}  // namespace

CandidateSpace CandidateSpace::Build(
    const db::Database& db, const fragments::FragmentCatalog& catalog,
    const claims::ClaimRelevance& relevance, const ModelOptions& options) {
  CandidateSpace space;

  // --- Aggregation functions: all of them, with retrieved scores where
  // available (claims often omit the function — §7.3). ---
  {
    const auto& all_fns = catalog.fragments(FragmentType::kAggFunction);
    std::vector<double> scores(all_fns.size(), 0.0);
    for (const auto& hit : relevance.functions) {
      scores[static_cast<size_t>(hit.fragment_index)] = hit.score;
    }
    for (size_t i = 0; i < all_fns.size(); ++i) {
      space.functions_.push_back(ScoredOption{static_cast<int>(i),
                                              scores[i]});
    }
    Normalize(&space.functions_, options.score_smoothing);
  }

  // --- Aggregation columns: retrieved hits plus every table's "*" fragment
  // (so Count(*) is always reachable), capped at max_agg_columns. ---
  {
    std::vector<ScoredOption> cols;
    std::vector<bool> seen(
        catalog.fragments(FragmentType::kAggColumn).size(), false);
    for (const auto& hit : relevance.columns) {
      cols.push_back(ScoredOption{hit.fragment_index, hit.score});
      seen[static_cast<size_t>(hit.fragment_index)] = true;
    }
    std::sort(cols.begin(), cols.end(),
              [](const ScoredOption& a, const ScoredOption& b) {
                return a.norm_score > b.norm_score;
              });
    if (cols.size() > options.max_agg_columns) {
      cols.resize(options.max_agg_columns);
    }
    // Star padding stays inside the FK components the claim's keywords
    // actually reached (retrieved agg columns and predicates): a claim
    // whose keywords never touch a disconnected domain gets no Count(*)
    // over it, keeping its candidate space — and thus its dependency stamp
    // for incremental re-verification (DESIGN.md §16) — confined to the
    // tables it can plausibly read. Claims with no keyword support at all
    // keep the full padding so count-only claims stay reachable. For
    // single-component databases (every corpus case) this changes nothing.
    std::set<std::string> support;
    for (const ScoredOption& c : cols) {
      const auto& frag = catalog.fragment(FragmentType::kAggColumn, c.frag);
      if (!frag.column.table.empty()) {
        support.insert(strings::ToLower(frag.column.table));
      }
    }
    for (const auto& hit : relevance.predicates) {
      const auto& frag =
          catalog.fragment(FragmentType::kPredicate, hit.fragment_index);
      if (!frag.column.table.empty()) {
        support.insert(strings::ToLower(frag.column.table));
      }
    }
    const auto& all_cols = catalog.fragments(FragmentType::kAggColumn);
    for (size_t i = 0; i < all_cols.size(); ++i) {
      if (all_cols[i].is_star_column() && !seen[i] &&
          (support.empty() ||
           InSupportedComponent(db, strings::ToLower(all_cols[i].column.table),
                                support))) {
        cols.push_back(ScoredOption{static_cast<int>(i), 0.0});
      }
    }
    space.columns_ = std::move(cols);
    Normalize(&space.columns_, options.score_smoothing);
  }

  // --- Predicate subsets: all subsets of the retrieved predicates with
  // pairwise distinct columns, up to max_predicates, ranked by the product
  // of normalized scores, capped at max_pred_subsets. ---
  {
    // Normalized scores of individual predicate fragments.
    std::vector<ScoredOption> preds;
    for (const auto& hit : relevance.predicates) {
      preds.push_back(ScoredOption{hit.fragment_index, hit.score});
    }
    Normalize(&preds, options.score_smoothing);

    std::vector<PredicateSubset> subsets;
    subsets.push_back(PredicateSubset{});  // the empty subset, score 1

    // Grow subsets breadth-first by size; predicates are ordered, and each
    // subset only extends with higher-indexed fragments to avoid dupes.
    size_t level_begin = 0;
    for (int size = 1; size <= options.max_predicates; ++size) {
      size_t level_end = subsets.size();
      for (size_t s = level_begin; s < level_end; ++s) {
        size_t start_pos = 0;
        if (!subsets[s].frags.empty()) {
          // Find the position of the last fragment in `preds`.
          int last_frag = subsets[s].frags.back();
          for (size_t p = 0; p < preds.size(); ++p) {
            if (preds[p].frag == last_frag) {
              start_pos = p + 1;
              break;
            }
          }
        }
        for (size_t p = start_pos; p < preds.size(); ++p) {
          const auto& frag =
              catalog.fragment(FragmentType::kPredicate, preds[p].frag);
          int col_idx = catalog.PredicateColumnIndex(frag.column);
          if (std::find(subsets[s].restrict_cols.begin(),
                        subsets[s].restrict_cols.end(),
                        col_idx) != subsets[s].restrict_cols.end()) {
            continue;  // one predicate per column
          }
          PredicateSubset next = subsets[s];
          next.frags.push_back(preds[p].frag);
          next.restrict_cols.push_back(col_idx);
          next.norm_score *= preds[p].norm_score;
          subsets.push_back(std::move(next));
        }
      }
      level_begin = level_end;
    }
    std::sort(subsets.begin(), subsets.end(),
              [](const PredicateSubset& a, const PredicateSubset& b) {
                return a.norm_score > b.norm_score;
              });
    if (subsets.size() > options.max_pred_subsets) {
      subsets.resize(options.max_pred_subsets);
    }
    space.subsets_ = std::move(subsets);
  }

  // --- Compatibility matrix. ---
  space.compat_.assign(space.functions_.size() * space.columns_.size(),
                       false);
  space.fn_needs_predicate_.assign(space.functions_.size(), false);
  for (size_t f = 0; f < space.functions_.size(); ++f) {
    const auto& fn_frag = catalog.fragment(FragmentType::kAggFunction,
                                           space.functions_[f].frag);
    space.fn_needs_predicate_[f] =
        fn_frag.fn == db::AggFn::kConditionalProbability;
    for (size_t c = 0; c < space.columns_.size(); ++c) {
      const auto& col_frag =
          catalog.fragment(FragmentType::kAggColumn, space.columns_[c].frag);
      bool ok = true;
      if (col_frag.is_star_column()) {
        ok = fn_frag.fn == db::AggFn::kCount ||
             fn_frag.fn == db::AggFn::kPercentage ||
             fn_frag.fn == db::AggFn::kConditionalProbability;
      } else if (db::RequiresNumericColumn(fn_frag.fn)) {
        const db::Column* column = db.FindColumn(col_frag.column);
        ok = column != nullptr && column->is_numeric();
      } else if (fn_frag.fn == db::AggFn::kCount ||
                 fn_frag.fn == db::AggFn::kConditionalProbability) {
        // Canonicalization: Count over a null-free column is equivalent to
        // Count(*); keep only the canonical star form so equivalent
        // candidates do not split probability mass or steal the top rank.
        const db::Column* column = db.FindColumn(col_frag.column);
        ok = column != nullptr && column->null_count() > 0;
      }
      // Note: CountDistinct over a unique key column is numerically the
      // row count, but "270 respondents" phrasings naturally map to
      // CountDistinct(RespondentID); those candidates stay, and the
      // metrics treat count-family candidates with identical predicates
      // and identical results as the same translation.
      space.compat_[f * space.columns_.size() + c] = ok;
    }
  }
  return space;
}

bool CandidateSpace::Valid(size_t f, size_t c, size_t s) const {
  if (!compat_[f * columns_.size() + c]) return false;
  if (fn_needs_predicate_[f] && subsets_[s].frags.empty()) return false;
  return true;
}

db::SimpleAggregateQuery CandidateSpace::Materialize(
    size_t f, size_t c, size_t s,
    const fragments::FragmentCatalog& catalog) const {
  db::SimpleAggregateQuery q;
  q.fn = catalog.fragment(FragmentType::kAggFunction, functions_[f].frag).fn;
  q.agg_column =
      catalog.fragment(FragmentType::kAggColumn, columns_[c].frag).column;
  for (int frag : subsets_[s].frags) {
    const auto& pred = catalog.fragment(FragmentType::kPredicate, frag);
    q.predicates.push_back(db::Predicate{pred.column, pred.value});
  }
  return q;
}

}  // namespace model
}  // namespace aggchecker
