#pragma once

#include <optional>
#include <vector>

#include "claims/claim.h"
#include "claims/relevance_scorer.h"
#include "db/eval_engine.h"
#include "fragments/catalog.h"
#include "model/candidate_space.h"
#include "model/options.h"
#include "model/priors.h"
#include "model/probe.h"

namespace aggchecker {
namespace model {

/// \brief A candidate query with its refined probability — one entry of the
/// distribution Q_c the system outputs per claim (Definition 3).
struct RankedCandidate {
  db::SimpleAggregateQuery query;
  double probability = 0.0;      ///< normalized posterior
  std::optional<double> result;  ///< evaluation result (nullopt = undefined)
  bool matches = false;          ///< result rounds to the claimed value
  double keyword_score = 0.0;    ///< Pr(S_c | Q_c) factor
  double prior = 0.0;            ///< Pr(Q_c) factor under the final priors
  /// The magnitude probe decided this candidate without evaluating it
  /// (DESIGN.md §17): `matches` is provably false but `result` was never
  /// computed. The top-k backfill re-evaluates flagged candidates that
  /// reach the report, filling `result` with the real value.
  bool probe_decided = false;
};

/// \brief Distribution over query candidates for one claim, ranked by
/// probability (descending).
struct ClaimDistribution {
  std::vector<RankedCandidate> ranked;
  size_t total_candidates = 0;  ///< size of the full candidate space

  const RankedCandidate* top() const {
    return ranked.empty() ? nullptr : &ranked[0];
  }
};

/// \brief One claim's trip through the engine's self-healing layer
/// (DESIGN.md §13), folded over the recovery records of every candidate
/// query the claim owned.
struct ClaimRecovery {
  uint32_t attempts = 0;      ///< max evaluation attempts over its queries
  uint32_t deepest_rung = 0;  ///< deepest canonical ladder rung engaged
  bool recovered = false;     ///< entered recovery and every query healed
  bool quarantined = false;   ///< some query failed on every rung; the
                              ///< claim degrades to a partial verdict
  bool engaged() const { return attempts > 0; }
  /// "primary" / "scalar-cube" / "string-plans" / "fresh-join".
  const char* final_path() const {
    return db::EvalEngine::RecoveryRungName(deepest_rung);
  }
};

/// \brief Output of the expectation-maximization translation.
struct TranslationResult {
  std::vector<ClaimDistribution> distributions;  ///< one per claim
  int em_iterations = 0;
  size_t total_candidates = 0;   ///< across all claims
  size_t queries_evaluated = 0;  ///< distinct candidate queries executed
  /// Θ snapshots when ModelOptions::trace_priors is set: the uniform
  /// initialization followed by the priors after each M-step (Table 2).
  std::vector<Priors> prior_trace;
  /// Non-OK when translation aborted on a hard error (e.g. an injected
  /// fault); distributions are then incomplete and callers must propagate
  /// the status instead of the result. Governor stops do NOT set this —
  /// they degrade into per-claim `partial` flags.
  Status status;
  /// One flag per claim: true when the evaluation budget ran out before the
  /// claim's candidates were (fully) evaluated. Partial claims keep their
  /// best-effort distribution but must never be flagged erroneous.
  std::vector<bool> partial;
  /// One record per claim. Poison claims — candidates that hard-fail on
  /// every ladder rung — are quarantined (and marked partial) instead of
  /// aborting the run, so one bad claim can never starve the batch; see
  /// ClaimRecovery. `status` above is reserved for run-level failures with
  /// no owning queries to quarantine.
  std::vector<ClaimRecovery> recovery;
  /// One entry per claim: every base table (lower-cased, sorted, unique)
  /// any of the claim's candidate queries can read, closed under the join
  /// paths connecting them — intermediate join-path tables included. The
  /// dependency domain for incremental re-verification (DESIGN.md §16): a
  /// claim needs re-checking iff some table here changed its data version.
  /// An over-approximation (the whole candidate space, not just the top
  /// translation) — extra re-checks are sound, missed invalidations are
  /// not. Empty for claims whose space references no table.
  std::vector<std::vector<std::string>> dependency_tables;
  /// Verification-aware probe counters (DESIGN.md §17); all-zero when
  /// ModelOptions::probe_pruning is off or the string path is in use.
  ProbeStats probe_stats;
};

/// \brief Per-claim encoder from candidate triples (f, c, s) to interned
/// query ids — the translator's half of the fingerprint path.
///
/// A claim's CandidateSpace is fixed after Build, so every fragment the
/// claim can ever select is interned at most once and memoized by its
/// position: per-column and per-subset ids persist across EM iterations,
/// which is what makes re-selection of a candidate in iteration k a pure
/// integer lookup instead of a SimpleAggregateQuery materialization.
///
/// Not thread-safe (it writes memo tables and the shared interner); the
/// translator only encodes from serial sections (batch assembly, M-step).
class CandidateInterner {
 public:
  CandidateInterner(const CandidateSpace& space,
                    const fragments::FragmentCatalog& catalog,
                    db::QueryInterner& interner)
      : space_(&space),
        catalog_(&catalog),
        interner_(&interner),
        col_ids_(space.columns().size(), db::QueryInterner::kNone),
        predlist_ids_(space.subsets().size(), db::QueryInterner::kNone),
        pred_ids_(
            catalog.fragments(fragments::FragmentType::kPredicate).size(),
            db::QueryInterner::kNone) {}

  /// Interned query id of candidate (f, c, s). Identical to
  /// interner.InternQuery(space.Materialize(f, c, s, catalog)) — the
  /// round-trip property test pins this down — without building the query.
  db::QueryInterner::Id Encode(size_t f, size_t c, size_t s);

 private:
  const CandidateSpace* space_;
  const fragments::FragmentCatalog* catalog_;
  db::QueryInterner* interner_;
  std::vector<db::QueryInterner::Id> col_ids_;       ///< per space column
  std::vector<db::QueryInterner::Id> predlist_ids_;  ///< per space subset
  std::vector<db::QueryInterner::Id> pred_ids_;      ///< per catalog pred frag
};

/// \brief Implements Algorithm 3 (QueryAndLearn): learns document-specific
/// priors while refining per-claim query distributions through candidate
/// evaluations (Algorithm 4's RefineByEval runs on the EvalEngine).
class Translator {
 public:
  Translator(const db::Database* db,
             const fragments::FragmentCatalog* catalog, ModelOptions options)
      : db_(db), catalog_(catalog), options_(options) {}

  /// Translates all claims given their relevance scores. The engine's cache
  /// persists across EM iterations (and across documents if shared).
  ///
  /// `pinned` (optional, one entry per claim) fixes a claim's translation
  /// to a user-confirmed query: pinned claims contribute their query to the
  /// prior maximization in every iteration and their distribution becomes a
  /// point mass — the mechanism behind semi-automated checking, where "a
  /// clear signal received for one claim resolves ambiguities for many
  /// others" (§1).
  TranslationResult Translate(
      const std::vector<claims::Claim>& claims,
      const std::vector<claims::ClaimRelevance>& relevance,
      db::EvalEngine* engine,
      const std::vector<std::optional<db::SimpleAggregateQuery>>* pinned =
          nullptr) const;

  const ModelOptions& options() const { return options_; }

 private:
  const db::Database* db_;
  const fragments::FragmentCatalog* catalog_;
  ModelOptions options_;
};

}  // namespace model
}  // namespace aggchecker
