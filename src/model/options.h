#pragma once

#include <cstddef>

#include "util/rounding.h"

namespace aggchecker {
namespace model {

/// \brief Tuning knobs of the probabilistic model (§5) and the evaluation
/// scope (§6.1). Defaults reproduce the paper's main configuration; the
/// benchmark sweeps (Figures 12 and 13, Table 5/10 ablations) vary them.
struct ModelOptions {
  /// Assumed a-priori probability of a claim being correct. Trades recall
  /// for precision (Figure 12); the paper settles on 0.999.
  double pT = 0.999;

  /// Fragments retrieved per category per claim ("# Hits" in Table 5 /
  /// Figure 13 left).
  size_t lucene_hits = 20;

  /// Maximum predicates per candidate query (m = 3 in §6.3).
  int max_predicates = 3;

  /// Predicate-column subsets kept per claim, ranked by keyword score
  /// (bounds the candidate cross product).
  size_t max_pred_subsets = 200;

  /// Aggregation-column fragments considered per claim ("# Aggregates" in
  /// Figure 13 right).
  size_t max_agg_columns = 12;

  /// Candidate queries evaluated per claim per EM iteration (PickScope's
  /// cost budget, §6.1).
  size_t max_eval_per_claim = 160;

  /// Adaptive PickScope (§6.1's cost model): scale the per-claim budget so
  /// one EM iteration costs about target_row_scans row-scans, between
  /// min_eval_per_claim and max_eval_per_claim. new_group_rate is the
  /// modeled chance an extra candidate opens a new cube group (candidates
  /// sharing predicate columns merge into one scan).
  bool adaptive_scope = false;
  double target_row_scans = 2e6;
  size_t min_eval_per_claim = 20;
  double new_group_rate = 0.05;

  /// EM iteration cap and convergence tolerance on prior change.
  int max_em_iterations = 5;
  double convergence_tol = 1e-3;

  /// Ablations of Table 10: S_c only (both false), +E_c (eval only),
  /// +Θ (both true — the full model).
  bool use_eval_results = true;
  bool use_priors = true;

  /// Record a snapshot of the priors Θ after every EM iteration in
  /// TranslationResult::prior_trace (Table 2's convergence view).
  bool trace_priors = false;

  /// Admissible rounding function rho of Definition 1 (ablation bench
  /// compares significant-digit rounding against strict and tolerance
  /// matching).
  rounding::RoundingMode rounding_mode =
      rounding::RoundingMode::kSignificantDigits;
  double rounding_tolerance = 0.05;

  /// Additive smoothing applied to relevance scores so fragments without
  /// keyword support keep non-zero probability (claims often omit the
  /// aggregation function — §7.3). Calibrated so the evaluation-result
  /// factor (pT odds) outweighs keyword sharpness, as in the paper.
  double score_smoothing = 0.10;

  /// Threads for per-claim candidate work and cube materialization.
  /// 0 = std::thread::hardware_concurrency(); 1 = fully serial (no pool).
  /// Results are bit-identical for any value (see DESIGN.md "Concurrency
  /// contract"), so this is purely a throughput knob.
  size_t num_threads = 0;

  /// Verification-aware candidate pruning (DESIGN.md §17): probe each
  /// candidate against column statistics and dictionaries before it enters
  /// the evaluation batch, and skip the aggregation kernels of cube slices
  /// every reader of which the probe already decided. Reports are
  /// bit-identical with pruning on or off (the probe-pruning differential
  /// tests pin this down); the flag only trades probe work for kernel work.
  /// Requires the fingerprint path (query_fingerprints); ignored otherwise.
  bool probe_pruning = true;

  /// Debug/differential mode: run every probe but evaluate all candidates
  /// for real anyway, counting disagreements between synthesized and real
  /// outcomes in ProbeStats::probe_conflicts (must be zero — an unsound
  /// probe bound otherwise). Also cross-checks that fingerprint-equivalent
  /// candidates never produce diverging results.
  bool probe_verify = false;

  /// Ranked candidates per claim whose probe-withheld results are
  /// re-evaluated after translation so reports show real values (AggChecker
  /// raises this to report_top_k). The backfill runs off-ledger: no
  /// governor charges, no new cache entries.
  size_t probe_backfill_top_k = 10;

  /// Pins PickScope's claim count to this value instead of the number of
  /// claims actually translated (0 = off, the default). Incremental
  /// re-verification (DESIGN.md §16) re-translates only the claims whose
  /// dependency tables changed but must reproduce the per-claim budget the
  /// full document was checked under — the adaptive scope divides its
  /// row-scan target by the claim count, so a smaller subset would
  /// otherwise get a larger budget and diverge from the from-scratch run.
  size_t scope_num_claims = 0;
};

}  // namespace model
}  // namespace aggchecker
