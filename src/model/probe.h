#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "db/database.h"
#include "fragments/catalog.h"
#include "model/candidate_space.h"
#include "util/rounding.h"

namespace aggchecker {
namespace model {

/// \brief Counters of the verification-aware probe stage (DESIGN.md §17),
/// folded into TranslationResult / CheckReport and the probe bench.
struct ProbeStats {
  size_t candidates_probed = 0;  ///< candidates the probe ladder inspected
  size_t candidates_pruned = 0;  ///< decided without evaluation (all families)
  size_t pruned_domain = 0;      ///< empty-domain family (absent literal)
  size_t pruned_magnitude = 0;   ///< magnitude family (unattainable claim)
  /// probe_verify mode only: decided candidates whose synthesized outcome
  /// disagreed with the real evaluation. Must be zero — a conflict means an
  /// unsound probe bound.
  size_t probe_conflicts = 0;
  size_t backfilled = 0;     ///< top-k results re-evaluated for reporting
  double probe_seconds = 0;  ///< wall time spent probing

  void Add(const ProbeStats& other) {
    candidates_probed += other.candidates_probed;
    candidates_pruned += other.candidates_pruned;
    pruned_domain += other.pruned_domain;
    pruned_magnitude += other.pruned_magnitude;
    probe_conflicts += other.probe_conflicts;
    backfilled += other.backfilled;
    probe_seconds += other.probe_seconds;
  }
};

/// \brief Probe verdict for one candidate query.
///
/// Two decided families, with different evidence strength:
///  - empty-domain (`decided && !no_result`): some predicate literal cannot
///    match any row, so the candidate's exact result is known without
///    evaluation (`known_result`, mirroring AnswerFromCube's semantics for a
///    zero-row group: 0 for count-like aggregates, undefined for the rest).
///  - magnitude (`decided && no_result`): the result is unknown, but the
///    aggregate's attainable range (from ColumnStats) cannot intersect the
///    set of values that round to the claim, so `matches` is provably false.
///
/// Undecided candidates (`decided == false`) evaluate normally. A faulted
/// probe ("translator.probe" fault point) always degrades to undecided —
/// never a wrong kill.
struct ProbeDecision {
  bool decided = false;
  bool no_result = false;  ///< magnitude family: matches=false, result unknown
  std::optional<double> known_result;  ///< empty-domain family only
};

/// \brief Pre-evaluation candidate prober: kills candidates whose predicate
/// literals fall outside the column domain or whose claimed value is outside
/// the aggregate's attainable bounds (DESIGN.md §17).
///
/// One instance per Translate call. Per-fragment probe state (literal
/// absence, column statistics handles) is cached across claims and EM
/// iterations by catalog fragment index, so each fragment pays its
/// dictionary/stats lookup once per document, not once per candidate.
///
/// Soundness contract (the pruning-on/off differential tests pin this
/// down): a decided candidate's synthesized outcome is bit-identical to
/// what evaluating it would produce — the exact result for the empty-domain
/// family, `matches == false` for the magnitude family. Probes only consult
/// ColumnStats and column dictionaries, both invalidated by ingestion, so a
/// stale prune cannot survive a data-version bump.
///
/// Not thread-safe (mutates memo tables); the translator probes only from
/// its serial batch-assembly section.
class CandidateProber {
 public:
  CandidateProber(const db::Database& db,
                  const fragments::FragmentCatalog& catalog);

  /// Probes candidate (f, c, s) of `space` against `claim_interval` (the
  /// claimed value's matchable interval, see rounding::MatchableInterval).
  /// `allow_undefined_magnitude` gates the magnitude family for aggregates
  /// that can evaluate to "undefined" (Sum/Avg/Min/Max, ratio aggregates):
  /// under a limited governor those prunes would perturb the partial-claim
  /// marking, so the caller only allows them when no budget is in play.
  ProbeDecision Probe(const CandidateSpace& space, size_t f, size_t c,
                      size_t s, const rounding::MatchInterval& claim_interval,
                      bool allow_undefined_magnitude, ProbeStats* stats);

 private:
  /// Cached absence state of one predicate fragment's literal.
  enum class PredState : uint8_t {
    kUnknown = 0,  ///< not probed yet
    kPresent,      ///< literal in the column dictionary (or unresolvable)
    kAbsent,       ///< literal provably matches zero rows
  };

  /// Cached per-aggregation-column-fragment probe inputs.
  struct ColumnInfo {
    bool resolved = false;
    const db::Column* column = nullptr;  ///< null for "*" or unknown columns
    size_t table_rows = 0;               ///< rows of the fragment's table
  };

  PredState PredProbe(int frag_index);
  const ColumnInfo& ColumnProbe(int frag_index);

  const db::Database* db_;
  const fragments::FragmentCatalog* catalog_;
  std::vector<PredState> pred_state_;   ///< per kPredicate fragment
  std::vector<ColumnInfo> col_info_;    ///< per kAggColumn fragment
};

}  // namespace model
}  // namespace aggchecker
