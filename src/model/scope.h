#pragma once

#include <cstddef>

#include "db/database.h"
#include "model/options.h"

namespace aggchecker {
namespace model {

/// \brief Evaluation scope chosen by the cost model.
struct ScopeBudget {
  /// Candidate queries to evaluate per claim per EM iteration.
  size_t eval_per_claim = 0;
  /// Estimated row-scans one EM iteration will cost under this budget.
  double estimated_row_scans = 0;
};

/// \brief Function PickScope's cost model (§6.1): "To determine the scope,
/// we use a cost model that takes into account the size of the database as
/// well as the number of claims to verify."
///
/// The scope expands (prioritizing likelier candidates — the translator
/// ranks them) until estimated evaluation cost reaches the target. Cost is
/// modeled in row-scans: candidates sharing a predicate-column set merge
/// into one cube scan, so marginal cost per extra candidate is the chance
/// it opens a new cube group times a full scan. With target T row-scans,
/// claims n, and data rows R:
///
///   eval_per_claim ~= T / (n * R * new_group_rate)
///
/// clamped to [min_eval, max_eval]. Small data sets get the full budget;
/// large ones shrink the scope — matching the paper's behavior of keeping
/// per-document processing time roughly constant (Table 5 reports ~2.4s
/// per article regardless of data size).
ScopeBudget PickScope(const db::Database& db, size_t num_claims,
                      const ModelOptions& options);

}  // namespace model
}  // namespace aggchecker
