#include "model/scope.h"

#include <algorithm>
#include <cmath>

namespace aggchecker {
namespace model {

ScopeBudget PickScope(const db::Database& db, size_t num_claims,
                      const ModelOptions& options) {
  ScopeBudget budget;
  if (!options.adaptive_scope) {
    budget.eval_per_claim = options.max_eval_per_claim;
    budget.estimated_row_scans =
        static_cast<double>(num_claims) * options.max_eval_per_claim *
        options.new_group_rate * static_cast<double>(db.TotalRows());
    return budget;
  }
  const double rows = std::max<double>(1.0, double(db.TotalRows()));
  const double claims = std::max<size_t>(num_claims, 1);
  double ideal =
      options.target_row_scans / (claims * rows * options.new_group_rate);
  size_t eval = static_cast<size_t>(std::llround(ideal));
  eval = std::clamp(eval, options.min_eval_per_claim,
                    options.max_eval_per_claim);
  budget.eval_per_claim = eval;
  budget.estimated_row_scans =
      claims * static_cast<double>(eval) * options.new_group_rate * rows;
  return budget;
}

}  // namespace model
}  // namespace aggchecker
