#include "model/priors.h"

#include <algorithm>
#include <cmath>

namespace aggchecker {
namespace model {

Priors Priors::Uniform(const fragments::FragmentCatalog& catalog) {
  Priors p;
  p.fn_.assign(db::kNumAggFns, 1.0 / db::kNumAggFns);
  size_t num_cols =
      catalog.fragments(fragments::FragmentType::kAggColumn).size();
  p.agg_col_.assign(std::max<size_t>(num_cols, 1), 1.0 / std::max<size_t>(
                                                             num_cols, 1));
  size_t num_restrict = catalog.predicate_columns().size();
  // Bernoulli-uniform restriction prior: before any evidence, a column is
  // as likely to be restricted as not.
  p.restrict_.assign(std::max<size_t>(num_restrict, 1), 0.5);
  return p;
}

double Priors::QueryPrior(const db::SimpleAggregateQuery& query,
                          const fragments::FragmentCatalog& catalog) const {
  double prior = fn_prior(query.fn);
  int col_idx = catalog.AggColumnIndex(query.agg_column);
  if (col_idx >= 0) prior *= agg_col_prior(col_idx);
  for (const db::Predicate& p : query.predicates) {
    int restrict_idx = catalog.PredicateColumnIndex(p.column);
    if (restrict_idx >= 0) prior *= restrict_prior(restrict_idx);
  }
  return prior;
}

Priors Priors::FromMlQueries(
    const std::vector<db::SimpleAggregateQuery>& ml_queries,
    const fragments::FragmentCatalog& catalog, double smoothing) {
  Priors p = Uniform(catalog);
  const double n = static_cast<double>(ml_queries.size());
  if (n == 0) return p;

  // Aggregation functions.
  std::vector<double> fn_counts(db::kNumAggFns, 0.0);
  for (const auto& q : ml_queries) {
    fn_counts[static_cast<size_t>(q.fn)] += 1.0;
  }
  double fn_denom = n + smoothing * db::kNumAggFns;
  for (size_t i = 0; i < p.fn_.size(); ++i) {
    p.fn_[i] = (fn_counts[i] + smoothing) / fn_denom;
  }

  // Aggregation columns.
  std::vector<double> col_counts(p.agg_col_.size(), 0.0);
  for (const auto& q : ml_queries) {
    int idx = catalog.AggColumnIndex(q.agg_column);
    if (idx >= 0) col_counts[static_cast<size_t>(idx)] += 1.0;
  }
  double col_denom = n + smoothing * static_cast<double>(p.agg_col_.size());
  for (size_t i = 0; i < p.agg_col_.size(); ++i) {
    p.agg_col_[i] = (col_counts[i] + smoothing) / col_denom;
  }

  // Restriction columns: fraction of ML queries restricting each column.
  std::vector<double> restrict_counts(p.restrict_.size(), 0.0);
  for (const auto& q : ml_queries) {
    for (const db::Predicate& pred : q.predicates) {
      int idx = catalog.PredicateColumnIndex(pred.column);
      if (idx >= 0) restrict_counts[static_cast<size_t>(idx)] += 1.0;
    }
  }
  for (size_t i = 0; i < p.restrict_.size(); ++i) {
    p.restrict_[i] =
        (restrict_counts[i] + smoothing) / (n + 2.0 * smoothing);
  }
  return p;
}

double Priors::MaxDelta(const Priors& other) const {
  double delta = 0.0;
  auto scan = [&delta](const std::vector<double>& a,
                       const std::vector<double>& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::fabs(a[i] - b[i]));
    }
  };
  scan(fn_, other.fn_);
  scan(agg_col_, other.agg_col_);
  scan(restrict_, other.restrict_);
  return delta;
}

}  // namespace model
}  // namespace aggchecker
