#pragma once

#include <vector>

#include "claims/relevance_scorer.h"
#include "db/database.h"
#include "db/query.h"
#include "fragments/catalog.h"
#include "model/options.h"

namespace aggchecker {
namespace model {

/// \brief One considered fragment option with its normalized (smoothed)
/// relevance score — the factor Pr(S^X_c | Q_c) contributes for picking it.
struct ScoredOption {
  int frag = -1;            ///< index into the catalog's fragment list
  double norm_score = 0.0;  ///< smoothed score / category sum
};

/// \brief A set of predicate fragments on pairwise distinct columns.
struct PredicateSubset {
  std::vector<int> frags;          ///< predicate fragment indexes
  std::vector<int> restrict_cols;  ///< catalog predicate-column indexes
  double norm_score = 1.0;         ///< product of normalized pred scores
};

/// \brief The candidate-query space of one claim (§4.4): the cross product
/// of considered aggregation functions, aggregation columns, and predicate
/// subsets. Candidates are addressed by (function, column, subset) position
/// and materialized into SQL queries on demand — the space routinely holds
/// tens of thousands of candidates per claim.
class CandidateSpace {
 public:
  static CandidateSpace Build(const db::Database& db,
                              const fragments::FragmentCatalog& catalog,
                              const claims::ClaimRelevance& relevance,
                              const ModelOptions& options);

  const std::vector<ScoredOption>& functions() const { return functions_; }
  const std::vector<ScoredOption>& columns() const { return columns_; }
  const std::vector<PredicateSubset>& subsets() const { return subsets_; }

  /// False for invalid pairings (numeric aggregate over a text column,
  /// "*" with a non-count function, ConditionalProbability without a
  /// condition predicate).
  bool Valid(size_t f, size_t c, size_t s) const;

  /// Keyword likelihood Pr(S_c | Q_c) of candidate (f, c, s).
  double KeywordScore(size_t f, size_t c, size_t s) const {
    return functions_[f].norm_score * columns_[c].norm_score *
           subsets_[s].norm_score;
  }

  /// Materializes candidate (f, c, s) into a query.
  db::SimpleAggregateQuery Materialize(
      size_t f, size_t c, size_t s,
      const fragments::FragmentCatalog& catalog) const;

  /// Number of (valid or not) candidate triples.
  size_t TotalCandidates() const {
    return functions_.size() * columns_.size() * subsets_.size();
  }

 private:
  std::vector<ScoredOption> functions_;
  std::vector<ScoredOption> columns_;
  std::vector<PredicateSubset> subsets_;
  // compat_[f * columns.size() + c]: (function, column) pairing allowed.
  std::vector<bool> compat_;
  std::vector<bool> fn_needs_predicate_;  // per considered function
};

}  // namespace model
}  // namespace aggchecker
