#include "model/probe.h"

#include <cmath>
#include <limits>

#include "db/column_stats.h"
#include "db/table.h"
#include "util/fault_injection.h"
#include "util/strings.h"

namespace aggchecker {
namespace model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative slack widening the attainable bounds before intersecting with
/// the claim interval: the stats are exact, but the evaluated aggregate may
/// accumulate in a different order than BuildStats, so give every bound a
/// 1e-6 relative margin (orders of magnitude above any summation error,
/// orders of magnitude below the "orders-of-magnitude-off" gap the probe
/// exists to detect).
double WidenLo(double lo) {
  if (!std::isfinite(lo)) return lo;
  return lo - 1e-6 * std::max(std::fabs(lo), 1.0);
}
double WidenHi(double hi) {
  if (!std::isfinite(hi)) return hi;
  return hi + 1e-6 * std::max(std::fabs(hi), 1.0);
}

/// Attainable result range of `fn` over `col` (null for "*") under any
/// predicate conjunction, plus whether the result is integral whenever
/// defined. `single_table` bounds that depend on the row count only hold
/// when the query's relation is the fragment's own table — a join can
/// duplicate rows arbitrarily.
struct Bounds {
  double lo = -kInf;
  double hi = kInf;
  bool integral = false;
  bool usable = false;  ///< false: no sound bound for this shape, skip probe
};

Bounds AttainableBounds(db::AggFn fn, const db::Column* col,
                        size_t table_rows, bool single_table) {
  Bounds b;
  switch (fn) {
    case db::AggFn::kCount:
      b.usable = true;
      b.integral = true;
      b.lo = 0.0;
      if (single_table) {
        // Count(*) counts rows; Count(col) counts non-null cells.
        b.hi = static_cast<double>(
            col != nullptr ? col->Stats().non_null : table_rows);
      }
      return b;
    case db::AggFn::kCountDistinct: {
      if (col == nullptr) return b;
      b.usable = true;
      b.integral = true;
      b.lo = 0.0;
      // Joins and predicates only ever restrict/duplicate rows; the set of
      // distinct values of this column can never grow past the base table's.
      b.hi = static_cast<double>(col->Stats().distinct);
      return b;
    }
    case db::AggFn::kMin:
    case db::AggFn::kMax:
    case db::AggFn::kAvg: {
      if (col == nullptr || !col->is_numeric()) return b;
      const db::ColumnStats& s = col->Stats();
      b.usable = true;
      // finite_count == 0 leaves min > max: the empty interval. Any subset
      // with a non-finite value poisons the aggregate to "undefined", which
      // never matches; any finite subset stays inside [min, max].
      b.lo = s.min;
      b.hi = s.max;
      b.integral = fn != db::AggFn::kAvg && s.integral;
      return b;
    }
    case db::AggFn::kSum: {
      if (col == nullptr || !col->is_numeric()) return b;
      const db::ColumnStats& s = col->Stats();
      b.integral = s.integral;
      if (s.finite_count == 0) {
        // No finite value to sum: every defined result is impossible.
        b.usable = true;
        b.lo = kInf;
        b.hi = -kInf;
        return b;
      }
      if (single_table) {
        // A subset sum is at most the sum of the positive values and at
        // least the sum of the negative ones; one-signed columns tighten
        // the empty side to the single closest-to-zero value (the sum is
        // undefined for zero rows, so at least one value contributes).
        b.usable = true;
        b.lo = s.sum_neg < 0.0 ? s.sum_neg : s.min;
        b.hi = s.sum_pos > 0.0 ? s.sum_pos : s.max;
        return b;
      }
      // Join relation: multiplicity is unbounded, but the sign is not.
      if (s.min >= 0.0) {
        b.usable = true;
        b.lo = s.min;
        return b;
      }
      if (s.max <= 0.0) {
        b.usable = true;
        b.hi = s.max;
        return b;
      }
      return b;  // mixed-sign join sums are unbounded both ways
    }
    case db::AggFn::kPercentage:
    case db::AggFn::kConditionalProbability:
      // num counts a subset of den's rows, so the ratio is within [0, 100].
      b.usable = true;
      b.lo = 0.0;
      b.hi = 100.0;
      return b;
  }
  return b;
}

}  // namespace

CandidateProber::CandidateProber(const db::Database& db,
                                 const fragments::FragmentCatalog& catalog)
    : db_(&db),
      catalog_(&catalog),
      pred_state_(
          catalog.fragments(fragments::FragmentType::kPredicate).size(),
          PredState::kUnknown),
      col_info_(
          catalog.fragments(fragments::FragmentType::kAggColumn).size()) {}

CandidateProber::PredState CandidateProber::PredProbe(int frag_index) {
  PredState& state = pred_state_[static_cast<size_t>(frag_index)];
  if (state != PredState::kUnknown) return state;
  state = PredState::kPresent;  // the conservative default: never prune
  const fragments::QueryFragment& frag =
      catalog_->fragment(fragments::FragmentType::kPredicate, frag_index);
  // NaN literals defeat dictionary lookup (NaN != NaN); leave them to the
  // engine, which gives each NaN its own bucket.
  if (frag.value.type() == db::ValueType::kDouble &&
      std::isnan(frag.value.AsDoubleExact())) {
    return state;
  }
  const db::Column* col = db_->FindColumn(frag.column);
  if (col == nullptr) return state;
  if (col->DistinctIndexOf(frag.value) < 0) state = PredState::kAbsent;
  return state;
}

const CandidateProber::ColumnInfo& CandidateProber::ColumnProbe(
    int frag_index) {
  ColumnInfo& info = col_info_[static_cast<size_t>(frag_index)];
  if (info.resolved) return info;
  info.resolved = true;
  const fragments::QueryFragment& frag =
      catalog_->fragment(fragments::FragmentType::kAggColumn, frag_index);
  if (const db::Table* table = db_->FindTable(frag.column.table)) {
    info.table_rows = table->num_rows();
  }
  if (!frag.column.column.empty()) {
    info.column = db_->FindColumn(frag.column);
  }
  return info;
}

ProbeDecision CandidateProber::Probe(
    const CandidateSpace& space, size_t f, size_t c, size_t s,
    const rounding::MatchInterval& claim_interval,
    bool allow_undefined_magnitude, ProbeStats* stats) {
  ++stats->candidates_probed;
  // Chaos hook: a faulted probe must degrade to "don't prune" — the
  // candidate evaluates normally and the report stays bit-identical.
  Status injected;
  AGG_FAULT_POINT_STATUS("translator.probe", injected);
  if (!injected.ok()) return ProbeDecision{};

  using fragments::FragmentType;
  const db::AggFn fn =
      catalog_
          ->fragment(FragmentType::kAggFunction, space.functions()[f].frag)
          .fn;
  const fragments::QueryFragment& agg_frag =
      catalog_->fragment(FragmentType::kAggColumn, space.columns()[c].frag);
  const bool is_star = agg_frag.column.column.empty();
  const PredicateSubset& subset = space.subsets()[s];

  // ---- Empty-domain family -------------------------------------------
  // A predicate literal absent from its column's dictionary matches zero
  // rows (joins never invent values), so the candidate's relation is empty
  // and the exact result follows from AnswerFromCube's zero-row semantics.
  bool any_absent = false;
  bool absent_outside_agg = false;  // some absent pred not on the agg column
  bool condition_absent = false;    // predicates[0] absent (CondProb's den)
  for (size_t p = 0; p < subset.frags.size(); ++p) {
    if (PredProbe(subset.frags[p]) != PredState::kAbsent) continue;
    any_absent = true;
    const fragments::QueryFragment& pf =
        catalog_->fragment(FragmentType::kPredicate, subset.frags[p]);
    if (is_star || !(pf.column == agg_frag.column)) absent_outside_agg = true;
    if (p == 0) condition_absent = true;
  }
  if (any_absent) {
    ProbeDecision d;
    d.decided = true;
    switch (fn) {
      case db::AggFn::kCount:
      case db::AggFn::kCountDistinct:
        d.known_result = 0.0;  // count-like: absent group = zero rows
        break;
      case db::AggFn::kSum:
      case db::AggFn::kAvg:
      case db::AggFn::kMin:
      case db::AggFn::kMax:
        d.known_result = std::nullopt;  // undefined over zero rows
        break;
      case db::AggFn::kPercentage:
        // The denominator relaxes predicates on the aggregation column
        // only; an absent literal elsewhere (or under "*") pins the
        // denominator to zero too → undefined. Otherwise the denominator
        // is unknown (0/den or 0/0) and the probe cannot decide.
        if (absent_outside_agg) {
          d.known_result = std::nullopt;
        } else {
          d.decided = false;
        }
        break;
      case db::AggFn::kConditionalProbability:
        // The denominator pins only the condition (predicates[0]).
        if (condition_absent) {
          d.known_result = std::nullopt;
        } else {
          d.decided = false;
        }
        break;
    }
    if (d.decided) {
      ++stats->pruned_domain;
      ++stats->candidates_pruned;
      return d;
    }
  }

  // ---- Magnitude family ----------------------------------------------
  // Intersect the aggregate's attainable range with the set of values that
  // can round to the claim; an empty intersection proves matches == false
  // without knowing the result. Aggregates that can evaluate to
  // "undefined" are gated (see the header): Count/CountDistinct always
  // produce a value when their cube completes, so they prune under any
  // governor.
  const bool can_be_undefined =
      fn != db::AggFn::kCount && fn != db::AggFn::kCountDistinct;
  if (can_be_undefined && !allow_undefined_magnitude) return ProbeDecision{};

  const ColumnInfo& info = ColumnProbe(space.columns()[c].frag);
  if (!is_star && info.column == nullptr) return ProbeDecision{};

  // Single-table shape: every referenced table is the aggregate fragment's
  // own (the join closure then adds nothing and row counts are exact).
  bool single_table = !agg_frag.column.table.empty();
  const std::string agg_table = strings::ToLower(agg_frag.column.table);
  for (int frag : subset.frags) {
    const fragments::QueryFragment& pf =
        catalog_->fragment(FragmentType::kPredicate, frag);
    if (strings::ToLower(pf.column.table) != agg_table) {
      single_table = false;
      break;
    }
  }

  Bounds bounds =
      AttainableBounds(fn, is_star ? nullptr : info.column, info.table_rows,
                       single_table);
  if (!bounds.usable) return ProbeDecision{};

  double lo = std::max(WidenLo(bounds.lo), claim_interval.lo);
  double hi = std::min(WidenHi(bounds.hi), claim_interval.hi);
  if (bounds.integral && lo <= hi) {
    lo = std::ceil(lo);
    hi = std::floor(hi);
  }
  if (lo <= hi) return ProbeDecision{};

  ProbeDecision d;
  d.decided = true;
  d.no_result = true;
  ++stats->pruned_magnitude;
  ++stats->candidates_pruned;
  return d;
}

}  // namespace model
}  // namespace aggchecker
