#include "model/translator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "model/probe.h"
#include "model/scope.h"
#include "util/fault_injection.h"
#include "util/rounding.h"
#include "util/strings.h"
#include "util/timer.h"

namespace aggchecker {
namespace model {

namespace {

/// Compact candidate address within a claim's CandidateSpace.
uint64_t TripleKey(size_t f, size_t c, size_t s) {
  return (static_cast<uint64_t>(f) << 40) | (static_cast<uint64_t>(c) << 20) |
         static_cast<uint64_t>(s);
}

struct EvalOutcome {
  std::optional<double> result;
  bool matches = false;
  /// Probe bookkeeping (DESIGN.md §17): the outcome was synthesized from a
  /// settled probe decision instead of an evaluation. `probe_no_result`
  /// marks the magnitude family — matches is provably false but the result
  /// itself was never computed (the top-k backfill fills it for reports).
  bool probe_decided = false;
  bool probe_no_result = false;
};

/// NaN-tolerant equality of two optional evaluation results (the verify
/// mode's disagreement test: nullopt == nullopt, NaN == NaN).
bool SameResult(const std::optional<double>& a,
                const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return *a == *b || (std::isnan(*a) && std::isnan(*b));
}

struct ScoredTriple {
  double score;
  size_t f, c, s;
};

/// Per-iteration prior factors for one claim's candidate space.
struct PriorFactors {
  std::vector<double> fn;      // per considered function
  std::vector<double> col;     // per considered column
  std::vector<double> subset;  // per predicate subset

  double of(size_t f, size_t c, size_t s) const {
    return fn[f] * col[c] * subset[s];
  }
};

PriorFactors ComputePriorFactors(const CandidateSpace& space,
                                 const Priors& priors,
                                 const fragments::FragmentCatalog& catalog) {
  PriorFactors factors;
  factors.fn.reserve(space.functions().size());
  for (const auto& f : space.functions()) {
    factors.fn.push_back(priors.fn_prior(
        catalog.fragment(fragments::FragmentType::kAggFunction, f.frag).fn));
  }
  factors.col.reserve(space.columns().size());
  for (const auto& c : space.columns()) {
    factors.col.push_back(priors.agg_col_prior(c.frag));
  }
  // Full Bernoulli restriction prior: restricted columns contribute pri,
  // unrestricted ones (1 - pri). The paper's formula drops the (1 - pri)
  // factors; at our smaller evaluation budget that simplification
  // systematically favors predicate-free candidates, so we keep the
  // complete likelihood (equivalent up to the per-claim constant
  // prod_i (1 - pri) divided out, which the simplified form ignores only
  // when comparing candidates with equal predicate sets).
  double all_unrestricted = 1.0;
  const size_t num_restrict = priors.num_restrict_components();
  for (size_t col = 0; col < num_restrict; ++col) {
    all_unrestricted *= 1.0 - priors.restrict_prior(static_cast<int>(col));
  }
  factors.subset.reserve(space.subsets().size());
  for (const auto& s : space.subsets()) {
    double p = all_unrestricted;
    for (int col : s.restrict_cols) {
      if (col < 0) continue;
      double pri = priors.restrict_prior(col);
      double complement = 1.0 - pri;
      if (complement < 1e-6) complement = 1e-6;
      p *= pri / complement;
    }
    factors.subset.push_back(p);
  }
  return factors;
}

/// Top-N valid triples by score (keyword likelihood times prior factor).
///
/// With priors enabled, the evaluation scope hedges: half the budget goes
/// to the prior-weighted ranking and half to the keyword-only ranking.
/// PickScope (§6.1) can afford tens of thousands of evaluations per claim;
/// at our smaller budget a pure prior-weighted scope can evict the true
/// query before the priors have converged, so both rankings contribute.
std::vector<ScoredTriple> SelectTop(const CandidateSpace& space,
                                    const PriorFactors& factors,
                                    bool use_priors, size_t top_n) {
  std::vector<ScoredTriple> triples;
  const size_t nf = space.functions().size();
  const size_t nc = space.columns().size();
  const size_t ns = space.subsets().size();
  triples.reserve(nf * nc * ns / 2);
  for (size_t f = 0; f < nf; ++f) {
    for (size_t c = 0; c < nc; ++c) {
      for (size_t s = 0; s < ns; ++s) {
        if (!space.Valid(f, c, s)) continue;
        double score = space.KeywordScore(f, c, s);
        if (use_priors) score *= factors.of(f, c, s);
        triples.push_back(ScoredTriple{score, f, c, s});
      }
    }
  }
  auto by_score_desc = [](const ScoredTriple& a, const ScoredTriple& b) {
    return a.score > b.score;
  };
  if (use_priors && triples.size() > top_n) {
    // Keyword-only ranking of the same triples, keeping the top half.
    std::vector<ScoredTriple> by_keyword = triples;
    for (auto& t : by_keyword) t.score = space.KeywordScore(t.f, t.c, t.s);
    size_t half = std::max<size_t>(top_n / 2, 1);
    if (by_keyword.size() > half) {
      std::nth_element(by_keyword.begin(), by_keyword.begin() + half - 1,
                       by_keyword.end(), by_score_desc);
      by_keyword.resize(half);
    }

    std::nth_element(triples.begin(), triples.begin() + top_n - 1,
                     triples.end(), by_score_desc);
    triples.resize(top_n);
    // Union the two scopes (slight budget overrun is fine); keyword-only
    // entries carry their combined score for posterior ranking.
    std::set<uint64_t> present;
    for (const auto& t : triples) present.insert(TripleKey(t.f, t.c, t.s));
    for (const auto& t : by_keyword) {
      if (!present.insert(TripleKey(t.f, t.c, t.s)).second) continue;
      ScoredTriple extra = t;
      extra.score =
          space.KeywordScore(t.f, t.c, t.s) * factors.of(t.f, t.c, t.s);
      triples.push_back(extra);
    }
    std::sort(triples.begin(), triples.end(), by_score_desc);
    return triples;
  }
  if (triples.size() > top_n) {
    std::nth_element(triples.begin(), triples.begin() + top_n - 1,
                     triples.end(), by_score_desc);
    triples.resize(top_n);
  }
  std::sort(triples.begin(), triples.end(), by_score_desc);
  return triples;
}

/// Dependency table set of one claim (TranslationResult::dependency_tables):
/// the union of tables referenced by the claim's candidate fragments (agg
/// columns and predicate columns) plus `extra` (a pinned query's tables),
/// closed under the join paths connecting them. Closure runs per connected
/// component of the FK forest — candidates mixing disconnected tables must
/// not make the whole set fall back to "no closure".
std::vector<std::string> DependencyTables(
    const db::Database& db, const CandidateSpace& space,
    const fragments::FragmentCatalog& catalog,
    const std::vector<std::string>& extra) {
  using fragments::FragmentType;
  std::set<std::string> tables;
  for (const ScoredOption& c : space.columns()) {
    const auto& frag = catalog.fragment(FragmentType::kAggColumn, c.frag);
    if (!frag.column.table.empty()) {
      tables.insert(strings::ToLower(frag.column.table));
    }
  }
  for (const PredicateSubset& s : space.subsets()) {
    for (int f : s.frags) {
      const auto& frag = catalog.fragment(FragmentType::kPredicate, f);
      if (!frag.column.table.empty()) {
        tables.insert(strings::ToLower(frag.column.table));
      }
    }
  }
  for (const std::string& t : extra) tables.insert(strings::ToLower(t));

  std::set<std::string> closure;
  std::vector<std::string> pending(tables.begin(), tables.end());
  while (!pending.empty()) {
    // Greedily collect one connected component around the last table.
    std::vector<std::string> component{pending.back()};
    pending.pop_back();
    for (size_t i = 0; i < pending.size();) {
      if (db.JoinPlan({component[0], pending[i]}).ok()) {
        component.push_back(pending[i]);
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    auto plan = db.JoinPlan(component);
    if (plan.ok()) {
      closure.insert(strings::ToLower(plan->root));
      for (const auto& step : plan->steps) {
        closure.insert(strings::ToLower(step.table));
      }
    } else {
      // Cannot plan (e.g. an unknown table in a synthetic candidate): keep
      // the raw members — an under-closure beats dropping them entirely.
      for (const std::string& t : component) closure.insert(t);
    }
  }
  return std::vector<std::string>(closure.begin(), closure.end());
}

}  // namespace

db::QueryInterner::Id CandidateInterner::Encode(size_t f, size_t c, size_t s) {
  using fragments::FragmentType;
  db::AggFn fn =
      catalog_->fragment(FragmentType::kAggFunction, space_->functions()[f].frag)
          .fn;
  db::QueryInterner::Id& col = col_ids_[c];
  if (col == db::QueryInterner::kNone) {
    col = interner_->InternColumn(
        catalog_->fragment(FragmentType::kAggColumn, space_->columns()[c].frag)
            .column);
  }
  db::QueryInterner::Id& plist = predlist_ids_[s];
  if (plist == db::QueryInterner::kNone) {
    std::vector<db::QueryInterner::Id> pred_list;
    const auto& frags = space_->subsets()[s].frags;
    pred_list.reserve(frags.size());
    for (int frag : frags) {
      db::QueryInterner::Id& pid = pred_ids_[static_cast<size_t>(frag)];
      if (pid == db::QueryInterner::kNone) {
        const auto& pred = catalog_->fragment(FragmentType::kPredicate, frag);
        pid = interner_->InternPredicate(pred.column, pred.value);
      }
      pred_list.push_back(pid);
    }
    plist = interner_->InternPredList(pred_list);
  }
  return interner_->InternCandidate(fn, col, plist);
}

TranslationResult Translator::Translate(
    const std::vector<claims::Claim>& claims,
    const std::vector<claims::ClaimRelevance>& relevance,
    db::EvalEngine* engine,
    const std::vector<std::optional<db::SimpleAggregateQuery>>* pinned)
    const {
  TranslationResult result;
  const size_t n = claims.size();
  result.partial.assign(n, false);
  result.recovery.assign(n, ClaimRecovery{});
  if (n == 0) return result;

  // Folds the engine's per-query recovery records and surviving failures
  // into per-claim state; `owner_of` maps a batch index to its claim.
  // Returns false only when a hard error has no owning queries to
  // quarantine (a run-level fault) — the one case that still aborts.
  auto absorb_engine_failures =
      [&](db::EvalEngine* eng, const std::function<size_t(size_t)>& owner_of) {
        for (const auto& rec : eng->ConsumeRecoveryRecords()) {
          ClaimRecovery& cr = result.recovery[owner_of(rec.query_index)];
          cr.attempts = std::max(cr.attempts, rec.attempts);
          cr.deepest_rung = std::max(cr.deepest_rung, rec.rung);
          if (rec.recovered) cr.recovered = true;
        }
        std::vector<size_t> failed = eng->ConsumeFailedQueries();
        Status batch_error = eng->ConsumeHardError();
        if (!failed.empty()) {
          // Poison claims: quarantined partials, never erroneous — the run
          // itself continues.
          for (size_t b : failed) {
            const size_t claim_idx = owner_of(b);
            result.recovery[claim_idx].quarantined = true;
            result.partial[claim_idx] = true;
          }
          return true;
        }
        if (!batch_error.ok()) {
          // An unexpected engine error with no query attribution (not
          // exhaustion, not a malformed candidate) aborts the run: its
          // nullopt results must not masquerade as "undefined aggregate"
          // and flip verdicts.
          result.status = batch_error;
          return false;
        }
        return true;
      };

  // Cooperative cancellation: the governor (if any) is scoped to this run
  // by the caller and shared with the evaluation engine.
  const ResourceGovernor* governor = engine->governor();

  // Per-claim work (space construction, candidate selection, final
  // distributions) spreads over the engine's thread pool. Each parallel
  // region writes only its own claim's slot; anything order-sensitive
  // (stats, priors, batch assembly) stays serial, so the output is
  // bit-identical for any thread count.
  ThreadPool* pool = engine->thread_pool();
  auto run_per_claim = [pool](size_t count,
                              const std::function<void(size_t)>& body) {
    if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
      pool->ParallelFor(0, count, body);
    } else {
      for (size_t i = 0; i < count; ++i) body(i);
    }
  };

  auto is_pinned = [&](size_t i) {
    return pinned != nullptr && i < pinned->size() && (*pinned)[i].has_value();
  };
  // Evaluate pinned queries once, up front (each a one-query batch, so
  // engine failures attribute to the pinned claim directly).
  std::vector<EvalOutcome> pinned_outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    if (!is_pinned(i)) continue;
    auto value = engine->Evaluate(*(*pinned)[i]);
    pinned_outcomes[i].result = value;
    pinned_outcomes[i].matches =
        value.has_value() &&
        rounding::Matches(*value, claims[i].claimed_value(),
                          options_.rounding_mode,
                          options_.rounding_tolerance);
    if (!absorb_engine_failures(engine, [i](size_t) { return i; })) {
      return result;
    }
  }

  // Build one candidate space per claim (independent per-claim work over
  // read-only db/catalog state; the catalog warmed every column dictionary
  // when it was built).
  std::vector<std::optional<CandidateSpace>> spaces(n);
  run_per_claim(n, [&](size_t i) {
    spaces[i].emplace(
        CandidateSpace::Build(*db_, *catalog_, relevance[i], options_));
  });
  for (size_t i = 0; i < n; ++i) {
    result.total_candidates += spaces[i]->TotalCandidates();
  }

  // Dependency table sets for incremental re-verification. Pinned claims
  // add their confirmed query's tables (it may sit outside the space).
  result.dependency_tables.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> extra;
    if (is_pinned(i)) extra = (*pinned)[i]->ReferencedTables();
    result.dependency_tables[i] =
        DependencyTables(*db_, *spaces[i], *catalog_, extra);
  }

  // Evaluation outcomes per claim, keyed by candidate triple.
  std::vector<std::unordered_map<uint64_t, EvalOutcome>> outcomes(n);
  std::vector<std::vector<ScoredTriple>> selections(n);

  // Fingerprint path: candidates ship to the engine as interned query ids,
  // encoded through per-claim memo tables that persist across iterations.
  // Encoders are created and used only in serial sections (the interner is
  // not thread-safe); the parallel final-distributions loop below sticks to
  // CandidateSpace::Materialize.
  // The naive strategy takes the string path even when fingerprints are
  // on: its interned dispatch ignores probe flags (the engine degrades
  // them to "don't prune"), while the string path can skip settled
  // candidates outright — and interned materialization is
  // content-identical to the space's, so results cannot move.
  db::QueryInterner* interner =
      engine->query_fingerprints() &&
              engine->strategy() != db::EvalStrategy::kNaive
          ? &engine->interner()
          : nullptr;
  std::vector<std::optional<CandidateInterner>> encoders(n);
  auto encoder_for = [&](size_t i) -> CandidateInterner& {
    if (!encoders[i].has_value()) {
      encoders[i].emplace(*spaces[i], *catalog_, *interner);
    }
    return *encoders[i];
  };

  // Verification-aware probe stage (DESIGN.md §17): candidates are probed
  // once (per triple, cached across EM iterations via the outcomes map) as
  // they enter their first batch. On the fingerprint path decided
  // candidates still ship to the engine (flagged, so charges and reports
  // stay bit-identical); on the string path there is no flag transport, so
  // a settled probe skips the batch outright — work-proportional charging,
  // which is only sound when no budget is in play (exhaustion points must
  // not move). In probe_verify mode decisions are recorded and
  // cross-checked but never acted on, so everything evaluates for real.
  const bool string_path_pruning =
      interner == nullptr &&
      (governor == nullptr || governor->limits().unlimited());
  const bool probing =
      options_.probe_pruning && (interner != nullptr || string_path_pruning);
  std::optional<CandidateProber> prober;
  std::vector<rounding::MatchInterval> claim_intervals;
  if (probing) {
    prober.emplace(*db_, *catalog_);
    claim_intervals.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      claim_intervals.push_back(rounding::MatchableInterval(
          claims[i].claimed_value(), options_.rounding_mode,
          options_.rounding_tolerance));
    }
  }
  // Magnitude prunes of aggregates that can evaluate to "undefined" would
  // perturb the partial-claim marking under a limited governor (an
  // undefined real result marks the claim partial; a withheld one must
  // not), so they only run when no budget is in play.
  const bool allow_undef_magnitude =
      governor == nullptr || governor->limits().unlimited();
  // probe_verify cross-check: fingerprint-equivalent candidates (same
  // interned id, any claim, any iteration) must never disagree on results.
  std::unordered_map<db::QueryInterner::Id, std::optional<double>>
      verify_results;

  Priors priors = Priors::Uniform(*catalog_);
  if (options_.trace_priors) result.prior_trace.push_back(priors);
  // scope_num_claims pins the budget to the full document's claim count
  // when ReCheck re-translates a subset (see ModelOptions).
  const size_t scope_claims =
      options_.scope_num_claims > 0 ? options_.scope_num_claims : n;
  const ScopeBudget scope = PickScope(*db_, scope_claims, options_);
  const int max_iters = options_.use_priors ? options_.max_em_iterations : 1;

  for (int iter = 0; iter < max_iters; ++iter) {
    Status injected;
    AGG_FAULT_POINT_STATUS("em.iterate", injected);
    if (!injected.ok()) {
      result.status = injected;
      return result;
    }
    // Deadline/budget check between iterations: a tripped governor ends
    // refinement; whatever was evaluated so far feeds the final
    // distributions and un-evaluated claims become partial.
    if (governor != nullptr && !governor->CheckPoint().ok()) break;
    ++result.em_iterations;

    // E-step part 1: per-claim candidate selection under current priors.
    // Claims are independent here (priors are read-only until the M-step),
    // so the scoring/ranking work fans out per claim.
    run_per_claim(n, [&](size_t i) {
      if (is_pinned(i)) {
        selections[i].clear();  // fixed translation, nothing to explore
        return;
      }
      PriorFactors factors =
          ComputePriorFactors(*spaces[i], priors, *catalog_);
      selections[i] = SelectTop(*spaces[i], factors, options_.use_priors,
                                scope.eval_per_claim);
    });

    // RefineByEval: evaluate all newly selected candidates in one batch so
    // the engine can merge across claims (§6.2). On the fingerprint path
    // candidates are encoded to interned ids instead of materialized.
    std::vector<db::SimpleAggregateQuery> batch;
    std::vector<db::QueryInterner::Id> id_batch;
    std::vector<std::pair<size_t, uint64_t>> batch_owner;
    std::vector<uint8_t> decided_batch;
    std::vector<ProbeDecision> probe_batch;
    for (size_t i = 0; i < n; ++i) {
      for (const ScoredTriple& t : selections[i]) {
        uint64_t key = TripleKey(t.f, t.c, t.s);
        if (outcomes[i].count(key) > 0) continue;
        ProbeDecision d;
        if (probing) {
          Timer probe_timer;
          d = prober->Probe(*spaces[i], t.f, t.c, t.s, claim_intervals[i],
                            allow_undef_magnitude, &result.probe_stats);
          result.probe_stats.probe_seconds += probe_timer.ElapsedSeconds();
        }
        if (interner != nullptr) {
          id_batch.push_back(encoder_for(i).Encode(t.f, t.c, t.s));
          if (probing) {
            decided_batch.push_back(
                d.decided && !options_.probe_verify ? 1 : 0);
            probe_batch.push_back(d);
          }
        } else {
          if (probing && d.decided && !options_.probe_verify) {
            // String path: the settled probe IS the outcome; the candidate
            // never evaluates. Sound by the verify-mode contract (the
            // synthesized outcome equals the real one), and bit-identity
            // still holds because the top-k backfill restores withheld
            // magnitude results before anything is reported.
            EvalOutcome o;
            o.probe_decided = true;
            if (d.no_result) {
              o.probe_no_result = true;
            } else {
              o.result = d.known_result;
              o.matches =
                  o.result.has_value() &&
                  rounding::Matches(*o.result, claims[i].claimed_value(),
                                    options_.rounding_mode,
                                    options_.rounding_tolerance);
            }
            outcomes[i][key] = o;
            continue;
          }
          if (probing) {
            decided_batch.push_back(0);  // string path ships no flags
            probe_batch.push_back(d);
          }
          batch.push_back(spaces[i]->Materialize(t.f, t.c, t.s, *catalog_));
        }
        batch_owner.emplace_back(i, key);
        outcomes[i][key] = EvalOutcome{};  // reserve to avoid dup enqueues
      }
    }
    if (!batch_owner.empty()) {
      result.queries_evaluated += batch_owner.size();
      auto results =
          interner != nullptr
              ? (probing && !options_.probe_verify
                     ? engine->EvaluateInterned(id_batch, decided_batch)
                     : engine->EvaluateInterned(id_batch))
              : engine->EvaluateBatch(batch);
      if (!absorb_engine_failures(engine, [&](size_t b) {
            return batch_owner[std::min(b, batch_owner.size() - 1)].first;
          })) {
        return result;
      }
      const std::vector<uint8_t>& settled = engine->decided_settled();
      for (size_t b = 0; b < batch_owner.size(); ++b) {
        auto [claim_idx, key] = batch_owner[b];
        EvalOutcome& outcome = outcomes[claim_idx][key];
        const ProbeDecision* pd =
            probing && probe_batch[b].decided ? &probe_batch[b] : nullptr;
        if (options_.probe_verify && probing) {
          if (interner != nullptr) {
            // Consistency: fingerprint-equivalent candidates must agree.
            auto [vit, fresh] =
                verify_results.emplace(id_batch[b], results[b]);
            if (!fresh && !SameResult(vit->second, results[b])) {
              ++result.probe_stats.probe_conflicts;
            }
          }
          if (pd != nullptr) {
            // Soundness: the synthesized outcome must agree with the real
            // one — the exact result for the empty-domain family, a
            // non-matching result for the magnitude family.
            bool conflict =
                pd->no_result
                    ? (results[b].has_value() &&
                       rounding::Matches(*results[b],
                                         claims[claim_idx].claimed_value(),
                                         options_.rounding_mode,
                                         options_.rounding_tolerance))
                    : !SameResult(pd->known_result, results[b]);
            if (conflict) ++result.probe_stats.probe_conflicts;
          }
        }
        // The engine's evaluation wins whenever it produced a value (the
        // slice was live anyway, or recovery healed it); the synthesized
        // outcome stands only for settled decided queries whose slice was
        // cleanly skipped. Unsettled decided queries (failed/aborted cube)
        // degrade exactly like an unpruned failure.
        if (pd != nullptr && !options_.probe_verify &&
            !results[b].has_value() && b < settled.size() &&
            settled[b] != 0) {
          outcome.probe_decided = true;
          if (pd->no_result) {
            outcome.probe_no_result = true;
            outcome.result = std::nullopt;
            outcome.matches = false;
          } else {
            outcome.result = pd->known_result;
            outcome.matches =
                outcome.result.has_value() &&
                rounding::Matches(*outcome.result,
                                  claims[claim_idx].claimed_value(),
                                  options_.rounding_mode,
                                  options_.rounding_tolerance);
          }
          continue;
        }
        outcome.result = results[b];
        outcome.matches =
            results[b].has_value() &&
            rounding::Matches(*results[b],
                              claims[claim_idx].claimed_value(),
                              options_.rounding_mode,
                              options_.rounding_tolerance);
      }
    }

    // Stop refining once the budget is spent — the M-step would maximize
    // over aborted (nullopt) evaluations and corrupt the priors.
    if (governor != nullptr && governor->exhausted()) break;

    if (!options_.use_priors) break;

    // M-step: maximum-likelihood query per claim, then re-estimate priors.
    std::vector<db::SimpleAggregateQuery> ml_queries;
    ml_queries.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (is_pinned(i)) {
        ml_queries.push_back(*(*pinned)[i]);
        continue;
      }
      // Quarantined claims sit out the maximization: their unevaluated
      // (nullopt) outcomes would bias the priors toward whatever happened
      // to fail, poisoning every other claim's translation.
      if (result.recovery[i].quarantined) continue;
      const ScoredTriple* best = nullptr;
      double best_post = -1;
      for (const ScoredTriple& t : selections[i]) {
        const EvalOutcome& o = outcomes[i].at(TripleKey(t.f, t.c, t.s));
        double post = t.score;
        if (options_.use_eval_results) {
          post *= o.matches ? options_.pT : (1.0 - options_.pT);
        }
        if (post > best_post) {
          best_post = post;
          best = &t;
        }
      }
      if (best != nullptr) {
        // The interned materialization is content-identical to the space's
        // (same catalog fragments), so the priors see the same queries.
        ml_queries.push_back(
            interner != nullptr
                ? interner->Materialize(
                      encoder_for(i).Encode(best->f, best->c, best->s))
                : spaces[i]->Materialize(best->f, best->c, best->s,
                                         *catalog_));
      }
    }
    Priors next = Priors::FromMlQueries(ml_queries, *catalog_);
    double delta = next.MaxDelta(priors);
    priors = next;
    if (options_.trace_priors) result.prior_trace.push_back(priors);
    if (delta < options_.convergence_tol) break;
  }

  // Graceful degradation: under an exhausted governor, any claim whose
  // selected candidates were not all evaluated to a concrete result is
  // partial. (A nullopt outcome in an exhausted run is indistinguishable
  // from an aborted scan, so the marking is conservative — partial, never
  // erroneous.)
  if (governor != nullptr && governor->exhausted()) {
    for (size_t i = 0; i < n; ++i) {
      if (is_pinned(i)) {
        if (!pinned_outcomes[i].result.has_value()) result.partial[i] = true;
        continue;
      }
      if (selections[i].empty()) {
        result.partial[i] = true;
        continue;
      }
      for (const ScoredTriple& t : selections[i]) {
        auto it = outcomes[i].find(TripleKey(t.f, t.c, t.s));
        // A probe-decided no-result outcome is a *concrete* verdict (matches
        // provably false), not an aborted scan — it never marks partial.
        if (it == outcomes[i].end() || (!it->second.result.has_value() &&
                                        !it->second.probe_no_result)) {
          result.partial[i] = true;
          break;
        }
      }
    }
  }

  // Final distributions from the last selection round. Per-claim and
  // independent; each claim's posterior sum runs in its own fixed
  // selection order, so floating-point results do not depend on threads.
  result.distributions.resize(n);
  run_per_claim(n, [&](size_t i) {
    ClaimDistribution& dist = result.distributions[i];
    dist.total_candidates = spaces[i]->TotalCandidates();
    if (is_pinned(i)) {
      // User-confirmed translation: a point mass.
      RankedCandidate cand;
      cand.query = *(*pinned)[i];
      cand.probability = 1.0;
      cand.result = pinned_outcomes[i].result;
      cand.matches = pinned_outcomes[i].matches;
      dist.ranked.push_back(std::move(cand));
      return;
    }
    PriorFactors factors = ComputePriorFactors(*spaces[i], priors, *catalog_);
    double total = 0;
    for (const ScoredTriple& t : selections[i]) {
      const EvalOutcome& o = outcomes[i].at(TripleKey(t.f, t.c, t.s));
      RankedCandidate cand;
      cand.query = spaces[i]->Materialize(t.f, t.c, t.s, *catalog_);
      cand.keyword_score = spaces[i]->KeywordScore(t.f, t.c, t.s);
      cand.prior = factors.of(t.f, t.c, t.s);
      cand.result = o.result;
      cand.matches = o.matches;
      cand.probe_decided = o.probe_no_result;
      double post = cand.keyword_score;
      if (options_.use_priors) post *= cand.prior;
      if (options_.use_eval_results) {
        post *= o.matches ? options_.pT : (1.0 - options_.pT);
      }
      cand.probability = post;
      total += post;
      dist.ranked.push_back(std::move(cand));
    }
    if (total > 0) {
      for (auto& cand : dist.ranked) cand.probability /= total;
    }
    std::sort(dist.ranked.begin(), dist.ranked.end(),
              [](const RankedCandidate& a, const RankedCandidate& b) {
                return a.probability > b.probability;
              });
  });

  // Top-k backfill (DESIGN.md §17): magnitude-pruned candidates that made
  // it into the reported head of a distribution carry no result; evaluate
  // them for real so reports show actual values. Off-ledger by contract —
  // EvaluateProbeBackfill charges no governor and publishes no new cache
  // entries — so later claims and re-checks see identical state either way.
  if (probing && !options_.probe_verify) {
    std::vector<db::QueryInterner::Id> back_ids;
    std::vector<db::SimpleAggregateQuery> back_queries;  // string path
    std::vector<std::pair<size_t, size_t>> back_owner;  // (claim, rank)
    for (size_t i = 0; i < n; ++i) {
      if (is_pinned(i)) continue;
      ClaimDistribution& dist = result.distributions[i];
      size_t limit = std::min(options_.probe_backfill_top_k,
                              dist.ranked.size());
      for (size_t r = 0; r < limit; ++r) {
        const RankedCandidate& cand = dist.ranked[r];
        if (!cand.probe_decided || cand.result.has_value()) continue;
        if (interner != nullptr) {
          back_ids.push_back(interner->InternQuery(cand.query));
        } else {
          back_queries.push_back(cand.query);
        }
        back_owner.emplace_back(i, r);
      }
    }
    if (!back_owner.empty()) {
      Timer backfill_timer;
      auto back = interner != nullptr
                      ? engine->EvaluateProbeBackfill(back_ids)
                      : engine->EvaluateProbeBackfill(back_queries);
      // The backfill is best-effort cosmetics: failures leave the (already
      // correct) probe verdict in place, and must not leak into this run's
      // recovery/error ledgers.
      (void)engine->ConsumeRecoveryRecords();
      (void)engine->ConsumeFailedQueries();
      (void)engine->ConsumeHardError();
      for (size_t b = 0; b < back.size(); ++b) {
        auto [claim_idx, rank] = back_owner[b];
        RankedCandidate& cand = result.distributions[claim_idx].ranked[rank];
        cand.result = back[b];
        cand.matches =
            back[b].has_value() &&
            rounding::Matches(*back[b], claims[claim_idx].claimed_value(),
                              options_.rounding_mode,
                              options_.rounding_tolerance);
        ++result.probe_stats.backfilled;
      }
      result.probe_stats.probe_seconds += backfill_timer.ElapsedSeconds();
    }
  }

  // A claim counts as recovered only when every one of its failing queries
  // healed; a later quarantine overrides earlier successes.
  for (ClaimRecovery& cr : result.recovery) {
    if (cr.quarantined) cr.recovered = false;
  }
  return result;
}

}  // namespace model
}  // namespace aggchecker
