#pragma once

#include <vector>

#include "db/query.h"
#include "fragments/catalog.h"

namespace aggchecker {
namespace model {

/// \brief Document-specific prior parameters Θ (§5.2).
///
/// One multinomial over aggregation functions, one over aggregation-column
/// fragments, and an independent Bernoulli per predicate column. Function
/// and column priors sum to one; restriction priors do not (a query may
/// restrict several columns).
class Priors {
 public:
  /// Uniform initialization for a catalog's fragment space (line 6 of
  /// Algorithm 3).
  static Priors Uniform(const fragments::FragmentCatalog& catalog);

  double fn_prior(db::AggFn fn) const {
    return fn_[static_cast<size_t>(fn)];
  }
  double agg_col_prior(int fragment_index) const {
    return agg_col_[static_cast<size_t>(fragment_index)];
  }
  double restrict_prior(int column_index) const {
    return restrict_[static_cast<size_t>(column_index)];
  }

  /// Prior probability Pr(Q_c = q), per §5.3: pf(q) * pa(q) * prod of
  /// restriction priors over restricted columns.
  double QueryPrior(const db::SimpleAggregateQuery& query,
                    const fragments::FragmentCatalog& catalog) const;

  /// \brief Maximization step (line 17 of Algorithm 3): re-estimates each
  /// component as the (Laplace-smoothed) fraction of maximum-likelihood
  /// queries with the corresponding property.
  static Priors FromMlQueries(
      const std::vector<db::SimpleAggregateQuery>& ml_queries,
      const fragments::FragmentCatalog& catalog, double smoothing = 0.5);

  /// Largest absolute component change versus `other` (convergence test).
  double MaxDelta(const Priors& other) const;

  size_t num_agg_col_components() const { return agg_col_.size(); }
  size_t num_restrict_components() const { return restrict_.size(); }

 private:
  std::vector<double> fn_;        // per AggFn
  std::vector<double> agg_col_;   // per agg-column fragment
  std::vector<double> restrict_;  // per predicate column
};

}  // namespace model
}  // namespace aggchecker
