#include "corpus/harness.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>

#include "db/relation_cache.h"
#include "util/timer.h"

namespace aggchecker {
namespace corpus {

CorpusRunResult RunOnCorpus(const std::vector<CorpusCase>& corpus,
                            core::CheckOptions options) {
  return RunOnCorpus(corpus, std::move(options), SnapshotRunOptions{},
                     nullptr);
}

Status AppendSyntheticRows(db::Database* db, const std::string& table,
                           size_t num_rows) {
  const db::Table* target = db->FindTable(table);
  if (target == nullptr) {
    return Status::NotFound("AppendSyntheticRows: no table " + table);
  }
  const size_t old_rows = target->num_rows();
  std::vector<std::vector<db::Value>> rows;
  rows.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<db::Value> row;
    row.reserve(target->num_columns());
    for (size_t c = 0; c < target->num_columns(); ++c) {
      const db::Column& col = target->column(c);
      if (old_rows == 0) {
        switch (col.type()) {
          case db::ValueType::kLong:
            row.push_back(db::Value(static_cast<int64_t>(r)));
            break;
          case db::ValueType::kDouble:
            row.push_back(db::Value(static_cast<double>(r)));
            break;
          default:
            row.push_back(db::Value("row" + std::to_string(r)));
            break;
        }
        continue;
      }
      const db::Value& src = col.values()[r % old_rows];
      if (src.is_null()) {
        row.push_back(db::Value::Null());
      } else if (src.type() == db::ValueType::kLong) {
        row.push_back(db::Value(src.AsLong() + 1));
      } else if (src.type() == db::ValueType::kDouble) {
        row.push_back(db::Value(src.AsDoubleExact() + 0.5));
      } else {
        row.push_back(src);
      }
    }
    rows.push_back(std::move(row));
  }
  return db->AppendRows(table, std::move(rows));
}

std::string SnapshotPathForCase(const std::string& dir,
                                const std::string& case_name) {
  std::string safe;
  safe.reserve(case_name.size());
  for (char c : case_name) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ||
                           c == '-' || c == '_'
                       ? c
                       : '_');
  }
  return dir + "/" + safe + ".snap";
}

CorpusRunResult RunOnCorpus(const std::vector<CorpusCase>& corpus,
                            core::CheckOptions options,
                            const SnapshotRunOptions& snapshot,
                            SnapshotRunStats* snapshot_stats) {
  options.report_top_k = std::max<size_t>(options.report_top_k, 20);
  CorpusRunResult result;
  for (const CorpusCase& test_case : corpus) {
    // Cold start per configuration: relations cached by a previous run over
    // the same corpus database must not bleed into this run's timings.
    test_case.database.relation_cache().Clear();

    // Snapshot load path: the case's database and catalog come out of the
    // mapped image; an unusable snapshot degrades to a rebuild with a
    // warning (snapshots are a cache, never a source of truth).
    std::optional<snapshot::LoadedSnapshot> loaded;
    const db::Database* database = &test_case.database;
    core::CheckOptions case_options = options;
    if (snapshot.load) {
      std::string path = SnapshotPathForCase(snapshot.dir, test_case.name);
      auto l = snapshot::LoadSnapshot(path);
      if (l.ok()) {
        loaded = std::move(*l);
        database = &loaded->database;
        case_options.prebuilt_catalog = loaded->catalog;
        if (snapshot_stats != nullptr) ++snapshot_stats->cases_loaded;
      } else {
        std::fprintf(stderr,
                     "warning: snapshot %s unusable (%s); rebuilding\n",
                     path.c_str(), l.status().message().c_str());
        if (snapshot_stats != nullptr) ++snapshot_stats->cases_rebuilt;
      }
    }

    auto checker = core::AggChecker::Create(database, case_options);
    if (!checker.ok()) continue;
    if (loaded.has_value() && loaded->has_interner()) {
      Status seeded = loaded->SeedInterner(&checker->engine().interner());
      if (!seeded.ok()) {
        // A diverged replay leaves the engine unseeded-but-correct: extra
        // interned components never change verdicts, only id pre-warming.
        std::fprintf(stderr, "warning: %s\n", seeded.message().c_str());
      }
    }
    Timer timer;
    auto report = checker->Check(test_case.document);
    if (!report.ok()) continue;
    if (snapshot.save) {
      snapshot::SnapshotStats write_stats;
      Status saved = snapshot::WriteSnapshot(
          SnapshotPathForCase(snapshot.dir, test_case.name),
          checker->database(), &checker->catalog(),
          &checker->engine().interner(), &write_stats);
      if (!saved.ok()) {
        std::fprintf(stderr, "warning: snapshot save failed: %s\n",
                     saved.message().c_str());
      } else if (snapshot_stats != nullptr) {
        ++snapshot_stats->cases_saved;
        snapshot_stats->snapshot_bytes += write_stats.file_bytes;
      }
    }
    result.total_seconds += timer.ElapsedSeconds();
    result.query_seconds += report->eval_stats.query_seconds;
    result.queries_evaluated += report->queries_evaluated;
    result.cube_queries += report->eval_stats.cube_queries;
    result.cache_hits += report->eval_stats.cache_hits;
    result.joins_built += report->eval_stats.joins_built;
    result.join_cache_hits += report->eval_stats.join_cache_hits;
    result.join_seconds += report->eval_stats.join_seconds;
    result.plan_seconds += report->eval_stats.plan_seconds;
    result.execute_seconds += report->eval_stats.execute_seconds;
    result.fold_seconds += report->eval_stats.fold_seconds;
    result.answer_seconds += report->eval_stats.answer_seconds;
    result.plans_built += report->eval_stats.plans_built;
    result.plan_cache_hits += report->eval_stats.plan_cache_hits;
    result.num_partial += report->NumPartial();
    result.cases_exhausted += report->governor_usage.exhausted ? 1 : 0;
    result.recovery_retries += report->eval_stats.recovery_retries;
    result.ladder_descents += report->eval_stats.ladder_descents;
    result.queries_recovered += report->eval_stats.queries_recovered;
    result.queries_quarantined += report->eval_stats.queries_quarantined;
    result.claims_recovered += report->NumRecovered();
    result.claims_quarantined += report->NumQuarantined();
    result.watchdog_flags += report->eval_stats.watchdog_flags;
    result.probe_stats.Add(report->probe_stats);
    result.probe_slices_skipped += report->eval_stats.probe_slices_skipped;
    result.detection.Merge(ScoreErrorDetection(test_case, *report));
    result.coverage.Merge(ScoreCoverage(test_case, *report, 20));
    result.reports.push_back(std::move(*report));
  }
  return result;
}

std::vector<core::FleetDocument> FleetDocuments(const FleetCorpus& corpus) {
  std::vector<core::FleetDocument> documents;
  documents.reserve(corpus.articles.size());
  for (const FleetArticle& article : corpus.articles) {
    core::FleetDocument doc;
    doc.name = article.name;
    doc.database = corpus.datasets[article.dataset].get();
    doc.document = &article.document;
    doc.num_claims_hint = article.ground_truth.size();
    documents.push_back(std::move(doc));
  }
  return documents;
}

FleetHarnessResult RunOnFleet(const FleetCorpus& corpus,
                              const core::FleetOptions& options) {
  FleetHarnessResult result;
  result.run = core::RunFleet(FleetDocuments(corpus), options);
  for (const core::FleetDocumentResult& doc : result.run.documents) {
    if (!doc.status.ok()) continue;  // failed documents carry no verdicts
    const FleetArticle& article = corpus.articles[doc.index];
    if (doc.report.verdicts.size() != article.ground_truth.size()) {
      ++result.documents_misaligned;
    }
    ErrorDetectionMetrics m;
    size_t n = std::min(doc.report.verdicts.size(),
                        article.ground_truth.size());
    m.total_claims = n;
    for (size_t i = 0; i < n; ++i) {
      bool flagged = doc.report.verdicts[i].likely_erroneous;
      bool erroneous = article.ground_truth[i].is_erroneous;
      if (flagged && erroneous) ++m.true_positives;
      if (flagged && !erroneous) ++m.false_positives;
      if (!flagged && erroneous) ++m.false_negatives;
    }
    result.detection.Merge(m);
  }
  return result;
}

}  // namespace corpus
}  // namespace aggchecker
