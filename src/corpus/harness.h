#pragma once

#include <string>
#include <vector>

#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/corpus_case.h"
#include "corpus/fleet_generator.h"
#include "corpus/metrics.h"
#include "snapshot/snapshot.h"

namespace aggchecker {
namespace corpus {

/// \brief Aggregated outcome of checking the whole corpus with one
/// configuration — the unit of work behind most benchmark tables.
struct CorpusRunResult {
  std::vector<core::CheckReport> reports;  ///< one per case, corpus order
  ErrorDetectionMetrics detection;
  CoverageMetrics coverage;
  double total_seconds = 0;   ///< wall time of all Check calls
  double query_seconds = 0;   ///< backend query time (EvalStats)
  size_t queries_evaluated = 0;
  size_t cube_queries = 0;
  size_t cache_hits = 0;
  size_t joins_built = 0;      ///< join materializations (EvalStats)
  size_t join_cache_hits = 0;  ///< joins served by the RelationCache
  double join_seconds = 0;     ///< wall time spent materializing joins
  /// Per-phase backend breakdown summed over cases (EvalStats).
  double plan_seconds = 0;
  double execute_seconds = 0;
  double fold_seconds = 0;
  double answer_seconds = 0;
  /// Plan-cache counters (fingerprint path; zero on the string path).
  size_t plans_built = 0;
  size_t plan_cache_hits = 0;
  size_t num_partial = 0;      ///< claims cut short by the resource governor
  size_t cases_exhausted = 0;  ///< cases whose governor tripped a limit
  /// Self-healing counters summed over cases (EvalStats / CheckReport;
  /// DESIGN.md §13). All zero on a fault-free corpus run.
  size_t recovery_retries = 0;     ///< same-rung retries after transients
  size_t ladder_descents = 0;      ///< fallback-ladder rungs engaged
  size_t queries_recovered = 0;    ///< hard-failed queries healed
  size_t queries_quarantined = 0;  ///< queries surrendered on every rung
  size_t claims_recovered = 0;     ///< claims fully healed by recovery
  size_t claims_quarantined = 0;   ///< claims degraded to quarantined partials
  size_t watchdog_flags = 0;       ///< stalled-job flags (wall-clock based)
  /// Verification-aware probe counters summed over cases (DESIGN.md §17;
  /// all zero with probe_pruning off or on the string/naive paths).
  model::ProbeStats probe_stats;
  /// Cube slices whose aggregation kernels were skipped because every
  /// reading query was probe-decided (EvalStats).
  size_t probe_slices_skipped = 0;

  CorpusRunResult() : coverage(20) {}
};

/// Runs the AggChecker with `options` on every case and aggregates metrics.
/// `options.report_top_k` is forced to at least 20 so top-k coverage up to
/// k=20 is measurable.
CorpusRunResult RunOnCorpus(const std::vector<CorpusCase>& corpus,
                            core::CheckOptions options);

/// \brief Deterministic ingestion driver for the incremental-recheck tests
/// and bench (DESIGN.md §16): synthesizes `num_rows` new rows for `table`
/// by cycling its existing cells — numeric cells nudged (+1 / +0.5) so
/// aggregates actually move — and appends them via Database::AppendRows,
/// bumping the table's data version. An empty table gets type-default rows.
Status AppendSyntheticRows(db::Database* db, const std::string& table,
                           size_t num_rows);

/// \brief Snapshot persistence wiring for corpus runs — the library side of
/// the bench binaries' `--snapshot=<dir>` flag (DESIGN.md §15).
struct SnapshotRunOptions {
  std::string dir;    ///< directory holding one `<case>.snap` per case
  bool save = false;  ///< write each case's built state after checking it
  bool load = false;  ///< start each case from its snapshot when usable
};

/// \brief What the snapshot wiring actually did during a run.
struct SnapshotRunStats {
  size_t cases_loaded = 0;    ///< cases started from a usable snapshot
  size_t cases_rebuilt = 0;   ///< load requested but fell back to a rebuild
  size_t cases_saved = 0;     ///< snapshots written
  uint64_t snapshot_bytes = 0;  ///< total bytes of snapshots written
};

/// The `.snap` path for one case (name sanitized for the filesystem).
std::string SnapshotPathForCase(const std::string& dir,
                                const std::string& case_name);

/// RunOnCorpus with snapshot persistence: with `snapshot.load`, each case
/// starts from its mapped snapshot — database, catalog, and interned query
/// space — and any unusable snapshot (missing, corrupt, version-mismatched)
/// degrades to a full rebuild with a warning on stderr, never an error.
/// Reports are bit-identical either way (the snapshot differential tests
/// enumerate this). With `snapshot.save`, each case's fully built state is
/// written after its Check completes (so the interner is warm).
CorpusRunResult RunOnCorpus(const std::vector<CorpusCase>& corpus,
                            core::CheckOptions options,
                            const SnapshotRunOptions& snapshot,
                            SnapshotRunStats* snapshot_stats = nullptr);

/// \brief Fleet-mode outcome: the scheduler's run plus accuracy scored
/// against the generator's by-construction ground truth.
struct FleetHarnessResult {
  core::FleetRunResult run;
  /// Detection scored by position against each article's ground truth
  /// (the fleet generator emits one claim per sentence in detection order,
  /// the same alignment contract the article-scale corpus upholds).
  ErrorDetectionMetrics detection;
  /// Documents whose verdict count did not match their ground-truth claim
  /// count — an alignment bug, not a detection miss. Zero on a healthy run.
  size_t documents_misaligned = 0;
};

/// Adapts a generated fleet to scheduler work items. The returned documents
/// borrow the corpus' datasets and article documents; the corpus must
/// outlive any run over them. `num_claims_hint` is the ground-truth claim
/// count (the exact benefit term).
std::vector<core::FleetDocument> FleetDocuments(const FleetCorpus& corpus);

/// \brief Fleet mode: drains the whole corpus through the cross-document
/// scheduler and scores verdicts against ground truth.
///
/// Unlike RunOnCorpus, relation caches are NOT cleared between documents —
/// cache warmth carried across documents sharing a dataset is exactly what
/// the scheduler's priority function exploits, and reports are bit-identical
/// warm or cold (the PR4 invariant).
FleetHarnessResult RunOnFleet(const FleetCorpus& corpus,
                              const core::FleetOptions& options);

}  // namespace corpus
}  // namespace aggchecker
