#pragma once

#include <string>

#include "util/rng.h"

namespace aggchecker {
namespace corpus {
namespace claim_text {

/// \brief A value rendered the way a journalist writes numbers: rounded to
/// significant digits, spelled out for small integers, "N million" above a
/// million — plus the exact value that surface form parses back to.
///
/// Shared by the article-scale generator (generator.cc) and the fleet-scale
/// generator (fleet_generator.cc) so both emit claims with identical number
/// semantics: the claim detector parses `text` back to exactly
/// `claimed_value`, and the erroneous flag of a generated claim is always
/// recomputed from `claimed_value` under the checker's own rounding.
struct Rendered {
  std::string text;      ///< surface form used in the sentence
  double claimed_value;  ///< the value the surface form parses to
};

/// Renders `v` as prose (rounded, occasionally spelled out for 1..12).
Rendered RenderValue(double v, Rng* rng);

/// True if rendering `v` yields a year-like four-digit literal the claim
/// detector would skip (generators must avoid such truths and corruptions).
bool RendersAsYear(double v);

/// Produces a corrupted value that does not round from `truth` (and does
/// not render as a year) — the error-injection primitive whose output keeps
/// ground-truth verdicts known by construction.
double Corrupt(double truth, Rng* rng);

}  // namespace claim_text
}  // namespace corpus
}  // namespace aggchecker
