#include "corpus/claim_text.h"

#include <cmath>
#include <cstdlib>

#include "util/rounding.h"
#include "util/strings.h"

namespace aggchecker {
namespace corpus {
namespace claim_text {

namespace {

const char* kSmallWords[] = {"zero", "one", "two",   "three", "four",
                             "five", "six", "seven", "eight", "nine",
                             "ten",  "eleven", "twelve"};

}  // namespace

Rendered RenderValue(double v, Rng* rng) {
  Rendered r;
  if (v >= 1e6) {
    double millions = rounding::RoundToSignificant(v / 1e6, 3);
    r.text = strings::Format("%g million", millions);
    r.claimed_value = millions * 1e6;
    return r;
  }
  if (v >= 10000) {
    double rounded = rounding::RoundToSignificant(v, 3);
    r.text = strings::Format("%.0f", rounded);
    r.claimed_value = rounded;
    return r;
  }
  bool integral = std::fabs(v - std::round(v)) < 1e-9;
  if (integral) {
    auto iv = static_cast<long long>(std::llround(v));
    if (iv >= 1 && iv <= 12 && rng->NextBool(0.35)) {
      r.text = kSmallWords[iv];
    } else {
      r.text = std::to_string(iv);
    }
    r.claimed_value = static_cast<double>(iv);
    return r;
  }
  double rounded = rounding::RoundToSignificant(v, 3);
  r.text = strings::Format("%g", rounded);
  r.claimed_value = std::strtod(r.text.c_str(), nullptr);
  return r;
}

bool RendersAsYear(double v) {
  return v >= 1900 && v <= 2099 && std::fabs(v - std::round(v)) < 1e-9;
}

double Corrupt(double truth, Rng* rng) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    double wrong;
    if (std::fabs(truth - std::round(truth)) < 1e-9 && truth < 1000) {
      int64_t delta = rng->NextInt(1, std::max<int64_t>(
                                          2, static_cast<int64_t>(truth / 3)));
      wrong = truth + (rng->NextBool(0.5) ? delta : -delta);
      if (wrong < 1) wrong = truth + delta;
    } else {
      double factor = rng->NextBool(0.5) ? rng->NextDouble() * 0.22 + 0.7
                                         : rng->NextDouble() * 0.3 + 1.12;
      wrong = truth * factor;
    }
    if (!rounding::RoundsTo(truth, wrong) && !RendersAsYear(wrong)) {
      return wrong;
    }
  }
  return truth * 2 + 7;
}

}  // namespace claim_text
}  // namespace corpus
}  // namespace aggchecker
