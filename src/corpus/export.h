#pragma once

#include <string>
#include <vector>

#include "corpus/corpus_case.h"
#include "util/status.h"

namespace aggchecker {
namespace corpus {

/// \brief On-disk publication of test cases (the paper: "All test cases
/// will be made available online").
///
/// Each case becomes a directory:
///   <dir>/<case-name>/article.html       — HTML-lite document
///   <dir>/<case-name>/<table>.csv        — one CSV per table
///   <dir>/<case-name>/ground_truth.csv   — claimed/true values + queries
///                                          (canonical-key serialization)
Status ExportCase(const CorpusCase& test_case, const std::string& dir);

/// Exports every case; returns the first error.
Status ExportCorpus(const std::vector<CorpusCase>& corpus,
                    const std::string& dir);

/// Serializes a document back to the HTML-lite format ParseDocument reads.
std::string DocumentToHtml(const text::TextDocument& doc);

/// Serializes a table to CSV text (inverse of Table::FromCsv).
std::string TableToCsv(const db::Table& table);

/// \brief Loads an exported case directory back into a CorpusCase.
///
/// The loaded case checks identically to the original: documents, tables,
/// and ground truth all round-trip (foreign keys are not exported; the
/// corpus cases are single- or star-schema and the paper's published data
/// sets were flat CSV files too).
Result<CorpusCase> ImportCase(const std::string& case_dir);

}  // namespace corpus
}  // namespace aggchecker
