#pragma once

#include <vector>

#include "corpus/corpus_case.h"
#include "corpus/generator.h"

namespace aggchecker {
namespace corpus {

/// \brief The full 53-case corpus: 3 embedded articles plus 50 generated
/// cases (deterministic in the seed). Mirrors §B's test-case collection.
std::vector<CorpusCase> FullCorpus(uint64_t seed = 42);

/// Indices (into FullCorpus) of the six user-study articles (§7.2): two
/// long articles with more than 15 claims and four shorter ones.
std::vector<size_t> StudyArticleIndices(const std::vector<CorpusCase>& corpus);

/// \brief Aggregate corpus statistics backing Figure 9 and §B.
struct CorpusStatistics {
  size_t num_cases = 0;
  size_t num_claims = 0;
  size_t num_erroneous = 0;
  size_t cases_with_errors = 0;
  /// Claims per case, in corpus order (Figure 9(a)).
  std::vector<size_t> claims_per_case;
  std::vector<size_t> errors_per_case;
  /// Fraction of claim queries with 0/1/2 predicates (Figure 9(c)).
  double zero_pred_share = 0, one_pred_share = 0, two_pred_share = 0;
  /// Average per-document coverage when keeping only the N most frequent
  /// instances of each query characteristic (Figure 9(b)), N = 1..max_n.
  std::vector<double> topn_function_coverage;
  std::vector<double> topn_column_coverage;
  std::vector<double> topn_predicate_coverage;

  /// §7.3's prose-difficulty statistics: share of claims that share a
  /// sentence with another claim (paper: 29%) and share of claim sentences
  /// with no explicit aggregation-function cue word (paper: 30%).
  double multi_claim_sentence_share = 0;
  double implicit_function_share = 0;
};

CorpusStatistics ComputeStatistics(const std::vector<CorpusCase>& corpus,
                                   size_t max_n = 20);

}  // namespace corpus
}  // namespace aggchecker
