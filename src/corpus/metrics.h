#pragma once

#include <vector>

#include "core/aggchecker.h"
#include "corpus/corpus_case.h"
#include "util/status.h"

namespace aggchecker {
namespace corpus {

/// \brief Classification counters for erroneous-claim detection
/// (Definitions 4 and 5: precision and recall over flagged claims).
struct ErrorDetectionMetrics {
  size_t true_positives = 0;   ///< flagged and truly erroneous
  size_t false_positives = 0;  ///< flagged but correct
  size_t false_negatives = 0;  ///< erroneous but not flagged
  size_t total_claims = 0;

  double Precision() const {
    size_t flagged = true_positives + false_positives;
    return flagged == 0 ? 0.0
                        : static_cast<double>(true_positives) / flagged;
  }
  double Recall() const {
    size_t erroneous = true_positives + false_negatives;
    return erroneous == 0 ? 1.0
                          : static_cast<double>(true_positives) / erroneous;
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
  }

  void Merge(const ErrorDetectionMetrics& other);
};

/// \brief Top-k coverage counters (Definition 6), split by claim
/// correctness as in Figure 10.
struct CoverageMetrics {
  /// hits[k-1] = number of claims whose ground-truth query is within the
  /// top-k candidates; tracked up to max_k.
  std::vector<size_t> hits;
  std::vector<size_t> hits_correct;    ///< over correct claims only
  std::vector<size_t> hits_incorrect;  ///< over erroneous claims only
  size_t total = 0;
  size_t total_correct = 0;
  size_t total_incorrect = 0;

  explicit CoverageMetrics(size_t max_k = 20)
      : hits(max_k, 0), hits_correct(max_k, 0), hits_incorrect(max_k, 0) {}

  double TopK(size_t k) const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(hits[k - 1]) / total;
  }
  double TopKCorrect(size_t k) const {
    return total_correct == 0 ? 0.0
                              : 100.0 * hits_correct[k - 1] / double(
                                            total_correct);
  }
  double TopKIncorrect(size_t k) const {
    return total_incorrect == 0 ? 0.0
                                : 100.0 * hits_incorrect[k - 1] / double(
                                              total_incorrect);
  }

  void Merge(const CoverageMetrics& other);
};

/// \brief Checks that the verdicts (in detection order) line up with the
/// case's ground truth: same count and same claimed values. The corpus
/// generator guarantees this; the tests assert it for every case.
Status ValidateAlignment(const CorpusCase& test_case,
                         const core::CheckReport& report);

/// Scores error detection of a report against ground truth. Claims are
/// matched by position (after ValidateAlignment).
ErrorDetectionMetrics ScoreErrorDetection(const CorpusCase& test_case,
                                          const core::CheckReport& report);

/// True when `candidate` is the ground-truth translation or a count-family
/// equivalent of it (same predicates, same relation, same value).
bool QueriesEquivalent(const GroundTruthClaim& truth,
                       const model::RankedCandidate& candidate);

/// Rank of the ground-truth query among a verdict's candidates (1-based),
/// or 0 if absent from the reported top list.
size_t GroundTruthRank(const GroundTruthClaim& truth,
                       const core::ClaimVerdict& verdict);

/// Accumulates top-k coverage for one case.
CoverageMetrics ScoreCoverage(const CorpusCase& test_case,
                              const core::CheckReport& report,
                              size_t max_k = 20);

}  // namespace corpus
}  // namespace aggchecker
