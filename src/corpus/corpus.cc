#include "corpus/corpus.h"

#include <algorithm>
#include <map>
#include <set>

#include "claims/claim_detector.h"
#include "corpus/embedded_articles.h"
#include "db/aggregate.h"
#include "ir/porter_stemmer.h"

namespace aggchecker {
namespace corpus {

std::vector<CorpusCase> FullCorpus(uint64_t seed) {
  std::vector<CorpusCase> corpus = EmbeddedArticles();
  GeneratorOptions options;
  options.seed = seed;
  options.num_cases = 50;
  for (auto& c : GenerateCorpus(options)) corpus.push_back(std::move(c));
  return corpus;
}

std::vector<size_t> StudyArticleIndices(
    const std::vector<CorpusCase>& corpus) {
  // Two long articles (>15 claims) and four short ones (5-10 claims),
  // mirroring §7.2's selection. Deterministic: first matching cases win.
  std::vector<size_t> longs, shorts;
  for (size_t i = 0; i < corpus.size(); ++i) {
    size_t n = corpus[i].ground_truth.size();
    if (n > 15 && longs.size() < 2) longs.push_back(i);
    if (n >= 5 && n <= 10 && shorts.size() < 4) shorts.push_back(i);
  }
  std::vector<size_t> picks = longs;
  picks.insert(picks.end(), shorts.begin(), shorts.end());
  return picks;
}

CorpusStatistics ComputeStatistics(const std::vector<CorpusCase>& corpus,
                                   size_t max_n) {
  CorpusStatistics stats;
  stats.num_cases = corpus.size();
  size_t zero = 0, one = 0, two = 0;
  stats.topn_function_coverage.assign(max_n, 0);
  stats.topn_column_coverage.assign(max_n, 0);
  stats.topn_predicate_coverage.assign(max_n, 0);

  for (const CorpusCase& c : corpus) {
    stats.claims_per_case.push_back(c.ground_truth.size());
    stats.errors_per_case.push_back(c.NumErroneous());
    stats.num_claims += c.ground_truth.size();
    stats.num_erroneous += c.NumErroneous();
    if (c.NumErroneous() > 0) ++stats.cases_with_errors;

    // Predicate-count mix and per-document characteristic frequencies.
    std::map<std::string, size_t> fn_freq, col_freq, predset_freq;
    for (const auto& g : c.ground_truth) {
      switch (g.query.predicates.size()) {
        case 0:
          ++zero;
          break;
        case 1:
          ++one;
          break;
        default:
          ++two;
          break;
      }
      ++fn_freq[db::AggFnName(g.query.fn)];
      ++col_freq[g.query.agg_column.ToString()];
      std::set<std::string> cols;
      for (const auto& p : g.query.predicates) {
        cols.insert(p.column.ToString());
      }
      std::string key;
      for (const auto& col : cols) key += col + ";";
      ++predset_freq[key];
    }

    // Coverage when keeping the N most frequent instances per document.
    auto coverage = [&](const std::map<std::string, size_t>& freq,
                        std::vector<double>* out) {
      std::vector<size_t> counts;
      for (const auto& [key, count] : freq) counts.push_back(count);
      std::sort(counts.rbegin(), counts.rend());
      size_t total = 0;
      for (size_t count : counts) total += count;
      if (total == 0) return;
      size_t covered = 0;
      for (size_t n = 0; n < max_n; ++n) {
        if (n < counts.size()) covered += counts[n];
        (*out)[n] += 100.0 * static_cast<double>(covered) / total;
      }
    };
    coverage(fn_freq, &stats.topn_function_coverage);
    coverage(col_freq, &stats.topn_column_coverage);
    coverage(predset_freq, &stats.topn_predicate_coverage);
  }

  // §7.3 statistics over the detected claims' sentences.
  size_t multi_claim = 0, implicit_fn = 0, detected_total = 0;
  // Strict cue list: words that *explicitly* name an aggregation function
  // (the retrieval keywords include softer hints like "there were", which
  // do not count as explicit for this statistic).
  std::set<std::string> fn_cues;
  for (const char* cue :
       {"count", "counted", "number", "total", "totaled", "sum",
        "combined", "average", "mean", "percent", "percentage", "share",
        "fraction", "proportion", "highest", "maximum", "lowest",
        "minimum", "distinct", "different", "probability", "chance"}) {
    fn_cues.insert(ir::PorterStem(cue));
  }
  claims::ClaimDetector detector;
  for (const CorpusCase& c : corpus) {
    auto detected = detector.Detect(c.document);
    std::map<int, size_t> per_sentence;
    for (const auto& claim : detected) ++per_sentence[claim.sentence];
    for (const auto& claim : detected) {
      ++detected_total;
      if (per_sentence[claim.sentence] > 1) ++multi_claim;
      bool has_cue = false;
      for (const ir::Token& token :
           c.document.sentence(claim.sentence).tokens) {
        if (fn_cues.count(ir::PorterStem(token.text)) > 0) {
          has_cue = true;
          break;
        }
      }
      if (!has_cue) ++implicit_fn;
    }
  }
  if (detected_total > 0) {
    stats.multi_claim_sentence_share = 100.0 * multi_claim / detected_total;
    stats.implicit_function_share = 100.0 * implicit_fn / detected_total;
  }

  size_t total_preds = zero + one + two;
  if (total_preds > 0) {
    stats.zero_pred_share = 100.0 * zero / total_preds;
    stats.one_pred_share = 100.0 * one / total_preds;
    stats.two_pred_share = 100.0 * two / total_preds;
  }
  if (!corpus.empty()) {
    for (size_t n = 0; n < max_n; ++n) {
      stats.topn_function_coverage[n] /= corpus.size();
      stats.topn_column_coverage[n] /= corpus.size();
      stats.topn_predicate_coverage[n] /= corpus.size();
    }
  }
  return stats;
}

}  // namespace corpus
}  // namespace aggchecker
