#pragma once

#include <cstdint>
#include <vector>

#include "corpus/corpus_case.h"

namespace aggchecker {
namespace corpus {

/// \brief Parameters of the synthetic corpus (§B's collection methodology,
/// reproduced as a generator — see DESIGN.md §1 for the substitution).
struct GeneratorOptions {
  size_t num_cases = 50;
  uint64_t seed = 42;

  /// Probability that a case contains erroneous claims at all (the paper
  /// finds 17 of 53 cases with at least one error) and the per-claim error
  /// probability inside such cases (overall ~12% of claims erroneous).
  double error_case_rate = 0.35;
  double error_claim_rate = 0.30;

  /// Probability of merging two consecutive claims into one sentence (the
  /// paper reports 29% of claims share a sentence).
  double multi_claim_rate = 0.25;

  /// Theme concentration: probability that a claim's predicate goes on the
  /// document's focus column (drives the Figure 9(b) concentration).
  double focus_probability = 0.75;

  /// Probability that a single-predicate claim states its value only in
  /// the surrounding context (previous sentence + headline) instead of the
  /// claim sentence itself — the pattern that makes Algorithm 2's keyword
  /// context matter (Example 3).
  double context_dependent_rate = 0.3;

  /// Predicate-count mix (Figure 9(c)): zero/one/two predicates. The
  /// rolled rates sit below the paper's 17/61/23 because some aggregation
  /// functions (CountDistinct, Min, Max) force zero predicates in our
  /// templates and empty-result retries skew the realized mix.
  double zero_pred_rate = 0.04;
  double one_pred_rate = 0.70;  // remainder is two predicates

  /// Multiplies per-case row counts. The default corpus stays laptop-fast;
  /// the Table 6 backend benchmark uses a scaled corpus (the paper's data
  /// sets reach ~100 MB) so scan costs, not constant overheads, dominate.
  size_t row_scale = 1;
};

/// \brief Generates `options.num_cases` article/data-set pairs across five
/// domains (sports, politics, developer survey, retail, music) with exact
/// ground truth. Deterministic in the seed.
std::vector<CorpusCase> GenerateCorpus(const GeneratorOptions& options = {});

/// Generates a single case (exposed for tests and examples).
CorpusCase GenerateCase(size_t case_index, const GeneratorOptions& options);

}  // namespace corpus
}  // namespace aggchecker
