#pragma once

#include <string>
#include <vector>

#include "db/database.h"
#include "db/query.h"
#include "text/document.h"

namespace aggchecker {
namespace corpus {

/// \brief Hand-constructed ground truth for one claim (§B: "we constructed
/// corresponding SQL queries by hand").
struct GroundTruthClaim {
  /// The value as written in the text (possibly wrong).
  double claimed_value = 0;
  /// The matching (ground-truth) query.
  db::SimpleAggregateQuery query;
  /// The query's actual result on the data set.
  double true_value = 0;
  /// True when the claimed value does not round from the true value — an
  /// erroneous claim the checker should flag.
  bool is_erroneous = false;
};

/// \brief One test case: an article, its data set, and per-claim ground
/// truth, ordered exactly as the ClaimDetector reports claims.
struct CorpusCase {
  std::string name;
  std::string source;  ///< "538", "NYT", "StackOverflow", "Wikipedia", "Vox"
  db::Database database;
  text::TextDocument document;
  std::vector<GroundTruthClaim> ground_truth;

  size_t NumErroneous() const {
    size_t n = 0;
    for (const auto& g : ground_truth) n += g.is_erroneous ? 1 : 0;
    return n;
  }
};

}  // namespace corpus
}  // namespace aggchecker
