#include "corpus/embedded_articles.h"

#include "db/executor.h"

namespace aggchecker {
namespace corpus {

namespace {

db::Value S(const char* s) { return db::Value(std::string(s)); }
db::Value L(int64_t v) { return db::Value(v); }
db::Value D(double v) { return db::Value(v); }

/// Fills in true_value / is_erroneous by executing the ground-truth query.
void FinishGroundTruth(CorpusCase* c) {
  db::QueryExecutor exec(&c->database);
  for (GroundTruthClaim& g : c->ground_truth) {
    auto r = exec.Execute(g.query);
    g.true_value = (r.ok() && r->has_value()) ? **r : 0.0;
  }
}

GroundTruthClaim Truth(double claimed, db::SimpleAggregateQuery query,
                       bool erroneous = false) {
  GroundTruthClaim g;
  g.claimed_value = claimed;
  g.query = std::move(query);
  g.is_erroneous = erroneous;
  return g;
}

db::SimpleAggregateQuery Query(db::AggFn fn, db::ColumnRef agg,
                               std::vector<db::Predicate> preds = {}) {
  db::SimpleAggregateQuery q;
  q.fn = fn;
  q.agg_column = std::move(agg);
  q.predicates = std::move(preds);
  return q;
}

}  // namespace

CorpusCase MakeNflCase() {
  CorpusCase c;
  c.name = "nfl-suspensions";
  c.source = "538";

  db::Table t("nflsuspensions");
  (void)t.AddColumn("Name", db::ValueType::kString);
  (void)t.AddColumn("Team", db::ValueType::kString);
  (void)t.AddColumn("Games", db::ValueType::kString);
  (void)t.AddColumn("Category", db::ValueType::kString);
  (void)t.AddColumn("Year", db::ValueType::kLong);
  (void)t.AddColumn("Fine", db::ValueType::kDouble);
  struct Row {
    const char *name, *team, *games, *category;
    int64_t year;
    double fine;
  };
  const Row rows[] = {
      {"A. Adams", "OAK", "indef", "substance abuse repeated offense", 2013,
       60000},
      {"B. Brown", "MIA", "indef", "substance abuse repeated offense", 2014,
       55000},
      {"C. Clark", "OAK", "indef", "substance abuse repeated offense", 2015,
       65000},
      {"D. Davis", "DET", "indef", "gambling", 2013, 70000},
      {"E. Evans", "NYG", "4", "substance abuse", 2013, 40000},
      {"F. Foster", "DAL", "4", "substance abuse", 2015, 45000},
      {"G. Green", "SEA", "8", "substance abuse", 2015, 50000},
      {"H. Hill", "OAK", "2", "substance abuse", 2016, 35000},
      {"I. Irving", "DEN", "6", "substance abuse", 2013, 55000},
      {"J. Jones", "DAL", "10", "substance abuse", 2016, 60000},
      {"K. King", "NE", "4", "personal conduct", 2015, 30000},
      {"L. Lewis", "SEA", "2", "personal conduct", 2013, 45000},
      {"M. Moore", "CHI", "6", "personal conduct", 2016, 50000},
      {"N. Nash", "NE", "8", "personal conduct", 2015, 40000},
      {"O. Owens", "CAR", "6", "domestic violence", 2014, 50000},
      {"P. Price", "CHI", "2", "domestic violence", 2016, 50000},
  };
  for (const Row& r : rows) {
    (void)t.AddRow({S(r.name), S(r.team), S(r.games), S(r.category),
                    L(r.year), D(r.fine)});
  }
  (void)c.database.AddTable(std::move(t));

  auto doc = text::ParseDocument(R"(
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database. Three were
for repeated substance abuse, one was for gambling.</p>
<h2>All suspensions</h2>
<p>My database of punishments contains 16 suspensions in total. Six of
those suspensions were handed out for substance abuse. Five suspensions
were for personal conduct.</p>
<p>Lifetime bans make up 25 percent of all entries. Another 31 percent of
the suspensions were for substance abuse.</p>
<h2>Teams and fines</h2>
<p>The suspensions cover ten different teams. The average fine across all
punishments was 50,000 dollars. Only two suspensions were handed out
in 2014.</p>
)");
  c.document = std::move(*doc);

  const db::ColumnRef star{"nflsuspensions", ""};
  const db::ColumnRef games{"nflsuspensions", "Games"};
  const db::ColumnRef category{"nflsuspensions", "Category"};
  const db::ColumnRef team{"nflsuspensions", "Team"};
  const db::ColumnRef fine{"nflsuspensions", "Fine"};
  const db::ColumnRef year{"nflsuspensions", "Year"};
  const db::Predicate indef{games, S("indef")};
  const db::Predicate repeated{category,
                               S("substance abuse repeated offense")};
  const db::Predicate gambl{category, S("gambling")};
  const db::Predicate substance{category, S("substance abuse")};
  const db::Predicate conduct{category, S("personal conduct")};

  c.ground_truth = {
      Truth(4, Query(db::AggFn::kCount, star, {indef})),
      Truth(3, Query(db::AggFn::kCount, star, {indef, repeated})),
      Truth(1, Query(db::AggFn::kCount, star, {indef, gambl})),
      Truth(16, Query(db::AggFn::kCount, star)),
      Truth(6, Query(db::AggFn::kCount, star, {substance})),
      // True value is 4: an injected erroneous claim.
      Truth(5, Query(db::AggFn::kCount, star, {conduct}), true),
      Truth(25, Query(db::AggFn::kPercentage, games, {indef})),
      // True value is 37.5%: claimed 31 is wrong.
      Truth(31, Query(db::AggFn::kPercentage, category, {substance}), true),
      Truth(10, Query(db::AggFn::kCountDistinct, team)),
      Truth(50000, Query(db::AggFn::kAvg, fine)),
      Truth(2, Query(db::AggFn::kCount, star,
                     {db::Predicate{year, L(2014)}})),
  };
  FinishGroundTruth(&c);
  return c;
}

CorpusCase MakeEtiquetteCase() {
  CorpusCase c;
  c.name = "airplane-etiquette";
  c.source = "538";

  db::Table t("etiquette");
  (void)t.AddColumn("RespondentID", db::ValueType::kLong);
  (void)t.AddColumn("RecliningRude", db::ValueType::kString);
  (void)t.AddColumn("FliesOften", db::ValueType::kString);
  (void)t.AddColumn("HasChildren", db::ValueType::kString);
  (void)t.AddColumn("Recline", db::ValueType::kString);
  (void)t.AddColumn("Height", db::ValueType::kDouble);
  for (int i = 0; i < 1000; ++i) {
    // Rude: [0,120) often-rude, [120,400) often-not, [400,690) rarely-rude,
    // [690,1000) rarely-not. Total rude = 410 (41%); rude|often = 30%.
    bool often = i < 400;
    bool rude = (i < 120) || (i >= 400 && i < 690);
    // Parents: 220 total, 110 of them rude (60 often-rude + 50 rarely-rude
    // + 110 often-not-rude).
    bool children =
        (i < 60) || (i >= 400 && i < 450) || (i >= 120 && i < 230);
    bool never_reclines = i >= 300 && i < 570;
    // Verbose answer coding, as in the original 538 survey export.
    (void)t.AddRow({L(i + 1), S(rude ? "rude" : "not rude"),
                    S(often ? "often" : "rarely"),
                    S(children ? "parent" : "solo"),
                    S(never_reclines ? "never" : "sometimes"),
                    D(i % 2 == 0 ? 160.0 : 180.0)});
  }
  (void)c.database.AddTable(std::move(t));

  auto doc = text::ParseDocument(R"(
<h1>41 Percent Of Fliers Think You're Rude If You Recline Your Seat</h1>
<h2>The survey</h2>
<p>In our survey we asked 1,000 fliers about airplane etiquette. A clear
finding: 41 percent of fliers think you are rude if you recline your
seat.</p>
<h2>Frequent fliers</h2>
<p>Frequent fliers are more tolerant. Among fliers who fly often, only 30
percent consider reclining rude.</p>
<p>Exactly 270 respondents said they never recline their own seat.</p>
<h2>Families</h2>
<p>Some 220 of the surveyed fliers are parents flying with children. Among
these parents, 50 percent find reclining rude. Only 25 percent of fliers
who fly rarely consider reclining rude.</p>
<h2>Respondents</h2>
<p>The average height of our respondents was 170 centimeters.</p>
)");
  c.document = std::move(*doc);

  const db::ColumnRef star{"etiquette", ""};
  const db::ColumnRef rude_col{"etiquette", "RecliningRude"};
  const db::ColumnRef height{"etiquette", "Height"};
  const db::Predicate rude{rude_col, S("rude")};
  const db::Predicate often{{"etiquette", "FliesOften"}, S("often")};
  const db::Predicate rarely{{"etiquette", "FliesOften"}, S("rarely")};
  const db::Predicate parent{{"etiquette", "HasChildren"}, S("parent")};
  const db::Predicate never{{"etiquette", "Recline"}, S("never")};

  // Conditional shares are expressed in the canonical Percentage form:
  // Percentage(A) WHERE A = v AND cond equals ConditionalProbability with
  // the condition first (footnote 1), and the checker canonicalizes to the
  // Percentage spelling.
  c.ground_truth = {
      Truth(1000, Query(db::AggFn::kCount, star)),
      Truth(41, Query(db::AggFn::kPercentage, rude_col, {rude})),
      Truth(30, Query(db::AggFn::kPercentage, rude_col, {rude, often})),
      Truth(270, Query(db::AggFn::kCount, star, {never})),
      Truth(220, Query(db::AggFn::kCount, star, {parent})),
      Truth(50, Query(db::AggFn::kPercentage, rude_col, {rude, parent})),
      // True value 48.3%: the claimed 25 is wrong.
      Truth(25, Query(db::AggFn::kPercentage, rude_col, {rude, rarely}),
            true),
      Truth(170, Query(db::AggFn::kAvg, height)),
  };
  FinishGroundTruth(&c);
  return c;
}

CorpusCase MakeDeveloperSurveyCase() {
  CorpusCase c;
  c.name = "developer-survey";
  c.source = "StackOverflow";

  db::Table t("stackoverflow2016");
  (void)t.AddColumn("Respondent", db::ValueType::kLong);
  (void)t.AddColumn("Country", db::ValueType::kString);
  (void)t.AddColumn("Education", db::ValueType::kString);
  (void)t.AddColumn("Occupation", db::ValueType::kString);
  (void)t.AddColumn("Salary", db::ValueType::kDouble);
  (void)t.AddColumn("Remote", db::ValueType::kString);
  for (int i = 0; i < 1000; ++i) {
    const char* education = i < 136              ? "self-taught"
                            : i < 136 + 220      ? "masters degree"
                            : i < 136 + 220 + 400 ? "bachelors degree"
                                                  : "other";
    const char* occupation = i < 450        ? "full-stack developer"
                             : i < 450 + 300 ? "back-end developer"
                                             : "other";
    bool remote = i >= 700;  // 300 remote rows
    double salary = remote ? 60000.0 : 38000000.0 / 700.0;
    (void)t.AddRow({L(i + 1),
                    S(("nation-" + std::to_string(i % 40)).c_str()),
                    S(education), S(occupation), D(salary),
                    S(remote ? "yes" : "no")});
  }
  (void)c.database.AddTable(std::move(t));

  auto doc = text::ParseDocument(R"(
<h1>Developer Survey Results 2016</h1>
<h2>Who answered</h2>
<p>We surveyed 1,000 developers around the world this year. Respondents
came from 40 different countries.</p>
<h2>Education</h2>
<p>Formal schooling is not the only path. 13 percent of respondents across
the globe tell us they are only self-taught. Meanwhile 22 percent hold a
masters degree as their highest education.</p>
<h2>Jobs and pay</h2>
<p>Some 450 participants identify as a full-stack developer by occupation.
The average salary of our respondents was 56,000 dollars.</p>
<h2>Remote work</h2>
<p>Exactly 300 respondents work remote at least part of the time. Among
remote workers, the average salary was 60,000 dollars.</p>
)");
  c.document = std::move(*doc);

  const db::ColumnRef star{"stackoverflow2016", ""};
  const db::ColumnRef education{"stackoverflow2016", "Education"};
  const db::ColumnRef country{"stackoverflow2016", "Country"};
  const db::ColumnRef salary{"stackoverflow2016", "Salary"};
  const db::Predicate self_taught{education, S("self-taught")};
  const db::Predicate masters{education, S("masters degree")};
  const db::Predicate fullstack{{"stackoverflow2016", "Occupation"},
                                S("full-stack developer")};
  const db::Predicate remote{{"stackoverflow2016", "Remote"}, S("yes")};

  c.ground_truth = {
      Truth(1000, Query(db::AggFn::kCount, star)),
      Truth(40, Query(db::AggFn::kCountDistinct, country)),
      // Table 9's rounding error: true value 13.6% rounds to 14, not 13.
      Truth(13, Query(db::AggFn::kPercentage, education, {self_taught}),
            true),
      Truth(22, Query(db::AggFn::kPercentage, education, {masters})),
      Truth(450, Query(db::AggFn::kCount, star, {fullstack})),
      Truth(56000, Query(db::AggFn::kAvg, salary)),
      Truth(300, Query(db::AggFn::kCount, star, {remote})),
      Truth(60000, Query(db::AggFn::kAvg, salary, {remote})),
  };
  FinishGroundTruth(&c);
  return c;
}

CorpusCase MakeDonationsJoinCase() {
  CorpusCase c;
  c.name = "campaign-donations";
  c.source = "NYT";

  // candidates: 8 rows; Vermont's only candidate (id 6) receives 4 gifts.
  db::Table candidates("candidates");
  (void)candidates.AddColumn("CandidateId", db::ValueType::kLong);
  (void)candidates.AddColumn("CandidateName", db::ValueType::kString);
  (void)candidates.AddColumn("Party", db::ValueType::kString);
  (void)candidates.AddColumn("HomeState", db::ValueType::kString);
  struct Cand {
    int64_t id;
    const char *name, *party, *state;
  };
  const Cand cands[] = {
      {1, "Alvarez", "democratic", "ohio"},
      {2, "Baker", "democratic", "texas"},
      {3, "Chen", "democratic", "oregon"},
      {4, "Diaz", "democratic", "nevada"},
      {5, "Ellis", "democratic", "utah"},
      {6, "Ford", "republican", "vermont"},
      {7, "Grant", "republican", "texas"},
      {8, "Hayes", "republican", "ohio"},
  };
  for (const Cand& cand : cands) {
    (void)candidates.AddRow(
        {L(cand.id), S(cand.name), S(cand.party), S(cand.state)});
  }
  (void)c.database.AddTable(std::move(candidates));

  // gifts: 25 democratic (5 per candidate 1..5), 15 republican (4/5/6 to
  // candidates 6/7/8). The first 12 democratic gifts are 750-dollar
  // finance-sector gifts (sum 9000); the rest of the democratic gifts are
  // 400; every republican gift is exactly 500 (average 500).
  db::Table gifts("gifts");
  (void)gifts.AddColumn("GiftId", db::ValueType::kLong);
  (void)gifts.AddColumn("CandidateId", db::ValueType::kLong);
  (void)gifts.AddColumn("Amount", db::ValueType::kDouble);
  (void)gifts.AddColumn("DonorSector", db::ValueType::kString);
  int64_t gift_id = 0;
  int dem_gifts = 0;
  auto add_gift = [&](int64_t candidate, double amount, const char* sector) {
    (void)gifts.AddRow({L(++gift_id), L(candidate), D(amount), S(sector)});
  };
  for (int64_t cand_id = 1; cand_id <= 5; ++cand_id) {
    for (int k = 0; k < 5; ++k) {
      bool finance = dem_gifts < 12;
      add_gift(cand_id, finance ? 750.0 : 400.0,
               finance ? "finance" : (dem_gifts % 2 ? "technology"
                                                    : "education"));
      ++dem_gifts;
    }
  }
  const int rep_counts[] = {4, 5, 6};  // candidates 6, 7, 8
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < rep_counts[i]; ++k) {
      add_gift(6 + i, 500.0, "energy");
    }
  }
  (void)c.database.AddTable(std::move(gifts));
  (void)c.database.AddForeignKey({"gifts", "CandidateId"},
                                 {"candidates", "CandidateId"});

  auto doc = text::ParseDocument(R"(
<h1>Race In The Primary Involves Donating Dollars</h1>
<h2>The donations</h2>
<p>Our records cover 40 individual donations. The donations went to eight
different candidates.</p>
<h2>Parties</h2>
<p>Exactly 25 donations went to democratic candidates. The average donation
to republican candidates was 500 dollars.</p>
<h2>Sectors and states</h2>
<p>Donations from the finance sector totaled 9,000 dollars. Nineteen donations
went to candidates from vermont.</p>
)");
  c.document = std::move(*doc);

  const db::ColumnRef gifts_star{"gifts", ""};
  const db::ColumnRef amount{"gifts", "Amount"};
  const db::ColumnRef gift_candidate{"gifts", "CandidateId"};
  const db::Predicate democratic{{"candidates", "Party"}, S("democratic")};
  const db::Predicate republican{{"candidates", "Party"}, S("republican")};
  const db::Predicate finance{{"gifts", "DonorSector"}, S("finance")};
  const db::Predicate vermont{{"candidates", "HomeState"}, S("vermont")};

  c.ground_truth = {
      Truth(40, Query(db::AggFn::kCount, gifts_star)),
      Truth(8, Query(db::AggFn::kCountDistinct, gift_candidate)),
      Truth(25, Query(db::AggFn::kCount, gifts_star, {democratic})),
      Truth(500, Query(db::AggFn::kAvg, amount, {republican})),
      Truth(9000, Query(db::AggFn::kSum, amount, {finance})),
      // True value is 4: the claimed nineteen is wrong (Table 9's 64-vs-63
      // donation-count error, in spirit).
      Truth(19, Query(db::AggFn::kCount, gifts_star, {vermont}), true),
  };
  FinishGroundTruth(&c);
  return c;
}

std::vector<CorpusCase> EmbeddedArticles() {
  std::vector<CorpusCase> cases;
  cases.push_back(MakeNflCase());
  cases.push_back(MakeEtiquetteCase());
  cases.push_back(MakeDeveloperSurveyCase());
  return cases;
}

}  // namespace corpus
}  // namespace aggchecker
