#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/corpus_case.h"
#include "db/database.h"
#include "text/document.h"

namespace aggchecker {
namespace corpus {

/// \brief Parameters of a fleet-scale synthetic workload: thousands of
/// articles over a pool of scaled, wide, skewed datasets.
///
/// Where GeneratorOptions reproduces the paper's 53-article corpus shape,
/// FleetSpec targets the ROADMAP's "heavy traffic" regime: schemas up to
/// ~64 columns, high-cardinality Zipf-skewed dimensions, row counts 100 to
/// 1000 times the article-scale cases, and a known error-injection rate so
/// every generated claim carries a ground-truth verdict by construction.
/// Generation is deterministic in (spec, seed): the same spec produces a
/// byte-identical corpus — datasets, articles, and ground truth.
struct FleetSpec {
  uint64_t seed = 1;

  /// Articles in the workload. Articles are assigned to datasets
  /// round-robin, so multiple documents share each dataset — the regime the
  /// cross-document scheduler's relation-cache-warmth priority exploits.
  size_t num_articles = 1000;
  size_t num_datasets = 8;

  /// Target claims per article; realized counts jitter by up to ±2 (never
  /// below 1) so documents differ in benefit for the scheduler.
  size_t claims_per_article = 6;

  /// Schema width: categorical dimension columns plus numeric measure
  /// columns (plus a RowId key). 48 + 15 + 1 = 64 columns at the maximum
  /// the tentpole targets.
  size_t num_dim_columns = 24;
  size_t num_measure_columns = 8;

  /// Rows per dataset. The article-scale generator draws 60-600 rows per
  /// case; the default here is ~100-800x that.
  size_t rows_per_dataset = 50000;

  /// Upper bound on per-dimension cardinality; each dimension draws its own
  /// cardinality in [2, dim_cardinality].
  size_t dim_cardinality = 64;

  /// Zipf exponent for dimension-value draws (0 = uniform). Row blocks over
  /// skewed dimensions produce the uneven group sizes that make cube-group
  /// estimates part of the scheduler's cost model.
  double zipf_skew = 1.1;

  /// Per-claim probability of injecting an error (the paper's corpus runs
  /// at ~12% erroneous claims). The realized erroneous flag is always
  /// recomputed under the checker's rounding semantics, so ground truth is
  /// exact regardless of how the corruption rounds.
  double error_rate = 0.12;
};

/// \brief One fleet article: a document plus per-claim ground truth, bound
/// to one of the corpus' shared datasets by index.
struct FleetArticle {
  std::string name;
  size_t dataset = 0;  ///< index into FleetCorpus::datasets
  text::TextDocument document;
  std::vector<GroundTruthClaim> ground_truth;

  size_t NumErroneous() const {
    size_t n = 0;
    for (const auto& g : ground_truth) n += g.is_erroneous ? 1 : 0;
    return n;
  }
};

/// \brief A generated fleet workload: shared datasets + articles over them.
struct FleetCorpus {
  /// Datasets are shared across articles and must stay address-stable while
  /// any scheduler run references them (unique_ptr, not value, for that).
  std::vector<std::unique_ptr<db::Database>> datasets;
  std::vector<FleetArticle> articles;
  /// Articles dropped by an injected `fleet.generator.emit` fault. The
  /// generator skips the faulted article and keeps going (surviving
  /// articles are identical to their fault-free twins); zero in production.
  size_t articles_dropped = 0;

  size_t TotalClaims() const {
    size_t n = 0;
    for (const auto& a : articles) n += a.ground_truth.size();
    return n;
  }
};

/// Generates the workload. Deterministic in the spec (including seed);
/// see FleetCorpusFingerprint for the byte-identity contract tests assert.
FleetCorpus GenerateFleet(const FleetSpec& spec);

/// \brief Canonical byte rendering of everything the generator promises to
/// be deterministic: dataset schemas and cell values, article text, and
/// per-claim ground truth (exact hexfloat values). Two corpora from the
/// same spec must produce equal fingerprints; different seeds must not.
std::string FleetCorpusFingerprint(const FleetCorpus& corpus);

}  // namespace corpus
}  // namespace aggchecker
