#pragma once

#include <vector>

#include "corpus/corpus_case.h"

namespace aggchecker {
namespace corpus {

/// \brief Three hand-written test cases closely following the paper's
/// running examples and Table 9:
///
///  1. "nfl-suspensions"  — the 538 NFL-suspension article (Example 1),
///     with two injected erroneous claims;
///  2. "airplane-etiquette" — the 538 recline-survey article of the user
///     study, one erroneous claim;
///  3. "developer-survey" — the Stack Overflow 2016 summary, reproducing
///     Table 9's self-taught rounding error (true 13.6%, claimed 13%).
///
/// Data sets are built in code so every claimed statistic is exact.
std::vector<CorpusCase> EmbeddedArticles();

/// The individual cases (also used directly by examples).
CorpusCase MakeNflCase();
CorpusCase MakeEtiquetteCase();
CorpusCase MakeDeveloperSurveyCase();

/// \brief A multi-table case (not part of the 53-case corpus): campaign
/// donations referencing a candidates table through a PK-FK edge, in the
/// style of the NYT 'Waxman primary' article [6]. Claims require equi-joins
/// along the foreign key (e.g. "donations to democratic candidates"), so
/// the full pipeline — fragment catalog, candidate generation, cube
/// execution — runs across two tables.
CorpusCase MakeDonationsJoinCase();

}  // namespace corpus
}  // namespace aggchecker
