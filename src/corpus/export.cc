#include "corpus/export.h"

#include <filesystem>
#include <fstream>

#include "util/csv.h"
#include "util/strings.h"

namespace aggchecker {
namespace corpus {

namespace {

namespace fs = std::filesystem;

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path.string());
  out << content;
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + path.string());
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

}  // namespace

std::string DocumentToHtml(const text::TextDocument& doc) {
  std::string out;
  if (!doc.title().empty()) {
    out += "<h1>" + doc.title() + "</h1>\n";
  }
  int last_section = -2;
  for (const text::Paragraph& para : doc.paragraphs()) {
    if (para.section != last_section && para.section >= 0) {
      // Emit the chain of headlines leading to this paragraph's section
      // that have not been emitted yet (nested sections).
      const text::Section& section = doc.section(para.section);
      if (section.parent >= 0 && section.parent != last_section) {
        out += "<h2>" + doc.section(section.parent).headline + "</h2>\n";
      }
      out += (section.level >= 2 ? "<h3>" : "<h2>") + section.headline +
             (section.level >= 2 ? "</h3>\n" : "</h2>\n");
    }
    last_section = para.section;
    out += "<p>";
    for (size_t i = 0; i < para.sentence_indices.size(); ++i) {
      if (i > 0) out += ' ';
      out += doc.sentence(para.sentence_indices[i]).text;
    }
    out += "</p>\n";
  }
  return out;
}

namespace {

/// Renders a cell so the column re-infers to the same type at full
/// precision: doubles use %.17g and always carry a decimal point (so an
/// integral double column does not collapse to LONG on re-import).
std::string RenderCell(const db::Value& v) {
  if (v.is_null()) return "";
  if (v.type() != db::ValueType::kDouble) return v.ToString();
  std::string s = strings::Format("%.17g", v.AsDoubleExact());
  if (s.find('.') == std::string::npos &&
      s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos &&
      s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string TableToCsv(const db::Table& table) {
  csv::CsvData data;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    data.header.push_back(table.column(c).name());
  }
  data.rows.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      row.push_back(RenderCell(table.column(c).at(r)));
    }
    data.rows.push_back(std::move(row));
  }
  return csv::Write(data);
}

Status ExportCase(const CorpusCase& test_case, const std::string& dir) {
  fs::path case_dir = fs::path(dir) / test_case.name;
  std::error_code ec;
  fs::create_directories(case_dir, ec);
  if (ec) return Status::Internal("mkdir failed: " + case_dir.string());

  Status s = WriteFile(case_dir / "article.html",
                       DocumentToHtml(test_case.document));
  if (!s.ok()) return s;

  for (size_t t = 0; t < test_case.database.num_tables(); ++t) {
    const db::Table& table = test_case.database.table(t);
    s = WriteFile(case_dir / (table.name() + ".csv"), TableToCsv(table));
    if (!s.ok()) return s;
  }

  csv::CsvData truth;
  truth.header = {"claimed_value", "true_value", "is_erroneous",
                  "canonical_query"};
  for (const GroundTruthClaim& g : test_case.ground_truth) {
    truth.rows.push_back({strings::Format("%.17g", g.claimed_value),
                          strings::Format("%.17g", g.true_value),
                          g.is_erroneous ? "1" : "0",
                          g.query.CanonicalKey()});
  }
  return WriteFile(case_dir / "ground_truth.csv", csv::Write(truth));
}

Status ExportCorpus(const std::vector<CorpusCase>& corpus,
                    const std::string& dir) {
  for (const CorpusCase& c : corpus) {
    Status s = ExportCase(c, dir);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<CorpusCase> ImportCase(const std::string& case_dir) {
  fs::path dir(case_dir);
  CorpusCase c;
  c.name = dir.filename().string();
  c.source = "imported";

  auto article = ReadFile(dir / "article.html");
  if (!article.ok()) return article.status();
  auto doc = text::ParseDocument(*article);
  if (!doc.ok()) return doc.status();
  c.document = std::move(*doc);

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".csv") continue;
    std::string stem = entry.path().stem().string();
    if (stem == "ground_truth") continue;
    auto content = ReadFile(entry.path());
    if (!content.ok()) return content.status();
    auto data = csv::Parse(*content);
    if (!data.ok()) return data.status();
    auto table = db::Table::FromCsv(stem, *data);
    if (!table.ok()) return table.status();
    Status s = c.database.AddTable(std::move(*table));
    if (!s.ok()) return s;
  }
  if (ec) return Status::Internal("cannot list " + case_dir);
  if (c.database.num_tables() == 0) {
    return Status::NotFound("no data tables in " + case_dir);
  }

  auto truth_text = ReadFile(dir / "ground_truth.csv");
  if (!truth_text.ok()) return truth_text.status();
  auto truth = csv::Parse(*truth_text);
  if (!truth.ok()) return truth.status();
  for (const auto& row : truth->rows) {
    if (row.size() < 4) return Status::ParseError("bad ground-truth row");
    GroundTruthClaim g;
    g.claimed_value = std::strtod(row[0].c_str(), nullptr);
    g.true_value = std::strtod(row[1].c_str(), nullptr);
    g.is_erroneous = row[2] == "1";
    auto query = db::SimpleAggregateQuery::FromCanonicalKey(row[3]);
    if (!query.ok()) return query.status();
    g.query = std::move(*query);
    c.ground_truth.push_back(std::move(g));
  }
  return c;
}

}  // namespace corpus
}  // namespace aggchecker
