#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "corpus/claim_text.h"
#include "db/executor.h"
#include "text/number_parser.h"
#include "util/rng.h"
#include "util/rounding.h"
#include "util/strings.h"

namespace aggchecker {
namespace corpus {

namespace {

// ---------------------------------------------------------------------------
// Domain vocabulary
// ---------------------------------------------------------------------------

struct CategorySpec {
  const char* column;
  const char* mention;         ///< singular display word used in prose
  const char* mention_plural;  ///< for CountDistinct phrasing
  std::vector<const char*> values;
};

struct NumericSpec {
  const char* column;
  const char* mention;
  double lo, hi;
};

struct DomainSpec {
  const char* table;
  const char* noun;  ///< "suspensions", "donations", ...
  const char* title;
  std::vector<CategorySpec> categories;
  std::vector<NumericSpec> numerics;
};

const std::vector<DomainSpec>& Domains() {
  static const std::vector<DomainSpec>* kDomains = new std::vector<
      DomainSpec>{
      {"suspensions",
       "suspensions",
       "A League's Uneven History Of Punishing Its Players",
       {{"Conference", "conference", "conferences",
         {"eastern", "western", "northern", "southern"}},
        {"Infraction", "infraction", "infractions",
         {"doping", "fighting", "betting", "tampering", "taunting"}},
        {"Severity", "severity", "severity levels",
         {"minor", "major", "severe"}}},
       {{"FineAmount", "fine", 1000, 90000},
        {"GamesMissed", "games missed", 1, 30}}},
      {"donations",
       "donations",
       "Race In The Primary Involves Donating Dollars",
       {{"Party", "party", "parties",
         {"democratic", "republican", "independent", "green"}},
        {"DonorState", "state", "states",
         {"ohio", "texas", "vermont", "oregon", "nevada", "utah"}},
        {"Sector", "sector", "sectors",
         {"finance", "energy", "healthcare", "technology", "education"}}},
       {{"Amount", "amount", 50, 9500},
        {"DonorAge", "donor age", 21, 90}}},
      {"devsurvey",
       "responses",
       "Developer Survey Insights On Tools And Pay",
       {{"Language", "language", "languages",
         {"python", "javascript", "rust", "java", "ruby"}},
        {"Role", "role", "roles",
         {"frontend", "backend", "fullstack", "devops", "mobile"}},
        {"RemoteStatus", "work mode", "work modes",
         {"remote", "office", "hybrid"}}},
       {{"Salary", "salary", 30000, 140000},
        {"Experience", "experience", 1, 35}}},
      {"transactions",
       "transactions",
       "What A Season Of Retail Sales Looks Like",
       {{"Region", "region", "regions",
         {"north", "south", "east", "west"}},
        {"ProductLine", "product line", "product lines",
         {"furniture", "appliances", "clothing", "groceries",
          "electronics"}},
        {"Channel", "channel", "channels", {"online", "retail"}}},
       {{"Revenue", "revenue", 20, 4500},
        {"Units", "units", 1, 60}}},
      {"tracks",
       "tracks",
       "How A Music Catalog Breaks Down By Genre",
       {{"Genre", "genre", "genres",
         {"rock", "jazz", "hiphop", "country", "electronic", "classical"}},
        {"Label", "label", "labels",
         {"indigo", "horizon", "crescent", "summit"}},
        {"Mood", "mood", "moods", {"upbeat", "mellow", "angry", "sombre"}}},
       {{"Plays", "play count", 100, 900000},
        {"DurationSeconds", "duration", 90, 600}}},
  };
  return *kDomains;
}

const char* kSources[] = {"538", "NYT", "Vox", "StackOverflow", "Wikipedia"};

// ---------------------------------------------------------------------------
// Number rendering — shared with the fleet generator (corpus/claim_text.h).
// ---------------------------------------------------------------------------

using claim_text::Corrupt;
using claim_text::Rendered;
using claim_text::RendersAsYear;
using claim_text::RenderValue;

// ---------------------------------------------------------------------------
// Sentence templates
// ---------------------------------------------------------------------------

struct ClaimSpec {
  db::SimpleAggregateQuery query;
  double true_value = 0;
  bool erroneous = false;
  Rendered rendered;
  std::string sentence;  ///< full sentence (without trailing period)
  /// The sentence does not name the predicate value; the decisive keywords
  /// live in the preceding sentence and the headline (Example 3's
  /// "lifetime bans" pattern — what makes keyword context matter).
  bool context_dependent = false;
  /// For context-dependent claims: the value appears ONLY in the headline
  /// (no intro sentence), so headline context alone recovers it.
  bool headline_only = false;
};

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}

/// Mention phrase of a column in this domain ("infraction", "fine", ...).
std::string MentionOf(const DomainSpec& domain, const std::string& column) {
  for (const auto& cat : domain.categories) {
    if (column == cat.column) return cat.mention;
  }
  for (const auto& num : domain.numerics) {
    if (column == num.column) return num.mention;
  }
  return strings::ToLower(column);
}

std::string PluralMentionOf(const DomainSpec& domain,
                            const std::string& column) {
  for (const auto& cat : domain.categories) {
    if (column == cat.column) return cat.mention_plural;
  }
  return MentionOf(domain, column) + "s";
}

/// Builds the claim sentence. The predicate VALUES always appear verbatim
/// (they are the decisive keywords); column mentions and aggregation cue
/// words appear with high probability but are sometimes omitted, mirroring
/// real prose (§7.3: 30% of claims omit the aggregation function).
std::string RenderSentence(const ClaimSpec& spec, const DomainSpec& domain,
                           Rng* rng) {
  const auto& q = spec.query;
  const std::string v = spec.rendered.text;
  const std::string noun = domain.noun;
  auto pred_phrase = [&](size_t i, bool with_column) {
    const auto& p = q.predicates[i];
    std::string val = p.value.ToString();
    if (with_column) {
      return "a " + MentionOf(domain, p.column.column) + " of " + val;
    }
    return val + " " + noun;
  };

  if (spec.context_dependent) {
    // The restriction is implied by the surrounding context, never named
    // here (like "three were for repeated substance abuse" relying on
    // "lifetime bans" one sentence earlier).
    if (q.fn == db::AggFn::kPercentage) {
      switch (rng->NextBounded(2)) {
        case 0:
          return "They accounted for " + v + " percent of the " + noun;
        default:
          return "That group made up " + v + " percent of all " + noun;
      }
    }
    switch (rng->NextBounded(3)) {
      case 0:
        return "We counted " + v + " such " + noun;
      case 1:
        return "Exactly " + v + " of them were recorded";
      default:
        return "Our tally shows " + v + " of these " + noun;
    }
  }

  switch (q.fn) {
    case db::AggFn::kCount: {
      if (q.predicates.empty()) {
        switch (rng->NextBounded(3)) {
          case 0:
            return "In total, the data set covers " + v + " " + noun;
          case 1:
            return "Overall we recorded " + v + " " + noun;
          default:
            return "The full data set lists " + v + " " + noun;
        }
      }
      if (q.predicates.size() == 1) {
        switch (rng->NextBounded(4)) {
          case 0:
            return "Exactly " + v + " " + noun + " had " + pred_phrase(0,
                                                                       true);
          case 1:
            return "There were " + v + " " + q.predicates[0].value.ToString()
                   + " " + noun + " in the data";
          case 2:
            return "We counted " + v + " " + noun + " where the " +
                   MentionOf(domain, q.predicates[0].column.column) +
                   " was " + q.predicates[0].value.ToString();
          default:
            return Capitalize(q.predicates[0].value.ToString()) + " " + noun
                   + " numbered " + v;
        }
      }
      return "Exactly " + v + " " + noun + " combined " +
             pred_phrase(0, true) + " with " + pred_phrase(1, true);
    }
    case db::AggFn::kCountDistinct:
      return "The " + noun + " covered " + v + " different " +
             PluralMentionOf(domain, q.agg_column.column);
    case db::AggFn::kSum: {
      std::string col = MentionOf(domain, q.agg_column.column);
      if (q.predicates.empty()) {
        return "The combined " + col + " across all " + noun + " reached " +
               v;
      }
      return "For " + pred_phrase(0, false) + ", the total " + col +
             " reached " + v;
    }
    case db::AggFn::kAvg: {
      std::string col = MentionOf(domain, q.agg_column.column);
      if (q.predicates.empty()) {
        return "The average " + col + " across all " + noun + " was " + v;
      }
      return "Among " + pred_phrase(0, false) + ", the average " + col +
             " was " + v;
    }
    case db::AggFn::kMin:
      return "The lowest " + MentionOf(domain, q.agg_column.column) +
             " recorded was " + v;
    case db::AggFn::kMax:
      return "The highest " + MentionOf(domain, q.agg_column.column) +
             " recorded was " + v;
    case db::AggFn::kPercentage: {
      const auto& p = q.predicates[0];
      if (q.predicates.size() >= 2) {
        // Conditional share: predicates[0] is the event (on the percentage
        // column), predicates[1] the condition.
        const auto& cond = q.predicates[1];
        return "Among " + noun + " with a " +
               MentionOf(domain, cond.column.column) + " of " +
               cond.value.ToString() + ", " + v + " percent had a " +
               MentionOf(domain, p.column.column) + " of " +
               p.value.ToString();
      }
      switch (rng->NextBounded(2)) {
        case 0:
          return v + " percent of the " + noun + " had a " +
                 MentionOf(domain, p.column.column) + " of " +
                 p.value.ToString();
        default:
          return "Some " + v + " percent of " + noun + " were " +
                 p.value.ToString();
      }
    }
    case db::AggFn::kConditionalProbability: {
      return "Among " + noun + " with a " +
             MentionOf(domain, q.predicates[0].column.column) + " of " +
             q.predicates[0].value.ToString() + ", " + v +
             " percent had a " +
             MentionOf(domain, q.predicates[1].column.column) + " of " +
             q.predicates[1].value.ToString();
    }
  }
  return "The value was " + v;
}

}  // namespace

CorpusCase GenerateCase(size_t case_index, const GeneratorOptions& options) {
  Rng rng(options.seed * 7919 + case_index * 104729 + 17);
  const DomainSpec& domain = Domains()[case_index % Domains().size()];

  CorpusCase c;
  c.name = strings::Format("%s-%02zu", domain.table, case_index);
  c.source = kSources[case_index % (sizeof(kSources) / sizeof(kSources[0]))];

  // --- Data set. ---
  db::Table t(domain.table);
  (void)t.AddColumn("RowId", db::ValueType::kLong);
  for (const auto& cat : domain.categories) {
    (void)t.AddColumn(cat.column, db::ValueType::kString);
  }
  for (const auto& num : domain.numerics) {
    (void)t.AddColumn(num.column, db::ValueType::kLong);
  }
  const int rows = static_cast<int>(rng.NextInt(60, 600)) *
                   static_cast<int>(std::max<size_t>(options.row_scale, 1));
  // Skewed category weights so counts differ across values.
  std::vector<std::vector<double>> cat_weights;
  for (const auto& cat : domain.categories) {
    std::vector<double> w;
    for (size_t i = 0; i < cat.values.size(); ++i) {
      w.push_back(1.0 / (1.0 + static_cast<double>(i) * rng.NextDouble()));
    }
    cat_weights.push_back(std::move(w));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<db::Value> row;
    row.push_back(db::Value(static_cast<int64_t>(r + 1)));
    for (size_t ci = 0; ci < domain.categories.size(); ++ci) {
      size_t pick = rng.NextWeighted(cat_weights[ci]);
      row.push_back(db::Value(std::string(
          domain.categories[ci].values[pick])));
    }
    for (const auto& num : domain.numerics) {
      row.push_back(db::Value(rng.NextInt(
          static_cast<int64_t>(num.lo), static_cast<int64_t>(num.hi))));
    }
    (void)t.AddRow(std::move(row));
  }
  (void)c.database.AddTable(std::move(t));
  const db::Table& table = *c.database.FindTable(domain.table);
  db::QueryExecutor exec(&c.database);

  // --- Theme: the document's focus column and function mix (Fig. 9(b)). ---
  const size_t focus_cat = rng.NextBounded(domain.categories.size());
  const size_t focus_num = rng.NextBounded(domain.numerics.size());

  // --- Claim specs. ---
  const bool error_case = rng.NextBool(options.error_case_rate);
  size_t num_claims = case_index < 2
                          ? static_cast<size_t>(rng.NextInt(16, 26))
                          : static_cast<size_t>(rng.NextInt(4, 10));
  std::vector<ClaimSpec> specs;
  std::set<std::string> used_queries;

  auto pick_category = [&](bool exclude_focus) -> size_t {
    if (!exclude_focus && rng.NextBool(options.focus_probability)) {
      return focus_cat;
    }
    size_t pick = rng.NextBounded(domain.categories.size());
    if (exclude_focus && pick == focus_cat) {
      pick = (pick + 1) % domain.categories.size();
    }
    return pick;
  };

  for (size_t k = 0; k < num_claims; ++k) {
    bool built = false;
    for (int attempt = 0; attempt < 40 && !built; ++attempt) {
      db::SimpleAggregateQuery q;
      // Predicate count per Fig. 9(c).
      double roll = rng.NextDouble();
      int npreds = roll < options.zero_pred_rate
                       ? 0
                       : roll < options.zero_pred_rate + options.one_pred_rate
                             ? 1
                             : 2;
      // Aggregation function: theme-weighted.
      double fn_roll = rng.NextDouble();
      if (npreds == 2 && fn_roll < 0.12) {
        q.fn = db::AggFn::kConditionalProbability;
      } else if (fn_roll < 0.52) {
        q.fn = db::AggFn::kCount;
      } else if (fn_roll < 0.68 && npreds >= 1) {
        q.fn = db::AggFn::kPercentage;
      } else if (fn_roll < 0.80) {
        q.fn = db::AggFn::kAvg;
      } else if (fn_roll < 0.86) {
        q.fn = db::AggFn::kSum;
      } else if (fn_roll < 0.92) {
        q.fn = db::AggFn::kCountDistinct;
        npreds = 0;  // phrased without restrictions in our templates
      } else {
        q.fn = rng.NextBool(0.5) ? db::AggFn::kMax : db::AggFn::kMin;
        npreds = 0;
      }
      if (q.fn == db::AggFn::kCount ||
          q.fn == db::AggFn::kConditionalProbability) {
        q.agg_column = {domain.table, ""};
      } else if (q.fn == db::AggFn::kCountDistinct) {
        size_t cat = pick_category(false);
        q.agg_column = {domain.table, domain.categories[cat].column};
      } else if (q.fn == db::AggFn::kPercentage) {
        // Percentage over the first predicate's column (the paper's
        // self-taught pattern).
      } else {
        size_t num = rng.NextBool(0.7) ? focus_num
                                       : rng.NextBounded(
                                             domain.numerics.size());
        q.agg_column = {domain.table, domain.numerics[num].column};
      }

      // Predicates on distinct category columns with realized values.
      std::set<size_t> used_cats;
      bool pred_failed = false;
      for (int p = 0; p < npreds; ++p) {
        size_t cat = pick_category(false);
        int guard = 0;
        while (used_cats.count(cat) > 0 && guard++ < 5) {
          cat = rng.NextBounded(domain.categories.size());
        }
        if (used_cats.count(cat) > 0) {
          pred_failed = true;
          break;
        }
        used_cats.insert(cat);
        const db::Column* column =
            table.FindColumn(domain.categories[cat].column);
        const auto& distinct = column->DistinctValues();
        if (distinct.empty()) {
          pred_failed = true;
          break;
        }
        const db::Value& value = distinct[rng.NextBounded(distinct.size())];
        q.predicates.push_back(db::Predicate{
            {domain.table, domain.categories[cat].column}, value});
      }
      if (pred_failed) continue;
      if (q.fn == db::AggFn::kPercentage) {
        q.agg_column = q.predicates[0].column;
      }
      if (q.fn == db::AggFn::kConditionalProbability) {
        if (q.predicates.size() < 2) continue;
        // Canonical Percentage spelling of a conditional share (footnote 1
        // makes the two forms numerically identical; the checker ranks the
        // Percentage form).
        std::swap(q.predicates[0], q.predicates[1]);  // event first
        q.agg_column = q.predicates[0].column;
        q.fn = db::AggFn::kPercentage;
      }

      // Deduplicate and evaluate.
      if (used_queries.count(q.CanonicalKey()) > 0) continue;
      auto result = exec.Execute(q);
      if (!result.ok() || !result->has_value()) continue;
      double truth = **result;
      if (truth <= 0) continue;  // "zero X" reads oddly in prose
      if (RendersAsYear(truth)) continue;

      ClaimSpec spec;
      spec.query = q;
      spec.true_value = truth;
      spec.context_dependent =
          q.predicates.size() == 1 &&
          (q.fn == db::AggFn::kCount || q.fn == db::AggFn::kPercentage) &&
          rng.NextBool(options.context_dependent_rate);
      spec.headline_only = spec.context_dependent && rng.NextBool(0.4);
      spec.erroneous = error_case && rng.NextBool(options.error_claim_rate);
      double reported = spec.erroneous ? Corrupt(truth, &rng) : truth;
      spec.rendered = RenderValue(reported, &rng);
      if (RendersAsYear(spec.rendered.claimed_value)) continue;
      // The rendered value must agree with the erroneous flag under the
      // checker's own rounding semantics.
      bool rounds = rounding::RoundsTo(truth, spec.rendered.claimed_value);
      spec.erroneous = !rounds;
      spec.sentence = RenderSentence(spec, domain, &rng);
      used_queries.insert(q.CanonicalKey());
      specs.push_back(std::move(spec));
      built = true;
    }
  }
  // Guarantee at least one error in designated error cases.
  if (error_case && !specs.empty()) {
    bool any = false;
    for (const auto& s : specs) any = any || s.erroneous;
    if (!any) {
      ClaimSpec& victim = specs[rng.NextBounded(specs.size())];
      victim.rendered = RenderValue(Corrupt(victim.true_value, &rng), &rng);
      victim.erroneous = !rounding::RoundsTo(
          victim.true_value, victim.rendered.claimed_value);
      victim.sentence = RenderSentence(victim, domain, &rng);
    }
  }

  // --- Document assembly: sections of 2-4 claims, occasional merged
  // sentences and context intros. ---
  c.document.set_title(domain.title);
  size_t pos = 0;
  while (pos < specs.size()) {
    size_t take = std::min<size_t>(
        specs.size() - pos, static_cast<size_t>(rng.NextInt(2, 4)));
    // Headlines are thematic ("Suspensions by infraction") — unless the
    // section holds a context-dependent claim, whose omitted value must be
    // recoverable from the headline (Example 3's "Lifetime bans").
    std::string headline = Capitalize(domain.noun);
    for (size_t i = pos; i < pos + take; ++i) {
      if (specs[i].query.predicates.empty()) continue;
      const auto& pred = specs[i].query.predicates[0];
      if (specs[i].context_dependent) {
        headline = Capitalize(pred.value.ToString()) + " " + domain.noun;
        break;
      }
      headline = Capitalize(domain.noun) + " by " +
                 MentionOf(domain, pred.column.column);
    }
    int section = c.document.AddSection(headline);

    std::string paragraph;
    size_t i = pos;
    auto append_sentence = [&paragraph](const std::string& sentence) {
      if (!paragraph.empty()) paragraph += ' ';
      paragraph += Capitalize(sentence) + ".";
    };
    while (i < pos + take) {
      if (specs[i].context_dependent && !specs[i].headline_only) {
        // The decisive keywords go into the preceding sentence.
        const auto& pred = specs[i].query.predicates[0];
        switch (rng.NextBounded(3)) {
          case 0:
            append_sentence("Consider the " + pred.value.ToString() + " " +
                            domain.noun + " in particular");
            break;
          case 1:
            append_sentence("Next we turn to " + std::string(domain.noun) +
                            " with a " +
                            MentionOf(domain, pred.column.column) + " of " +
                            pred.value.ToString());
            break;
          default:
            append_sentence("The " + pred.value.ToString() + " " +
                            domain.noun + " deserve a closer look");
            break;
        }
      }
      std::string sentence = specs[i].sentence;
      // Merge with the next claim into one two-clause sentence (§7.3's
      // multi-claim sentences) — unless the next claim needs its own
      // context intro first.
      if (i + 1 < pos + take && !specs[i + 1].context_dependent &&
          rng.NextBool(options.multi_claim_rate)) {
        std::string second = specs[i + 1].sentence;
        if (!second.empty()) second[0] = static_cast<char>(
            std::tolower(second[0]));
        sentence += ", and " + second;
        ++i;
      }
      append_sentence(sentence);
      ++i;
    }
    // Context intro without numbers, referencing the focus column.
    if (rng.NextBool(0.5)) {
      paragraph = "This section looks at the " +
                  MentionOf(domain, domain.categories[focus_cat].column) +
                  " of our " + domain.noun + ". " + paragraph;
    }
    c.document.AddParagraph(paragraph, section);
    pos += take;
  }

  // --- Ground truth, in document order (= spec order). ---
  for (const ClaimSpec& spec : specs) {
    GroundTruthClaim g;
    g.claimed_value = spec.rendered.claimed_value;
    g.query = spec.query;
    g.true_value = spec.true_value;
    g.is_erroneous = spec.erroneous;
    c.ground_truth.push_back(std::move(g));
  }
  return c;
}

std::vector<CorpusCase> GenerateCorpus(const GeneratorOptions& options) {
  std::vector<CorpusCase> cases;
  cases.reserve(options.num_cases);
  for (size_t i = 0; i < options.num_cases; ++i) {
    cases.push_back(GenerateCase(i, options));
  }
  return cases;
}

}  // namespace corpus
}  // namespace aggchecker
