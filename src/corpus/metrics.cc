#include "corpus/metrics.h"

#include <cmath>

#include "db/eval_engine.h"
#include "util/strings.h"

namespace aggchecker {
namespace corpus {

void ErrorDetectionMetrics::Merge(const ErrorDetectionMetrics& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  total_claims += other.total_claims;
}

void CoverageMetrics::Merge(const CoverageMetrics& other) {
  for (size_t k = 0; k < hits.size() && k < other.hits.size(); ++k) {
    hits[k] += other.hits[k];
    hits_correct[k] += other.hits_correct[k];
    hits_incorrect[k] += other.hits_incorrect[k];
  }
  total += other.total;
  total_correct += other.total_correct;
  total_incorrect += other.total_incorrect;
}

Status ValidateAlignment(const CorpusCase& test_case,
                         const core::CheckReport& report) {
  if (report.verdicts.size() != test_case.ground_truth.size()) {
    return Status::Internal(strings::Format(
        "case '%s': detector found %zu claims, ground truth has %zu",
        test_case.name.c_str(), report.verdicts.size(),
        test_case.ground_truth.size()));
  }
  for (size_t i = 0; i < report.verdicts.size(); ++i) {
    double detected = report.verdicts[i].claim.claimed_value();
    double expected = test_case.ground_truth[i].claimed_value;
    if (std::fabs(detected - expected) > 1e-9) {
      return Status::Internal(strings::Format(
          "case '%s' claim %zu: detected value %g, ground truth %g",
          test_case.name.c_str(), i, detected, expected));
    }
  }
  return Status::OK();
}

ErrorDetectionMetrics ScoreErrorDetection(const CorpusCase& test_case,
                                          const core::CheckReport& report) {
  ErrorDetectionMetrics m;
  size_t n = std::min(report.verdicts.size(), test_case.ground_truth.size());
  m.total_claims = n;
  for (size_t i = 0; i < n; ++i) {
    bool flagged = report.verdicts[i].likely_erroneous;
    bool erroneous = test_case.ground_truth[i].is_erroneous;
    if (flagged && erroneous) ++m.true_positives;
    if (flagged && !erroneous) ++m.false_positives;
    if (!flagged && erroneous) ++m.false_negatives;
  }
  return m;
}

namespace {

bool SamePredicates(const db::SimpleAggregateQuery& a,
                    const db::SimpleAggregateQuery& b) {
  if (a.predicates.size() != b.predicates.size()) return false;
  for (const auto& p : a.predicates) {
    bool found = false;
    for (const auto& q : b.predicates) {
      if (p == q) found = true;
    }
    if (!found) return false;
  }
  return true;
}

bool CountFamily(db::AggFn fn) {
  return fn == db::AggFn::kCount || fn == db::AggFn::kCountDistinct;
}

}  // namespace

bool QueriesEquivalent(const GroundTruthClaim& truth,
                       const model::RankedCandidate& candidate) {
  if (candidate.query == truth.query) return true;
  // Count-family equivalence: "270 respondents" maps as naturally to
  // CountDistinct(RespondentID) as to Count(*). A candidate with the same
  // predicate set over the same relation whose count-family aggregate
  // evaluates to the ground-truth value is the same translation.
  if (!CountFamily(truth.query.fn) || !CountFamily(candidate.query.fn)) {
    return false;
  }
  if (!SamePredicates(truth.query, candidate.query)) return false;
  if (db::EvalEngine::RelationKey(truth.query) !=
      db::EvalEngine::RelationKey(candidate.query)) {
    return false;
  }
  return candidate.result.has_value() &&
         std::fabs(*candidate.result - truth.true_value) < 1e-9;
}

size_t GroundTruthRank(const GroundTruthClaim& truth,
                       const core::ClaimVerdict& verdict) {
  for (size_t r = 0; r < verdict.top_queries.size(); ++r) {
    if (QueriesEquivalent(truth, verdict.top_queries[r])) return r + 1;
  }
  return 0;
}

CoverageMetrics ScoreCoverage(const CorpusCase& test_case,
                              const core::CheckReport& report, size_t max_k) {
  CoverageMetrics m(max_k);
  size_t n = std::min(report.verdicts.size(), test_case.ground_truth.size());
  for (size_t i = 0; i < n; ++i) {
    const GroundTruthClaim& truth = test_case.ground_truth[i];
    size_t rank = GroundTruthRank(truth, report.verdicts[i]);
    ++m.total;
    if (truth.is_erroneous) {
      ++m.total_incorrect;
    } else {
      ++m.total_correct;
    }
    if (rank == 0) continue;
    for (size_t k = rank; k <= max_k; ++k) {
      ++m.hits[k - 1];
      if (truth.is_erroneous) {
        ++m.hits_incorrect[k - 1];
      } else {
        ++m.hits_correct[k - 1];
      }
    }
  }
  return m;
}

}  // namespace corpus
}  // namespace aggchecker
