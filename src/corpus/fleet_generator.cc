#include "corpus/fleet_generator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/aggchecker.h"
#include "corpus/claim_text.h"
#include "db/executor.h"
#include "db/relation_cache.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/rounding.h"
#include "util/strings.h"

namespace aggchecker {
namespace corpus {

namespace {

using claim_text::Corrupt;
using claim_text::Rendered;
using claim_text::RendersAsYear;
using claim_text::RenderValue;

// ---------------------------------------------------------------------------
// Synthetic vocabulary
// ---------------------------------------------------------------------------

/// Pronounceable CV-syllable word ("kavolu"), deterministic in the rng
/// stream. Synthetic words keep the fleet vocabulary collision-free: every
/// dimension value maps to exactly one (column, value) fragment, so keyword
/// evidence stays as sharp at 64 columns as the hand-built corpus is at 6.
std::string MakeWord(Rng* rng, size_t syllables = 3) {
  static const char kConsonants[] = "bdfgklmnprstvz";
  static const char kVowels[] = "aeiou";
  std::string w;
  for (size_t s = 0; s < syllables; ++s) {
    w += kConsonants[rng->NextBounded(sizeof(kConsonants) - 1)];
    w += kVowels[rng->NextBounded(sizeof(kVowels) - 1)];
  }
  return w;
}

/// A word not yet in `used` (vocabulary uniqueness is per dataset).
std::string FreshWord(Rng* rng, std::set<std::string>* used) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string w = MakeWord(rng, attempt < 100 ? 3 : 4);
    if (used->insert(w).second) return w;
  }
  // 14^4 * 5^4 four-syllable combos make this unreachable.
  std::string w = MakeWord(rng, 5);
  used->insert(w);
  return w;
}

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
  return s;
}

// ---------------------------------------------------------------------------
// Dataset synthesis
// ---------------------------------------------------------------------------

struct DimSpec {
  std::string column;            ///< capitalized column name
  std::string mention;           ///< lowercase word used in prose
  std::vector<std::string> values;
  std::vector<double> zipf_cdf;  ///< cumulative draw weights
};

struct MeasureSpec {
  std::string column;
  std::string mention;
  int64_t lo = 1, hi = 100;
};

struct DatasetShape {
  std::vector<DimSpec> dims;
  std::vector<MeasureSpec> measures;
};

/// Draws an index from a dimension's Zipf CDF.
size_t ZipfDraw(const DimSpec& dim, Rng* rng) {
  double u = rng->NextDouble() * dim.zipf_cdf.back();
  auto it = std::upper_bound(dim.zipf_cdf.begin(), dim.zipf_cdf.end(), u);
  size_t i = static_cast<size_t>(it - dim.zipf_cdf.begin());
  return std::min(i, dim.zipf_cdf.size() - 1);
}

/// Builds one scaled dataset ("facts" table) plus its shape description.
/// Deterministic in (spec.seed, dataset_index).
DatasetShape BuildDataset(const FleetSpec& spec, size_t dataset_index,
                          db::Database* out) {
  Rng rng(spec.seed * 7919 + dataset_index * 104729 + 29);
  std::set<std::string> used_words;
  DatasetShape shape;

  const size_t max_card = std::max<size_t>(spec.dim_cardinality, 2);
  for (size_t d = 0; d < spec.num_dim_columns; ++d) {
    DimSpec dim;
    dim.mention = FreshWord(&rng, &used_words);
    dim.column = Capitalize(dim.mention);
    const size_t card = 2 + rng.NextBounded(max_card - 1);
    double cum = 0;
    for (size_t v = 0; v < card; ++v) {
      dim.values.push_back(FreshWord(&rng, &used_words));
      cum += std::pow(static_cast<double>(v + 1), -spec.zipf_skew);
      dim.zipf_cdf.push_back(cum);
    }
    shape.dims.push_back(std::move(dim));
  }
  for (size_t m = 0; m < spec.num_measure_columns; ++m) {
    MeasureSpec measure;
    measure.mention = FreshWord(&rng, &used_words);
    measure.column = Capitalize(measure.mention);
    // Log-uniform magnitude so measures span counts-of-games to revenues.
    measure.hi = static_cast<int64_t>(
        std::llround(std::pow(10.0, 1.6 + 4.2 * rng.NextDouble())));
    measure.lo = std::max<int64_t>(1, measure.hi / 1000);
    shape.measures.push_back(std::move(measure));
  }

  db::Table t("facts");
  (void)t.AddColumn("RowId", db::ValueType::kLong);
  for (const auto& dim : shape.dims) {
    (void)t.AddColumn(dim.column, db::ValueType::kString);
  }
  for (const auto& measure : shape.measures) {
    (void)t.AddColumn(measure.column, db::ValueType::kLong);
  }
  for (size_t r = 0; r < spec.rows_per_dataset; ++r) {
    std::vector<db::Value> row;
    row.reserve(1 + shape.dims.size() + shape.measures.size());
    row.push_back(db::Value(static_cast<int64_t>(r + 1)));
    for (const auto& dim : shape.dims) {
      row.push_back(db::Value(dim.values[ZipfDraw(dim, &rng)]));
    }
    for (const auto& measure : shape.measures) {
      row.push_back(db::Value(rng.NextInt(measure.lo, measure.hi)));
    }
    (void)t.AddRow(std::move(row));
  }
  (void)out->AddTable(std::move(t));
  return shape;
}

// ---------------------------------------------------------------------------
// Claim and article synthesis
// ---------------------------------------------------------------------------

struct FleetClaim {
  db::SimpleAggregateQuery query;
  double true_value = 0;
  bool erroneous = false;
  Rendered rendered;
  std::string sentence;
};

/// The claim sentence: predicate values and column mentions always appear
/// verbatim (they are the decisive keywords), with an aggregation cue word
/// per function. One claim per sentence — fleet articles optimize for
/// deterministic detector alignment over prose variety.
std::string RenderFleetSentence(const FleetClaim& claim,
                                const DatasetShape& shape, Rng* rng) {
  const auto& q = claim.query;
  const std::string v = claim.rendered.text;
  auto mention = [&](const std::string& column) -> const std::string& {
    for (const auto& dim : shape.dims) {
      if (dim.column == column) return dim.mention;
    }
    for (const auto& measure : shape.measures) {
      if (measure.column == column) return measure.mention;
    }
    static const std::string kFallback = "value";
    return kFallback;
  };
  auto pred = [&](size_t i) {
    return "a " + mention(q.predicates[i].column.column) + " of " +
           q.predicates[i].value.ToString();
  };

  switch (q.fn) {
    case db::AggFn::kCount:
      if (q.predicates.empty()) {
        return "In total, the data set covers " + v + " records";
      }
      if (q.predicates.size() == 1) {
        switch (rng->NextBounded(3)) {
          case 0:
            return "Exactly " + v + " records had " + pred(0);
          case 1:
            return "There were " + v + " " +
                   q.predicates[0].value.ToString() + " records in the data";
          default:
            return "We counted " + v + " records where the " +
                   mention(q.predicates[0].column.column) + " was " +
                   q.predicates[0].value.ToString();
        }
      }
      return "Exactly " + v + " records combined " + pred(0) + " with " +
             pred(1);
    case db::AggFn::kCountDistinct:
      return "The records covered " + v + " different " +
             mention(q.agg_column.column) + "s";
    case db::AggFn::kSum:
      if (q.predicates.empty()) {
        return "The combined " + mention(q.agg_column.column) +
               " across all records reached " + v;
      }
      return "For records with " + pred(0) + ", the total " +
             mention(q.agg_column.column) + " reached " + v;
    case db::AggFn::kAvg:
      if (q.predicates.empty()) {
        return "The average " + mention(q.agg_column.column) +
               " across all records was " + v;
      }
      return "Among records with " + pred(0) + ", the average " +
             mention(q.agg_column.column) + " was " + v;
    case db::AggFn::kMin:
      return "The lowest " + mention(q.agg_column.column) +
             " recorded was " + v;
    case db::AggFn::kMax:
      return "The highest " + mention(q.agg_column.column) +
             " recorded was " + v;
    case db::AggFn::kPercentage:
      if (q.predicates.size() >= 2) {
        return "Among records with " + pred(1) + ", " + v +
               " percent had " + pred(0);
      }
      return v + " percent of the records had " + pred(0);
    case db::AggFn::kConditionalProbability:
      return "Among records with " + pred(0) + ", " + v + " percent had " +
             pred(1);
  }
  return "The value was " + v;
}

/// Builds one article's claims against its dataset. Deterministic in
/// (spec.seed, article_index) given the (deterministic) dataset.
std::vector<FleetClaim> BuildClaims(const FleetSpec& spec,
                                    const db::Database& db,
                                    const DatasetShape& shape, Rng* rng) {
  const db::Table& table = *db.FindTable("facts");
  db::QueryExecutor exec(&db);
  db::RelationCache* cache = &db.relation_cache();

  int64_t jitter = rng->NextInt(-2, 2);
  const size_t target = static_cast<size_t>(std::max<int64_t>(
      1, static_cast<int64_t>(spec.claims_per_article) + jitter));

  std::vector<FleetClaim> claims;
  std::set<std::string> used_queries;
  for (size_t k = 0; k < target; ++k) {
    for (int attempt = 0; attempt < 40; ++attempt) {
      db::SimpleAggregateQuery q;
      double roll = rng->NextDouble();
      int npreds = roll < 0.05 ? 0 : roll < 0.75 ? 1 : 2;
      double fn_roll = rng->NextDouble();
      if (fn_roll < 0.45) {
        q.fn = db::AggFn::kCount;
      } else if (fn_roll < 0.60 && npreds >= 1) {
        q.fn = db::AggFn::kPercentage;
      } else if (fn_roll < 0.75) {
        q.fn = db::AggFn::kAvg;
      } else if (fn_roll < 0.83) {
        q.fn = db::AggFn::kSum;
      } else if (fn_roll < 0.90) {
        q.fn = db::AggFn::kCountDistinct;
        npreds = 0;  // phrased without restrictions in our templates
      } else {
        q.fn = rng->NextBool(0.5) ? db::AggFn::kMax : db::AggFn::kMin;
        npreds = 0;
      }

      if (q.fn == db::AggFn::kCount) {
        q.agg_column = {"facts", ""};
      } else if (q.fn == db::AggFn::kCountDistinct) {
        const DimSpec& dim = shape.dims[rng->NextBounded(shape.dims.size())];
        q.agg_column = {"facts", dim.column};
      } else if (q.fn != db::AggFn::kPercentage) {
        const MeasureSpec& measure =
            shape.measures[rng->NextBounded(shape.measures.size())];
        q.agg_column = {"facts", measure.column};
      }

      // Predicates on distinct dimensions, with values realized in the data
      // (DistinctValues keeps the ground truth non-vacuous under skew).
      std::set<size_t> used_dims;
      bool pred_failed = false;
      for (int p = 0; p < npreds; ++p) {
        size_t d = rng->NextBounded(shape.dims.size());
        int guard = 0;
        while (used_dims.count(d) > 0 && guard++ < 5) {
          d = rng->NextBounded(shape.dims.size());
        }
        if (used_dims.count(d) > 0) {
          pred_failed = true;
          break;
        }
        used_dims.insert(d);
        const db::Column* column = table.FindColumn(shape.dims[d].column);
        const auto& distinct = column->DistinctValues();
        if (distinct.empty()) {
          pred_failed = true;
          break;
        }
        const db::Value& value = distinct[rng->NextBounded(distinct.size())];
        q.predicates.push_back(
            db::Predicate{{"facts", shape.dims[d].column}, value});
      }
      if (pred_failed) continue;
      if (q.fn == db::AggFn::kPercentage) {
        q.agg_column = q.predicates[0].column;
      }

      if (used_queries.count(q.CanonicalKey()) > 0) continue;
      auto result = exec.Execute(q, nullptr, nullptr, cache);
      if (!result.ok() || !result->has_value()) continue;
      double truth = **result;
      if (truth <= 0) continue;  // "zero X" reads oddly in prose
      if (RendersAsYear(truth)) continue;

      FleetClaim claim;
      claim.query = q;
      claim.true_value = truth;
      claim.erroneous = rng->NextBool(spec.error_rate);
      double reported = claim.erroneous ? Corrupt(truth, rng) : truth;
      claim.rendered = RenderValue(reported, rng);
      if (RendersAsYear(claim.rendered.claimed_value)) continue;
      // The flag must agree with the checker's own rounding of the surface
      // form — ground truth by construction, not by intent.
      claim.erroneous =
          !rounding::RoundsTo(truth, claim.rendered.claimed_value);
      claim.sentence = RenderFleetSentence(claim, shape, rng);
      used_queries.insert(q.CanonicalKey());
      claims.push_back(std::move(claim));
      break;
    }
  }
  return claims;
}

/// Lays the claims out as a titled, sectioned document. Deterministic in
/// (render_seed, claims) and re-runnable: validation re-renders after
/// dropping claims, so the layout rng must be independent of the claim rng.
void RenderArticleDocument(uint64_t render_seed, const DatasetShape& shape,
                           const std::vector<FleetClaim>& claims,
                           text::TextDocument* out) {
  Rng rng(render_seed);
  *out = text::TextDocument();
  out->set_title("What The " + Capitalize(shape.dims.front().mention) +
                 " Records Reveal");
  size_t pos = 0;
  while (pos < claims.size()) {
    size_t take = std::min<size_t>(
        claims.size() - pos, static_cast<size_t>(rng.NextInt(2, 4)));
    std::string headline = "Records";
    for (size_t i = pos; i < pos + take; ++i) {
      if (claims[i].query.predicates.empty()) continue;
      headline = "Records by " +
                 [&]() -> std::string {
                   const auto& column =
                       claims[i].query.predicates[0].column.column;
                   for (const auto& dim : shape.dims) {
                     if (dim.column == column) return dim.mention;
                   }
                   return std::string("group");
                 }();
      break;
    }
    int section = out->AddSection(Capitalize(headline));
    std::string paragraph;
    for (size_t i = pos; i < pos + take; ++i) {
      if (!paragraph.empty()) paragraph += ' ';
      paragraph += Capitalize(claims[i].sentence) + ".";
    }
    out->AddParagraph(paragraph, section);
    pos += take;
  }
}

/// Drops the claims the full checker disagrees with (wrong erroneous flag,
/// or only a partial verdict) and re-renders until a clean pass: emitted
/// articles carry ground truth the pipeline reproduces exactly — the
/// contract behind the fleet-smoke "zero erroneous verdicts" gate. The
/// checker is deterministic, so validation preserves corpus determinism.
void ValidateArticle(core::AggChecker* validator, uint64_t render_seed,
                     const DatasetShape& shape,
                     std::vector<FleetClaim>* claims,
                     text::TextDocument* document) {
  for (int round = 0; round < 4 && !claims->empty(); ++round) {
    auto report = validator->Check(*document);
    if (!report.ok()) return;
    if (report->verdicts.size() != claims->size()) return;
    std::vector<size_t> keep;
    keep.reserve(claims->size());
    for (size_t i = 0; i < claims->size(); ++i) {
      const core::ClaimVerdict& v = report->verdicts[i];
      if (v.partial || v.likely_erroneous != (*claims)[i].erroneous) continue;
      keep.push_back(i);
    }
    if (keep.size() == claims->size()) return;  // clean pass
    std::vector<FleetClaim> kept;
    kept.reserve(keep.size());
    for (size_t i : keep) kept.push_back(std::move((*claims)[i]));
    *claims = std::move(kept);
    RenderArticleDocument(render_seed, shape, *claims, document);
  }
}

FleetArticle BuildArticle(const FleetSpec& spec, size_t article_index,
                          size_t dataset_index, const db::Database& db,
                          const DatasetShape& shape,
                          core::AggChecker* validator) {
  Rng rng(spec.seed * 1000003 + article_index * 9176 + 71);
  FleetArticle article;
  article.dataset = dataset_index;
  article.name = strings::Format("fleet-%05zu", article_index);

  std::vector<FleetClaim> claims = BuildClaims(spec, db, shape, &rng);
  const uint64_t render_seed =
      spec.seed * 2654435761ull + article_index * 40503ull + 13;
  RenderArticleDocument(render_seed, shape, claims, &article.document);
  if (validator != nullptr) {
    ValidateArticle(validator, render_seed, shape, &claims,
                    &article.document);
  }

  for (const FleetClaim& claim : claims) {
    GroundTruthClaim g;
    g.claimed_value = claim.rendered.claimed_value;
    g.query = claim.query;
    g.true_value = claim.true_value;
    g.is_erroneous = claim.erroneous;
    article.ground_truth.push_back(std::move(g));
  }
  return article;
}

}  // namespace

FleetCorpus GenerateFleet(const FleetSpec& spec) {
  FleetCorpus corpus;
  const size_t num_datasets = std::max<size_t>(spec.num_datasets, 1);
  std::vector<DatasetShape> shapes;
  shapes.reserve(num_datasets);
  for (size_t d = 0; d < num_datasets; ++d) {
    auto db = std::make_unique<db::Database>(
        strings::Format("fleet-db-%02zu", d));
    shapes.push_back(BuildDataset(spec, d, db.get()));
    corpus.datasets.push_back(std::move(db));
  }

  // One validator per dataset: each article is checked during generation
  // and claims the pipeline cannot reproduce are dropped (ValidateArticle).
  // A persistent instance per dataset keeps the catalog and eval caches
  // warm across articles; reports are bit-identical warm or cold.
  std::vector<std::unique_ptr<core::AggChecker>> validators;
  for (size_t d = 0; d < num_datasets; ++d) {
    auto checker = core::AggChecker::Create(corpus.datasets[d].get());
    validators.push_back(checker.ok()
                             ? std::make_unique<core::AggChecker>(
                                   std::move(*checker))
                             : nullptr);
  }

  corpus.articles.reserve(spec.num_articles);
  for (size_t a = 0; a < spec.num_articles; ++a) {
    // Chaos hook: an injected emit fault drops this article only; the
    // generator keeps going and surviving articles are byte-identical to
    // their fault-free twins (per-article rng streams are independent).
    Status emit_status;
    AGG_FAULT_POINT_STATUS("fleet.generator.emit", emit_status);
    if (!emit_status.ok()) {
      ++corpus.articles_dropped;
      continue;
    }
    const size_t d = a % num_datasets;
    corpus.articles.push_back(BuildArticle(spec, a, d, *corpus.datasets[d],
                                           shapes[d], validators[d].get()));
  }
  return corpus;
}

std::string FleetCorpusFingerprint(const FleetCorpus& corpus) {
  std::string out;
  auto bits = [](double v) { return strings::Format("%a", v); };
  for (size_t d = 0; d < corpus.datasets.size(); ++d) {
    const db::Database& db = *corpus.datasets[d];
    out += strings::Format("dataset %zu %s\n", d, db.name().c_str());
    for (size_t t = 0; t < db.num_tables(); ++t) {
      const db::Table& table = db.table(t);
      out += strings::Format("table %s rows=%zu\n", table.name().c_str(),
                             table.num_rows());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const db::Column& column = table.column(c);
        out += strings::Format("column %s type=%d\n", column.name().c_str(),
                               static_cast<int>(column.type()));
        for (const db::Value& v : column.values()) {
          out += v.ToString();
          out += '|';
        }
        out += '\n';
      }
    }
  }
  for (const FleetArticle& article : corpus.articles) {
    out += strings::Format("article %s dataset=%zu title=%s\n",
                           article.name.c_str(), article.dataset,
                           article.document.title().c_str());
    for (const auto& section : article.document.sections()) {
      out += strings::Format("section %s\n", section.headline.c_str());
    }
    for (const auto& sentence : article.document.sentences()) {
      out += sentence.text;
      out += '\n';
    }
    for (const GroundTruthClaim& g : article.ground_truth) {
      out += strings::Format(
          "claim %s claimed=%s true=%s err=%d\n",
          g.query.CanonicalKey().c_str(), bits(g.claimed_value).c_str(),
          bits(g.true_value).c_str(), g.is_erroneous ? 1 : 0);
    }
  }
  return out;
}

}  // namespace corpus
}  // namespace aggchecker
