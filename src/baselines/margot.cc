#include "baselines/margot.h"

#include <unordered_set>

namespace aggchecker {
namespace baselines {

size_t CountArgumentativeClaims(const text::TextDocument& doc) {
  static const std::unordered_set<std::string> kCues = {
      "because", "therefore", "however",  "although", "clearly", "shows",
      "suggests", "indicates", "argues",  "believe",  "likely",  "should",
      "must",     "more",      "less",    "most",     "only",    "even",
      "despite",  "evidence",  "finding", "overall",  "exactly", "tolerant",
  };
  size_t count = 0;
  for (const text::Sentence& s : doc.sentences()) {
    for (const ir::Token& t : s.tokens) {
      if (kCues.count(t.text) > 0) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace baselines
}  // namespace aggchecker
