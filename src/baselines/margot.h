#pragma once

#include <cstddef>

#include "text/document.h"

namespace aggchecker {
namespace baselines {

/// \brief Argument-mining claim counter in the style of MARGOT (§B).
///
/// The paper uses MARGOT only to show that argumentative claims are about
/// as frequent as AggChecker's numerical-aggregate claims. This detector
/// counts sentences containing argumentative cues (stance verbs, causal
/// connectives, comparatives with evidence markers).
size_t CountArgumentativeClaims(const text::TextDocument& doc);

}  // namespace baselines
}  // namespace aggchecker
