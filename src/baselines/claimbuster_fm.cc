#include "baselines/claimbuster_fm.h"

#include "ir/tokenizer.h"

namespace aggchecker {
namespace baselines {

namespace {

struct RepoStatement {
  const char* text;
  bool is_true;
};

/// A repository in the style of fact-check archives: popular claims about
/// politics, economy, sports, and health. Deliberately disjoint from the
/// corpus's data-set-specific claims.
const std::vector<RepoStatement>& Repository() {
  static const std::vector<RepoStatement>* kRepo = new std::vector<
      RepoStatement>{
      {"the unemployment rate fell to its lowest level in decades", true},
      {"the president signed the largest tax cut in history", false},
      {"crime rates have doubled in major cities over the past year", false},
      {"the average family pays thousands more in premiums", false},
      {"the national debt increased under the last administration", true},
      {"millions of immigrants voted illegally in the election", false},
      {"the state added jobs for sixty straight months", true},
      {"wages have been flat for american workers since the recession",
       true},
      {"the trade deficit with china hit a record high", true},
      {"the murder rate is the highest it has been in decades", false},
      {"the governor cut education funding by a billion dollars", false},
      {"the team won more championships than any other franchise", true},
      {"the quarterback threw the most touchdowns in league history",
       false},
      {"the olympic games generated a profit for the host city", false},
      {"the league expanded its playoff format to more teams", true},
      {"the star player signed the richest contract in sports", true},
      {"vaccines cause more harm than the diseases they prevent", false},
      {"the flu kills tens of thousands of americans each year", true},
      {"the new drug reduces the risk of heart attack by half", false},
      {"smoking rates among teenagers have fallen to record lows", true},
      {"the hospital charged ten times the fair price for care", false},
      {"the senator voted against the military funding bill", true},
      {"the mayor doubled spending on homelessness programs", true},
      {"the city has the worst traffic congestion in the nation", false},
      {"electric car sales surpassed diesel sales last quarter", true},
      {"the company paid no federal taxes on billions in profit", true},
      {"the minimum wage increase destroyed thousands of jobs", false},
      {"the stock market hit an all time high this month", true},
      {"inflation is rising at the fastest pace in a generation", true},
      {"the country imports most of its oil from the middle east", false},
      {"renewable energy is now cheaper than coal power", true},
      {"the airline canceled more flights than any competitor", false},
      {"the average commute time increased by ten minutes", false},
      {"college tuition has tripled over the past two decades", true},
      {"student debt exceeds credit card debt nationwide", true},
      {"the census shows the population of the state declined", false},
      {"the wildfire season was the most destructive on record", true},
      {"the hurricane caused billions of dollars in damages", true},
      {"the drought is the worst the region has seen in a century", false},
      {"sea levels are rising faster than previously predicted", true},
  };
  return *kRepo;
}

}  // namespace

ClaimBusterFm::ClaimBusterFm(Aggregation aggregation)
    : aggregation_(aggregation) {
  for (const RepoStatement& s : Repository()) {
    std::vector<ir::InvertedIndex::TermWeight> terms;
    for (const std::string& token : ir::Tokenize(s.text)) {
      if (!ir::IsStopWord(token)) terms.push_back({token, 1.0});
    }
    index_.AddDocument(terms);
    labels_.push_back(s.is_true);
  }
}

bool ClaimBusterFm::CheckClaim(const text::TextDocument& doc,
                               const claims::Claim& claim) const {
  std::vector<ir::InvertedIndex::TermWeight> query;
  for (const ir::Token& token : doc.sentence(claim.sentence).tokens) {
    if (!ir::IsStopWord(token.text)) query.push_back({token.text, 1.0});
  }
  auto hits = index_.Search(query, 5);
  if (hits.empty()) {
    // No match at all: ClaimBuster-FM reports the claim as unverifiable;
    // for the precision/recall protocol that counts as "not erroneous".
    return false;
  }
  if (aggregation_ == Aggregation::kMax) {
    return !labels_[static_cast<size_t>(hits[0].doc_id)];
  }
  double true_mass = 0, false_mass = 0;
  for (const auto& hit : hits) {
    if (labels_[static_cast<size_t>(hit.doc_id)]) {
      true_mass += hit.score;
    } else {
      false_mass += hit.score;
    }
  }
  return false_mass > true_mass;
}

std::vector<bool> ClaimBusterFm::CheckDocument(
    const text::TextDocument& doc,
    const std::vector<claims::Claim>& claims) const {
  std::vector<bool> out;
  out.reserve(claims.size());
  for (const auto& claim : claims) out.push_back(CheckClaim(doc, claim));
  return out;
}

}  // namespace baselines
}  // namespace aggchecker
