#include "baselines/nalir.h"

#include <algorithm>
#include <set>

#include "text/dependency_proxy.h"
#include "text/number_parser.h"
#include "util/rounding.h"
#include "util/strings.h"

namespace aggchecker {
namespace baselines {

namespace {

/// Explicit aggregation cue words NaLIR-style command-token matching needs.
std::optional<db::AggFn> ExplicitFunction(
    const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    if (t == "average" || t == "mean") return db::AggFn::kAvg;
    if (t == "percent" || t == "percentage") return db::AggFn::kPercentage;
    if (t == "total" || t == "sum" || t == "combined") return db::AggFn::kSum;
    if (t == "highest" || t == "maximum" || t == "most") {
      return db::AggFn::kMax;
    }
    if (t == "lowest" || t == "minimum" || t == "fewest") {
      return db::AggFn::kMin;
    }
    if (t == "different" || t == "distinct" || t == "unique") {
      return db::AggFn::kCountDistinct;
    }
    if (t == "counted" || t == "count" || t == "number" || t == "numbered") {
      return db::AggFn::kCount;
    }
  }
  return std::nullopt;
}

}  // namespace

NalirOutcome NalirBaseline::CheckClaim(const text::TextDocument& doc,
                                       const claims::Claim& claim) {
  NalirOutcome outcome;
  ++stats_.attempts;
  const text::Sentence& sentence = doc.sentence(claim.sentence);

  // --- Question generation: fails on long or multi-claim sentences (the
  // paper: less than half of sentences yield usable questions). ---
  if (sentence.tokens.size() > 24) return outcome;
  auto numbers = text::FindNumbers(sentence.text, sentence.tokens);
  size_t claim_like = 0;
  for (const auto& n : numbers) {
    if (!n.is_ordinal && !n.looks_like_year) ++claim_like;
  }
  if (claim_like > 1) return outcome;  // multiple claims confuse the QG
  outcome.question_generated = true;
  ++stats_.questions;

  // --- Translation: the generated question covers only the claim's own
  // clause (question generation clips trailing modifiers), with exact token
  // matching against the schema and an explicit aggregation cue required —
  // no document context, no synonyms, no probabilistic ranking. ---
  text::DependencyProxy proxy(sentence.text);
  const int claim_clause = proxy.clause_of(
      std::min(claim.number.token_begin, proxy.tokens().size() - 1));
  std::vector<std::string> clause_tokens;
  for (size_t t = 0; t < sentence.tokens.size(); ++t) {
    // The claimed value itself is the answer, not a query token.
    if (t >= claim.number.token_begin && t < claim.number.token_end) {
      continue;
    }
    // Keep the claim clause and its immediate neighbor (QG keeps the verb
    // phrase but drops further subordinate clauses).
    if (std::abs(proxy.clause_of(t) - claim_clause) > 1) continue;
    clause_tokens.push_back(sentence.tokens[t].text);
  }

  auto fn = ExplicitFunction(clause_tokens);
  if (!fn.has_value()) return outcome;

  // Exact-match predicate: a clause token equal to a database literal.
  // NaLIR maps parse-tree nodes one-to-one; if the sentence's tokens match
  // literals on several different columns, the node mapping is ambiguous
  // and the translation fails (a frequent failure mode the paper reports).
  std::optional<db::Predicate> predicate;
  std::set<std::string> matched_columns;
  const auto& pred_frags =
      catalog_->fragments(fragments::FragmentType::kPredicate);
  for (const std::string& token : clause_tokens) {
    for (const auto& frag : pred_frags) {
      if (strings::ToLower(frag.value.ToString()) == token) {
        matched_columns.insert(strings::ToLower(frag.column.ToString()));
        if (!predicate.has_value()) {
          predicate = db::Predicate{frag.column, frag.value};
        }
      }
    }
  }
  if (matched_columns.size() > 1) return outcome;  // ambiguous mapping

  // Exact-match aggregation column: a clause token equal to a column name.
  std::optional<db::ColumnRef> agg_column;
  const auto& col_frags =
      catalog_->fragments(fragments::FragmentType::kAggColumn);
  for (const std::string& token : clause_tokens) {
    for (const auto& frag : col_frags) {
      if (!frag.is_star_column() &&
          strings::ToLower(frag.column.column) == token) {
        agg_column = frag.column;
        break;
      }
    }
    if (agg_column.has_value()) break;
  }

  db::SimpleAggregateQuery query;
  query.fn = *fn;
  if (db::RequiresColumn(*fn)) {
    if (!agg_column.has_value()) return outcome;  // no column mentioned
    query.agg_column = *agg_column;
  } else if (*fn == db::AggFn::kPercentage) {
    if (!predicate.has_value()) return outcome;
    query.agg_column = predicate->column;
  } else {
    query.agg_column = db::ColumnRef{db_->table(0).name(), ""};
  }
  if (predicate.has_value()) query.predicates.push_back(*predicate);

  outcome.translated = true;
  ++stats_.translations;

  auto result = engine_.Evaluate(query);
  if (!result.has_value()) return outcome;
  outcome.single_value = true;
  ++stats_.single_values;
  outcome.result = result;
  outcome.flagged_erroneous =
      !rounding::RoundsTo(*result, claim.claimed_value());
  return outcome;
}

}  // namespace baselines
}  // namespace aggchecker
