#pragma once

#include <optional>
#include <string>
#include <vector>

#include "claims/claim.h"
#include "db/eval_engine.h"
#include "fragments/catalog.h"
#include "text/document.h"

namespace aggchecker {
namespace baselines {

/// \brief Outcome of one ClaimBuster-KB + NaLIR verification attempt.
struct NalirOutcome {
  bool question_generated = false;  ///< question generation succeeded
  bool translated = false;          ///< an SQL query was produced
  bool single_value = false;        ///< the query returned a single number
  std::optional<double> result;
  bool flagged_erroneous = false;
};

/// \brief NL-query-interface baseline in the style of ClaimBuster-KB +
/// NaLIR (§7.3).
///
/// Mirrors the structural constraints the paper reports as bottlenecks:
/// question generation fails on long multi-claim sentences; translation
/// requires explicit aggregation cue words and exact column/value token
/// matches in the claim clause itself (no document context, no synonym
/// expansion, no probabilistic ranking); a claim verifies only when the one
/// translated query returns a single numerical value matching the text.
class NalirBaseline {
 public:
  NalirBaseline(const db::Database* db,
                const fragments::FragmentCatalog* catalog)
      : db_(db), catalog_(catalog), engine_(db, db::EvalStrategy::kNaive) {}

  NalirOutcome CheckClaim(const text::TextDocument& doc,
                          const claims::Claim& claim);

  /// Aggregate translation statistics over all CheckClaim calls.
  struct Stats {
    size_t attempts = 0;
    size_t questions = 0;
    size_t translations = 0;
    size_t single_values = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  const db::Database* db_;
  const fragments::FragmentCatalog* catalog_;
  db::EvalEngine engine_;
  Stats stats_;
};

}  // namespace baselines
}  // namespace aggchecker
