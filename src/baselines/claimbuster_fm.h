#pragma once

#include <string>
#include <vector>

#include "claims/claim.h"
#include "ir/inverted_index.h"
#include "text/document.h"

namespace aggchecker {
namespace baselines {

/// \brief Fact-matching baseline modeled on ClaimBuster-FM (§7.3).
///
/// Matches each claim sentence against a repository of previously verified
/// statements (popular political/health/sports facts with truth labels) via
/// TF-IDF similarity, then aggregates the matched labels. Because the
/// repository covers popular claims but not the "long tail" of claims about
/// arbitrary data sets, matches on our corpus are spurious — exactly the
/// failure mode the paper reports for this baseline.
class ClaimBusterFm {
 public:
  enum class Aggregation {
    kMax,           ///< truth label of the single most similar statement
    kMajorityVote,  ///< similarity-weighted vote over the top matches
  };

  explicit ClaimBusterFm(Aggregation aggregation);

  /// True = the baseline marks this claim as erroneous.
  bool CheckClaim(const text::TextDocument& doc,
                  const claims::Claim& claim) const;

  /// Flags for every claim of a document.
  std::vector<bool> CheckDocument(const text::TextDocument& doc,
                                  const std::vector<claims::Claim>& claims)
      const;

  size_t repository_size() const { return labels_.size(); }

 private:
  Aggregation aggregation_;
  ir::InvertedIndex index_;
  std::vector<bool> labels_;  ///< true = repository statement is TRUE
};

}  // namespace baselines
}  // namespace aggchecker
