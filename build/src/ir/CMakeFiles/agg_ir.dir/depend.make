# Empty dependencies file for agg_ir.
# This may be replaced when dependencies are built.
