file(REMOVE_RECURSE
  "libagg_ir.a"
)
