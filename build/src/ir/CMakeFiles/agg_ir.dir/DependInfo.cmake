
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/inverted_index.cc" "src/ir/CMakeFiles/agg_ir.dir/inverted_index.cc.o" "gcc" "src/ir/CMakeFiles/agg_ir.dir/inverted_index.cc.o.d"
  "/root/repo/src/ir/porter_stemmer.cc" "src/ir/CMakeFiles/agg_ir.dir/porter_stemmer.cc.o" "gcc" "src/ir/CMakeFiles/agg_ir.dir/porter_stemmer.cc.o.d"
  "/root/repo/src/ir/synonyms.cc" "src/ir/CMakeFiles/agg_ir.dir/synonyms.cc.o" "gcc" "src/ir/CMakeFiles/agg_ir.dir/synonyms.cc.o.d"
  "/root/repo/src/ir/tokenizer.cc" "src/ir/CMakeFiles/agg_ir.dir/tokenizer.cc.o" "gcc" "src/ir/CMakeFiles/agg_ir.dir/tokenizer.cc.o.d"
  "/root/repo/src/ir/word_splitter.cc" "src/ir/CMakeFiles/agg_ir.dir/word_splitter.cc.o" "gcc" "src/ir/CMakeFiles/agg_ir.dir/word_splitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
