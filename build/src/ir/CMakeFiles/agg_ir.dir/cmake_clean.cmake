file(REMOVE_RECURSE
  "CMakeFiles/agg_ir.dir/inverted_index.cc.o"
  "CMakeFiles/agg_ir.dir/inverted_index.cc.o.d"
  "CMakeFiles/agg_ir.dir/porter_stemmer.cc.o"
  "CMakeFiles/agg_ir.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/agg_ir.dir/synonyms.cc.o"
  "CMakeFiles/agg_ir.dir/synonyms.cc.o.d"
  "CMakeFiles/agg_ir.dir/tokenizer.cc.o"
  "CMakeFiles/agg_ir.dir/tokenizer.cc.o.d"
  "CMakeFiles/agg_ir.dir/word_splitter.cc.o"
  "CMakeFiles/agg_ir.dir/word_splitter.cc.o.d"
  "libagg_ir.a"
  "libagg_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
