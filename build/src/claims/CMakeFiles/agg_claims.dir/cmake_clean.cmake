file(REMOVE_RECURSE
  "CMakeFiles/agg_claims.dir/claim_detector.cc.o"
  "CMakeFiles/agg_claims.dir/claim_detector.cc.o.d"
  "CMakeFiles/agg_claims.dir/keyword_extractor.cc.o"
  "CMakeFiles/agg_claims.dir/keyword_extractor.cc.o.d"
  "CMakeFiles/agg_claims.dir/relevance_scorer.cc.o"
  "CMakeFiles/agg_claims.dir/relevance_scorer.cc.o.d"
  "libagg_claims.a"
  "libagg_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
