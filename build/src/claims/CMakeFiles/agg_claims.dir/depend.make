# Empty dependencies file for agg_claims.
# This may be replaced when dependencies are built.
