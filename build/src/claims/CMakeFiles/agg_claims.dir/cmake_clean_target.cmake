file(REMOVE_RECURSE
  "libagg_claims.a"
)
