
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fragments/catalog.cc" "src/fragments/CMakeFiles/agg_fragments.dir/catalog.cc.o" "gcc" "src/fragments/CMakeFiles/agg_fragments.dir/catalog.cc.o.d"
  "/root/repo/src/fragments/data_dictionary.cc" "src/fragments/CMakeFiles/agg_fragments.dir/data_dictionary.cc.o" "gcc" "src/fragments/CMakeFiles/agg_fragments.dir/data_dictionary.cc.o.d"
  "/root/repo/src/fragments/fragment.cc" "src/fragments/CMakeFiles/agg_fragments.dir/fragment.cc.o" "gcc" "src/fragments/CMakeFiles/agg_fragments.dir/fragment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/agg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/agg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
