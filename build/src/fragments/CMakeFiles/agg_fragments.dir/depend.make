# Empty dependencies file for agg_fragments.
# This may be replaced when dependencies are built.
