file(REMOVE_RECURSE
  "CMakeFiles/agg_fragments.dir/catalog.cc.o"
  "CMakeFiles/agg_fragments.dir/catalog.cc.o.d"
  "CMakeFiles/agg_fragments.dir/data_dictionary.cc.o"
  "CMakeFiles/agg_fragments.dir/data_dictionary.cc.o.d"
  "CMakeFiles/agg_fragments.dir/fragment.cc.o"
  "CMakeFiles/agg_fragments.dir/fragment.cc.o.d"
  "libagg_fragments.a"
  "libagg_fragments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
