file(REMOVE_RECURSE
  "libagg_fragments.a"
)
