
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/dependency_proxy.cc" "src/text/CMakeFiles/agg_text.dir/dependency_proxy.cc.o" "gcc" "src/text/CMakeFiles/agg_text.dir/dependency_proxy.cc.o.d"
  "/root/repo/src/text/document.cc" "src/text/CMakeFiles/agg_text.dir/document.cc.o" "gcc" "src/text/CMakeFiles/agg_text.dir/document.cc.o.d"
  "/root/repo/src/text/number_parser.cc" "src/text/CMakeFiles/agg_text.dir/number_parser.cc.o" "gcc" "src/text/CMakeFiles/agg_text.dir/number_parser.cc.o.d"
  "/root/repo/src/text/sentence_splitter.cc" "src/text/CMakeFiles/agg_text.dir/sentence_splitter.cc.o" "gcc" "src/text/CMakeFiles/agg_text.dir/sentence_splitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/agg_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
