file(REMOVE_RECURSE
  "CMakeFiles/agg_text.dir/dependency_proxy.cc.o"
  "CMakeFiles/agg_text.dir/dependency_proxy.cc.o.d"
  "CMakeFiles/agg_text.dir/document.cc.o"
  "CMakeFiles/agg_text.dir/document.cc.o.d"
  "CMakeFiles/agg_text.dir/number_parser.cc.o"
  "CMakeFiles/agg_text.dir/number_parser.cc.o.d"
  "CMakeFiles/agg_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/agg_text.dir/sentence_splitter.cc.o.d"
  "libagg_text.a"
  "libagg_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
