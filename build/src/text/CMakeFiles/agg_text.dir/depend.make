# Empty dependencies file for agg_text.
# This may be replaced when dependencies are built.
