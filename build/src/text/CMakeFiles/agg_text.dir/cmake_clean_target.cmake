file(REMOVE_RECURSE
  "libagg_text.a"
)
