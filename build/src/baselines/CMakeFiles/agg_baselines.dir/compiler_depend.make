# Empty compiler generated dependencies file for agg_baselines.
# This may be replaced when dependencies are built.
