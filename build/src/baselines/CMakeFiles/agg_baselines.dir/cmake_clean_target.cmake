file(REMOVE_RECURSE
  "libagg_baselines.a"
)
