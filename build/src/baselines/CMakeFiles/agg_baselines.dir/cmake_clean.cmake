file(REMOVE_RECURSE
  "CMakeFiles/agg_baselines.dir/claimbuster_fm.cc.o"
  "CMakeFiles/agg_baselines.dir/claimbuster_fm.cc.o.d"
  "CMakeFiles/agg_baselines.dir/margot.cc.o"
  "CMakeFiles/agg_baselines.dir/margot.cc.o.d"
  "CMakeFiles/agg_baselines.dir/nalir.cc.o"
  "CMakeFiles/agg_baselines.dir/nalir.cc.o.d"
  "libagg_baselines.a"
  "libagg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
