# Empty compiler generated dependencies file for agg_db.
# This may be replaced when dependencies are built.
