
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/aggregate.cc" "src/db/CMakeFiles/agg_db.dir/aggregate.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/aggregate.cc.o.d"
  "/root/repo/src/db/column.cc" "src/db/CMakeFiles/agg_db.dir/column.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/column.cc.o.d"
  "/root/repo/src/db/cube.cc" "src/db/CMakeFiles/agg_db.dir/cube.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/cube.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/agg_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/database.cc.o.d"
  "/root/repo/src/db/eval_engine.cc" "src/db/CMakeFiles/agg_db.dir/eval_engine.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/eval_engine.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/db/CMakeFiles/agg_db.dir/executor.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/executor.cc.o.d"
  "/root/repo/src/db/joined_relation.cc" "src/db/CMakeFiles/agg_db.dir/joined_relation.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/joined_relation.cc.o.d"
  "/root/repo/src/db/query.cc" "src/db/CMakeFiles/agg_db.dir/query.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/query.cc.o.d"
  "/root/repo/src/db/sql_parser.cc" "src/db/CMakeFiles/agg_db.dir/sql_parser.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/sql_parser.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/agg_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/table.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/agg_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/agg_db.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/agg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
