file(REMOVE_RECURSE
  "libagg_db.a"
)
