file(REMOVE_RECURSE
  "CMakeFiles/agg_db.dir/aggregate.cc.o"
  "CMakeFiles/agg_db.dir/aggregate.cc.o.d"
  "CMakeFiles/agg_db.dir/column.cc.o"
  "CMakeFiles/agg_db.dir/column.cc.o.d"
  "CMakeFiles/agg_db.dir/cube.cc.o"
  "CMakeFiles/agg_db.dir/cube.cc.o.d"
  "CMakeFiles/agg_db.dir/database.cc.o"
  "CMakeFiles/agg_db.dir/database.cc.o.d"
  "CMakeFiles/agg_db.dir/eval_engine.cc.o"
  "CMakeFiles/agg_db.dir/eval_engine.cc.o.d"
  "CMakeFiles/agg_db.dir/executor.cc.o"
  "CMakeFiles/agg_db.dir/executor.cc.o.d"
  "CMakeFiles/agg_db.dir/joined_relation.cc.o"
  "CMakeFiles/agg_db.dir/joined_relation.cc.o.d"
  "CMakeFiles/agg_db.dir/query.cc.o"
  "CMakeFiles/agg_db.dir/query.cc.o.d"
  "CMakeFiles/agg_db.dir/sql_parser.cc.o"
  "CMakeFiles/agg_db.dir/sql_parser.cc.o.d"
  "CMakeFiles/agg_db.dir/table.cc.o"
  "CMakeFiles/agg_db.dir/table.cc.o.d"
  "CMakeFiles/agg_db.dir/value.cc.o"
  "CMakeFiles/agg_db.dir/value.cc.o.d"
  "libagg_db.a"
  "libagg_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
