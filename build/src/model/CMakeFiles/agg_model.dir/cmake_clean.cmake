file(REMOVE_RECURSE
  "CMakeFiles/agg_model.dir/candidate_space.cc.o"
  "CMakeFiles/agg_model.dir/candidate_space.cc.o.d"
  "CMakeFiles/agg_model.dir/priors.cc.o"
  "CMakeFiles/agg_model.dir/priors.cc.o.d"
  "CMakeFiles/agg_model.dir/scope.cc.o"
  "CMakeFiles/agg_model.dir/scope.cc.o.d"
  "CMakeFiles/agg_model.dir/translator.cc.o"
  "CMakeFiles/agg_model.dir/translator.cc.o.d"
  "libagg_model.a"
  "libagg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
