file(REMOVE_RECURSE
  "libagg_model.a"
)
