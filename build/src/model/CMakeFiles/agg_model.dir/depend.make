# Empty dependencies file for agg_model.
# This may be replaced when dependencies are built.
