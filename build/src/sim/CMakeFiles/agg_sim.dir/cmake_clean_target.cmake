file(REMOVE_RECURSE
  "libagg_sim.a"
)
