# Empty dependencies file for agg_sim.
# This may be replaced when dependencies are built.
