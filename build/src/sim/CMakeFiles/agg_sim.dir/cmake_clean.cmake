file(REMOVE_RECURSE
  "CMakeFiles/agg_sim.dir/crowd_study.cc.o"
  "CMakeFiles/agg_sim.dir/crowd_study.cc.o.d"
  "CMakeFiles/agg_sim.dir/user_study.cc.o"
  "CMakeFiles/agg_sim.dir/user_study.cc.o.d"
  "libagg_sim.a"
  "libagg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
