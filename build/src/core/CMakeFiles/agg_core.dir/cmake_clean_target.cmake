file(REMOVE_RECURSE
  "libagg_core.a"
)
