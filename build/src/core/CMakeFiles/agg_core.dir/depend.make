# Empty dependencies file for agg_core.
# This may be replaced when dependencies are built.
