file(REMOVE_RECURSE
  "CMakeFiles/agg_core.dir/aggchecker.cc.o"
  "CMakeFiles/agg_core.dir/aggchecker.cc.o.d"
  "CMakeFiles/agg_core.dir/interactive_session.cc.o"
  "CMakeFiles/agg_core.dir/interactive_session.cc.o.d"
  "CMakeFiles/agg_core.dir/markup.cc.o"
  "CMakeFiles/agg_core.dir/markup.cc.o.d"
  "CMakeFiles/agg_core.dir/query_describer.cc.o"
  "CMakeFiles/agg_core.dir/query_describer.cc.o.d"
  "CMakeFiles/agg_core.dir/report_writer.cc.o"
  "CMakeFiles/agg_core.dir/report_writer.cc.o.d"
  "libagg_core.a"
  "libagg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
