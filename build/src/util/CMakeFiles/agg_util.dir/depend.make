# Empty dependencies file for agg_util.
# This may be replaced when dependencies are built.
