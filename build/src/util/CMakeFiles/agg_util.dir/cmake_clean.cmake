file(REMOVE_RECURSE
  "CMakeFiles/agg_util.dir/csv.cc.o"
  "CMakeFiles/agg_util.dir/csv.cc.o.d"
  "CMakeFiles/agg_util.dir/rng.cc.o"
  "CMakeFiles/agg_util.dir/rng.cc.o.d"
  "CMakeFiles/agg_util.dir/rounding.cc.o"
  "CMakeFiles/agg_util.dir/rounding.cc.o.d"
  "CMakeFiles/agg_util.dir/status.cc.o"
  "CMakeFiles/agg_util.dir/status.cc.o.d"
  "CMakeFiles/agg_util.dir/strings.cc.o"
  "CMakeFiles/agg_util.dir/strings.cc.o.d"
  "libagg_util.a"
  "libagg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
