file(REMOVE_RECURSE
  "libagg_util.a"
)
