
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/agg_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/embedded_articles.cc" "src/corpus/CMakeFiles/agg_corpus.dir/embedded_articles.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/embedded_articles.cc.o.d"
  "/root/repo/src/corpus/export.cc" "src/corpus/CMakeFiles/agg_corpus.dir/export.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/export.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/agg_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/generator.cc.o.d"
  "/root/repo/src/corpus/harness.cc" "src/corpus/CMakeFiles/agg_corpus.dir/harness.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/harness.cc.o.d"
  "/root/repo/src/corpus/metrics.cc" "src/corpus/CMakeFiles/agg_corpus.dir/metrics.cc.o" "gcc" "src/corpus/CMakeFiles/agg_corpus.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/agg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/claims/CMakeFiles/agg_claims.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/agg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fragments/CMakeFiles/agg_fragments.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/agg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/agg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/agg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
