file(REMOVE_RECURSE
  "CMakeFiles/agg_corpus.dir/corpus.cc.o"
  "CMakeFiles/agg_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/agg_corpus.dir/embedded_articles.cc.o"
  "CMakeFiles/agg_corpus.dir/embedded_articles.cc.o.d"
  "CMakeFiles/agg_corpus.dir/export.cc.o"
  "CMakeFiles/agg_corpus.dir/export.cc.o.d"
  "CMakeFiles/agg_corpus.dir/generator.cc.o"
  "CMakeFiles/agg_corpus.dir/generator.cc.o.d"
  "CMakeFiles/agg_corpus.dir/harness.cc.o"
  "CMakeFiles/agg_corpus.dir/harness.cc.o.d"
  "CMakeFiles/agg_corpus.dir/metrics.cc.o"
  "CMakeFiles/agg_corpus.dir/metrics.cc.o.d"
  "libagg_corpus.a"
  "libagg_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
