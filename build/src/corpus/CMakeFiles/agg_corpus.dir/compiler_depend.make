# Empty compiler generated dependencies file for agg_corpus.
# This may be replaced when dependencies are built.
