file(REMOVE_RECURSE
  "libagg_corpus.a"
)
