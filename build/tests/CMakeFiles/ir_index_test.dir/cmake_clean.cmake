file(REMOVE_RECURSE
  "CMakeFiles/ir_index_test.dir/ir_index_test.cpp.o"
  "CMakeFiles/ir_index_test.dir/ir_index_test.cpp.o.d"
  "ir_index_test"
  "ir_index_test.pdb"
  "ir_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
