# Empty dependencies file for ir_index_test.
# This may be replaced when dependencies are built.
