file(REMOVE_RECURSE
  "CMakeFiles/db_table_test.dir/db_table_test.cpp.o"
  "CMakeFiles/db_table_test.dir/db_table_test.cpp.o.d"
  "db_table_test"
  "db_table_test.pdb"
  "db_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
