# Empty dependencies file for ir_tokenizer_test.
# This may be replaced when dependencies are built.
