file(REMOVE_RECURSE
  "CMakeFiles/ir_tokenizer_test.dir/ir_tokenizer_test.cpp.o"
  "CMakeFiles/ir_tokenizer_test.dir/ir_tokenizer_test.cpp.o.d"
  "ir_tokenizer_test"
  "ir_tokenizer_test.pdb"
  "ir_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
