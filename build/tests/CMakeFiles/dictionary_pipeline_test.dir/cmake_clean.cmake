file(REMOVE_RECURSE
  "CMakeFiles/dictionary_pipeline_test.dir/dictionary_pipeline_test.cpp.o"
  "CMakeFiles/dictionary_pipeline_test.dir/dictionary_pipeline_test.cpp.o.d"
  "dictionary_pipeline_test"
  "dictionary_pipeline_test.pdb"
  "dictionary_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionary_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
