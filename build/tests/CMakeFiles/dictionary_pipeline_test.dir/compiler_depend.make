# Empty compiler generated dependencies file for dictionary_pipeline_test.
# This may be replaced when dependencies are built.
