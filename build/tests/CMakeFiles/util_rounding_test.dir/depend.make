# Empty dependencies file for util_rounding_test.
# This may be replaced when dependencies are built.
