file(REMOVE_RECURSE
  "CMakeFiles/util_rounding_test.dir/util_rounding_test.cpp.o"
  "CMakeFiles/util_rounding_test.dir/util_rounding_test.cpp.o.d"
  "util_rounding_test"
  "util_rounding_test.pdb"
  "util_rounding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_rounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
