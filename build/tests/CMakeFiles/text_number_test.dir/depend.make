# Empty dependencies file for text_number_test.
# This may be replaced when dependencies are built.
