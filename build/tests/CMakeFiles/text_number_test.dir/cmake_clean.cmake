file(REMOVE_RECURSE
  "CMakeFiles/text_number_test.dir/text_number_test.cpp.o"
  "CMakeFiles/text_number_test.dir/text_number_test.cpp.o.d"
  "text_number_test"
  "text_number_test.pdb"
  "text_number_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_number_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
