# Empty compiler generated dependencies file for ir_stemmer_test.
# This may be replaced when dependencies are built.
