file(REMOVE_RECURSE
  "CMakeFiles/ir_stemmer_test.dir/ir_stemmer_test.cpp.o"
  "CMakeFiles/ir_stemmer_test.dir/ir_stemmer_test.cpp.o.d"
  "ir_stemmer_test"
  "ir_stemmer_test.pdb"
  "ir_stemmer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_stemmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
