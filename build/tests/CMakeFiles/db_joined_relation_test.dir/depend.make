# Empty dependencies file for db_joined_relation_test.
# This may be replaced when dependencies are built.
