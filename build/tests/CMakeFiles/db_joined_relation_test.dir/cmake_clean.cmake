file(REMOVE_RECURSE
  "CMakeFiles/db_joined_relation_test.dir/db_joined_relation_test.cpp.o"
  "CMakeFiles/db_joined_relation_test.dir/db_joined_relation_test.cpp.o.d"
  "db_joined_relation_test"
  "db_joined_relation_test.pdb"
  "db_joined_relation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_joined_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
