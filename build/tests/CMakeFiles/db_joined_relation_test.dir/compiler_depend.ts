# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for db_joined_relation_test.
