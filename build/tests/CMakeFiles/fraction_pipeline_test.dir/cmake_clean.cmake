file(REMOVE_RECURSE
  "CMakeFiles/fraction_pipeline_test.dir/fraction_pipeline_test.cpp.o"
  "CMakeFiles/fraction_pipeline_test.dir/fraction_pipeline_test.cpp.o.d"
  "fraction_pipeline_test"
  "fraction_pipeline_test.pdb"
  "fraction_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraction_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
