# Empty dependencies file for fraction_pipeline_test.
# This may be replaced when dependencies are built.
