file(REMOVE_RECURSE
  "CMakeFiles/join_pipeline_test.dir/join_pipeline_test.cpp.o"
  "CMakeFiles/join_pipeline_test.dir/join_pipeline_test.cpp.o.d"
  "join_pipeline_test"
  "join_pipeline_test.pdb"
  "join_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
