file(REMOVE_RECURSE
  "CMakeFiles/text_document_test.dir/text_document_test.cpp.o"
  "CMakeFiles/text_document_test.dir/text_document_test.cpp.o.d"
  "text_document_test"
  "text_document_test.pdb"
  "text_document_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_document_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
