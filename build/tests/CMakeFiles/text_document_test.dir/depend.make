# Empty dependencies file for text_document_test.
# This may be replaced when dependencies are built.
