file(REMOVE_RECURSE
  "CMakeFiles/text_sentence_test.dir/text_sentence_test.cpp.o"
  "CMakeFiles/text_sentence_test.dir/text_sentence_test.cpp.o.d"
  "text_sentence_test"
  "text_sentence_test.pdb"
  "text_sentence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_sentence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
