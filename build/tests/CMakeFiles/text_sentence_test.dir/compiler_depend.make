# Empty compiler generated dependencies file for text_sentence_test.
# This may be replaced when dependencies are built.
