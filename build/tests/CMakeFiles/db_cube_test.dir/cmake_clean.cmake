file(REMOVE_RECURSE
  "CMakeFiles/db_cube_test.dir/db_cube_test.cpp.o"
  "CMakeFiles/db_cube_test.dir/db_cube_test.cpp.o.d"
  "db_cube_test"
  "db_cube_test.pdb"
  "db_cube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
