# Empty dependencies file for db_eval_engine_test.
# This may be replaced when dependencies are built.
