file(REMOVE_RECURSE
  "CMakeFiles/review_repl.dir/review_repl.cpp.o"
  "CMakeFiles/review_repl.dir/review_repl.cpp.o.d"
  "review_repl"
  "review_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/review_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
