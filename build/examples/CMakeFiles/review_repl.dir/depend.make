# Empty dependencies file for review_repl.
# This may be replaced when dependencies are built.
