file(REMOVE_RECURSE
  "CMakeFiles/survey_review.dir/survey_review.cpp.o"
  "CMakeFiles/survey_review.dir/survey_review.cpp.o.d"
  "survey_review"
  "survey_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
