# Empty compiler generated dependencies file for survey_review.
# This may be replaced when dependencies are built.
