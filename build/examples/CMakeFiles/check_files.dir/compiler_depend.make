# Empty compiler generated dependencies file for check_files.
# This may be replaced when dependencies are built.
