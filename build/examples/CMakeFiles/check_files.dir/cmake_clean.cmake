file(REMOVE_RECURSE
  "CMakeFiles/check_files.dir/check_files.cpp.o"
  "CMakeFiles/check_files.dir/check_files.cpp.o.d"
  "check_files"
  "check_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
