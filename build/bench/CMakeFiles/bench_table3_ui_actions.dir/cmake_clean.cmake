file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ui_actions.dir/bench_table3_ui_actions.cpp.o"
  "CMakeFiles/bench_table3_ui_actions.dir/bench_table3_ui_actions.cpp.o.d"
  "bench_table3_ui_actions"
  "bench_table3_ui_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ui_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
