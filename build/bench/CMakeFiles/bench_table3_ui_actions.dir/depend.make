# Empty dependencies file for bench_table3_ui_actions.
# This may be replaced when dependencies are built.
