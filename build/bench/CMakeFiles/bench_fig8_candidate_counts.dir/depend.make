# Empty dependencies file for bench_fig8_candidate_counts.
# This may be replaced when dependencies are built.
