file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_corpus_stats.dir/bench_fig9_corpus_stats.cpp.o"
  "CMakeFiles/bench_fig9_corpus_stats.dir/bench_fig9_corpus_stats.cpp.o.d"
  "bench_fig9_corpus_stats"
  "bench_fig9_corpus_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_corpus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
