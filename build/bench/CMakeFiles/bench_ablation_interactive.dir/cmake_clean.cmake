file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interactive.dir/bench_ablation_interactive.cpp.o"
  "CMakeFiles/bench_ablation_interactive.dir/bench_ablation_interactive.cpp.o.d"
  "bench_ablation_interactive"
  "bench_ablation_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
