# Empty compiler generated dependencies file for bench_ablation_interactive.
# This may be replaced when dependencies are built.
