file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_crowd.dir/bench_table11_crowd.cpp.o"
  "CMakeFiles/bench_table11_crowd.dir/bench_table11_crowd.cpp.o.d"
  "bench_table11_crowd"
  "bench_table11_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
