# Empty dependencies file for bench_table11_crowd.
# This may be replaced when dependencies are built.
