file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_topk_coverage.dir/bench_fig10_topk_coverage.cpp.o"
  "CMakeFiles/bench_fig10_topk_coverage.dir/bench_fig10_topk_coverage.cpp.o.d"
  "bench_fig10_topk_coverage"
  "bench_fig10_topk_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_topk_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
