# Empty compiler generated dependencies file for bench_fig13_budget_sweep.
# This may be replaced when dependencies are built.
