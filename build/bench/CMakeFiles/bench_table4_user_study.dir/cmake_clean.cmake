file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_user_study.dir/bench_table4_user_study.cpp.o"
  "CMakeFiles/bench_table4_user_study.dir/bench_table4_user_study.cpp.o.d"
  "bench_table4_user_study"
  "bench_table4_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
