# Empty compiler generated dependencies file for bench_table4_user_study.
# This may be replaced when dependencies are built.
