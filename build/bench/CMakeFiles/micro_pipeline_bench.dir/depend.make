# Empty dependencies file for micro_pipeline_bench.
# This may be replaced when dependencies are built.
