file(REMOVE_RECURSE
  "CMakeFiles/micro_pipeline_bench.dir/micro_pipeline_bench.cpp.o"
  "CMakeFiles/micro_pipeline_bench.dir/micro_pipeline_bench.cpp.o.d"
  "micro_pipeline_bench"
  "micro_pipeline_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pipeline_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
