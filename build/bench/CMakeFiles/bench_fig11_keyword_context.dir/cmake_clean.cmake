file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_keyword_context.dir/bench_fig11_keyword_context.cpp.o"
  "CMakeFiles/bench_fig11_keyword_context.dir/bench_fig11_keyword_context.cpp.o.d"
  "bench_fig11_keyword_context"
  "bench_fig11_keyword_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_keyword_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
