# Empty dependencies file for bench_fig11_keyword_context.
# This may be replaced when dependencies are built.
