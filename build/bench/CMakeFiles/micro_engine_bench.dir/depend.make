# Empty dependencies file for micro_engine_bench.
# This may be replaced when dependencies are built.
