file(REMOVE_RECURSE
  "CMakeFiles/micro_engine_bench.dir/micro_engine_bench.cpp.o"
  "CMakeFiles/micro_engine_bench.dir/micro_engine_bench.cpp.o.d"
  "micro_engine_bench"
  "micro_engine_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
