# Empty dependencies file for bench_table2_priors.
# This may be replaced when dependencies are built.
