file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_priors.dir/bench_table2_priors.cpp.o"
  "CMakeFiles/bench_table2_priors.dir/bench_table2_priors.cpp.o.d"
  "bench_table2_priors"
  "bench_table2_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
