# Empty compiler generated dependencies file for bench_fig6_verified_vs_time.
# This may be replaced when dependencies are built.
