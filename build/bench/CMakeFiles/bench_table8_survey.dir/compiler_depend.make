# Empty compiler generated dependencies file for bench_table8_survey.
# This may be replaced when dependencies are built.
