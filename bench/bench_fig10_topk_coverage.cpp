// Reproduces Figure 10: top-k coverage of fully automated verification —
// the percentage of claims whose ground-truth query is within the top-k
// candidates, overall and split into correct vs incorrect claims.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 10: top-k coverage (total / correct / incorrect)",
                "top-1 58.4%, top-5 68.4%; correct > incorrect claims");

  auto result = corpus::RunOnCorpus(bench::SharedCorpus(),
                                    core::CheckOptions{});
  std::printf("%5s %10s %10s %12s\n", "k", "total", "correct", "incorrect");
  for (size_t k : {1, 2, 3, 5, 10, 15, 20}) {
    std::printf("%5zu %9.1f%% %9.1f%% %11.1f%%\n", k,
                result.coverage.TopK(k), result.coverage.TopKCorrect(k),
                result.coverage.TopKIncorrect(k));
  }
  std::printf(
      "\nclaims=%zu (correct=%zu, incorrect=%zu)  paper: 392 claims\n",
      result.coverage.total, result.coverage.total_correct,
      result.coverage.total_incorrect);
  std::printf("total run time: %.1fs, queries evaluated: %zu\n",
              result.total_seconds, result.queries_evaluated);
  return 0;
}
