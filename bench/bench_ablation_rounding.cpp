// Extension experiment (Definition 1's note that other admissible rounding
// functions can be plugged in): detection quality under significant-digit
// rounding (the paper's choice), strict equality, and relative-tolerance
// matching.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Extension: admissible rounding functions",
                "significant-digit rounding balances precision and recall; "
                "strict matching over-flags, loose tolerance under-flags");

  struct Mode {
    const char* label;
    rounding::RoundingMode mode;
    double tolerance;
  };
  Mode modes[] = {
      {"exact equality", rounding::RoundingMode::kExact, 0},
      {"significant digits (paper)",
       rounding::RoundingMode::kSignificantDigits, 0},
      {"tolerance 1%", rounding::RoundingMode::kRelativeTolerance, 0.01},
      {"tolerance 5%", rounding::RoundingMode::kRelativeTolerance, 0.05},
      {"tolerance 20%", rounding::RoundingMode::kRelativeTolerance, 0.20},
  };
  std::printf("%-30s %8s %11s %8s %8s\n", "rounding", "recall", "precision",
              "F1", "top-1");
  for (const auto& m : modes) {
    core::CheckOptions options;
    options.model.rounding_mode = m.mode;
    options.model.rounding_tolerance = m.tolerance;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%-30s %7.1f%% %10.1f%% %7.1f%% %7.1f%%\n", m.label,
                result.detection.Recall() * 100,
                result.detection.Precision() * 100,
                result.detection.F1() * 100, result.coverage.TopK(1));
  }
  std::printf("\nnote: ground truth is defined under significant-digit "
              "rounding, so the paper's mode should dominate F1.\n");
  return 0;
}
