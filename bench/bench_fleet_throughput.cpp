// Fleet-scale throughput: generate a synthetic fleet workload (thousands of
// articles over shared scaled datasets), drain it through the cross-document
// claim scheduler under one global resource budget, and record
// verified-claims-per-second plus p99 per-document latency at several
// offered-load points into BENCH_fleet.json.
//
// `--smoke` runs the scripts/check.sh fleet-smoke gate instead: a ~50
// article fleet end to end, exiting nonzero unless throughput is nonzero,
// verdicts match the generator's ground truth exactly (zero erroneous
// verdicts), and the fleet run is bit-identical to the sequential reference.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fleet_scheduler.h"
#include "corpus/fleet_generator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace aggchecker;

struct LoadResult {
  size_t articles = 0;
  size_t claims = 0;
  uint64_t row_budget = 0;
  double total_seconds = 0;
  double throughput = 0;  ///< verified claims per second
  double p99_latency = 0;
  size_t verified = 0, partial = 0, failed = 0, exhausted = 0;
  uint64_t rows_charged = 0;
  size_t tp = 0, fp = 0, fn = 0, misaligned = 0;
};

double P99Latency(const core::FleetRunResult& run) {
  std::vector<double> latencies;
  latencies.reserve(run.documents.size());
  for (const auto& doc : run.documents) latencies.push_back(doc.latency_seconds);
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  size_t idx = (latencies.size() * 99 + 99) / 100;  // ceil(0.99 n)
  return latencies[std::min(idx, latencies.size()) - 1];
}

/// Scores the run's verdicts against the generator's by-construction ground
/// truth, by position (the fleet generator's alignment contract).
void ScoreDetection(const corpus::FleetCorpus& fleet,
                    const core::FleetRunResult& run, LoadResult* out) {
  for (const auto& doc : run.documents) {
    if (!doc.status.ok()) continue;
    const auto& truth = fleet.articles[doc.index].ground_truth;
    if (doc.report.verdicts.size() != truth.size()) ++out->misaligned;
    size_t n = std::min(doc.report.verdicts.size(), truth.size());
    for (size_t i = 0; i < n; ++i) {
      bool flagged = doc.report.verdicts[i].likely_erroneous;
      bool erroneous = truth[i].is_erroneous;
      if (flagged && erroneous) ++out->tp;
      if (flagged && !erroneous) ++out->fp;
      if (!flagged && erroneous) ++out->fn;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::Header(
      smoke ? "Fleet smoke: 50-article gate" : "Fleet throughput vs load",
      "fleet-scale extension (no paper analogue): verified-claims/s and p99 "
      "per-document latency under one global budget");

  // The spec trades dataset scale against CI wall time: ~12 dimension
  // columns at cardinality up to 24 keeps per-article candidate spaces in
  // the thousands while a 1000-article fleet still drains in minutes.
  // FleetSpec defaults go much larger (50k rows, 24 dims); this bench
  // measures scheduling, not raw scan throughput.
  corpus::FleetSpec spec;
  spec.seed = 42;
  spec.num_articles = smoke ? 50 : 1000;
  spec.num_datasets = smoke ? 2 : 8;
  spec.claims_per_article = 5;
  spec.num_dim_columns = 12;
  spec.num_measure_columns = 4;
  spec.rows_per_dataset = smoke ? 800 : 1500;
  spec.dim_cardinality = 24;
  spec.error_rate = 0.12;

  Timer gen_timer;
  corpus::FleetCorpus fleet = corpus::GenerateFleet(spec);
  const double generation_seconds = gen_timer.ElapsedSeconds();
  auto all_documents = corpus::FleetDocuments(fleet);
  std::printf("generated %zu articles / %zu claims over %zu datasets "
              "(%zu rows each) in %.2fs\n",
              fleet.articles.size(), fleet.TotalClaims(),
              fleet.datasets.size(), spec.rows_per_dataset,
              generation_seconds);

  // Worker breadth: request up to 4, use what the host has — and say so.
  // On a 1-core container the sweep collapses to threads=1; the clamp is
  // recorded in the JSON instead of silently measuring oversubscription.
  const bench::ThreadReport threads = bench::MakeThreadReport(4);
  const size_t threads_used = threads.threads_used;
  bench::PrintThreadReport(threads);

  std::vector<size_t> loads =
      smoke ? std::vector<size_t>{fleet.articles.size()}
            : std::vector<size_t>{100, 300, fleet.articles.size()};

  std::vector<LoadResult> results;
  for (size_t load : loads) {
    const size_t n = std::min(load, all_documents.size());
    std::vector<core::FleetDocument> documents(all_documents.begin(),
                                               all_documents.begin() + n);
    core::FleetOptions options;
    options.num_threads = threads_used;
    // One global budget over the whole fleet, sliced fairly per document
    // (generous: demonstrates governed operation without degrading the
    // smoke gate's accuracy — partial claims are never flagged erroneous
    // but do show up as recall misses).
    options.check.governor.max_row_scans =
        static_cast<uint64_t>(n) * 20'000'000ull;

    core::FleetRunResult run = core::RunFleet(documents, options);

    LoadResult r;
    r.articles = n;
    r.row_budget = options.check.governor.max_row_scans;
    r.claims = run.claims_total;
    r.total_seconds = run.total_seconds;
    r.throughput = run.throughput();
    r.p99_latency = P99Latency(run);
    r.verified = run.claims_verified;
    r.partial = run.claims_partial;
    r.failed = run.documents_failed;
    r.exhausted = run.documents_exhausted;
    r.rows_charged = run.usage.rows_charged;
    ScoreDetection(fleet, run, &r);
    results.push_back(r);

    std::printf(
        "load=%4zu articles  %5zu claims  total=%7.2fs  "
        "throughput=%7.1f claims/s  p99_latency=%6.3fs  "
        "[verified=%zu partial=%zu failed=%zu exhausted=%zu]  "
        "detection tp=%zu fp=%zu fn=%zu\n",
        r.articles, r.claims, r.total_seconds, r.throughput, r.p99_latency,
        r.verified, r.partial, r.failed, r.exhausted, r.tp, r.fp, r.fn);
  }

  // Bit-identity at the largest load: the scheduled fleet run must produce
  // per-document verdicts byte-identical to the one-at-a-time reference
  // under the same global budget.
  const size_t max_load = results.back().articles;
  std::vector<core::FleetDocument> documents(
      all_documents.begin(), all_documents.begin() + max_load);
  core::FleetOptions options;
  options.num_threads = threads_used;
  options.check.governor.max_row_scans =
      static_cast<uint64_t>(max_load) * 20'000'000ull;
  core::FleetRunResult scheduled = core::RunFleet(documents, options);
  core::FleetRunResult sequential =
      core::RunFleetSequential(documents, options);
  bool bit_identical = true;
  for (size_t i = 0; i < scheduled.documents.size(); ++i) {
    const auto& a = scheduled.documents[i];
    const auto& b = sequential.documents[i];
    if (a.status.ok() != b.status.ok() ||
        (a.status.ok() && core::FleetVerdictFingerprint(a.report) !=
                              core::FleetVerdictFingerprint(b.report))) {
      bit_identical = false;
      std::printf("BIT-IDENTITY VIOLATION at document %zu\n", i);
    }
  }
  std::printf("bit-identity fleet-vs-sequential at %zu articles: %s\n",
              max_load, bit_identical ? "OK" : "FAILED");

  if (FILE* out = std::fopen("BENCH_fleet.json", "w")) {
    std::fprintf(out,
                 "{\n  \"mode\": \"%s\",\n  \"spec\": {\"seed\": %llu, "
                 "\"articles\": %zu, \"datasets\": %zu, "
                 "\"claims_per_article\": %zu, \"dim_columns\": %zu, "
                 "\"measure_columns\": %zu, \"rows_per_dataset\": %zu, "
                 "\"dim_cardinality\": %zu, \"error_rate\": %.3f},\n",
                 smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(spec.seed),
                 spec.num_articles, spec.num_datasets,
                 spec.claims_per_article, spec.num_dim_columns,
                 spec.num_measure_columns, spec.rows_per_dataset,
                 spec.dim_cardinality, spec.error_rate);
    std::fprintf(out, "  ");
    bench::WriteThreadReportJson(out, threads);
    std::fprintf(out, ",\n  \"generation_seconds\": %.3f,\n  \"loads\": [\n",
                 generation_seconds);
    for (size_t i = 0; i < results.size(); ++i) {
      const LoadResult& r = results[i];
      std::fprintf(
          out,
          "    {\"articles\": %zu, \"claims\": %zu, \"row_budget\": %llu, "
          "\"total_seconds\": %.4f, \"throughput_claims_per_sec\": %.2f, "
          "\"p99_latency_seconds\": %.4f, \"claims_verified\": %zu, "
          "\"claims_partial\": %zu, \"documents_failed\": %zu, "
          "\"documents_exhausted\": %zu, \"rows_charged\": %llu, "
          "\"detection\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu, "
          "\"misaligned\": %zu}}%s\n",
          r.articles, r.claims,
          static_cast<unsigned long long>(r.row_budget), r.total_seconds,
          r.throughput, r.p99_latency, r.verified, r.partial, r.failed,
          r.exhausted, static_cast<unsigned long long>(r.rows_charged),
          r.tp, r.fp, r.fn, r.misaligned,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"bit_identity\": {\"articles\": %zu, \"equal\": "
                 "%s}\n}\n",
                 max_load, bit_identical ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_fleet.json\n");
  }

  if (smoke) {
    // The fleet-smoke gate (scripts/check.sh fleet-smoke).
    const LoadResult& r = results.back();
    bool ok = true;
    if (r.throughput <= 0 || r.verified == 0) {
      std::printf("FLEET-SMOKE FAIL: zero throughput\n");
      ok = false;
    }
    if (r.fp != 0 || r.fn != 0 || r.misaligned != 0) {
      std::printf("FLEET-SMOKE FAIL: %zu erroneous verdicts vs ground truth "
                  "(fp=%zu fn=%zu misaligned=%zu)\n",
                  r.fp + r.fn + r.misaligned, r.fp, r.fn, r.misaligned);
      ok = false;
    }
    if (r.failed != 0) {
      std::printf("FLEET-SMOKE FAIL: %zu documents failed\n", r.failed);
      ok = false;
    }
    if (!bit_identical) {
      std::printf("FLEET-SMOKE FAIL: fleet run not bit-identical to "
                  "sequential reference\n");
      ok = false;
    }
    std::printf("fleet-smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return bit_identical ? 0 : 1;
}
