// Reproduces Figure 9 and the Appendix B corpus statistics:
//  (a) claims per test case plus incorrect claims,
//  (b) per-document coverage of the N most frequent query characteristics,
//  (c) breakdown of claim queries by number of predicates,
// plus the MARGOT comparison (argumentative claims are about as frequent
// as AggChecker's claim type).

#include "baselines/margot.h"
#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 9 / Appendix B: corpus statistics",
                "392 claims, 12% erroneous, 17/53 cases with errors; "
                "top-3 characteristics cover ~90.8%; 17/61/23 predicate mix");

  const auto& corpus = bench::SharedCorpus();
  auto stats = corpus::ComputeStatistics(corpus);

  std::printf("--- (a) claims per test case (sorted desc) ---\n");
  std::vector<std::pair<size_t, size_t>> per_case;
  for (size_t i = 0; i < stats.claims_per_case.size(); ++i) {
    per_case.emplace_back(stats.claims_per_case[i],
                          stats.errors_per_case[i]);
  }
  std::sort(per_case.rbegin(), per_case.rend());
  for (const auto& [claims, errors] : per_case) {
    std::printf("  claims=%2zu  incorrect=%zu\n", claims, errors);
  }
  std::printf("total: %zu claims, %zu erroneous (%.1f%%), %zu/%zu cases "
              "with errors (paper: 392, 12%%, 17/53)\n",
              stats.num_claims, stats.num_erroneous,
              100.0 * stats.num_erroneous / stats.num_claims,
              stats.cases_with_errors, stats.num_cases);

  std::printf("--- (b) top-N characteristic coverage (%% of claims) ---\n");
  std::printf("%6s %10s %10s %12s\n", "N", "function", "column",
              "predicates");
  for (size_t n : {1u, 2u, 3u, 5u, 10u, 20u}) {
    std::printf("%6zu %9.1f%% %9.1f%% %11.1f%%\n", n,
                stats.topn_function_coverage[n - 1],
                stats.topn_column_coverage[n - 1],
                stats.topn_predicate_coverage[n - 1]);
  }
  double avg3 = (stats.topn_function_coverage[2] +
                 stats.topn_column_coverage[2] +
                 stats.topn_predicate_coverage[2]) /
                3.0;
  std::printf("top-3 average coverage: %.1f%% (paper: 90.8%%)\n", avg3);

  std::printf("--- (c) predicates per claim query ---\n");
  std::printf("  zero=%.0f%%  one=%.0f%%  two=%.0f%%  (paper: 17/61/23)\n",
              stats.zero_pred_share, stats.one_pred_share,
              stats.two_pred_share);

  std::printf("--- prose difficulty (section 7.3) ---\n");
  std::printf("  claims sharing a sentence: %.0f%% (paper: 29%%)\n",
              stats.multi_claim_sentence_share);
  std::printf("  claims without an explicit aggregation cue: %.0f%% "
              "(paper: 30%%)\n",
              stats.implicit_function_share);

  std::printf("--- MARGOT comparison ---\n");
  size_t margot = 0;
  for (const auto& c : corpus) {
    margot += baselines::CountArgumentativeClaims(c.document);
  }
  std::printf("  argumentative claims: %zu vs aggregate claims: %zu "
              "(paper: 389 vs 392)\n",
              margot, stats.num_claims);
  return 0;
}
