// Micro-benchmarks of the translation pipeline (google-benchmark):
// inverted-index retrieval, keyword extraction, candidate-space
// construction, and one end-to-end document check.

#include <benchmark/benchmark.h>

#include "claims/claim_detector.h"
#include "claims/relevance_scorer.h"
#include "core/aggchecker.h"
#include "corpus/embedded_articles.h"
#include "model/candidate_space.h"

namespace aggchecker {
namespace {

struct PipelineFixture {
  PipelineFixture() : test_case(corpus::MakeNflCase()) {
    auto built = fragments::FragmentCatalog::Build(test_case.database);
    catalog = std::make_unique<fragments::FragmentCatalog>(
        std::move(*built));
    detected = claims::ClaimDetector().Detect(test_case.document);
    claims::RelevanceScorer scorer(catalog.get(),
                                   claims::KeywordExtractor(), 20);
    relevance = scorer.ScoreAll(test_case.document, detected);
  }
  corpus::CorpusCase test_case;
  std::unique_ptr<fragments::FragmentCatalog> catalog;
  std::vector<claims::Claim> detected;
  std::vector<claims::ClaimRelevance> relevance;
};

PipelineFixture& Fixture() {
  static PipelineFixture* kFixture = new PipelineFixture();
  return *kFixture;
}

void BM_KeywordExtraction(benchmark::State& state) {
  auto& f = Fixture();
  claims::KeywordExtractor extractor;
  for (auto _ : state) {
    for (const auto& claim : f.detected) {
      benchmark::DoNotOptimize(
          extractor.Extract(f.test_case.document, claim));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.detected.size()));
}
BENCHMARK(BM_KeywordExtraction);

void BM_FragmentRetrieval(benchmark::State& state) {
  auto& f = Fixture();
  claims::RelevanceScorer scorer(f.catalog.get(),
                                 claims::KeywordExtractor(), 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scorer.ScoreAll(f.test_case.document, f.detected));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.detected.size()));
}
BENCHMARK(BM_FragmentRetrieval);

void BM_CandidateSpaceBuild(benchmark::State& state) {
  auto& f = Fixture();
  model::ModelOptions options;
  for (auto _ : state) {
    for (const auto& rel : f.relevance) {
      benchmark::DoNotOptimize(model::CandidateSpace::Build(
          f.test_case.database, *f.catalog, rel, options));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.relevance.size()));
}
BENCHMARK(BM_CandidateSpaceBuild);

void BM_CatalogBuild(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fragments::FragmentCatalog::Build(f.test_case.database));
  }
}
BENCHMARK(BM_CatalogBuild);

void BM_EndToEndCheck(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    auto checker = core::AggChecker::Create(&f.test_case.database);
    benchmark::DoNotOptimize(checker->Check(f.test_case.document));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(f.test_case.ground_truth.size()));
}
BENCHMARK(BM_EndToEndCheck);

}  // namespace
}  // namespace aggchecker

BENCHMARK_MAIN();
