// Perf smoke gate (scripts/check.sh --perf-smoke), three checks:
//
//  1. Cube backend: the vectorized pipeline must beat the scalar oracle on
//     the headline workload — a d=2 multi-aggregate cube at num_threads=1 —
//     and must agree with it bit-for-bit. Catches a silent de-vectorization
//     before the full micro-bench refresh runs.
//  2. Engine: merged+cached evaluation over a PK-FK join workload must be
//     >= 5x the naive cache-off path (the shared RelationCache plus query
//     merging must actually pay), with bit-identical results; and with >= 2
//     hardware threads, 2-thread merged evaluation must not be slower than
//     1-thread (the morsel scheduler must not regress the scaling curve —
//     skipped on single-core machines where there is nothing to scale to).
//  3. Plan reuse: a multi-iteration EM run must serve repeated cube groups
//     from the fingerprint plan cache (plan_cache_hits > 0), a second Check
//     on the same instance must build zero new plans (each distinct plan is
//     built at most once per engine lifetime), and the fingerprint path
//     must report bit-identically to the string-keyed reference path.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/aggchecker.h"
#include "corpus/generator.h"
#include "db/cube.h"
#include "db/database.h"
#include "db/eval_engine.h"
#include "db/relation_cache.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace {

constexpr size_t kRows = 40000;
constexpr int kReps = 5;

db::Database MakeDatabase() {
  db::Database database("perf-smoke");
  db::Table fact("fact");
  (void)fact.AddColumn("d0", db::ValueType::kString);
  (void)fact.AddColumn("d1", db::ValueType::kString);
  (void)fact.AddColumn("m_long", db::ValueType::kLong);
  (void)fact.AddColumn("m_double", db::ValueType::kDouble);
  for (size_t r = 0; r < kRows; ++r) {
    std::vector<db::Value> row;
    for (int d = 0; d < 2; ++d) {
      size_t v = (r * 2654435761u + static_cast<size_t>(d) * 97) % 11;
      if (v == 10) {
        row.emplace_back();
      } else {
        row.emplace_back("v" + std::to_string(v % 5));
      }
    }
    if (r % 13 == 7) {
      row.emplace_back();
    } else {
      row.emplace_back(static_cast<int64_t>(r % 257));
    }
    if (r % 17 == 3) {
      row.emplace_back();
    } else {
      row.emplace_back(0.5 * static_cast<double>(r % 1001) - 250.0);
    }
    (void)fact.AddRow(std::move(row));
  }
  (void)database.AddTable(std::move(fact));
  return database;
}

struct Workload {
  std::vector<db::ColumnRef> dims;
  std::vector<std::vector<db::Value>> literals;
  std::vector<db::CubeAggregate> aggs;
};

Workload MakeWorkload(const db::Database& database) {
  Workload w;
  const db::Table& fact = *database.FindTable("fact");
  for (const char* name : {"d0", "d1"}) {
    const db::Column& col = *fact.FindColumn(name);
    w.dims.push_back({"fact", col.name()});
    w.literals.push_back(col.DistinctValues());
  }
  auto agg = [](db::AggFn fn, const char* column) {
    db::CubeAggregate a;
    a.fn = fn;
    if (column != nullptr) a.column = {"fact", column};
    return a;
  };
  w.aggs = {agg(db::AggFn::kCount, nullptr),
            agg(db::AggFn::kCountDistinct, "m_long"),
            agg(db::AggFn::kSum, "m_double"),
            agg(db::AggFn::kAvg, "m_double"),
            agg(db::AggFn::kMax, "m_double")};
  return w;
}

/// Best-of-kReps wall time for one mode; the materialized cube of the last
/// rep is returned through `out` for the equivalence check.
double TimeMode(const db::Database& database, const Workload& w,
                db::CubeExecMode mode,
                std::shared_ptr<db::CubeResult>* out) {
  db::CubeExecOptions options;
  options.mode = mode;
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto cube = db::ExecuteCube(database, w.dims, w.literals, w.aggs,
                                nullptr, nullptr, options);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!cube.ok()) {
      std::fprintf(stderr, "perf_smoke: %s execution failed: %s\n",
                   db::CubeExecModeName(mode),
                   cube.status().ToString().c_str());
      std::exit(2);
    }
    *out = *cube;
    if (elapsed < best) best = elapsed;
  }
  return best;
}

bool BitEqual(const std::optional<double>& a,
              const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return std::memcmp(&*a, &*b, sizeof(double)) == 0;
}

/// Every enumerable cell must agree bit-for-bit between the two backends.
bool CubesIdentical(const db::CubeResult& lhs, const db::CubeResult& rhs) {
  if (lhs.num_cells() != rhs.num_cells()) return false;
  std::vector<std::vector<int16_t>> axis(lhs.dims().size());
  for (size_t d = 0; d < axis.size(); ++d) {
    axis[d] = {db::kAllBucket, db::kDefaultBucket};
    for (size_t i = 0; i < lhs.literals()[d].size(); ++i) {
      axis[d].push_back(static_cast<int16_t>(i));
    }
  }
  std::vector<size_t> pos(axis.size(), 0);
  std::vector<int16_t> key(axis.size(), 0);
  while (true) {
    for (size_t d = 0; d < axis.size(); ++d) key[d] = axis[d][pos[d]];
    for (size_t a = 0; a < lhs.aggregates().size(); ++a) {
      if (!BitEqual(lhs.Lookup(key, a), rhs.Lookup(key, a))) return false;
    }
    size_t d = 0;
    while (d < axis.size() && ++pos[d] == axis[d].size()) pos[d++] = 0;
    if (d == axis.size()) break;
  }
  return true;
}

/// Two-table PK-FK database for the engine gate: fact.dim_id -> dim.id,
/// so every query with a predicate on dim.label scans the joined relation
/// (which the naive cache-off path re-materializes per query).
db::Database MakeJoinDatabase() {
  db::Database database("perf-smoke-join");
  constexpr size_t kDimRows = 100;
  {
    db::Table dim("dim");
    (void)dim.AddColumn("id", db::ValueType::kLong);
    (void)dim.AddColumn("label", db::ValueType::kString);
    for (size_t i = 0; i < kDimRows; ++i) {
      (void)dim.AddRow({db::Value(static_cast<int64_t>(i)),
                        db::Value("l" + std::to_string(i % 8))});
    }
    (void)database.AddTable(std::move(dim));
  }
  {
    db::Table fact("fact");
    (void)fact.AddColumn("dim_id", db::ValueType::kLong);
    (void)fact.AddColumn("d0", db::ValueType::kString);
    (void)fact.AddColumn("m", db::ValueType::kDouble);
    for (size_t r = 0; r < kRows; ++r) {
      (void)fact.AddRow(
          {db::Value(static_cast<int64_t>((r * 2654435761u) % kDimRows)),
           db::Value("v" + std::to_string(r % 5)),
           db::Value(0.25 * static_cast<double>(r % 997) - 100.0)});
    }
    (void)database.AddTable(std::move(fact));
  }
  (void)database.AddForeignKey({"fact", "dim_id"}, {"dim", "id"});
  return database;
}

/// The engine-gate batch: every query joins fact with dim.
std::vector<db::SimpleAggregateQuery> MakeJoinBatch() {
  std::vector<db::SimpleAggregateQuery> batch;
  for (int l = 0; l < 8; ++l) {
    for (int v = 0; v < 3; ++v) {
      db::SimpleAggregateQuery q;
      q.fn = db::AggFn::kCount;
      q.agg_column = {"fact", ""};
      q.predicates.push_back(
          {{"dim", "label"}, db::Value("l" + std::to_string(l))});
      q.predicates.push_back(
          {{"fact", "d0"}, db::Value("v" + std::to_string(v))});
      batch.push_back(q);
      q.fn = db::AggFn::kSum;
      q.agg_column = {"fact", "m"};
      batch.push_back(q);
    }
  }
  return batch;
}

/// Best-of-kReps wall time of one engine configuration, cold-started per
/// rep (fresh engine + cleared relation cache). Results and stats of the
/// last rep are returned for the equivalence/counter checks.
double TimeEngine(const db::Database& database, db::EvalStrategy strategy,
                  bool relation_cache, size_t threads,
                  const std::vector<db::SimpleAggregateQuery>& batch,
                  std::vector<std::optional<double>>* results,
                  db::EvalStats* stats) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    database.relation_cache().Clear();
    db::EvalEngine engine(&database, strategy);
    if (!relation_cache) engine.SetRelationCache(nullptr);
    ThreadPool pool(threads);
    if (threads > 1) engine.SetThreadPool(&pool);
    auto start = std::chrono::steady_clock::now();
    auto r = engine.EvaluateBatch(batch);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (elapsed < best) best = elapsed;
    *results = std::move(r);
    *stats = engine.stats();
  }
  return best;
}

int RunEngineGate() {
  db::Database database = MakeJoinDatabase();
  const auto batch = MakeJoinBatch();

  std::vector<std::optional<double>> naive_results, merged_results;
  db::EvalStats naive_stats, merged_stats;
  double naive = TimeEngine(database, db::EvalStrategy::kNaive,
                            /*relation_cache=*/false, 1, batch,
                            &naive_results, &naive_stats);
  double merged = TimeEngine(database, db::EvalStrategy::kMergedCached,
                             /*relation_cache=*/true, 1, batch,
                             &merged_results, &merged_stats);
  double speedup = naive / merged;
  std::printf(
      "perf_smoke: naive(cache off)=%.3fms joins_built=%zu | "
      "merged+cached=%.3fms joins_built=%zu join_cache_hits=%zu | "
      "speedup=%.2fx (%zu queries, %zu-row fact x 100-row dim)\n",
      naive * 1e3, naive_stats.joins_built, merged * 1e3,
      merged_stats.joins_built, merged_stats.join_cache_hits, speedup,
      batch.size(), kRows);

  for (size_t i = 0; i < batch.size(); ++i) {
    if (!BitEqual(naive_results[i], merged_results[i])) {
      std::fprintf(stderr,
                   "perf_smoke: FAIL — naive and merged+cached disagree on "
                   "query %zu\n",
                   i);
      return 1;
    }
  }
  if (merged_stats.joins_built != 1) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — merged+cached materialized the join "
                 "%zu times (want exactly 1)\n",
                 merged_stats.joins_built);
    return 1;
  }
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — merged+cached is only %.2fx the naive "
                 "cache-off path (gate: >= 5x)\n",
                 speedup);
    return 1;
  }

  const bench::ThreadReport threads = bench::MakeThreadReport(2);
  if (threads.clamped) {
    std::printf(
        "perf_smoke: thread-scaling check skipped "
        "(hardware_concurrency=%zu < 2)\n",
        threads.hardware_concurrency);
    return 0;
  }
  // kMerged (no result cache) keeps every rep doing real cube work; the
  // 1.15x tolerance absorbs scheduler noise without letting a real
  // serialization regression (the old flat curve) through.
  std::vector<std::optional<double>> t1_results, t2_results;
  db::EvalStats t1_stats, t2_stats;
  double t1 = TimeEngine(database, db::EvalStrategy::kMerged, true, 1,
                         batch, &t1_results, &t1_stats);
  double t2 = TimeEngine(database, db::EvalStrategy::kMerged, true, 2,
                         batch, &t2_results, &t2_stats);
  std::printf("perf_smoke: merged 1-thread=%.3fms 2-thread=%.3fms\n",
              t1 * 1e3, t2 * 1e3);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!BitEqual(t1_results[i], t2_results[i])) {
      std::fprintf(stderr,
                   "perf_smoke: FAIL — thread counts disagree on query "
                   "%zu\n",
                   i);
      return 1;
    }
  }
  if (t2 > t1 * 1.15) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — 2-thread merged evaluation is slower "
                 "than 1-thread (%.3fms vs %.3fms)\n",
                 t2 * 1e3, t1 * 1e3);
    return 1;
  }
  return 0;
}

bool VerdictsBitIdentical(const core::CheckReport& a,
                          const core::CheckReport& b) {
  if (a.verdicts.size() != b.verdicts.size()) return false;
  for (size_t i = 0; i < a.verdicts.size(); ++i) {
    const auto& va = a.verdicts[i];
    const auto& vb = b.verdicts[i];
    if (va.likely_erroneous != vb.likely_erroneous) return false;
    if (std::memcmp(&va.correctness_probability,
                    &vb.correctness_probability, sizeof(double)) != 0) {
      return false;
    }
    if (va.top_queries.size() != vb.top_queries.size()) return false;
    for (size_t q = 0; q < va.top_queries.size(); ++q) {
      const auto& qa = va.top_queries[q];
      const auto& qb = vb.top_queries[q];
      if (!(qa.query == qb.query)) return false;
      if (!BitEqual(qa.result, qb.result)) return false;
      if (std::memcmp(&qa.probability, &qb.probability, sizeof(double)) !=
          0) {
        return false;
      }
    }
  }
  return true;
}

int RunPlanReuseGate() {
  // A generated corpus case: large enough candidate spaces that a tight
  // per-iteration budget forces the EM loop to evaluate candidates in
  // tranches across iterations — the steady state where later tranches
  // land in already-planned (relation, dim-set) groups. A budget that
  // swallowed the whole space in iteration one would leave nothing for the
  // plan cache to prove.
  corpus::GeneratorOptions gen;
  corpus::CorpusCase test_case = corpus::GenerateCase(3, gen);
  db::Database& database = test_case.database;
  core::CheckOptions options;
  options.model.max_em_iterations = 5;
  options.model.num_threads = 1;
  options.model.max_eval_per_claim = 40;
  options.model.min_eval_per_claim = 10;
  auto checker = core::AggChecker::Create(&database, options);
  if (!checker.ok()) {
    std::fprintf(stderr, "perf_smoke: FAIL — checker creation failed\n");
    return 1;
  }
  auto first = checker->Check(test_case.document);
  if (!first.ok() || first->verdicts.empty()) {
    std::fprintf(stderr, "perf_smoke: FAIL — checking run failed\n");
    return 1;
  }
  std::printf(
      "perf_smoke: em_iterations=%d plans_built=%zu plan_cache_hits=%zu "
      "(%zu claims)\n",
      first->em_iterations, first->eval_stats.plans_built,
      first->eval_stats.plan_cache_hits, first->verdicts.size());
  if (first->eval_stats.plans_built == 0 ||
      first->eval_stats.plan_cache_hits == 0) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — EM run did not exercise the plan "
                 "cache (built=%zu hits=%zu)\n",
                 first->eval_stats.plans_built,
                 first->eval_stats.plan_cache_hits);
    return 1;
  }

  // Same instance, same document: the engine (and its plan cache) persists
  // across Check calls, so the rerun must build zero new plans. EvalStats
  // are cumulative per engine, which is exactly what lets us assert this.
  auto second = checker->Check(test_case.document);
  if (!second.ok()) {
    std::fprintf(stderr, "perf_smoke: FAIL — second checking run failed\n");
    return 1;
  }
  if (second->eval_stats.plans_built != first->eval_stats.plans_built) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — rerun rebuilt plans (%zu -> %zu); "
                 "each plan must be built at most once\n",
                 first->eval_stats.plans_built,
                 second->eval_stats.plans_built);
    return 1;
  }
  if (second->eval_stats.plan_cache_hits <=
      first->eval_stats.plan_cache_hits) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — rerun did not hit the plan cache\n");
    return 1;
  }

  // The fingerprint path is an optimization, never a behavior change.
  core::CheckOptions reference = options;
  reference.query_fingerprints = false;
  auto ref_checker = core::AggChecker::Create(&database, reference);
  auto ref_report = ref_checker->Check(test_case.document);
  if (!ref_report.ok() ||
      !VerdictsBitIdentical(*first, *ref_report)) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — fingerprint and string paths "
                 "disagree on verdicts\n");
    return 1;
  }
  if (ref_report->eval_stats.plans_built != 0) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — string path touched the plan cache\n");
    return 1;
  }
  return 0;
}

int RunSmoke() {
  db::Database database = MakeDatabase();
  Workload workload = MakeWorkload(database);
  std::shared_ptr<db::CubeResult> scalar_cube, vectorized_cube;
  // Warm lazy column representations outside the timed region for both
  // modes alike (the engine pre-warms them in its plan phase too).
  double scalar = TimeMode(database, workload,
                           db::CubeExecMode::kScalarOracle, &scalar_cube);
  double vectorized = TimeMode(database, workload,
                               db::CubeExecMode::kVectorized,
                               &vectorized_cube);
  double speedup = scalar / vectorized;
  std::printf("perf_smoke: scalar=%.3fms vectorized=%.3fms speedup=%.2fx "
              "(d=2, 5 aggregates, %zu rows, 1 thread)\n",
              scalar * 1e3, vectorized * 1e3, speedup,
              kRows);
  if (!CubesIdentical(*scalar_cube, *vectorized_cube)) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — backends disagree on cube cells\n");
    return 1;
  }
  if (vectorized >= scalar) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — vectorized cube execution is not "
                 "faster than the scalar oracle (%.2fx)\n",
                 speedup);
    return 1;
  }
  int engine_gate = RunEngineGate();
  if (engine_gate != 0) return engine_gate;
  int plan_gate = RunPlanReuseGate();
  if (plan_gate != 0) return plan_gate;
  std::printf("perf_smoke: OK\n");
  return 0;
}

}  // namespace
}  // namespace aggchecker

int main() { return aggchecker::RunSmoke(); }
