// Perf smoke gate (scripts/check.sh --perf-smoke): the vectorized cube
// pipeline must beat the scalar oracle on the headline workload — a d=2
// multi-aggregate cube at num_threads=1 — and must agree with it
// bit-for-bit. Exits non-zero if the vectorized path is slower or the
// results diverge, so a regression that silently de-vectorizes the cube
// executor (or breaks its semantics) fails CI even before the full
// micro-bench refresh runs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "db/cube.h"
#include "db/database.h"

namespace aggchecker {
namespace {

constexpr size_t kRows = 40000;
constexpr int kReps = 5;

db::Database MakeDatabase() {
  db::Database database("perf-smoke");
  db::Table fact("fact");
  (void)fact.AddColumn("d0", db::ValueType::kString);
  (void)fact.AddColumn("d1", db::ValueType::kString);
  (void)fact.AddColumn("m_long", db::ValueType::kLong);
  (void)fact.AddColumn("m_double", db::ValueType::kDouble);
  for (size_t r = 0; r < kRows; ++r) {
    std::vector<db::Value> row;
    for (int d = 0; d < 2; ++d) {
      size_t v = (r * 2654435761u + static_cast<size_t>(d) * 97) % 11;
      if (v == 10) {
        row.emplace_back();
      } else {
        row.emplace_back("v" + std::to_string(v % 5));
      }
    }
    if (r % 13 == 7) {
      row.emplace_back();
    } else {
      row.emplace_back(static_cast<int64_t>(r % 257));
    }
    if (r % 17 == 3) {
      row.emplace_back();
    } else {
      row.emplace_back(0.5 * static_cast<double>(r % 1001) - 250.0);
    }
    (void)fact.AddRow(std::move(row));
  }
  (void)database.AddTable(std::move(fact));
  return database;
}

struct Workload {
  std::vector<db::ColumnRef> dims;
  std::vector<std::vector<db::Value>> literals;
  std::vector<db::CubeAggregate> aggs;
};

Workload MakeWorkload(const db::Database& database) {
  Workload w;
  const db::Table& fact = *database.FindTable("fact");
  for (const char* name : {"d0", "d1"}) {
    const db::Column& col = *fact.FindColumn(name);
    w.dims.push_back({"fact", col.name()});
    w.literals.push_back(col.DistinctValues());
  }
  auto agg = [](db::AggFn fn, const char* column) {
    db::CubeAggregate a;
    a.fn = fn;
    if (column != nullptr) a.column = {"fact", column};
    return a;
  };
  w.aggs = {agg(db::AggFn::kCount, nullptr),
            agg(db::AggFn::kCountDistinct, "m_long"),
            agg(db::AggFn::kSum, "m_double"),
            agg(db::AggFn::kAvg, "m_double"),
            agg(db::AggFn::kMax, "m_double")};
  return w;
}

/// Best-of-kReps wall time for one mode; the materialized cube of the last
/// rep is returned through `out` for the equivalence check.
double TimeMode(const db::Database& database, const Workload& w,
                db::CubeExecMode mode,
                std::shared_ptr<db::CubeResult>* out) {
  db::CubeExecOptions options;
  options.mode = mode;
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto cube = db::ExecuteCube(database, w.dims, w.literals, w.aggs,
                                nullptr, nullptr, options);
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!cube.ok()) {
      std::fprintf(stderr, "perf_smoke: %s execution failed: %s\n",
                   db::CubeExecModeName(mode),
                   cube.status().ToString().c_str());
      std::exit(2);
    }
    *out = *cube;
    if (elapsed < best) best = elapsed;
  }
  return best;
}

bool BitEqual(const std::optional<double>& a,
              const std::optional<double>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return std::memcmp(&*a, &*b, sizeof(double)) == 0;
}

/// Every enumerable cell must agree bit-for-bit between the two backends.
bool CubesIdentical(const db::CubeResult& lhs, const db::CubeResult& rhs) {
  if (lhs.num_cells() != rhs.num_cells()) return false;
  std::vector<std::vector<int16_t>> axis(lhs.dims().size());
  for (size_t d = 0; d < axis.size(); ++d) {
    axis[d] = {db::kAllBucket, db::kDefaultBucket};
    for (size_t i = 0; i < lhs.literals()[d].size(); ++i) {
      axis[d].push_back(static_cast<int16_t>(i));
    }
  }
  std::vector<size_t> pos(axis.size(), 0);
  std::vector<int16_t> key(axis.size(), 0);
  while (true) {
    for (size_t d = 0; d < axis.size(); ++d) key[d] = axis[d][pos[d]];
    for (size_t a = 0; a < lhs.aggregates().size(); ++a) {
      if (!BitEqual(lhs.Lookup(key, a), rhs.Lookup(key, a))) return false;
    }
    size_t d = 0;
    while (d < axis.size() && ++pos[d] == axis[d].size()) pos[d++] = 0;
    if (d == axis.size()) break;
  }
  return true;
}

int RunSmoke() {
  db::Database database = MakeDatabase();
  Workload workload = MakeWorkload(database);
  std::shared_ptr<db::CubeResult> scalar_cube, vectorized_cube;
  // Warm lazy column representations outside the timed region for both
  // modes alike (the engine pre-warms them in its plan phase too).
  double scalar = TimeMode(database, workload,
                           db::CubeExecMode::kScalarOracle, &scalar_cube);
  double vectorized = TimeMode(database, workload,
                               db::CubeExecMode::kVectorized,
                               &vectorized_cube);
  double speedup = scalar / vectorized;
  std::printf("perf_smoke: scalar=%.3fms vectorized=%.3fms speedup=%.2fx "
              "(d=2, 5 aggregates, %zu rows, 1 thread)\n",
              scalar * 1e3, vectorized * 1e3, speedup,
              kRows);
  if (!CubesIdentical(*scalar_cube, *vectorized_cube)) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — backends disagree on cube cells\n");
    return 1;
  }
  if (vectorized >= scalar) {
    std::fprintf(stderr,
                 "perf_smoke: FAIL — vectorized cube execution is not "
                 "faster than the scalar oracle (%.2fx)\n",
                 speedup);
    return 1;
  }
  std::printf("perf_smoke: OK\n");
  return 0;
}

}  // namespace
}  // namespace aggchecker

int main() { return aggchecker::RunSmoke(); }
