// Ablations of the design decisions DESIGN.md §4 calls out: candidate-space
// caps (predicate subsets, evaluation budget), relevance-score smoothing,
// and the EM iteration limit.

#include "bench_common.h"
#include "util/strings.h"

namespace aggchecker {
namespace {

void Report(const char* label, const corpus::CorpusRunResult& result) {
  std::printf("%-28s top-1=%5.1f%% top-5=%5.1f%% F1=%5.1f%% time=%4.1fs "
              "queries=%zu\n",
              label, result.coverage.TopK(1), result.coverage.TopK(5),
              result.detection.F1() * 100, result.total_seconds,
              result.queries_evaluated);
}

}  // namespace
}  // namespace aggchecker

int main() {
  using namespace aggchecker;
  bench::Header("Design ablations (DESIGN.md section 4)",
                "each cap trades coverage for time; defaults sit at the "
                "knee of the curves");

  std::printf("--- predicate-subset cap (candidate space breadth) ---\n");
  for (size_t cap : {25u, 50u, 100u, 200u, 400u}) {
    core::CheckOptions options;
    options.model.max_pred_subsets = cap;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    Report(strings::Format("max_pred_subsets=%zu%s", cap,
                           cap == 200 ? " (default)" : "")
               .c_str(),
           result);
  }

  std::printf("--- evaluation budget per claim (PickScope) ---\n");
  for (size_t budget : {20u, 40u, 80u, 160u, 320u}) {
    core::CheckOptions options;
    options.model.max_eval_per_claim = budget;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    Report(strings::Format("max_eval_per_claim=%zu%s", budget,
                           budget == 160 ? " (default)" : "")
               .c_str(),
           result);
  }

  std::printf("--- relevance-score smoothing ---\n");
  for (double smoothing : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    core::CheckOptions options;
    options.model.score_smoothing = smoothing;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    Report(strings::Format("score_smoothing=%.2f%s", smoothing,
                           smoothing == 0.10 ? " (default)" : "")
               .c_str(),
           result);
  }

  std::printf("--- EM iteration cap ---\n");
  for (int iters : {1, 2, 3, 5, 10}) {
    core::CheckOptions options;
    options.model.max_em_iterations = iters;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    Report(strings::Format("max_em_iterations=%d%s", iters,
                           iters == 5 ? " (default)" : "")
               .c_str(),
           result);
  }
  return 0;
}
