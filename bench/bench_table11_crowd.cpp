// Reproduces Table 11 (Appendix D): the Amazon-Mechanical-Turk-style crowd
// study — untrained workers verifying a survey article with the AggChecker
// versus a spreadsheet, at document and paragraph scope.

#include "bench_common.h"
#include "corpus/embedded_articles.h"
#include "sim/crowd_study.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 11: Amazon Mechanical Turk results",
                "document: AC 56/53/54 vs G-Sheet 0/0/0; "
                "paragraph: AC 86/96/91 vs G-Sheet 42/95/58");

  auto article = corpus::MakeEtiquetteCase();
  struct ScopeSpec {
    const char* label;
    sim::CrowdScope scope;
    const char* paper_ac;
    const char* paper_sheet;
  };
  ScopeSpec scopes[] = {
      {"Document", sim::CrowdScope::kDocument, "paper 56/53/54",
       "paper 0/0/0"},
      {"Paragraph", sim::CrowdScope::kParagraph, "paper 86/96/91",
       "paper 42/95/58"},
  };
  for (const auto& s : scopes) {
    auto result = sim::RunCrowdStudy(article, s.scope);
    if (!result.ok()) {
      std::fprintf(stderr, "crowd study failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- scope: %s (%zu AC workers, %zu sheet workers) ---\n",
                s.label, result->aggchecker_workers, result->sheet_workers);
    bench::Row("  AggChecker", result->aggchecker.Recall(),
               result->aggchecker.Precision(), result->aggchecker.F1(),
               s.paper_ac);
    bench::Row("  G-Sheet", result->sheet.Recall(),
               result->sheet.Precision(), result->sheet.F1(),
               s.paper_sheet);
  }
  return 0;
}
