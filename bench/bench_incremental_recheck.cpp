// Incremental re-verification (DESIGN.md §16): after appending rows to one
// table of one case in the Table 6 corpus, re-verifying the whole corpus
// through AggChecker::ReCheck must be >= 10x faster than re-running every
// case cold — and report bit-identically. The timed regions:
//
//   cold:     per case, AggChecker::Create (adopting the warm catalog, so
//             both paths translate over the identical fragment space) +
//             a from-scratch Check on the current data
//   recheck:  per case, AggChecker::ReCheck against the prior report —
//             untouched cases splice their entire report after claim
//             re-detection; the mutated case re-evaluates against caches
//             the version sweep has already narrowed to the touched table
//
// Gate (scripts/check.sh incremental-smoke runs --smoke): recheck >= 10x
// faster than cold, bit-identical reports. Results land in
// BENCH_incremental.json. The thread×budget identity sweep lives in
// incremental_recheck_diff_test; this bench measures the fleet scenario.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/generator.h"
#include "corpus/harness.h"
#include "util/timer.h"

namespace {

using namespace aggchecker;

constexpr double kSpeedupGate = 10.0;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::Header("Incremental re-verification: ReCheck vs cold re-Check",
                "1-of-N table mutated; gate: >= 10x faster, bit-identical");

  // The Table 6 dataset: embedded articles plus the scaled synthetic
  // corpus. Smoke keeps the same shape, smaller.
  corpus::GeneratorOptions gen;
  gen.num_cases = smoke ? 7 : 50;
  gen.row_scale = smoke ? 2 : 20;
  std::vector<corpus::CorpusCase> cases = corpus::EmbeddedArticles();
  for (auto& c : corpus::GenerateCorpus(gen)) cases.push_back(std::move(c));
  size_t total_rows = 0, total_tables = 0;
  for (const auto& c : cases) {
    total_rows += c.database.TotalRows();
    total_tables += c.database.num_tables();
  }
  std::printf("corpus: %zu cases, %zu tables, %zu total rows (mode=%s)\n",
              cases.size(), total_tables, total_rows,
              smoke ? "smoke" : "full");

  // Warm phase (untimed): one checker per case, checked once — the state
  // an always-on verification service holds between data refreshes.
  std::vector<core::AggChecker> checkers;
  std::vector<core::CheckReport> priors;
  checkers.reserve(cases.size());
  priors.reserve(cases.size());
  for (const corpus::CorpusCase& c : cases) {
    auto checker = core::AggChecker::Create(&c.database, {});
    if (!checker.ok()) {
      std::fprintf(stderr, "create %s: %s\n", c.name.c_str(),
                   checker.status().ToString().c_str());
      return 1;
    }
    auto report = checker->Check(c.document);
    if (!report.ok()) {
      std::fprintf(stderr, "check %s: %s\n", c.name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    checkers.push_back(std::move(*checker));
    priors.push_back(std::move(*report));
  }

  // The data refresh: rows land in one table of one case — the NFL
  // suspensions article, the paper's running example — and every other
  // table of every other case keeps its version.
  const size_t mutated_case = 0;
  const std::string mutated_table =
      cases[mutated_case].database.table(0).name();
  const size_t appended = smoke ? 8 : 64;
  Status ingested = corpus::AppendSyntheticRows(
      &cases[mutated_case].database, mutated_table, appended);
  if (!ingested.ok()) {
    std::fprintf(stderr, "ingest: %s\n", ingested.ToString().c_str());
    return 1;
  }
  std::printf("appended %zu rows to %s.%s (case %zu of %zu)\n", appended,
              cases[mutated_case].name.c_str(), mutated_table.c_str(),
              mutated_case + 1, cases.size());

  // Timed incremental path: ReCheck every case against its prior report.
  Timer recheck_timer;
  std::vector<core::CheckReport> rechecked;
  rechecked.reserve(cases.size());
  size_t claims_spliced = 0, claims_rechecked = 0;
  uint64_t invalidations = 0;
  for (size_t i = 0; i < cases.size(); ++i) {
    auto report = checkers[i].ReCheck(cases[i].document, priors[i]);
    if (!report.ok()) {
      std::fprintf(stderr, "recheck %s: %s\n", cases[i].name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    claims_spliced += report->claims_spliced;
    claims_rechecked += report->claims_rechecked;
    if (i == mutated_case) {
      invalidations = report->eval_stats.cache_invalidations;
    }
    rechecked.push_back(std::move(*report));
  }
  const double recheck_seconds = recheck_timer.ElapsedSeconds();

  // Timed cold path: what a non-incremental deployment does on any data
  // change — new checker, full Check, for every case. The cold checkers
  // adopt the warm catalogs (the catalog deliberately does not track
  // ingestion) so the two paths answer over the same fragment space.
  Timer cold_timer;
  std::vector<core::CheckReport> cold;
  cold.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    core::CheckOptions options;
    options.prebuilt_catalog = checkers[i].shared_catalog();
    auto checker = core::AggChecker::Create(&cases[i].database, options);
    if (!checker.ok()) return 1;
    auto report = checker->Check(cases[i].document);
    if (!report.ok()) return 1;
    cold.push_back(std::move(*report));
  }
  const double cold_seconds = cold_timer.ElapsedSeconds();

  // Differential step (untimed): spliced and cold reports must agree byte
  // for byte on every case.
  bool bit_identical = true;
  for (size_t i = 0; i < cases.size(); ++i) {
    if (core::FleetVerdictFingerprint(rechecked[i]) !=
        core::FleetVerdictFingerprint(cold[i])) {
      std::printf("BIT-IDENTITY VIOLATION on %s\n", cases[i].name.c_str());
      bit_identical = false;
    }
  }

  const double speedup =
      recheck_seconds > 0 ? cold_seconds / recheck_seconds : 0;
  std::printf("cold re-check:  %8.3fs\n", cold_seconds);
  std::printf("incremental:    %8.3fs\n", recheck_seconds);
  std::printf("speedup:        x%.1f (gate: >= x%.0f)\n", speedup,
              kSpeedupGate);
  std::printf("claims spliced: %zu, re-checked: %zu, cube invalidations in "
              "the mutated case: %llu\n",
              claims_spliced, claims_rechecked,
              static_cast<unsigned long long>(invalidations));
  std::printf("bit-identity recheck-vs-cold over %zu cases: %s\n",
              cases.size(), bit_identical ? "OK" : "FAILED");

  if (FILE* out = std::fopen("BENCH_incremental.json", "w")) {
    std::fprintf(out, "{\n  \"mode\": \"%s\",\n  \"cases\": %zu,\n",
                 smoke ? "smoke" : "full", cases.size());
    std::fprintf(out,
                 "  \"appended_rows\": %zu,\n  \"cold_seconds\": %.6f,\n"
                 "  \"recheck_seconds\": %.6f,\n  \"speedup\": %.2f,\n"
                 "  \"speedup_gate\": %.1f,\n",
                 appended, cold_seconds, recheck_seconds, speedup,
                 kSpeedupGate);
    std::fprintf(out,
                 "  \"claims_spliced\": %zu,\n  \"claims_rechecked\": %zu,\n"
                 "  \"cache_invalidations\": %llu,\n",
                 claims_spliced, claims_rechecked,
                 static_cast<unsigned long long>(invalidations));
    std::fprintf(out, "  \"bit_identical\": %s,\n  ",
                 bit_identical ? "true" : "false");
    bench::WriteThreadReportJson(out, bench::MakeThreadReport(1));
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_incremental.json\n");
  }

  if (!bit_identical) return 1;
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr,
                 "bench_incremental_recheck: FAIL — ReCheck is only x%.2f "
                 "the cold path (gate: >= x%.0f)\n",
                 speedup, kSpeedupGate);
    return 1;
  }
  return 0;
}
