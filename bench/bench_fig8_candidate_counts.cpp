// Reproduces Figure 8: the number of possible Simple Aggregate Queries per
// data set — the search space the claim-to-query translation faces.

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "fragments/catalog.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 8: possible query candidates per data set",
                "10^4 .. 10^12+ queries; largest sets exceed a trillion");

  std::vector<double> counts;
  for (const corpus::CorpusCase& c : bench::SharedCorpus()) {
    counts.push_back(fragments::FragmentCatalog::CountPossibleQueries(
        c.database));
  }
  std::sort(counts.begin(), counts.end());
  std::printf("%8s %16s\n", "case#", "#queries");
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("%8zu %16.3g\n", i + 1, counts[i]);
  }
  std::printf("\nmin=%.3g  median=%.3g  max=%.3g  (log10 range %.1f..%.1f)\n",
              counts.front(), counts[counts.size() / 2], counts.back(),
              std::log10(counts.front()), std::log10(counts.back()));
  return 0;
}
