// Reproduces Table 4: recall/precision/F1 of erroneous-claim detection for
// "tool + user" under the on-site study's time limits.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 4: results of the on-site user study",
                "AggChecker+User 100/91.4/95.5 vs SQL+User 30/56.7/39.2");

  auto ac = bench::SharedStudy().ErrorDetection(sim::Tool::kAggChecker);
  auto sql = bench::SharedStudy().ErrorDetection(sim::Tool::kSql);
  bench::Row("AggChecker + User", ac.Recall(), ac.Precision(), ac.F1(),
             "paper 100.0/91.4/95.5");
  bench::Row("SQL + User", sql.Recall(), sql.Precision(), sql.F1(),
             "paper 30.0/56.7/39.2");
  return 0;
}
