// Reproduces Table 3: how simulated users resolve claims in the AggChecker
// interface — top-1 confirmation (1 click), top-5 pick (2 clicks), top-10
// pick (3 clicks), or custom query construction.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 3: verification by used AggChecker features",
                "top-1 44.5%, top-5 38.1%, top-10 4.6%, custom 12.8%");

  auto shares = bench::SharedStudy().ComputeActionShares();
  std::printf("%12s %12s %12s %12s\n", "Top-1", "Top-5", "Top-10", "Custom");
  std::printf("%11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", shares.top1,
              shares.top5, shares.top10, shares.custom);
  std::printf("\nwithin top-5 total: %.1f%% (paper: 82.6%%)\n",
              shares.top1 + shares.top5);
  return 0;
}
