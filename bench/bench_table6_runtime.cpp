// Reproduces Table 6: run time for fact-checking all test cases under the
// three evaluation strategies — naive per-candidate execution, merged cube
// queries, and cubes plus the cross-claim/cross-iteration result cache.

#include "bench_common.h"
#include "corpus/embedded_articles.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 6: processing strategies",
                "naive 2587s/2415s query -> merging x61.9 -> caching x2.1 "
                "(accumulated x129.9)");

  // The paper's data sets reach ~100 MB and its pipeline evaluates tens of
  // thousands of candidates per article; the default corpus/scope is kept
  // small so the accuracy benchmarks stay fast. Scale rows and evaluation
  // scope here so scan cost dominates — the regime Table 6 measures.
  corpus::GeneratorOptions gen;
  gen.num_cases = 50;
  gen.row_scale = 20;
  std::vector<corpus::CorpusCase> scaled = corpus::EmbeddedArticles();
  for (auto& c : corpus::GenerateCorpus(gen)) scaled.push_back(std::move(c));
  std::printf("corpus: %zu cases, %zu total rows (row_scale=%zu)\n",
              scaled.size(),
              [&] {
                size_t rows = 0;
                for (const auto& c : scaled) rows += c.database.TotalRows();
                return rows;
              }(),
              gen.row_scale);

  struct RowResult {
    const char* label;
    db::EvalStrategy strategy;
    const char* paper;
    double total = 0, query = 0;
  };
  RowResult rows[] = {
      {"Naive", db::EvalStrategy::kNaive, "paper 2587s total / 2415s query"},
      {"+ Query Merging", db::EvalStrategy::kMerged, "paper 151s / 39s"},
      {"+ Caching", db::EvalStrategy::kMergedCached, "paper 128s / 18s"},
  };
  for (auto& row : rows) {
    core::CheckOptions options;
    options.strategy = row.strategy;
    options.model.max_eval_per_claim = 800;
    options.model.lucene_hits = 30;
    auto result = corpus::RunOnCorpus(scaled, options);
    row.total = result.total_seconds;
    row.query = result.query_seconds;
    std::printf("%-18s total=%7.2fs  query=%7.2fs  cubes=%zu  "
                "cache_hits=%zu   %s\n",
                row.label, row.total, row.query, result.cube_queries,
                result.cache_hits, row.paper);
  }
  std::printf("\nquery-time speedups: merging x%.1f, caching x%.1f, "
              "accumulated x%.1f (paper: x61.9, x2.1, x129.9)\n",
              rows[0].query / rows[1].query, rows[1].query / rows[2].query,
              rows[0].query / rows[2].query);
  return 0;
}
