// Reproduces Table 6: run time for fact-checking all test cases under the
// three evaluation strategies — naive per-candidate execution, merged cube
// queries, and cubes plus the cross-claim/cross-iteration result cache —
// plus a thread-count sweep over the best strategy. Results are written to
// BENCH_table6.json for cross-run tracking.

#include <algorithm>

#include "bench_common.h"
#include "corpus/embedded_articles.h"
#include "util/thread_pool.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 6: processing strategies",
                "naive 2587s/2415s query -> merging x61.9 -> caching x2.1 "
                "(accumulated x129.9)");

  // The paper's data sets reach ~100 MB and its pipeline evaluates tens of
  // thousands of candidates per article; the default corpus/scope is kept
  // small so the accuracy benchmarks stay fast. Scale rows and evaluation
  // scope here so scan cost dominates — the regime Table 6 measures.
  corpus::GeneratorOptions gen;
  gen.num_cases = 50;
  gen.row_scale = 20;
  std::vector<corpus::CorpusCase> scaled = corpus::EmbeddedArticles();
  for (auto& c : corpus::GenerateCorpus(gen)) scaled.push_back(std::move(c));
  std::printf("corpus: %zu cases, %zu total rows (row_scale=%zu)\n",
              scaled.size(),
              [&] {
                size_t rows = 0;
                for (const auto& c : scaled) rows += c.database.TotalRows();
                return rows;
              }(),
              gen.row_scale);

  struct RowResult {
    const char* label;
    db::EvalStrategy strategy;
    const char* paper;
    double total = 0, query = 0, join = 0;
    size_t joins_built = 0, join_cache_hits = 0;
    size_t recovery_retries = 0, ladder_descents = 0;
    size_t claims_recovered = 0, claims_quarantined = 0, watchdog_flags = 0;
  };
  RowResult rows[] = {
      {"Naive", db::EvalStrategy::kNaive, "paper 2587s total / 2415s query"},
      {"+ Query Merging", db::EvalStrategy::kMerged, "paper 151s / 39s"},
      {"+ Caching", db::EvalStrategy::kMergedCached, "paper 128s / 18s"},
  };
  for (auto& row : rows) {
    core::CheckOptions options;
    options.strategy = row.strategy;
    options.model.max_eval_per_claim = 800;
    options.model.lucene_hits = 30;
    options.model.num_threads = 1;  // serial baseline; sweep below
    auto result = corpus::RunOnCorpus(scaled, options);
    row.total = result.total_seconds;
    row.query = result.query_seconds;
    row.join = result.join_seconds;
    row.joins_built = result.joins_built;
    row.join_cache_hits = result.join_cache_hits;
    row.recovery_retries = result.recovery_retries;
    row.ladder_descents = result.ladder_descents;
    row.claims_recovered = result.claims_recovered;
    row.claims_quarantined = result.claims_quarantined;
    row.watchdog_flags = result.watchdog_flags;
    std::printf("%-18s total=%7.2fs  query=%7.2fs  cubes=%zu  "
                "cache_hits=%zu  joins=%zu (hits %zu)   %s\n",
                row.label, row.total, row.query, result.cube_queries,
                result.cache_hits, result.joins_built,
                result.join_cache_hits, row.paper);
    std::printf("%-18s recovery: retries=%zu descents=%zu recovered=%zu "
                "quarantined=%zu watchdog_flags=%zu\n",
                "", row.recovery_retries, row.ladder_descents,
                row.claims_recovered, row.claims_quarantined,
                row.watchdog_flags);
  }
  std::printf("\nquery-time speedups: merging x%.1f, caching x%.1f, "
              "accumulated x%.1f (paper: x61.9, x2.1, x129.9)\n",
              rows[0].query / rows[1].query, rows[1].query / rows[2].query,
              rows[0].query / rows[2].query);

  // Thread-count sweep over the best strategy (cube jobs are split into
  // (job, row-block) morsels drained by the worker pool; results are
  // bit-identical for any thread count). The sweep is clamped to the
  // machine's hardware concurrency (bench_common.h).
  const size_t hw = ThreadPool::HardwareConcurrency();
  std::vector<size_t> thread_counts = bench::ClampedThreadSweep({1, 2, 4});
  std::printf("\nthread sweep (+ Caching strategy, identical results; "
              "hardware_concurrency=%zu):\n",
              hw);
  struct SweepResult {
    size_t threads;
    double total = 0, query = 0;
    double plan = 0, execute = 0, fold = 0, answer = 0;
    size_t plans_built = 0, plan_cache_hits = 0;
  };
  std::vector<SweepResult> sweep;
  for (size_t threads : thread_counts) {
    core::CheckOptions options;
    options.strategy = db::EvalStrategy::kMergedCached;
    options.model.max_eval_per_claim = 800;
    options.model.lucene_hits = 30;
    options.model.num_threads = threads;
    auto result = corpus::RunOnCorpus(scaled, options);
    sweep.push_back({threads, result.total_seconds, result.query_seconds,
                     result.plan_seconds, result.execute_seconds,
                     result.fold_seconds, result.answer_seconds,
                     result.plans_built, result.plan_cache_hits});
    std::printf(
        "  threads=%zu  total=%7.2fs  query=%7.2fs  speedup=x%.2f  "
        "[plan=%.2fs execute=%.2fs fold=%.2fs answer=%.2fs]  "
        "plans=%zu (hits %zu)\n",
        threads, result.total_seconds, result.query_seconds,
        sweep[0].query / result.query_seconds, result.plan_seconds,
        result.execute_seconds, result.fold_seconds, result.answer_seconds,
        result.plans_built, result.plan_cache_hits);
  }

  // Machine-readable tracking (compared across commits by eye/scripts).
  if (FILE* out = std::fopen("BENCH_table6.json", "w")) {
    std::fprintf(out, "{\n  \"strategies\": [\n");
    for (size_t i = 0; i < 3; ++i) {
      std::fprintf(out,
                   "    {\"label\": \"%s\", \"total_seconds\": %.4f, "
                   "\"query_seconds\": %.4f, \"join_seconds\": %.4f, "
                   "\"joins_built\": %zu, \"join_cache_hits\": %zu, "
                   "\"recovery\": {\"retries\": %zu, \"ladder_descents\": "
                   "%zu, \"claims_recovered\": %zu, \"claims_quarantined\": "
                   "%zu, \"watchdog_flags\": %zu}}%s\n",
                   rows[i].label, rows[i].total, rows[i].query, rows[i].join,
                   rows[i].joins_built, rows[i].join_cache_hits,
                   rows[i].recovery_retries, rows[i].ladder_descents,
                   rows[i].claims_recovered, rows[i].claims_quarantined,
                   rows[i].watchdog_flags, i + 1 < 3 ? "," : "");
    }
    std::fprintf(out, "  ],\n  ");
    // The sweep requests up to 4 threads; the report records what the
    // host actually allowed (uniform keys across all bench JSON files).
    bench::WriteThreadReportJson(out, bench::MakeThreadReport(4));
    std::fprintf(out, ",\n  \"thread_sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
      std::fprintf(out,
                   "    {\"threads\": %zu, \"total_seconds\": %.4f, "
                   "\"query_seconds\": %.4f, \"speedup\": %.4f, "
                   "\"phases\": {\"plan\": %.4f, \"execute\": %.4f, "
                   "\"fold\": %.4f, \"answer\": %.4f}, "
                   "\"plans_built\": %zu, \"plan_cache_hits\": %zu}%s\n",
                   sweep[i].threads, sweep[i].total, sweep[i].query,
                   sweep[0].query / sweep[i].query, sweep[i].plan,
                   sweep[i].execute, sweep[i].fold, sweep[i].answer,
                   sweep[i].plans_built, sweep[i].plan_cache_hits,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_table6.json\n");
  }
  return 0;
}
