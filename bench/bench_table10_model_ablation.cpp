// Reproduces Table 10: top-k coverage under the probabilistic-model
// increments — relevance scores alone, plus evaluation results, plus
// learned document priors.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 10: top-k coverage vs probabilistic model",
                "Sc 10.7/31.6/41.1 -> +Ec 53.1/64.8/65.8 -> "
                "+priors 58.4/68.4/68.9");

  struct Variant {
    const char* label;
    bool eval, priors;
    const char* paper;
  };
  Variant variants[] = {
      {"Relevance scores Sc", false, false, "paper 10.7/31.6/41.1"},
      {"+ Evaluation results Ec", true, false, "paper 53.1/64.8/65.8"},
      {"+ Learning priors Theta", true, true, "paper 58.4/68.4/68.9"},
  };
  std::printf("%-28s %8s %8s %8s\n", "version", "top-1", "top-5", "top-10");
  for (const auto& v : variants) {
    core::CheckOptions options;
    options.model.use_eval_results = v.eval;
    options.model.use_priors = v.priors;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%-28s %7.1f%% %7.1f%% %7.1f%%   %s\n", v.label,
                result.coverage.TopK(1), result.coverage.TopK(5),
                result.coverage.TopK(10), v.paper);
  }
  return 0;
}
