// Reproduces Figure 11: top-k coverage as a function of the keyword
// context sources enabled in Algorithm 2.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 11: top-k coverage vs keyword context",
                "each added context source improves top-k coverage; "
                "full context ~58/68/69");

  struct Step {
    const char* label;
    bool prev, para, syn, head;
  };
  Step steps[] = {
      {"Claim sentence", false, false, false, false},
      {"+ Previous sentence", true, false, false, false},
      {"+ Paragraph start", true, true, false, false},
      {"+ Synonyms", true, true, true, false},
      {"+ Headlines", true, true, true, true},
  };
  std::printf("%-24s %8s %8s %8s\n", "context", "top-1", "top-5", "top-10");
  for (const auto& s : steps) {
    core::CheckOptions options;
    options.context.previous_sentence = s.prev;
    options.context.paragraph_start = s.para;
    options.context.synonyms = s.syn;
    options.context.headlines = s.head;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%-24s %7.1f%% %7.1f%% %7.1f%%\n", s.label,
                result.coverage.TopK(1), result.coverage.TopK(5),
                result.coverage.TopK(10));
  }
  return 0;
}
