// Reproduces Figure 6: the number of correctly verified claims as a
// function of time, per study article, averaged over the simulated users
// of each tool.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 6: correctly verified claims over time",
                "AggChecker curves dominate SQL curves on every article");

  const auto& study = bench::SharedStudy();
  for (size_t a = 0; a < study.articles.size(); ++a) {
    const auto* article = study.articles[a].article;
    double limit = article->ground_truth.size() > 15 ? 1200.0 : 300.0;
    double step = limit / 10.0;
    auto ac = study.VerifiedOverTime(a, sim::Tool::kAggChecker, step);
    auto sql = study.VerifiedOverTime(a, sim::Tool::kSql, step);
    std::printf("--- article %zu: %s (%zu claims, limit %.0fs) ---\n", a + 1,
                article->name.c_str(), article->ground_truth.size(), limit);
    std::printf("%10s %14s %10s\n", "time(s)", "AggChecker", "SQL");
    for (size_t i = 0; i < ac.size() && i < sql.size(); ++i) {
      std::printf("%10.0f %14.2f %10.2f\n", step * (i + 1), ac[i], sql[i]);
    }
  }
  return 0;
}
