// Verification-aware candidate pruning (DESIGN.md §17): cheap probes
// against ColumnStats kill candidates before EM evaluation. Over the
// Table 6 dataset (embedded articles + scaled synthetic corpus) this bench
// measures pruning on two rungs of the Table 6 strategy ladder, running
// the full check twice per rung — probe_pruning on and off, all checkers
// adopting the same fragment catalog so the candidate spaces are
// identical:
//
//   naive rung:        per-candidate evaluation, the Fig. 8 cost model the
//                      probe attacks — every pruned candidate skips a full
//                      scan, so wall-clock tracks the candidate count.
//                      This is where the end-to-end speedup gate lives.
//   merged-cached rung: the engine's merged-cube/plan-cache sharing
//                      already collapses per-candidate cost, and charge
//                      parity pins the scan set, so pruning shows up as
//                      skipped aggregation kernels (dead slices), not
//                      wall-clock — reported, not gated.
//
// Gates (scripts/check.sh probe-smoke runs --smoke): candidate reduction
// >= 30%, naive-rung speedup >= x1.3, and pruned/unpruned reports
// bit-identical on every case of both rungs. Results land in
// BENCH_probe.json; the EXPERIMENTS.md Fig. 8 table is derived from the
// full run.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/generator.h"
#include "corpus/harness.h"
#include "util/timer.h"

namespace {

using namespace aggchecker;

constexpr double kReductionGate = 0.30;
constexpr double kSpeedupGate = 1.3;

struct Arm {
  std::vector<core::AggChecker> checkers;
  std::vector<core::CheckReport> reports;
  double seconds = 0;
};

// Timed pass: run every case's check through this arm's checkers.
bool RunArm(Arm* arm, const std::vector<corpus::CorpusCase>& cases,
            const char* what) {
  Timer timer;
  arm->reports.reserve(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    auto report = arm->checkers[i].Check(cases[i].document);
    if (!report.ok()) {
      std::fprintf(stderr, "%s check %s: %s\n", what, cases[i].name.c_str(),
                   report.status().ToString().c_str());
      return false;
    }
    arm->reports.push_back(std::move(*report));
  }
  arm->seconds = timer.ElapsedSeconds();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::Header("Verification-aware candidate pruning: probes vs full eval",
                "Fig. 8 cost driver; gate: >= 30% pruned, >= x1.3 naive");

  corpus::GeneratorOptions gen;
  gen.num_cases = smoke ? 7 : 50;
  gen.row_scale = smoke ? 2 : 20;
  std::vector<corpus::CorpusCase> cases = corpus::EmbeddedArticles();
  for (auto& c : corpus::GenerateCorpus(gen)) cases.push_back(std::move(c));
  size_t total_rows = 0;
  for (const auto& c : cases) total_rows += c.database.TotalRows();
  std::printf("corpus: %zu cases, %zu total rows (mode=%s)\n", cases.size(),
              total_rows, smoke ? "smoke" : "full");

  // Untimed setup: four checkers per case (pruned/unpruned x naive/merged),
  // all sharing one fragment catalog so every arm translates the identical
  // candidate space and the timed region is pure translation+evaluation.
  // All use the Table 6 evaluation regime (see bench_table6_runtime):
  // widened per-claim scope so candidate evaluation dominates end-to-end
  // time — the cost driver Fig. 8 identifies and the probe stage attacks.
  Arm merged_on, merged_off, naive_on, naive_off;
  for (const corpus::CorpusCase& c : cases) {
    core::CheckOptions base;
    base.model.max_eval_per_claim = 800;
    base.model.lucene_hits = 30;
    core::CheckOptions on = base;
    on.probe_pruning = true;
    auto pruned = core::AggChecker::Create(&c.database, on);
    if (!pruned.ok()) {
      std::fprintf(stderr, "create %s: %s\n", c.name.c_str(),
                   pruned.status().ToString().c_str());
      return 1;
    }
    base.prebuilt_catalog = pruned->shared_catalog();
    core::CheckOptions off = base;
    off.probe_pruning = false;
    core::CheckOptions non = base;
    non.probe_pruning = true;
    non.strategy = db::EvalStrategy::kNaive;
    core::CheckOptions noff = non;
    noff.probe_pruning = false;
    auto unpruned = core::AggChecker::Create(&c.database, off);
    auto naive_pruned = core::AggChecker::Create(&c.database, non);
    auto naive_unpruned = core::AggChecker::Create(&c.database, noff);
    if (!unpruned.ok() || !naive_pruned.ok() || !naive_unpruned.ok()) {
      return 1;
    }
    merged_on.checkers.push_back(std::move(*pruned));
    merged_off.checkers.push_back(std::move(*unpruned));
    naive_on.checkers.push_back(std::move(*naive_pruned));
    naive_off.checkers.push_back(std::move(*naive_unpruned));
  }

  // Naive rung first (the Fig. 8 regime), unpruned reference before pruned.
  if (!RunArm(&naive_off, cases, "naive unpruned")) return 1;
  if (!RunArm(&naive_on, cases, "naive pruned")) return 1;
  if (!RunArm(&merged_off, cases, "merged unpruned")) return 1;
  if (!RunArm(&merged_on, cases, "merged pruned")) return 1;

  // Differential step (untimed): pruning must not move a single byte of
  // any report, on either rung.
  bool bit_identical = true;
  model::ProbeStats probes, naive_probes;
  size_t slices_skipped = 0;
  db::EvalStats pruned_eval, unpruned_eval;
  auto fold_eval = [](db::EvalStats* sum, const db::EvalStats& s) {
    sum->execute_seconds += s.execute_seconds;
    sum->query_seconds += s.query_seconds;
    sum->cube_queries += s.cube_queries;
    sum->rows_scanned += s.rows_scanned;
    sum->probe_jobs_dead += s.probe_jobs_dead;
    sum->probe_slices_total += s.probe_slices_total;
    sum->probe_slice_rows_total += s.probe_slice_rows_total;
    sum->probe_slice_rows_skipped += s.probe_slice_rows_skipped;
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    if (core::FleetVerdictFingerprint(merged_on.reports[i]) !=
        core::FleetVerdictFingerprint(merged_off.reports[i])) {
      std::printf("BIT-IDENTITY VIOLATION (merged) on %s\n",
                  cases[i].name.c_str());
      bit_identical = false;
    }
    if (core::FleetVerdictFingerprint(naive_on.reports[i]) !=
        core::FleetVerdictFingerprint(naive_off.reports[i])) {
      std::printf("BIT-IDENTITY VIOLATION (naive) on %s\n",
                  cases[i].name.c_str());
      bit_identical = false;
    }
    probes.Add(merged_on.reports[i].probe_stats);
    naive_probes.Add(naive_on.reports[i].probe_stats);
    slices_skipped += merged_on.reports[i].eval_stats.probe_slices_skipped;
    fold_eval(&pruned_eval, merged_on.reports[i].eval_stats);
    fold_eval(&unpruned_eval, merged_off.reports[i].eval_stats);
  }

  const double reduction =
      probes.candidates_probed > 0
          ? static_cast<double>(probes.candidates_pruned) /
                static_cast<double>(probes.candidates_probed)
          : 0;
  const double naive_speedup =
      naive_on.seconds > 0 ? naive_off.seconds / naive_on.seconds : 0;
  const double merged_speedup =
      merged_on.seconds > 0 ? merged_off.seconds / merged_on.seconds : 0;

  std::printf("candidates probed:  %zu\n", probes.candidates_probed);
  std::printf("candidates pruned:  %zu (%.1f%%; gate: >= %.0f%%)\n",
              probes.candidates_pruned, reduction * 100,
              kReductionGate * 100);
  std::printf("  by absent domain: %zu\n", probes.pruned_domain);
  std::printf("  by magnitude:     %zu\n", probes.pruned_magnitude);
  std::printf("naive rung (per-candidate evaluation, Fig. 8 regime):\n");
  std::printf("  unpruned: %8.3fs   pruned: %8.3fs   speedup: x%.2f "
              "(gate: >= x%.1f)\n",
              naive_off.seconds, naive_on.seconds, naive_speedup,
              kSpeedupGate);
  std::printf("merged+cached rung (shared scans pinned by charge parity):\n");
  std::printf("  unpruned: %8.3fs   pruned: %8.3fs   speedup: x%.2f "
              "(reported, not gated)\n",
              merged_off.seconds, merged_on.seconds, merged_speedup);
  std::printf("  probe overhead %.3fs; top-k backfills: %zu\n",
              probes.probe_seconds, probes.backfilled);
  std::printf("  dead slices: %zu of %zu; kernel rows skipped %zu of %zu "
              "(%.1f%%); all-dead cube jobs %zu of %zu\n",
              slices_skipped, pruned_eval.probe_slices_total,
              pruned_eval.probe_slice_rows_skipped,
              pruned_eval.probe_slice_rows_total,
              pruned_eval.probe_slice_rows_total > 0
                  ? 100.0 * pruned_eval.probe_slice_rows_skipped /
                        pruned_eval.probe_slice_rows_total
                  : 0.0,
              pruned_eval.probe_jobs_dead, pruned_eval.cube_queries);
  std::printf("bit-identity pruned-vs-unpruned over %zu cases x 2 rungs: "
              "%s\n",
              cases.size(), bit_identical ? "OK" : "FAILED");

  if (FILE* out = std::fopen("BENCH_probe.json", "w")) {
    std::fprintf(out, "{\n  \"mode\": \"%s\",\n  \"cases\": %zu,\n",
                 smoke ? "smoke" : "full", cases.size());
    std::fprintf(out,
                 "  \"candidates_probed\": %zu,\n"
                 "  \"candidates_pruned\": %zu,\n"
                 "  \"pruned_domain\": %zu,\n  \"pruned_magnitude\": %zu,\n"
                 "  \"probe_conflicts\": %zu,\n  \"backfilled\": %zu,\n"
                 "  \"slices_skipped\": %zu,\n  \"jobs_all_dead\": %zu,\n",
                 probes.candidates_probed, probes.candidates_pruned,
                 probes.pruned_domain, probes.pruned_magnitude,
                 probes.probe_conflicts, probes.backfilled, slices_skipped,
                 pruned_eval.probe_jobs_dead);
    std::fprintf(out,
                 "  \"reduction\": %.4f,\n  \"reduction_gate\": %.2f,\n"
                 "  \"naive_unpruned_seconds\": %.6f,\n"
                 "  \"naive_pruned_seconds\": %.6f,\n"
                 "  \"naive_speedup\": %.3f,\n  \"speedup_gate\": %.1f,\n"
                 "  \"naive_candidates_pruned\": %zu,\n"
                 "  \"merged_unpruned_seconds\": %.6f,\n"
                 "  \"merged_pruned_seconds\": %.6f,\n"
                 "  \"merged_speedup\": %.3f,\n"
                 "  \"probe_seconds\": %.6f,\n"
                 "  \"kernel_rows_skipped\": %zu,\n"
                 "  \"kernel_rows_total\": %zu,\n",
                 reduction, kReductionGate, naive_off.seconds,
                 naive_on.seconds, naive_speedup, kSpeedupGate,
                 naive_probes.candidates_pruned, merged_off.seconds,
                 merged_on.seconds, merged_speedup, probes.probe_seconds,
                 pruned_eval.probe_slice_rows_skipped,
                 pruned_eval.probe_slice_rows_total);
    std::fprintf(out, "  \"bit_identical\": %s,\n  ",
                 bit_identical ? "true" : "false");
    bench::WriteThreadReportJson(out, bench::MakeThreadReport(1));
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_probe.json\n");
  }

  if (!bit_identical) return 1;
  if (reduction < kReductionGate) {
    std::fprintf(stderr,
                 "bench_probe_pruning: FAIL — only %.1f%% of candidates "
                 "pruned (gate: >= %.0f%%)\n",
                 reduction * 100, kReductionGate * 100);
    return 1;
  }
  if (naive_speedup < kSpeedupGate) {
    std::fprintf(stderr,
                 "bench_probe_pruning: FAIL — naive-rung pruning is only "
                 "x%.2f the unpruned run (gate: >= x%.1f)\n",
                 naive_speedup, kSpeedupGate);
    return 1;
  }
  return 0;
}
