// Reproduces Table 8 (Appendix A): the user-survey preference counts,
// derived from each simulated user's measured AggChecker-vs-SQL speedup.

#include "study_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Table 8: results of user survey",
                "all users prefer the AggChecker; strongest preference for "
                "verifying correct claims");

  struct RowSpec {
    const char* label;
    const char* criterion;
    const char* paper;
  };
  RowSpec rows[] = {
      {"Overall", "overall", "paper 0/0/0/3/5"},
      {"Learning", "learning", "paper 0/0/0/2/6"},
      {"Correct Claims", "correct", "paper 0/0/0/1/7"},
      {"Incorrect Claims", "incorrect", "paper 0/0/1/3/4"},
  };
  std::printf("%-18s %7s %6s %9s %5s %6s\n", "criterion", "SQL++", "SQL+",
              "SQL~AC", "AC+", "AC++");
  for (const auto& r : rows) {
    auto row = bench::SharedStudy().Survey(r.criterion);
    std::printf("%-18s %7d %6d %9d %5d %6d   %s\n", r.label, row.sql_strong,
                row.sql_weak, row.neutral, row.ac_weak, row.ac_strong,
                r.paper);
  }
  return 0;
}
