// Extension experiment (semi-automated checking, Definition 3): how much
// does one user correction improve the automated translation of the
// *other* claims in the same document? For each corpus case we pin the
// single claim whose ground-truth rank is worst to its ground truth, run
// Refresh, and measure top-1 coverage over the remaining claims before and
// after — the "information gained from easy cases spreads across claims"
// effect of Example 5, driven from the user side.

#include "bench_common.h"
#include "core/interactive_session.h"

int main() {
  using namespace aggchecker;
  bench::Header("Extension: correction propagation in semi-automated mode",
                "corrected claims sharpen the learned priors and improve "
                "sibling claims (Example 5's mechanism)");

  size_t before_hits = 0, after_hits = 0, total = 0, docs_used = 0;
  for (const corpus::CorpusCase& c : bench::SharedCorpus()) {
    auto checker = core::AggChecker::Create(&c.database);
    if (!checker.ok()) continue;
    auto session = core::InteractiveSession::Start(&*checker, &c.document);
    if (!session.ok()) continue;
    if (session->num_claims() != c.ground_truth.size() ||
        session->num_claims() < 3) {
      continue;
    }

    // Worst-ranked claim gets the correction.
    size_t worst = 0;
    size_t worst_rank = 0;  // 0 = absent = worst possible
    bool found = false;
    for (size_t i = 0; i < session->num_claims(); ++i) {
      size_t rank = corpus::GroundTruthRank(c.ground_truth[i],
                                            session->report().verdicts[i]);
      if (!found || rank == 0 || (worst_rank != 0 && rank > worst_rank)) {
        worst = i;
        worst_rank = rank;
        found = true;
        if (rank == 0) break;
      }
    }

    auto top1_of_rest = [&](const core::CheckReport& report) {
      size_t hits = 0;
      for (size_t i = 0; i < c.ground_truth.size(); ++i) {
        if (i == worst) continue;
        if (corpus::GroundTruthRank(c.ground_truth[i],
                                    report.verdicts[i]) == 1) {
          ++hits;
        }
      }
      return hits;
    };

    before_hits += top1_of_rest(session->report());
    if (!session->SetCustomQuery(worst, c.ground_truth[worst].query).ok()) {
      continue;
    }
    if (!session->Refresh().ok()) continue;
    after_hits += top1_of_rest(session->report());
    total += c.ground_truth.size() - 1;
    ++docs_used;
  }

  double before = 100.0 * before_hits / static_cast<double>(total);
  double after = 100.0 * after_hits / static_cast<double>(total);
  std::printf("documents: %zu, sibling claims scored: %zu\n", docs_used,
              total);
  std::printf("top-1 coverage of sibling claims:\n");
  std::printf("  before correction: %5.1f%%\n", before);
  std::printf("  after correction : %5.1f%%   (delta %+.1f points)\n", after,
              after - before);
  return 0;
}
