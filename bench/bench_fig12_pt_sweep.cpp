// Reproduces Figure 12: the precision/recall tradeoff as the assumed
// claim-truth prior pT varies. Lower pT makes the system more suspicious
// (higher recall, lower precision); the paper settles on pT = 0.999.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 12: parameter pT vs recall and precision",
                "recall falls and precision rises as pT -> 1; "
                "pT=0.999 is the chosen tradeoff");

  std::printf("%10s %10s %12s %10s\n", "pT", "recall", "precision", "F1");
  for (double pt : {0.5, 0.7, 0.9, 0.99, 0.999, 0.9999, 0.99999}) {
    core::CheckOptions options;
    options.model.pT = pt;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%10g %9.1f%% %11.1f%% %9.1f%%%s\n", pt,
                result.detection.Recall() * 100,
                result.detection.Precision() * 100,
                result.detection.F1() * 100,
                pt == 0.999 ? "   <- current version" : "");
  }
  return 0;
}
