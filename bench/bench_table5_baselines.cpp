// Reproduces Table 5: AggChecker against its own ablations (keyword
// context, probabilistic model, time budget by retrieval hits) and against
// the fact-checking / NLQ baselines, measured as precision/recall/F1 on
// erroneous-claim detection plus end-to-end run time.

#include "baselines/claimbuster_fm.h"
#include "baselines/nalir.h"
#include "bench_common.h"
#include "claims/claim_detector.h"
#include "util/timer.h"

namespace aggchecker {
namespace {

void RunVariant(const std::string& label, core::CheckOptions options,
                const char* paper_ref) {
  auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
  std::printf("%-34s recall=%5.1f%%  precision=%5.1f%%  F1=%5.1f%%  "
              "time=%5.1fs  %s\n",
              label.c_str(), result.detection.Recall() * 100,
              result.detection.Precision() * 100,
              result.detection.F1() * 100, result.total_seconds, paper_ref);
}

/// Scores a baseline that flags claims without the AggChecker pipeline.
template <typename FlagFn>
void RunBaseline(const std::string& label, FlagFn&& flag_claims,
                 const char* paper_ref) {
  corpus::ErrorDetectionMetrics metrics;
  Timer timer;
  for (const corpus::CorpusCase& c : bench::SharedCorpus()) {
    auto detected = claims::ClaimDetector().Detect(c.document);
    std::vector<bool> flags = flag_claims(c, detected);
    size_t n = std::min(flags.size(), c.ground_truth.size());
    metrics.total_claims += n;
    for (size_t i = 0; i < n; ++i) {
      bool erroneous = c.ground_truth[i].is_erroneous;
      if (flags[i] && erroneous) ++metrics.true_positives;
      if (flags[i] && !erroneous) ++metrics.false_positives;
      if (!flags[i] && erroneous) ++metrics.false_negatives;
    }
  }
  std::printf("%-34s recall=%5.1f%%  precision=%5.1f%%  F1=%5.1f%%  "
              "time=%5.1fs  %s\n",
              label.c_str(), metrics.Recall() * 100,
              metrics.Precision() * 100, metrics.F1() * 100,
              timer.ElapsedSeconds(), paper_ref);
}

}  // namespace
}  // namespace aggchecker

int main() {
  using namespace aggchecker;
  bench::Header("Table 5: AggChecker variants vs baselines",
                "AggChecker 70.8/36.2/47.9 vs ClaimBuster-FM ~18-21 F1, "
                "ClaimBuster-KB+NaLIR 3.9 F1");

  std::printf("--- keyword context (Figure 11's increments) ---\n");
  {
    core::CheckOptions options;
    options.context = claims::KeywordContextOptions::ClaimSentenceOnly();
    RunVariant("Claim sentence", options, "paper F1=41.7");
    options.context.previous_sentence = true;
    RunVariant("+ Previous sentence", options, "paper F1=42.9");
    options.context.paragraph_start = true;
    RunVariant("+ Paragraph start", options, "paper F1=43.9");
    options.context.synonyms = true;
    RunVariant("+ Synonyms", options, "paper F1=46.3");
    options.context.headlines = true;
    RunVariant("+ Headlines (current version)", options, "paper F1=47.9");
  }

  std::printf("--- probabilistic model (Table 10's increments) ---\n");
  {
    core::CheckOptions options;
    options.model.use_eval_results = false;
    options.model.use_priors = false;
    RunVariant("Relevance scores Sc", options, "paper F1=23.3");
    options.model.use_eval_results = true;
    RunVariant("+ Evaluation results Ec", options, "paper F1=44.7");
    options.model.use_priors = true;
    RunVariant("+ Learning priors (current)", options, "paper F1=47.9");
  }

  std::printf("--- time budget by retrieval hits ---\n");
  for (size_t hits : {1u, 10u, 20u, 30u}) {
    core::CheckOptions options;
    options.model.lucene_hits = hits;
    // Deeper retrieval buys a proportionally larger evaluation scope.
    options.model.max_eval_per_claim = 8 * hits;
    RunVariant("# Hits = " + std::to_string(hits), options,
               hits == 20 ? "paper F1=47.9 (current)" : "");
  }

  std::printf("--- baselines ---\n");
  RunBaseline(
      "ClaimBuster-FM (Max)",
      [fm = baselines::ClaimBusterFm(
           baselines::ClaimBusterFm::Aggregation::kMax)](
          const corpus::CorpusCase& c,
          const std::vector<claims::Claim>& detected) {
        return fm.CheckDocument(c.document, detected);
      },
      "paper 34.1/12.3/18.1");
  RunBaseline(
      "ClaimBuster-FM (MV)",
      [fm = baselines::ClaimBusterFm(
           baselines::ClaimBusterFm::Aggregation::kMajorityVote)](
          const corpus::CorpusCase& c,
          const std::vector<claims::Claim>& detected) {
        return fm.CheckDocument(c.document, detected);
      },
      "paper 31.7/15.9/21.1");
  {
    size_t attempts = 0, questions = 0, translations = 0, single = 0;
    RunBaseline(
        "ClaimBuster-KB + NaLIR",
        [&](const corpus::CorpusCase& c,
            const std::vector<claims::Claim>& detected) {
          auto catalog = fragments::FragmentCatalog::Build(c.database);
          baselines::NalirBaseline nalir(&c.database, &*catalog);
          std::vector<bool> flags;
          for (const auto& claim : detected) {
            auto outcome = nalir.CheckClaim(c.document, claim);
            flags.push_back(outcome.single_value &&
                            outcome.flagged_erroneous);
          }
          attempts += nalir.stats().attempts;
          questions += nalir.stats().questions;
          translations += nalir.stats().translations;
          single += nalir.stats().single_values;
          return flags;
        },
        "paper 2.4/10.0/3.9");
    std::printf(
        "    NaLIR funnel: %zu claims -> %zu questions -> %zu translations "
        "-> %zu single values (paper: 42.1%% translated, 13.6%% single)\n",
        attempts, questions, translations, single);
  }

  std::printf("--- full system ---\n");
  RunVariant("AggChecker Automatic", core::CheckOptions{},
             "paper 70.8/36.2/47.9, 128s");
  return 0;
}
