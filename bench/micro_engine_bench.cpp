// Micro-benchmarks of the query-evaluation backend (google-benchmark):
// naive scans vs merged cube execution vs cached lookups — the mechanisms
// behind Table 6 — plus join materialization and threaded twins of the
// batch benchmarks. Track across commits with
//   micro_engine_bench --benchmark_out_format=json
//                      --benchmark_out=BENCH_micro_engine.json

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "db/eval_engine.h"
#include "db/joined_relation.h"
#include "db/query_interner.h"
#include "util/resource_governor.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace {

/// A representative candidate batch: all (function, literal) combinations
/// on one case's focus columns — what one EM iteration evaluates.
std::vector<db::SimpleAggregateQuery> MakeBatch(const db::Database& db) {
  std::vector<db::SimpleAggregateQuery> batch;
  const db::Table& table = db.table(0);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const db::Column& column = table.column(c);
    if (column.is_numeric()) continue;
    for (const db::Value& v : column.DistinctValues()) {
      db::SimpleAggregateQuery q;
      q.fn = db::AggFn::kCount;
      q.agg_column = {table.name(), ""};
      q.predicates = {{{table.name(), column.name()}, v}};
      batch.push_back(q);
    }
  }
  return batch;
}

const db::Database& BenchDatabase() {
  static const corpus::CorpusCase* kCase = [] {
    corpus::GeneratorOptions options;
    return new corpus::CorpusCase(corpus::GenerateCase(3, options));
  }();
  return kCase->database;
}

void BM_NaiveBatch(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kNaive);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_NaiveBatch);

void BM_MergedBatch(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kMerged);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MergedBatch);

// Governed variants: identical work under an attached (unlimited) resource
// governor. Comparing these against the ungoverned twins measures the
// cooperative-cancellation overhead, which must stay within the noise
// (<= 2%): scan loops charge the governor once per
// ResourceGovernor::kCheckIntervalRows rows, not per row.
void BM_NaiveBatchGoverned(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  ResourceGovernor governor;
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kNaive);
    engine.SetGovernor(&governor);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_NaiveBatchGoverned);

void BM_MergedBatchGoverned(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  ResourceGovernor governor;
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kMerged);
    engine.SetGovernor(&governor);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MergedBatchGoverned);

// Threaded twins: the same batches with a worker pool attached, swept over
// thread counts (->Arg(n)). Results are bit-identical to the serial twins
// (asserted by parallel_determinism_test); these twins track the speedup —
// and, at 1 thread vs the pool-free baseline, the coordination overhead.
// On a single-core host the sweep degenerates to overhead measurement.
void BM_NaiveBatchParallel(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kNaive);
    engine.SetThreadPool(&pool);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_NaiveBatchParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_MergedBatchParallel(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kMerged);
    engine.SetThreadPool(&pool);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MergedBatchParallel)->Arg(1)->Arg(2)->Arg(4);

// Parallel + governed: cube workers charge per-thread governor shards that
// fold into the shared atomics every kCheckIntervalRows rows. The delta
// against BM_MergedBatchParallel is the sharded-accounting overhead.
void BM_MergedBatchParallelGoverned(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  ResourceGovernor governor;
  for (auto _ : state) {
    db::EvalEngine engine(&db, db::EvalStrategy::kMerged);
    engine.SetThreadPool(&pool);
    engine.SetGovernor(&governor);
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_MergedBatchParallelGoverned)->Arg(1)->Arg(2)->Arg(4);

void BM_CachedRepeatBatch(benchmark::State& state) {
  const auto& db = BenchDatabase();
  auto batch = MakeBatch(db);
  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  (void)engine.EvaluateBatch(batch);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_CachedRepeatBatch);

// --- Plan-phase micro benches: string keys vs interned fingerprints ----
//
// Steady-state EM iterations re-plan near-identical candidate batches
// every round; these twins isolate that plan phase. The result cache is
// warmed once so the execute phase collapses to cache hits, leaving the
// per-query planning work. The String twin re-derives per-query grouping
// keys (relation + dim-set strings) each round via EvaluateBatch; the
// Fingerprint twin ships pre-encoded interner ids — as the translator
// does after its first iteration — and hits the (relation, dim-set) plan
// cache, so per-query work shrinks to integer lookups. Their ratio is
// the plan-phase speedup of PR 5, swept over batch size.
const db::Database& PlanBenchDatabase() {
  static const db::Database* kDb = [] {
    auto* db = new db::Database("plan-bench");
    db::Table table("plan");
    (void)table.AddColumn("a", db::ValueType::kString);
    (void)table.AddColumn("b", db::ValueType::kString);
    for (size_t r = 0; r < 1000; ++r) {
      (void)table.AddRow({db::Value("a" + std::to_string(r % 250)),
                          db::Value("b" + std::to_string(r % 200))});
    }
    (void)db->AddTable(std::move(table));
    return db;
  }();
  return *kDb;
}

/// `n` distinct COUNT(*) candidates over (a, b) literal pairs; all share
/// one dimension set, so they merge into a single cube whose result the
/// warm-up run caches.
std::vector<db::SimpleAggregateQuery> MakePlanBatch(int64_t n) {
  std::vector<db::SimpleAggregateQuery> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    db::SimpleAggregateQuery q;
    q.fn = db::AggFn::kCount;
    q.agg_column = {"plan", ""};
    q.predicates = {
        {{"plan", "a"}, db::Value("a" + std::to_string((i / 200) % 250))},
        {{"plan", "b"}, db::Value("b" + std::to_string(i % 200))}};
    batch.push_back(std::move(q));
  }
  return batch;
}

void BM_PlanPhaseString(benchmark::State& state) {
  const auto& db = PlanBenchDatabase();
  auto batch = MakePlanBatch(state.range(0));
  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetQueryFingerprints(false);
  (void)engine.EvaluateBatch(batch);  // warm the result cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvaluateBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanPhaseString)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_PlanPhaseFingerprint(benchmark::State& state) {
  const auto& db = PlanBenchDatabase();
  auto batch = MakePlanBatch(state.range(0));
  db::EvalEngine engine(&db, db::EvalStrategy::kMergedCached);
  engine.SetQueryFingerprints(true);
  std::vector<db::QueryInterner::Id> ids;
  ids.reserve(batch.size());
  for (const auto& q : batch) {
    ids.push_back(engine.interner().InternQuery(q));
  }
  (void)engine.EvaluateInterned(ids);  // warm the result + plan caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvaluateInterned(ids));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanPhaseFingerprint)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_CubeExecution(benchmark::State& state) {
  const auto& db = BenchDatabase();
  const db::Table& table = db.table(0);
  std::vector<db::ColumnRef> dims;
  std::vector<std::vector<db::Value>> literals;
  for (size_t c = 0; c < table.num_columns() && dims.size() < 2; ++c) {
    const db::Column& column = table.column(c);
    if (column.is_numeric()) continue;
    dims.push_back({table.name(), column.name()});
    literals.push_back(column.DistinctValues());
  }
  db::CubeAggregate count_star;
  count_star.column.table = table.name();
  for (auto _ : state) {
    auto cube = db::ExecuteCube(db, dims, literals, {count_star});
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table.num_rows()));
}
BENCHMARK(BM_CubeExecution);

// --- Cube-kernel micro benches: scalar oracle vs vectorized pipeline ----
//
// A synthetic star-schema fact table large enough that per-row dispatch
// cost dominates: four low-cardinality dimension columns (with NULLs) and
// two measure columns (long + double, with NULLs). Swept over dimension
// count d=1..4 and each base aggregate function; the Scalar/Vectorized
// twins share workloads so their ratio is the speedup of the typed-kernel
// pipeline over the row-at-a-time Aggregator path (both at num_threads=1;
// results are bit-identical, asserted by cube_vectorized_diff_test).
constexpr size_t kKernelRows = 40000;

const db::Database& CubeKernelDatabase() {
  static const db::Database* kDb = [] {
    auto* db = new db::Database("cube-kernel-bench");
    db::Table fact("fact");
    for (int d = 0; d < 4; ++d) {
      (void)fact.AddColumn("d" + std::to_string(d),
                           db::ValueType::kString);
    }
    (void)fact.AddColumn("m_long", db::ValueType::kLong);
    (void)fact.AddColumn("m_double", db::ValueType::kDouble);
    for (size_t r = 0; r < kKernelRows; ++r) {
      std::vector<db::Value> row;
      for (int d = 0; d < 4; ++d) {
        // Cardinality 5 per dimension, ~10% NULLs.
        size_t v = (r * 2654435761u + static_cast<size_t>(d) * 97) % 11;
        if (v == 10) {
          row.emplace_back();
        } else {
          row.emplace_back("v" + std::to_string(v % 5));
        }
      }
      if (r % 13 == 7) {
        row.emplace_back();
      } else {
        row.emplace_back(static_cast<int64_t>(r % 257));
      }
      if (r % 17 == 3) {
        row.emplace_back();
      } else {
        row.emplace_back(0.5 * static_cast<double>(r % 1001) - 250.0);
      }
      (void)fact.AddRow(std::move(row));
    }
    (void)db->AddTable(std::move(fact));
    return db;
  }();
  return *kDb;
}

struct CubeKernelWorkload {
  std::vector<db::ColumnRef> dims;
  std::vector<std::vector<db::Value>> literals;
  std::vector<db::CubeAggregate> aggs;
};

CubeKernelWorkload MakeKernelWorkload(int64_t fn_index, int64_t num_dims) {
  const db::Database& database = CubeKernelDatabase();
  const db::Table& fact = *database.FindTable("fact");
  CubeKernelWorkload workload;
  for (int64_t d = 0; d < num_dims; ++d) {
    const db::Column& col =
        *fact.FindColumn("d" + std::to_string(d));
    workload.dims.push_back({"fact", col.name()});
    workload.literals.push_back(col.DistinctValues());
  }
  // fn_index: 0=Count(*), 1=CountDistinct, 2=Sum, 3=Avg, 4=Min, 5=Max;
  // 6 = the multi-aggregate workload (all five functions at once) that the
  // perf-smoke gate and BENCH_micro_engine.json headline track.
  auto agg = [](db::AggFn fn, const char* column) {
    db::CubeAggregate a;
    a.fn = fn;
    if (column != nullptr) a.column = {"fact", column};
    return a;
  };
  switch (fn_index) {
    case 0:
      workload.aggs = {agg(db::AggFn::kCount, nullptr)};
      break;
    case 1:
      workload.aggs = {agg(db::AggFn::kCountDistinct, "m_long")};
      break;
    case 2:
      workload.aggs = {agg(db::AggFn::kSum, "m_double")};
      break;
    case 3:
      workload.aggs = {agg(db::AggFn::kAvg, "m_double")};
      break;
    case 4:
      workload.aggs = {agg(db::AggFn::kMin, "m_double")};
      break;
    case 5:
      workload.aggs = {agg(db::AggFn::kMax, "m_double")};
      break;
    default:
      workload.aggs = {agg(db::AggFn::kCount, nullptr),
                       agg(db::AggFn::kCountDistinct, "m_long"),
                       agg(db::AggFn::kSum, "m_double"),
                       agg(db::AggFn::kAvg, "m_double"),
                       agg(db::AggFn::kMax, "m_double")};
      break;
  }
  return workload;
}

void RunCubeKernelBench(benchmark::State& state, db::CubeExecMode mode) {
  const db::Database& database = CubeKernelDatabase();
  CubeKernelWorkload workload =
      MakeKernelWorkload(state.range(0), state.range(1));
  db::CubeExecOptions options;
  options.mode = mode;
  for (auto _ : state) {
    auto cube =
        db::ExecuteCube(database, workload.dims, workload.literals,
                        workload.aggs, nullptr, nullptr, options);
    benchmark::DoNotOptimize(cube);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kKernelRows));
}

void BM_CubeKernelScalar(benchmark::State& state) {
  RunCubeKernelBench(state, db::CubeExecMode::kScalarOracle);
}
void BM_CubeKernelVectorized(benchmark::State& state) {
  RunCubeKernelBench(state, db::CubeExecMode::kVectorized);
}

// Per-function sweep at d=2, plus the dimension sweep d=1..4 on the
// multi-aggregate workload (fn index 6). ArgNames render in the JSON as
// fn:<index>/d:<dims>.
void RegisterCubeKernelArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"fn", "d"});
  for (int64_t fn = 0; fn <= 5; ++fn) bench->Args({fn, 2});
  for (int64_t d = 1; d <= 4; ++d) bench->Args({6, d});
  bench->Unit(benchmark::kMicrosecond);
}
BENCHMARK(BM_CubeKernelScalar)->Apply(RegisterCubeKernelArgs);
BENCHMARK(BM_CubeKernelVectorized)->Apply(RegisterCubeKernelArgs);

void BM_JoinMaterialization(benchmark::State& state) {
  // Two-table PK-FK join at corpus-like sizes.
  static const db::Database* kDb = [] {
    auto* db = new db::Database("join-bench");
    db::Table left("orders");
    (void)left.AddColumn("id", db::ValueType::kLong);
    (void)left.AddColumn("customer_id", db::ValueType::kLong);
    db::Table right("customers");
    (void)right.AddColumn("id", db::ValueType::kLong);
    (void)right.AddColumn("region", db::ValueType::kString);
    for (int64_t i = 0; i < 200; ++i) {
      (void)right.AddRow({db::Value(i), db::Value(std::string(
                                            i % 2 ? "east" : "west"))});
    }
    for (int64_t i = 0; i < 5000; ++i) {
      (void)left.AddRow({db::Value(i), db::Value(i % 200)});
    }
    (void)db->AddTable(std::move(left));
    (void)db->AddTable(std::move(right));
    (void)db->AddForeignKey({"orders", "customer_id"}, {"customers", "id"});
    return db;
  }();
  for (auto _ : state) {
    auto rel = db::JoinedRelation::Build(*kDb, {"orders", "customers"});
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_JoinMaterialization);

}  // namespace
}  // namespace aggchecker

BENCHMARK_MAIN();
