// Reproduces Figure 13: top-k coverage versus processing budget. The left
// sweep uses the real resource governor — each run gets a hard row-scan
// budget and exhausted claims degrade to partial verdicts instead of
// errors — so coverage-vs-budget is measured under the same cancellation
// machinery production runs use. The right sweep varies the number of
// aggregation columns considered during evaluation.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 13: top-k coverage vs processing budget",
                "coverage grows with scan budget, with diminishing returns");

  std::printf("--- left: governor row-scan budget ---\n");
  std::printf("%10s %10s %8s %8s %10s %8s %10s\n", "budget", "time", "top-1",
              "top-10", "queries", "partial", "exhausted");
  for (uint64_t budget :
       {uint64_t{10000}, uint64_t{100000}, uint64_t{1000000},
        uint64_t{10000000}, uint64_t{0}}) {
    core::CheckOptions options;
    options.governor.max_row_scans = budget;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    char label[32];
    if (budget == 0) {
      std::snprintf(label, sizeof(label), "unlimited");
    } else {
      std::snprintf(label, sizeof(label), "%llu",
                    static_cast<unsigned long long>(budget));
    }
    std::printf("%10s %9.2fs %7.1f%% %7.1f%% %10zu %8zu %7zu/%zu\n", label,
                result.total_seconds, result.coverage.TopK(1),
                result.coverage.TopK(10), result.queries_evaluated,
                result.num_partial, result.cases_exhausted,
                result.reports.size());
  }

  // Join columns show the RelationCache under memory pressure: starved
  // budgets withdraw cached joins (joins served per build drops), while
  // roomy budgets materialize each relation once and hit thereafter.
  std::printf("--- middle: governor modeled-memory budget ---\n");
  std::printf("%10s %10s %8s %8s %10s %8s %10s %8s %9s\n", "bytes", "time",
              "top-1", "top-10", "queries", "partial", "exhausted", "joins",
              "join_hits");
  for (uint64_t budget :
       {uint64_t{1} << 12, uint64_t{1} << 16, uint64_t{1} << 20,
        uint64_t{1} << 24, uint64_t{0}}) {
    core::CheckOptions options;
    options.governor.max_memory_bytes = budget;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    char label[32];
    if (budget == 0) {
      std::snprintf(label, sizeof(label), "unlimited");
    } else {
      std::snprintf(label, sizeof(label), "%llu",
                    static_cast<unsigned long long>(budget));
    }
    std::printf("%10s %9.2fs %7.1f%% %7.1f%% %10zu %8zu %7zu/%zu %8zu %9zu\n",
                label, result.total_seconds, result.coverage.TopK(1),
                result.coverage.TopK(10), result.queries_evaluated,
                result.num_partial, result.cases_exhausted,
                result.reports.size(), result.joins_built,
                result.join_cache_hits);
  }

  std::printf("--- right: aggregation columns considered ---\n");
  std::printf("%8s %10s %8s %8s %12s\n", "#aggs", "time", "top-1", "top-10",
              "queries");
  for (size_t aggs : {1u, 2u, 4u, 8u, 12u, 16u}) {
    core::CheckOptions options;
    options.model.max_agg_columns = aggs;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%8zu %9.2fs %7.1f%% %7.1f%% %12zu\n", aggs,
                result.total_seconds, result.coverage.TopK(1),
                result.coverage.TopK(10), result.queries_evaluated);
  }
  return 0;
}
