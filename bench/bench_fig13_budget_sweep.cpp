// Reproduces Figure 13: top-k coverage versus processing overhead, sweeping
// (left) the number of retrieval hits per claim and (right) the number of
// aggregation columns considered during evaluation. More budget buys
// coverage with diminishing returns.

#include "bench_common.h"

int main() {
  using namespace aggchecker;
  bench::Header("Figure 13: top-k coverage vs processing budget",
                "coverage grows with time budget, with diminishing returns");

  std::printf("--- left: retrieval hits per claim ---\n");
  std::printf("%8s %10s %8s %8s %12s\n", "#hits", "time", "top-1", "top-10",
              "queries");
  for (size_t hits : {1u, 5u, 10u, 20u, 30u}) {
    core::CheckOptions options;
    options.model.lucene_hits = hits;
    // The retrieval depth IS the time budget: the evaluation scope scales
    // with it (at the default 20 hits this is the default budget of 160).
    options.model.max_eval_per_claim = 8 * hits;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%8zu %9.2fs %7.1f%% %7.1f%% %12zu\n", hits,
                result.total_seconds, result.coverage.TopK(1),
                result.coverage.TopK(10), result.queries_evaluated);
  }

  std::printf("--- right: aggregation columns considered ---\n");
  std::printf("%8s %10s %8s %8s %12s\n", "#aggs", "time", "top-1", "top-10",
              "queries");
  for (size_t aggs : {1u, 2u, 4u, 8u, 12u, 16u}) {
    core::CheckOptions options;
    options.model.max_agg_columns = aggs;
    auto result = corpus::RunOnCorpus(bench::SharedCorpus(), options);
    std::printf("%8zu %9.2fs %7.1f%% %7.1f%% %12zu\n", aggs,
                result.total_seconds, result.coverage.TopK(1),
                result.coverage.TopK(10), result.queries_evaluated);
  }
  return 0;
}
