#pragma once

// Shared user-study runner for the Table 3/4/8 and Figure 6/7 benches:
// six study articles (two long, four short), eight simulated users,
// tools alternating — §7.2's protocol.

#include "bench_common.h"
#include "sim/user_study.h"

namespace aggchecker {
namespace bench {

inline const sim::StudyResult& SharedStudy() {
  static const sim::StudyResult* kStudy = [] {
    const auto& corpus = SharedCorpus();
    auto picks = corpus::StudyArticleIndices(corpus);
    sim::UserStudy study(&corpus, picks);
    auto result = study.Run();
    if (!result.ok()) {
      std::fprintf(stderr, "study failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return new sim::StudyResult(std::move(*result));
  }();
  return *kStudy;
}

}  // namespace bench
}  // namespace aggchecker
