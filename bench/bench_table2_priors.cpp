// Reproduces Table 2: the document-specific priors Θ converging over EM
// iterations on the NFL running example — the Count(*) function prior and
// the restriction priors on Games/Category rise as the common theme is
// learned, while off-theme fragments fall.

#include <cstdio>

#include "claims/claim_detector.h"
#include "claims/relevance_scorer.h"
#include "corpus/embedded_articles.h"
#include "model/translator.h"

int main() {
  using namespace aggchecker;
  std::printf("==========================================================\n");
  std::printf("Table 2: changing priors during EM iterations\n");
  std::printf("paper: Count(*) 0.025 -> 0.150; Games=(any) 0.143 -> 0.417; "
              "Category=(any) 0.143 -> 0.297\n");
  std::printf("==========================================================\n");

  auto c = corpus::MakeNflCase();
  auto catalog = fragments::FragmentCatalog::Build(c.database);
  auto detected = claims::ClaimDetector().Detect(c.document);
  claims::RelevanceScorer scorer(&*catalog, claims::KeywordExtractor(), 20);
  auto relevance = scorer.ScoreAll(c.document, detected);

  model::ModelOptions options;
  options.trace_priors = true;
  options.max_em_iterations = 6;
  options.convergence_tol = 0;  // show every iteration
  model::Translator translator(&c.database, &*catalog, options);
  db::EvalEngine engine(&c.database, db::EvalStrategy::kMergedCached);
  auto result = translator.Translate(detected, relevance, &engine);

  struct TrackedFragment {
    const char* label;
    enum { kFn, kRestrict } kind;
    db::AggFn fn;
    db::ColumnRef column;
  };
  const TrackedFragment tracked[] = {
      {"Count(*)", TrackedFragment::kFn, db::AggFn::kCount, {}},
      {"Sum(...)", TrackedFragment::kFn, db::AggFn::kSum, {}},
      {"Average(...)", TrackedFragment::kFn, db::AggFn::kAvg, {}},
      {"Games = (any value)", TrackedFragment::kRestrict, db::AggFn::kCount,
       {"nflsuspensions", "Games"}},
      {"Category = (any value)", TrackedFragment::kRestrict,
       db::AggFn::kCount, {"nflsuspensions", "Category"}},
      {"Team = (any value)", TrackedFragment::kRestrict, db::AggFn::kCount,
       {"nflsuspensions", "Team"}},
  };

  std::printf("%-24s", "query fragment");
  for (size_t i = 0; i < result.prior_trace.size(); ++i) {
    std::printf(i == 0 ? "  initial" : "   iter %zu", i);
  }
  std::printf("\n");
  for (const auto& t : tracked) {
    std::printf("%-24s", t.label);
    for (const model::Priors& priors : result.prior_trace) {
      double value = t.kind == TrackedFragment::kFn
                         ? priors.fn_prior(t.fn)
                         : priors.restrict_prior(
                               catalog->PredicateColumnIndex(t.column));
      std::printf("  %7.3f", value);
    }
    std::printf("\n");
  }
  std::printf("\n(%d EM iterations; the theme — counts restricted on Games/"
              "Category — dominates the final priors)\n",
              result.em_iterations);
  return 0;
}
