#pragma once

// Shared helpers for the experiment-reproduction binaries. Every bench
// prints the rows/series of one paper table or figure, with a `paper=`
// reference column for side-by-side comparison (absolute numbers differ —
// different corpus and machine; the shape is the reproduction target).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "corpus/harness.h"
#include "util/thread_pool.h"

namespace aggchecker {
namespace bench {

/// \brief Thread-environment self-report: what a bench asked for vs what
/// the host can run. Scaling numbers measured with fewer threads than
/// requested are not comparable across machines, so every bench records
/// the clamp instead of silently measuring oversubscription.
struct ThreadReport {
  size_t hardware_concurrency = 0;
  size_t threads_requested = 0;
  size_t threads_used = 0;  ///< min(requested, hardware_concurrency)
  bool clamped = false;     ///< host has fewer cores than requested
};

inline ThreadReport MakeThreadReport(size_t threads_requested) {
  ThreadReport report;
  report.hardware_concurrency = ThreadPool::HardwareConcurrency();
  report.threads_requested = threads_requested;
  report.threads_used =
      std::min(threads_requested, report.hardware_concurrency);
  report.clamped = report.threads_used < threads_requested;
  return report;
}

inline void PrintThreadReport(const ThreadReport& report) {
  std::printf("threads: requested=%zu used=%zu hardware_concurrency=%zu%s\n",
              report.threads_requested, report.threads_used,
              report.hardware_concurrency,
              report.clamped
                  ? "  [CLAMPED: host has fewer cores than requested; "
                    "scaling numbers are not meaningful]"
                  : "");
}

/// Emits the four thread keys as a JSON fragment (no braces, no trailing
/// comma) for splicing into a bench's machine-readable output.
inline void WriteThreadReportJson(FILE* out, const ThreadReport& report) {
  std::fprintf(out,
               "\"hardware_concurrency\": %zu, \"threads_requested\": %zu, "
               "\"threads_used\": %zu, \"threads_clamped\": %s",
               report.hardware_concurrency, report.threads_requested,
               report.threads_used, report.clamped ? "true" : "false");
}

/// Clamps a requested thread sweep to the host's core count and dedups:
/// a 1-core host runs (and records) only threads=1. Thread counts above
/// the core count cannot speed anything up and would only measure
/// oversubscription noise.
inline std::vector<size_t> ClampedThreadSweep(std::vector<size_t> requested) {
  const size_t hw = ThreadPool::HardwareConcurrency();
  for (size_t& threads : requested) threads = std::min(threads, hw);
  requested.erase(std::unique(requested.begin(), requested.end()),
                  requested.end());
  return requested;
}

inline void Header(const char* experiment, const char* paper_caption) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_caption);
  std::printf("==========================================================\n");
}

inline void Row(const std::string& label, double recall, double precision,
                double f1, const char* paper_ref) {
  std::printf("%-34s recall=%5.1f%%  precision=%5.1f%%  F1=%5.1f%%  %s\n",
              label.c_str(), recall * 100, precision * 100, f1 * 100,
              paper_ref);
}

/// The corpus is expensive to regenerate; share one instance per process.
inline const std::vector<corpus::CorpusCase>& SharedCorpus() {
  static const std::vector<corpus::CorpusCase>* kCorpus =
      new std::vector<corpus::CorpusCase>(corpus::FullCorpus());
  return *kCorpus;
}

}  // namespace bench
}  // namespace aggchecker
