#pragma once

// Shared helpers for the experiment-reproduction binaries. Every bench
// prints the rows/series of one paper table or figure, with a `paper=`
// reference column for side-by-side comparison (absolute numbers differ —
// different corpus and machine; the shape is the reproduction target).

#include <cstdio>
#include <string>

#include "corpus/corpus.h"
#include "corpus/harness.h"

namespace aggchecker {
namespace bench {

inline void Header(const char* experiment, const char* paper_caption) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_caption);
  std::printf("==========================================================\n");
}

inline void Row(const std::string& label, double recall, double precision,
                double f1, const char* paper_ref) {
  std::printf("%-34s recall=%5.1f%%  precision=%5.1f%%  F1=%5.1f%%  %s\n",
              label.c_str(), recall * 100, precision * 100, f1 * 100,
              paper_ref);
}

/// The corpus is expensive to regenerate; share one instance per process.
inline const std::vector<corpus::CorpusCase>& SharedCorpus() {
  static const std::vector<corpus::CorpusCase>* kCorpus =
      new std::vector<corpus::CorpusCase>(corpus::FullCorpus());
  return *kCorpus;
}

}  // namespace bench
}  // namespace aggchecker
