// Snapshot cold start: build-from-CSV vs load-from-snapshot time-to-ready
// on the Table 6 dataset (DESIGN.md §15). For every case the two paths end
// in the same place — a checker whose database, fragment catalog, and
// interned query space are fully built — and the untimed differential step
// verifies their reports are bit-identical. The timed regions:
//
//   build:  ImportCase (CSV parse -> typed columns) + AggChecker::Create
//           (fragment enumeration + three inverted indexes)
//   load:   LoadSnapshot (mmap, zero-copy columns, decoded catalog)
//           + AggChecker::Create with the prebuilt catalog + SeedInterner
//
// Gate (scripts/check.sh snapshot-smoke runs --smoke): load must be >= 5x
// faster than build, and reports must not diverge. Results land in
// BENCH_snapshot.json. `--snapshot=<dir>` overrides where .snap files go.

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/aggchecker.h"
#include "core/fleet_scheduler.h"
#include "corpus/embedded_articles.h"
#include "corpus/export.h"
#include "corpus/generator.h"
#include "util/timer.h"

namespace {

using namespace aggchecker;

constexpr double kSpeedupGate = 5.0;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string snap_dir = "coldstart_snapshots";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--snapshot=", 11) == 0) {
      snap_dir = argv[i] + 11;
    }
  }
  bench::Header("Snapshot cold start: build-from-CSV vs mmap load",
                "time-to-ready; gate: load >= 5x faster, bit-identical");

  // The Table 6 dataset: embedded articles plus the scaled synthetic
  // corpus (scan cost dominates). Smoke keeps the same shape, smaller.
  corpus::GeneratorOptions gen;
  gen.num_cases = smoke ? 3 : 50;
  gen.row_scale = smoke ? 2 : 20;
  std::vector<corpus::CorpusCase> cases = corpus::EmbeddedArticles();
  for (auto& c : corpus::GenerateCorpus(gen)) cases.push_back(std::move(c));
  size_t total_rows = 0;
  for (const auto& c : cases) total_rows += c.database.TotalRows();
  std::printf("corpus: %zu cases, %zu total rows (mode=%s)\n", cases.size(),
              total_rows, smoke ? "smoke" : "full");

  const std::string csv_dir = "coldstart_csv";
  ::mkdir(csv_dir.c_str(), 0755);
  ::mkdir(snap_dir.c_str(), 0755);

  double build_seconds = 0, load_seconds = 0;
  snapshot::SnapshotStats total_bytes;
  bool bit_identical = true;

  for (const corpus::CorpusCase& original : cases) {
    // Prepare (untimed): publish the case to CSV, then snapshot the
    // CSV-imported database — the snapshot and the timed build path must
    // start from the identical source of truth (ImportCase drops foreign
    // keys, so snapshotting the pre-export database would compare
    // different datasets).
    Status exported = corpus::ExportCase(original, csv_dir);
    if (!exported.ok()) {
      std::fprintf(stderr, "export %s: %s\n", original.name.c_str(),
                   exported.ToString().c_str());
      return 1;
    }
    const std::string case_dir = csv_dir + "/" + original.name;
    auto seed_case = corpus::ImportCase(case_dir);
    if (!seed_case.ok()) {
      std::fprintf(stderr, "import %s: %s\n", original.name.c_str(),
                   seed_case.status().ToString().c_str());
      return 1;
    }
    const std::string snap_path =
        corpus::SnapshotPathForCase(snap_dir, original.name);
    {
      auto seeder = core::AggChecker::Create(&seed_case->database, {});
      if (!seeder.ok()) return 1;
      auto warm = seeder->Check(seed_case->document);  // warm the interner
      if (!warm.ok()) return 1;
      snapshot::SnapshotStats stats;
      Status saved = snapshot::WriteSnapshot(
          snap_path, seeder->database(), &seeder->catalog(),
          &seeder->engine().interner(), &stats);
      if (!saved.ok()) {
        std::fprintf(stderr, "snapshot %s: %s\n", original.name.c_str(),
                     saved.ToString().c_str());
        return 1;
      }
      total_bytes.file_bytes += stats.file_bytes;
      total_bytes.database_bytes += stats.database_bytes;
      total_bytes.catalog_bytes += stats.catalog_bytes;
      total_bytes.interner_bytes += stats.interner_bytes;
    }

    // Timed build path: CSV -> database -> catalog.
    Timer build_timer;
    auto built = corpus::ImportCase(case_dir);
    if (!built.ok()) return 1;
    auto built_checker = core::AggChecker::Create(&built->database, {});
    if (!built_checker.ok()) return 1;
    build_seconds += build_timer.ElapsedSeconds();

    // Timed load path: mmap -> zero-copy database + decoded catalog ->
    // checker with the prebuilt catalog -> interner replay.
    Timer load_timer;
    auto loaded = snapshot::LoadSnapshot(snap_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", original.name.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    core::CheckOptions load_options;
    load_options.prebuilt_catalog = loaded->catalog;
    auto loaded_checker =
        core::AggChecker::Create(&loaded->database, load_options);
    if (!loaded_checker.ok()) return 1;
    Status seeded =
        loaded->SeedInterner(&loaded_checker->engine().interner());
    if (!seeded.ok()) return 1;
    load_seconds += load_timer.ElapsedSeconds();

    // Differential step (untimed): both cold starts must report
    // byte-identically on the case's document.
    auto built_report = built_checker->Check(built->document);
    auto loaded_report = loaded_checker->Check(built->document);
    if (!built_report.ok() || !loaded_report.ok() ||
        core::FleetVerdictFingerprint(*built_report) !=
            core::FleetVerdictFingerprint(*loaded_report)) {
      std::printf("BIT-IDENTITY VIOLATION on %s\n", original.name.c_str());
      bit_identical = false;
    }
  }

  const double speedup = load_seconds > 0 ? build_seconds / load_seconds : 0;
  std::printf("build-from-CSV:     %8.3fs\n", build_seconds);
  std::printf("load-from-snapshot: %8.3fs\n", load_seconds);
  std::printf("speedup:            x%.1f (gate: >= x%.0f)\n", speedup,
              kSpeedupGate);
  std::printf("snapshot bytes:     %llu (database %llu, catalog %llu, "
              "interner %llu)\n",
              static_cast<unsigned long long>(total_bytes.file_bytes),
              static_cast<unsigned long long>(total_bytes.database_bytes),
              static_cast<unsigned long long>(total_bytes.catalog_bytes),
              static_cast<unsigned long long>(total_bytes.interner_bytes));
  std::printf("bit-identity build-vs-load over %zu cases: %s\n",
              cases.size(), bit_identical ? "OK" : "FAILED");

  // Degraded path: a damaged snapshot must fail cleanly (callers rebuild).
  {
    const std::string snap_path =
        corpus::SnapshotPathForCase(snap_dir, cases.front().name);
    if (FILE* f = std::fopen(snap_path.c_str(), "r+b")) {
      std::fseek(f, 9, SEEK_SET);  // inside the version/header region
      std::fputc(0x7f, f);
      std::fclose(f);
      auto corrupt = snapshot::LoadSnapshot(snap_path);
      std::printf("corrupted snapshot load: %s\n",
                  corrupt.ok() ? "LOADED (BUG)"
                               : corrupt.status().ToString().c_str());
      if (corrupt.ok()) bit_identical = false;
    }
  }

  if (FILE* out = std::fopen("BENCH_snapshot.json", "w")) {
    std::fprintf(out, "{\n  \"mode\": \"%s\",\n  \"cases\": %zu,\n",
                 smoke ? "smoke" : "full", cases.size());
    std::fprintf(out,
                 "  \"build_seconds\": %.6f,\n  \"load_seconds\": %.6f,\n"
                 "  \"speedup\": %.2f,\n  \"speedup_gate\": %.1f,\n",
                 build_seconds, load_seconds, speedup, kSpeedupGate);
    std::fprintf(out,
                 "  \"snapshot_bytes\": %llu,\n  \"section_bytes\": "
                 "{\"database\": %llu, \"catalog\": %llu, \"interner\": "
                 "%llu},\n",
                 static_cast<unsigned long long>(total_bytes.file_bytes),
                 static_cast<unsigned long long>(total_bytes.database_bytes),
                 static_cast<unsigned long long>(total_bytes.catalog_bytes),
                 static_cast<unsigned long long>(total_bytes.interner_bytes));
    std::fprintf(out, "  \"bit_identical\": %s,\n  ",
                 bit_identical ? "true" : "false");
    bench::WriteThreadReportJson(out, bench::MakeThreadReport(1));
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_snapshot.json\n");
  }

  if (!bit_identical) return 1;
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr,
                 "bench_snapshot_coldstart: FAIL — load is only x%.2f the "
                 "CSV build path (gate: >= x%.0f)\n",
                 speedup, kSpeedupGate);
    return 1;
  }
  return 0;
}
